//! Allocation discipline for the quote-serving fast path.
//!
//! The steady-state buy path — `Broker::buy_listed_into` with a reused
//! [`Sale`] buffer, a pre-reserved ledger, and observability disabled —
//! must perform **zero heap allocations** per purchase: the compiled
//! pricing table answers price/NCP resolution by lookup, the mechanism
//! perturbs into the caller's buffer, and the ledger entry is plain `Copy`
//! data pushed into reserved capacity.
//!
//! A counting `#[global_allocator]` (wrapping `System`) verifies this
//! directly. The counter is toggled around the measured window so test
//! harness bookkeeping doesn't pollute the count. CI runs this test in the
//! `MBP_THREADS=1` job. The armed flag and counter are **thread-local**:
//! libtest runs `#[test]` fns (and its own result-printing bookkeeping,
//! which allocates) on concurrent threads, so a process-global flag would
//! intermittently count a sibling thread's allocations inside a window.

use mbp_core::error::SquareLossTransform;
use mbp_core::market::{Broker, PurchaseRequest, Sale};
use mbp_core::pricing::PricingFunction;
use mbp_ml::ModelKind;
use mbp_randx::seeded_rng;
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

/// Counts every `alloc`/`realloc` while armed; delegates to [`System`].
struct CountingAlloc;

thread_local! {
    /// Per-thread armed flag: only the measuring thread counts.
    static ARMED: Cell<bool> = const { Cell::new(false) };
    /// Per-thread allocation count for the current armed window.
    static ALLOCATIONS: Cell<usize> = const { Cell::new(0) };
}

// SAFETY: every method delegates directly to [`System`], which upholds the
// `GlobalAlloc` contract; the counter bookkeeping never touches the layout
// or the returned pointers.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: forwards `layout` unchanged to `System.alloc`. The
    // thread-locals are const-initialized `Cell`s, so accessing them here
    // never allocates (no recursion); `try_with` tolerates TLS teardown.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.try_with(|a| a.get()).unwrap_or(false) {
            let _ = ALLOCATIONS.try_with(|c| c.set(c.get() + 1));
        }
        System.alloc(layout)
    }

    // SAFETY: forwards `ptr`/`layout` unchanged to `System.dealloc`; the
    // caller guarantees they came from this allocator.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    // SAFETY: forwards all arguments unchanged to `System.realloc`; the
    // caller guarantees `ptr`/`layout` describe a live allocation.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ARMED.try_with(|a| a.get()).unwrap_or(false) {
            let _ = ALLOCATIONS.try_with(|c| c.set(c.get() + 1));
        }
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Runs `f` with the allocation counter armed and returns how many
/// heap allocations it performed.
fn count_allocations(f: impl FnOnce()) -> usize {
    ALLOCATIONS.with(|c| c.set(0));
    ARMED.with(|a| a.set(true));
    f();
    ARMED.with(|a| a.set(false));
    ALLOCATIONS.with(|c| c.get())
}

#[test]
fn steady_state_buy_path_does_not_allocate() {
    // Observability must stay disabled: enabled metrics intern names and
    // would allocate. The registry is inert by default; this is just a
    // guard against future test-harness changes.
    assert!(
        !mbp_obs::is_enabled(),
        "obs registry must be disabled for the allocation test"
    );

    let mut rng = seeded_rng(0xA110C);
    let data = mbp_data::synth::simulated1(400, 5, 0.5, &mut rng).split(0.75, &mut rng);
    let mut broker = Broker::new(data);
    broker
        .support(ModelKind::LinearRegression, 1e-6)
        .expect("training failed");
    let grid: Vec<f64> = (1..=64).map(|i| i as f64 * 0.5).collect();
    let prices: Vec<f64> = grid.iter().map(|x| 8.0 * x.sqrt()).collect();
    let pricing = PricingFunction::from_points(grid, prices).expect("arbitrage-free");
    broker
        .publish(
            ModelKind::LinearRegression,
            pricing,
            Box::new(SquareLossTransform),
        )
        .expect("listing accepted");

    // All three request kinds, all satisfiable, cycled deterministically.
    let request = |i: usize| match i % 3 {
        0 => PurchaseRequest::AtNcp(0.1 + (i % 29) as f64 * 0.05),
        1 => PurchaseRequest::ErrorBudget(0.5 + (i % 17) as f64 * 0.1),
        _ => PurchaseRequest::PriceBudget(5.0 + (i % 40) as f64),
    };

    const WARMUP: usize = 8;
    const MEASURED: usize = 256;

    // Pre-size everything the steady state reuses: the ledger and the
    // Sale's model buffer (filled by the warm-up buys).
    broker.reserve_ledger(WARMUP + MEASURED);
    let mut rng = seeded_rng(0x5e11);
    let mut sale = Sale {
        model: broker
            .optimal_model(ModelKind::LinearRegression)
            .expect("supported")
            .clone(),
        price: 0.0,
        ncp: 0.0,
        expected_error: 0.0,
    };
    for i in 0..WARMUP {
        broker
            .buy_listed_into(ModelKind::LinearRegression, request(i), &mut rng, &mut sale)
            .expect("warm-up buy failed");
    }

    let allocations = count_allocations(|| {
        for i in WARMUP..WARMUP + MEASURED {
            broker
                .buy_listed_into(ModelKind::LinearRegression, request(i), &mut rng, &mut sale)
                .expect("steady-state buy failed");
        }
    });
    assert_eq!(
        allocations, 0,
        "steady-state buy_listed_into performed {allocations} heap allocations over {MEASURED} buys"
    );

    // Sanity: the buys really happened and produced sane quotes.
    assert_eq!(broker.ledger().len(), WARMUP + MEASURED);
    assert!(sale.price > 0.0 && sale.ncp > 0.0);
    assert!(broker.total_revenue() > 0.0);
}

#[test]
fn steady_state_batch_path_does_not_allocate() {
    assert!(
        !mbp_obs::is_enabled(),
        "obs registry must be disabled for the allocation test"
    );

    let mut rng = seeded_rng(0xBA7C4);
    let data = mbp_data::synth::simulated1(400, 5, 0.5, &mut rng).split(0.75, &mut rng);
    let mut broker = Broker::new(data);
    broker
        .support(ModelKind::LinearRegression, 1e-6)
        .expect("training failed");
    let grid: Vec<f64> = (1..=64).map(|i| i as f64 * 0.5).collect();
    let prices: Vec<f64> = grid.iter().map(|x| 8.0 * x.sqrt()).collect();
    let pricing = PricingFunction::from_points(grid, prices).expect("arbitrage-free");
    broker
        .publish(
            ModelKind::LinearRegression,
            pricing,
            Box::new(SquareLossTransform),
        )
        .expect("listing accepted");

    // Batches mix all three request kinds and sweep many knot segments, so
    // the bin-and-scatter kernel exercises several bins per batch.
    const BATCH: usize = 32;
    let request = |i: usize| match i % 3 {
        0 => PurchaseRequest::AtNcp(0.1 + (i % 29) as f64 * 0.05),
        1 => PurchaseRequest::ErrorBudget(0.5 + (i % 17) as f64 * 0.1),
        _ => PurchaseRequest::PriceBudget(5.0 + (i % 40) as f64),
    };
    let batch =
        |b: usize| -> Vec<PurchaseRequest> { (0..BATCH).map(|i| request(b * BATCH + i)).collect() };

    const WARMUP: usize = 4;
    const MEASURED: usize = 16;

    // Pre-size the reused state: ledger capacity for every settlement, and
    // the arena's Sale slots / scratch via the warm-up batches. Request
    // buffers are built outside the measured window — the discipline under
    // test is the broker's batch path, not the caller's argument marshalling.
    broker.reserve_ledger((WARMUP + MEASURED) * BATCH);
    let batches: Vec<Vec<PurchaseRequest>> = (0..WARMUP + MEASURED).map(batch).collect();
    let mut rng = seeded_rng(0x5e12);
    let mut arena = mbp_core::market::SaleArena::new();
    for b in batches.iter().take(WARMUP) {
        broker
            .buy_batch_into(ModelKind::LinearRegression, b, &mut rng, &mut arena)
            .expect("warm-up batch failed");
    }

    let allocations = count_allocations(|| {
        for b in batches.iter().skip(WARMUP) {
            broker
                .buy_batch_into(ModelKind::LinearRegression, b, &mut rng, &mut arena)
                .expect("steady-state batch failed");
        }
    });
    assert_eq!(
        allocations, 0,
        "steady-state buy_batch_into performed {allocations} heap allocations over {MEASURED} batches of {BATCH}"
    );

    // Sanity: the batches really ran and sold.
    assert_eq!(arena.len(), BATCH);
    assert!(arena.results().all(|r| r.is_ok()));
    assert_eq!(broker.ledger().len(), (WARMUP + MEASURED) * BATCH);
    assert!(broker.total_revenue() > 0.0);
}
