//! End-to-end determinism of the parallel hot paths.
//!
//! Every parallel region in the workspace chunks its work by a fixed grain
//! that depends only on the problem size — never on the thread count — and
//! merges partial results in chunk order. Consequently:
//!
//! * order-preserving kernels (`matmul`, the chunk-seeded Gaussian noise,
//!   the sharded market simulation) are bit-identical at EVERY thread
//!   count, including 1;
//! * reassociating reductions (`gram`, loss gradients, `welfare`) are
//!   bit-identical across all multi-threaded counts, and match the
//!   sequential path within a documented 1e-12 relative tolerance (the
//!   only difference is floating-point summation order).
//!
//! `mbp_par::with_threads` pins the pool size per closure, so one process
//! covers the `MBP_THREADS=1,2,4` matrix that CI also exercises
//! process-wide.

use mbp_core::error::SquareLossTransform;
use mbp_core::market::curves::{grid, DemandCurve, DemandShape, ValueCurve, ValueShape};
use mbp_core::market::simulation::{simulate_market_sharded, SimulationConfig};
use mbp_core::market::{Broker, Seller};
use mbp_core::mechanism::{GaussianMechanism, NoiseMechanism};
use mbp_core::revenue::{solve_bv_dp, welfare, BuyerPoint};
use mbp_linalg::{Matrix, Vector};
use mbp_ml::{LogisticLoss, ModelKind, Objective};
use mbp_par::with_threads;
use mbp_randx::seeded_rng;

const THREADS: [usize; 3] = [1, 2, 4];

fn patterned_matrix(rows: usize, cols: usize) -> Matrix {
    let data: Vec<f64> = (0..rows * cols)
        .map(|i| ((i * 37 + 11) % 89) as f64 / 89.0 - 0.5)
        .collect();
    Matrix::from_vec(rows, cols, data).expect("consistent shape")
}

fn rel_close(a: f64, b: f64, tol: f64) -> bool {
    (a - b).abs() <= tol * a.abs().max(b.abs()).max(1.0)
}

#[test]
fn matmul_is_bit_identical_at_every_thread_count() {
    let a = patterned_matrix(130, 90);
    let b = patterned_matrix(90, 70);
    let runs: Vec<Vec<f64>> = THREADS
        .iter()
        .map(|&t| {
            with_threads(t, || {
                a.matmul(&b).expect("shapes agree").as_slice().to_vec()
            })
        })
        .collect();
    assert_eq!(runs[0], runs[1], "1 vs 2 threads");
    assert_eq!(runs[1], runs[2], "2 vs 4 threads");
}

#[test]
fn gram_multithreaded_runs_agree_and_match_serial_closely() {
    let m = patterned_matrix(1500, 24);
    let runs: Vec<Vec<f64>> = THREADS
        .iter()
        .map(|&t| with_threads(t, || m.gram().as_slice().to_vec()))
        .collect();
    // 2 vs 4 threads: same chunk layout, bitwise equal.
    assert_eq!(runs[1], runs[2], "2 vs 4 threads");
    // serial vs parallel: band-order reassociation only.
    for (s, p) in runs[0].iter().zip(&runs[1]) {
        assert!(rel_close(*s, *p, 1e-12), "serial {s} vs parallel {p}");
    }
}

#[test]
fn training_gradients_agree_across_thread_counts() {
    let mut rng = seeded_rng(515);
    let ds = mbp_data::synth::simulated2(4000, 8, 0.9, &mut rng);
    let loss = LogisticLoss::ridge(1e-4);
    let w = Vector::from_vec(vec![0.1; 8]);
    let runs: Vec<(Vec<f64>, f64)> = THREADS
        .iter()
        .map(|&t| {
            with_threads(t, || {
                (
                    loss.gradient(&w, &ds).as_slice().to_vec(),
                    loss.value(&w, &ds),
                )
            })
        })
        .collect();
    assert_eq!(runs[1].0, runs[2].0, "gradient 2 vs 4 threads");
    assert_eq!(runs[1].1.to_bits(), runs[2].1.to_bits(), "value 2 vs 4");
    for (s, p) in runs[0].0.iter().zip(&runs[1].0) {
        assert!(rel_close(*s, *p, 1e-12), "serial {s} vs parallel {p}");
    }
    assert!(rel_close(runs[0].1, runs[1].1, 1e-12));
}

#[test]
fn gaussian_release_is_thread_count_invariant() {
    let h = Vector::from_vec(vec![0.3; 8192]);
    let runs: Vec<Vec<f64>> = THREADS
        .iter()
        .map(|&t| {
            with_threads(t, || {
                let mut rng = seeded_rng(616);
                GaussianMechanism
                    .perturb(&h, 1.5, &mut rng)
                    .as_slice()
                    .to_vec()
            })
        })
        .collect();
    assert_eq!(runs[0], runs[1], "1 vs 2 threads");
    assert_eq!(runs[1], runs[2], "2 vs 4 threads");
}

#[test]
fn welfare_evaluation_agrees_across_thread_counts() {
    let g = grid(10.0, 100.0, 10);
    let value = ValueCurve::new(ValueShape::Concave { power: 2.0 }, 5.0, 100.0);
    let demand = DemandCurve::new(DemandShape::Peak {
        center: 0.5,
        width: 0.3,
    });
    let seed_buyers = mbp_core::market::curves::buyer_points(&g, &value, &demand).unwrap();
    let pricing = solve_bv_dp(&seed_buyers).pricing;
    let population: Vec<BuyerPoint> = (0..30_000)
        .map(|i| {
            let t = (i % 997) as f64 / 996.0;
            BuyerPoint::new(10.0 + 90.0 * t, value.value_at_unit(t), 1.0 / 30_000.0)
        })
        .collect();
    let runs: Vec<[f64; 3]> = THREADS
        .iter()
        .map(|&t| {
            with_threads(t, || {
                let w = welfare(&pricing, &population);
                [w.revenue, w.buyer_surplus, w.affordability]
            })
        })
        .collect();
    assert_eq!(runs[1], runs[2], "2 vs 4 threads");
    for (s, p) in runs[0].iter().zip(&runs[1]) {
        assert!(rel_close(*s, *p, 1e-12), "serial {s} vs parallel {p}");
    }
}

#[test]
fn sharded_market_season_is_identical_at_1_2_and_4_threads() {
    let run_season = |threads: usize| {
        with_threads(threads, || {
            let mut rng = seeded_rng(717);
            let data = mbp_data::synth::simulated1(900, 4, 0.5, &mut rng).split(0.75, &mut rng);
            let g = grid(10.0, 100.0, 10);
            let value = ValueCurve::new(ValueShape::Concave { power: 2.0 }, 5.0, 100.0);
            let demand = DemandCurve::new(DemandShape::Peak {
                center: 0.5,
                width: 0.3,
            });
            let seller = Seller::new(data.clone(), g, value, demand);
            let pricing = solve_bv_dp(&seller.buyer_population()).pricing;
            let mut broker = Broker::new(data);
            broker
                .support(ModelKind::LinearRegression, 1e-6)
                .expect("training failed");
            let out = simulate_market_sharded(
                &mut broker,
                &seller,
                ModelKind::LinearRegression,
                &pricing,
                &SquareLossTransform,
                SimulationConfig {
                    n_buyers: 2000,
                    valuation_jitter: 0.1,
                },
                818,
            )
            .expect("simulation failed");
            let ledger: Vec<u64> = broker
                .ledger()
                .iter()
                .map(|tx| tx.price.to_bits())
                .collect();
            (
                out.served,
                out.declined,
                out.realized_revenue_per_buyer.to_bits(),
                ledger,
            )
        })
    };
    let one = run_season(1);
    let two = run_season(2);
    let four = run_season(4);
    assert_eq!(one, two, "1 vs 2 threads");
    assert_eq!(two, four, "2 vs 4 threads");
}
