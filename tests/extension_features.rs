//! Integration coverage for the extensions layered on top of the paper
//! (DESIGN.md §2.9), exercised end-to-end through the public facade.

use mbp::prelude::*;
use mbp::randx::seeded_rng;

fn population() -> Vec<BuyerPoint> {
    let g = mbp::core::market::curves::grid(10.0, 100.0, 10);
    buyer_points(
        &g,
        &ValueCurve::new(ValueShape::Concave { power: 2.0 }, 10.0, 100.0),
        &DemandCurve::new(DemandShape::Uniform),
    )
    .unwrap()
}

#[test]
fn welfare_decomposes_for_every_solver_and_baseline() {
    let pts = population();
    let total: f64 = pts.iter().map(|p| p.demand * p.valuation).sum();
    let curves = vec![
        solve_bv_dp(&pts).pricing,
        solve_bv_dp_fair(&pts, 10.0).pricing,
        Baseline::Lin.pricing(&pts),
        Baseline::OptC.pricing(&pts),
    ];
    for pf in curves {
        let w = welfare(&pf, &pts);
        assert!((w.revenue - revenue(&pf, &pts)).abs() < 1e-9);
        assert!((w.buyer_surplus - buyer_surplus(&pf, &pts)).abs() < 1e-9);
        assert!(w.efficiency >= -1e-12 && w.efficiency <= 1.0 + 1e-12);
        assert!(w.revenue + w.buyer_surplus <= total + 1e-9);
    }
}

#[test]
fn fairness_pareto_frontier_is_monotone() {
    let pts = population();
    let mut prev_rev = f64::INFINITY;
    let mut prev_aff = -1.0;
    for lambda in [0.0, 2.0, 8.0, 32.0, 128.0] {
        let sol = solve_bv_dp_fair(&pts, lambda);
        let r = revenue(&sol.pricing, &pts);
        let a = affordability(&sol.pricing, &pts);
        assert!(r <= prev_rev + 1e-9, "revenue rose along lambda");
        assert!(a >= prev_aff - 1e-9, "affordability fell along lambda");
        prev_rev = r;
        prev_aff = a;
    }
}

#[test]
fn shared_broker_full_listing_flow() {
    let mut rng = seeded_rng(31);
    let data = mbp::data::synth::simulated1(600, 4, 0.5, &mut rng).split(0.75, &mut rng);
    let pts = population();
    let pricing = solve_bv_dp(&pts).pricing;
    let broker = {
        let mut b = Broker::new(data);
        b.support(ModelKind::LinearRegression, 1e-6).unwrap();
        b.publish(
            ModelKind::LinearRegression,
            pricing.clone(),
            Box::new(SquareLossTransform),
        )
        .unwrap();
        SharedBroker::new(b)
    };
    // Concurrent listed purchases from several threads.
    let handles: Vec<_> = (0..4)
        .map(|t| {
            let broker = broker.clone();
            std::thread::spawn(move || {
                let mut rng = seeded_rng(100 + t);
                broker.with_broker(|b| {
                    b.buy_listed(
                        ModelKind::LinearRegression,
                        PurchaseRequest::AtNcp(0.05),
                        &mut rng,
                    )
                    .unwrap()
                    .price
                })
            })
        })
        .collect();
    let prices: Vec<f64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    assert!(prices.windows(2).all(|w| (w[0] - w[1]).abs() < 1e-12));
    assert_eq!(broker.sales_count(), 4);
}

#[test]
fn adaptive_market_smoke() {
    let truth = population();
    let guess: Vec<f64> = truth.iter().map(|p| p.valuation * 0.5).collect();
    let mut rng = seeded_rng(32);
    let reports = run_adaptive_market(
        &truth,
        &guess,
        EpochConfig {
            epochs: 8,
            buyers_per_epoch: 800,
            learning_rate: 0.3,
            valuation_jitter: 0.05,
        },
        &mut rng,
    );
    assert_eq!(reports.len(), 8);
    assert!(reports.last().unwrap().estimate_rmse < reports[0].estimate_rmse);
}

#[test]
fn sparse_text_pipeline_end_to_end() {
    use mbp::ml::sparse::{sgd_logistic_sparse, zero_one_error_sparse, SparseSgdConfig};
    let mut rng = seeded_rng(33);
    let corpus = mbp::data::sparse::sparse_text_standin(3000, 400, 8, 0.02, &mut rng);
    let (train, test) = corpus.split(0.75, &mut rng);
    let fit = sgd_logistic_sparse(&train, SparseSgdConfig::default());
    let floor = zero_one_error_sparse(&fit.weights, &test);
    assert!(floor < 0.35, "sparse classifier failed to learn: {floor}");
    // Release noisy versions through the standard dense mechanism; error
    // degrades monotonically-ish with noise.
    let kappa = fit.weights.norm2_squared();
    let mech = GaussianMechanism;
    let reps = 30;
    let mut errs = Vec::new();
    for ncp_scale in [0.1, 1.0, 10.0] {
        let mut acc = 0.0;
        for _ in 0..reps {
            let noisy = mech.perturb(&fit.weights, kappa * ncp_scale, &mut rng);
            acc += zero_one_error_sparse(&noisy, &test);
        }
        errs.push(acc / reps as f64);
    }
    assert!(errs[0] < errs[2], "more noise should hurt: {errs:?}");
}

#[test]
fn delta_method_prices_error_budgets() {
    let mut rng = seeded_rng(34);
    let data = mbp::data::synth::simulated1(1200, 5, 0.5, &mut rng).split(0.75, &mut rng);
    let mut broker = Broker::new(data);
    let h = broker
        .support(ModelKind::LinearRegression, 1e-6)
        .unwrap()
        .weights()
        .clone();
    let test = broker.data().test.clone();
    let transform = DeltaMethodTransform::for_linear_regression(&test, &h);
    let pts = population();
    let pricing = solve_bv_dp(&pts).pricing;
    let target = transform.expected_error(0.02);
    let sale = broker
        .buy(
            ModelKind::LinearRegression,
            PurchaseRequest::ErrorBudget(target),
            &pricing,
            &transform,
            &mut rng,
        )
        .unwrap();
    assert!((sale.ncp - 0.02).abs() < 1e-9);
    assert!(sale.expected_error <= target + 1e-12);
}
