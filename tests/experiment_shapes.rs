//! Shape assertions for every reproduced table and figure: these encode
//! what "the reproduction holds" means (who wins, monotonicity, growth
//! rates), independent of absolute numbers.

use mbp_bench::experiments::{fig10, fig5, fig6, fig7, fig8, fig9, table3};
use mbp_bench::Config;

fn tiny_config() -> Config {
    Config {
        scale: 0.0005,
        reps: 60,
        max_n: 9,
        seed: 20190630,
    }
}

#[test]
fn table3_has_all_six_datasets() {
    let rows = table3(&tiny_config());
    assert_eq!(rows.len(), 6);
    let names: Vec<&str> = rows.iter().map(|r| r.name.as_str()).collect();
    assert_eq!(
        names,
        [
            "Simulated1",
            "YearMSD",
            "CASP",
            "Simulated2",
            "CovType",
            "SUSY"
        ]
    );
    for r in &rows {
        assert!(
            r.our_n1 > r.our_n2,
            "{}: split proportions inverted",
            r.name
        );
        assert!(r.our_n1 + r.our_n2 >= 20);
        assert!(r.d > 0);
    }
}

#[test]
fn fig5_shapes() {
    let rows = fig5();
    assert_eq!(rows.len(), 5);
    // (a) valuation-as-price is the only approach with arbitrage.
    assert!(rows[0].has_arbitrage);
    for r in &rows[1..] {
        assert!(!r.has_arbitrage, "{} should be arbitrage-free", r.approach);
    }
    // (d) exact beats every arbitrage-free alternative; (e) MBP is within
    // a factor 2 and close in practice.
    let exact = rows[3].revenue;
    let mbp = rows[4].revenue;
    for r in &rows[1..3] {
        assert!(r.revenue <= exact + 1e-9);
    }
    assert!(mbp <= exact + 1e-9);
    assert!(mbp >= exact / 2.0);
    assert!(mbp >= 0.9 * exact, "MBP {mbp} not close to exact {exact}");
    // Both optimal and MBP serve everyone in this instance.
    assert_eq!(rows[3].affordability, 1.0);
    assert_eq!(rows[4].affordability, 1.0);
}

#[test]
fn fig6_error_curves_decrease_in_inverse_ncp() {
    let cfg = tiny_config();
    let points = fig6(&cfg);
    // 3 regression curves + 3 classification datasets × 2 errors = 9 curves
    // of 10 points each.
    assert_eq!(points.len(), 90);
    use std::collections::BTreeMap;
    let mut curves: BTreeMap<(String, &str), Vec<(f64, f64)>> = BTreeMap::new();
    for p in &points {
        curves
            .entry((p.dataset.clone(), p.error_kind))
            .or_default()
            .push((p.inv_ncp, p.expected_error));
    }
    assert_eq!(curves.len(), 9);
    for ((ds, err), mut pts) in curves {
        pts.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        // Non-increasing in 1/NCP, with a substantial overall drop.
        for w in pts.windows(2) {
            assert!(
                w[1].1 <= w[0].1 + 1e-9,
                "{ds}/{err}: error increased along 1/NCP: {pts:?}"
            );
        }
        assert!(pts[0].1 > pts[9].1, "{ds}/{err}: curve is flat: {pts:?}");
    }
}

fn assert_mbp_dominates(scenarios: &[mbp_bench::experiments::RevenueScenario]) {
    for s in scenarios {
        let mbp = &s.outcomes[0];
        assert_eq!(mbp.method, "MBP");
        for o in &s.outcomes[1..] {
            assert!(
                mbp.revenue >= o.revenue - 1e-9,
                "{}: {} revenue {} beat MBP {}",
                s.label,
                o.method,
                o.revenue,
                mbp.revenue
            );
        }
        // MBP's affordability is at least that of every baseline except
        // possibly MedC (which explicitly optimizes affordability).
        for o in &s.outcomes[1..] {
            if o.method != "MedC" {
                assert!(
                    mbp.affordability >= o.affordability - 1e-9,
                    "{}: {} affordability {} beat MBP {}",
                    s.label,
                    o.method,
                    o.affordability,
                    mbp.affordability
                );
            }
        }
    }
}

#[test]
fn fig7_mbp_dominates_baselines() {
    let scenarios = fig7(&tiny_config());
    assert_eq!(scenarios.len(), 2);
    assert_mbp_dominates(&scenarios);
    // Concave value curves are subadditive, so MBP matches the curve where
    // it serves buyers and extracts (weakly) more than in the convex panel
    // relative to the total surplus.
    let concave = &scenarios[1];
    let total_surplus: f64 = concave.buyers.iter().map(|b| b.demand * b.valuation).sum();
    let mbp_rev = concave.outcomes[0].revenue;
    assert!(
        mbp_rev > 0.85 * total_surplus,
        "concave panel: MBP {mbp_rev} should capture most of surplus {total_surplus}"
    );
}

#[test]
fn fig8_mbp_dominates_baselines() {
    let scenarios = fig8(&tiny_config());
    assert_eq!(scenarios.len(), 2);
    assert_mbp_dominates(&scenarios);
}

fn assert_runtime_shapes(scenarios: &[mbp_bench::experiments::RuntimeScenario], max_n: usize) {
    for s in scenarios {
        // Per n: MILP ≥ MBP ≥ baselines in revenue; MILP within 2× of MBP.
        let mut by_n: std::collections::BTreeMap<usize, Vec<&mbp_bench::experiments::RuntimeRow>> =
            Default::default();
        for r in &s.rows {
            by_n.entry(r.n).or_default().push(r);
        }
        for (n, rows) in &by_n {
            let get = |m: &str| rows.iter().find(|r| r.method == m).unwrap();
            let mbp = get("MBP");
            let milp = get("MILP");
            assert!(
                milp.revenue >= mbp.revenue - 1e-6,
                "{} n={n}: MILP {} < MBP {}",
                s.label,
                milp.revenue,
                mbp.revenue
            );
            assert!(
                mbp.revenue >= milp.revenue / 2.0 - 1e-6,
                "{} n={n}: factor 2 violated",
                s.label
            );
            for b in ["Lin", "MaxC", "MedC", "OptC"] {
                assert!(
                    mbp.revenue >= get(b).revenue - 1e-6,
                    "{} n={n}: {b} beat MBP",
                    s.label
                );
            }
        }
        // Exponential-vs-polynomial: the MILP runtime at max_n dwarfs its
        // runtime at small n by a much larger factor than MBP's.
        let milp_first = s
            .rows
            .iter()
            .find(|r| r.n == 3 && r.method == "MILP")
            .unwrap()
            .runtime_s;
        let milp_last = s
            .rows
            .iter()
            .find(|r| r.n == max_n && r.method == "MILP")
            .unwrap()
            .runtime_s;
        let mbp_last = s
            .rows
            .iter()
            .find(|r| r.n == max_n && r.method == "MBP")
            .unwrap()
            .runtime_s;
        assert!(
            milp_last > 4.0 * milp_first,
            "{}: MILP runtime did not grow ({milp_first} -> {milp_last})",
            s.label
        );
        assert!(
            milp_last > 3.0 * mbp_last,
            "{}: MILP ({milp_last}) should be much slower than MBP ({mbp_last}) at n = {max_n}",
            s.label
        );
    }
}

#[test]
fn fairness_sweep_traces_a_pareto_frontier() {
    let rows = mbp_bench::experiments::fairness_sweep(&tiny_config());
    assert!(rows.len() >= 5);
    for w in rows.windows(2) {
        assert!(
            w[1].revenue <= w[0].revenue + 1e-9,
            "revenue rose with lambda"
        );
        assert!(
            w[1].affordability >= w[0].affordability - 1e-9,
            "affordability fell with lambda"
        );
    }
    let first = rows.first().unwrap();
    let last = rows.last().unwrap();
    assert!(last.affordability > first.affordability);
    assert!(last.revenue < first.revenue);
}

#[test]
fn simulation_realizes_predictions() {
    let rows = mbp_bench::experiments::simulation_experiment(&tiny_config());
    assert_eq!(rows.len(), 2);
    for r in &rows {
        let rel = (r.realized_revenue - r.predicted_revenue).abs() / r.predicted_revenue.max(1e-9);
        assert!(
            rel < 0.08,
            "{}: predicted {} vs realized {}",
            r.label,
            r.predicted_revenue,
            r.realized_revenue
        );
        let gap = (r.realized_affordability - r.predicted_affordability).abs();
        assert!(gap < 0.05, "{}: affordability gap {gap}", r.label);
    }
    // MBP (first row) beats the constant-price baseline in realized revenue.
    assert!(rows[0].realized_revenue > rows[1].realized_revenue);
}

#[test]
fn adaptive_pricing_learns() {
    let (rows, oracle) = mbp_bench::experiments::adaptive_experiment(&tiny_config());
    assert!(rows.len() >= 10);
    let first = rows.first().unwrap();
    let late = &rows[rows.len() - 3..];
    let late_rev: f64 = late.iter().map(|r| r.revenue_per_buyer).sum::<f64>() / 3.0;
    assert!(late_rev > first.revenue_per_buyer, "no revenue improvement");
    assert!(
        late_rev > 0.6 * oracle,
        "late revenue {late_rev} vs oracle {oracle}"
    );
    assert!(rows.last().unwrap().estimate_rmse < 0.5 * first.estimate_rmse);
}

#[test]
fn transform_ablation_shapes() {
    let rows = mbp_bench::experiments::transform_ablation(&tiny_config());
    assert!(rows.len() >= 5);
    // Monte-Carlo truth grows with noise.
    for w in rows.windows(2) {
        assert!(w[1].monte_carlo > w[0].monte_carlo);
    }
    // Delta method is accurate at small noise and strictly worse at the
    // largest noise level (it is a second-order expansion).
    let rel = |r: &mbp_bench::experiments::TransformRow| {
        (r.delta_method - r.monte_carlo).abs() / r.monte_carlo
    };
    assert!(
        rel(&rows[0]) < 0.01,
        "small-noise rel err {}",
        rel(&rows[0])
    );
    assert!(rel(rows.last().unwrap()) > rel(&rows[0]));
    // The empirical transform tracks truth everywhere within MC noise.
    for r in &rows {
        let e = (r.empirical - r.monte_carlo).abs() / r.monte_carlo;
        assert!(e < 0.1, "empirical rel err {e} at {}", r.relative_ncp);
    }
}

#[test]
fn fig9_runtime_and_revenue_shapes() {
    let cfg = tiny_config();
    let scenarios = fig9(&cfg);
    assert_eq!(scenarios.len(), 2);
    assert_runtime_shapes(&scenarios, cfg.max_n);
}

#[test]
fn fig10_runtime_and_revenue_shapes() {
    let cfg = tiny_config();
    let scenarios = fig10(&cfg);
    assert_eq!(scenarios.len(), 2);
    assert_runtime_shapes(&scenarios, cfg.max_n);
}
