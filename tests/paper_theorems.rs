//! Executable checks of the paper's formal results, run end-to-end against
//! the real implementation (not mocks): Lemma 3, Theorem 4, Theorem 5's
//! attack and its converse, Theorem 7's reduction, Lemma 8/9 and
//! Propositions 2–3 approximation guarantees, and Theorem 10 optimality.

use mbp::prelude::*;
use mbp::randx::seeded_rng;
use proptest::prelude::*;

/// Lemma 3: the Gaussian mechanism's model-space square loss satisfies
/// `E[ε_s(ĥ_δ)] = δ` for any model and dimension.
#[test]
fn lemma3_expected_square_loss_equals_ncp() {
    let mut rng = seeded_rng(31);
    for dim in [1usize, 4, 16] {
        let h: mbp::linalg::Vector = (0..dim).map(|i| (i as f64) - 1.5).collect();
        for &ncp in &[0.25, 1.0, 4.0] {
            let reps = 30_000;
            let mut acc = 0.0;
            for _ in 0..reps {
                let released = GaussianMechanism.perturb(&h, ncp, &mut rng);
                acc += released.sub(&h).unwrap().norm2_squared();
            }
            let mean = acc / reps as f64;
            assert!(
                (mean - ncp).abs() < 0.05 * ncp,
                "dim {dim}, ncp {ncp}: measured {mean}"
            );
        }
    }
}

/// Theorem 4: for convex test errors, expected error is monotone in δ —
/// verified on real trained models for square and logistic losses.
#[test]
fn theorem4_error_monotone_in_ncp() {
    let mut rng = seeded_rng(32);
    let reg = mbp::data::synth::simulated1(1500, 5, 0.5, &mut rng).split(0.75, &mut rng);
    let h_reg = mbp::ml::train::ridge_closed_form(&reg.train, 1e-6).unwrap();
    let clf = mbp::data::synth::simulated2(1500, 5, 0.92, &mut rng).split(0.75, &mut rng);
    let h_clf = mbp::ml::train::newton_logistic(
        &mbp::ml::LogisticLoss::ridge(1e-3),
        &clf.train,
        mbp::ml::train::TrainConfig::default(),
    )
    .weights;

    let grid: Vec<f64> = (1..=6).map(|i| 0.5 * i as f64).collect();
    for (h, eval, err) in [
        (&h_reg, &reg.test, TestError::SquareLoss),
        (&h_clf, &clf.test, TestError::LogisticLoss),
    ] {
        let t = EmpiricalTransform::estimate(&GaussianMechanism, h, eval, err, &grid, 600, 77);
        let errs: Vec<f64> = t.curve().map(|(_, e)| e).collect();
        assert!(
            errs.windows(2).all(|w| w[0] <= w[1]),
            "{}: {errs:?}",
            err.name()
        );
        // Strictly increasing overall (not a flat artifact of PAVA).
        assert!(errs[errs.len() - 1] > errs[0] * 1.05, "{errs:?}");
    }
}

/// Theorem 5 (necessity direction): if the price of the combined precision
/// exceeds the bundle's total, the attack strictly profits — and the
/// combined instance really achieves the promised accuracy.
#[test]
fn theorem5_attack_realizes_combined_precision() {
    let mut rng = seeded_rng(33);
    let h: mbp::linalg::Vector = vec![2.0, -1.0, 0.5].into();
    // Buy k = 4 instances at δ = 2 → combined δ = 0.5.
    let reps = 20_000;
    let mut acc = 0.0;
    for _ in 0..reps {
        let models: Vec<_> = (0..4)
            .map(|_| GaussianMechanism.perturb(&h, 2.0, &mut rng))
            .collect();
        let (combined, ncp) = combine_inverse_variance(&models, &[2.0; 4]);
        assert!((ncp - 0.5).abs() < 1e-12);
        acc += combined.sub(&h).unwrap().norm2_squared();
    }
    let mean = acc / reps as f64;
    assert!((mean - 0.5).abs() < 0.02, "measured {mean}");
}

/// Theorem 5 (sufficiency direction, empirically): subadditive + monotone
/// pricing admits no profitable bundle on the audit lattice.
#[test]
fn theorem5_subadditive_prices_audit_clean() {
    let grid: Vec<f64> = (1..=12).map(|i| i as f64).collect();
    // A family of monotone subadditive shapes.
    let shapes: Vec<Box<dyn Fn(f64) -> f64>> = vec![
        Box::new(|x| 5.0 * x),                    // linear
        Box::new(|x: f64| 20.0 * x.sqrt()),       // concave
        Box::new(|x: f64| 10.0 * (1.0 + x.ln())), // log-like
        Box::new(|x| 30.0 + 2.0 * x),             // affine with intercept
    ];
    for f in shapes {
        let prices: Vec<f64> = grid.iter().map(|&x| f(x)).collect();
        let pf = PricingFunction::from_points(grid.clone(), prices).unwrap();
        let report = mbp::core::arbitrage::audit(&pf, &grid, 12, 1e-7);
        assert!(report.is_clean(), "{report:?}");
    }
}

/// Theorem 7: the subset-sum reduction is an exact equivalence (swept over
/// a family of instances in the optim crate; here we spot-check through the
/// public facade to make sure the wiring survives re-export).
#[test]
fn theorem7_reduction_facade() {
    use mbp::optim::subset_sum::check_reduction;
    assert_eq!(check_reduction(&[3, 5], 7), (false, true));
    assert_eq!(check_reduction(&[3, 5], 8), (true, false));
}

/// Lemma 8 + Proposition 3 + Theorem 10 on random instances: the DP output
/// is always feasible/arbitrage-free, never beats the exact optimum, and
/// never falls below half of it.
#[test]
fn proposition3_factor_two_on_random_instances() {
    let mut rng = seeded_rng(34);
    use rand::Rng;
    for trial in 0..40 {
        let n = rng.gen_range(2..8usize);
        // Integer ascending grid, monotone valuations.
        let mut a = 0u64;
        let mut points = Vec::new();
        let mut v = 0.0;
        for _ in 0..n {
            a += rng.gen_range(1..6u64);
            v += rng.gen_range(0.0..30.0);
            points.push(BuyerPoint::new(a as f64, v, rng.gen_range(0.1..2.0)));
        }
        let dp = solve_bv_dp(&points);
        let exact = solve_bv_exact(&points, 1.0);
        assert!(
            dp.objective <= exact.objective + 1e-6,
            "trial {trial}: DP {} > exact {}",
            dp.objective,
            exact.objective
        );
        assert!(
            dp.objective >= exact.objective / 2.0 - 1e-6,
            "trial {trial}: factor-2 violated ({} < {}/2)",
            dp.objective,
            exact.objective
        );
        // Lemma 8: audit the DP pricing.
        let grid: Vec<f64> = points.iter().map(|p| p.a).collect();
        let report = mbp::core::arbitrage::audit(&dp.pricing, &grid, 4, 1e-6);
        assert!(report.is_clean(), "trial {trial}: {report:?}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Property: the DP never produces a price vector outside the relaxed
    /// cone and always weakly beats every baseline.
    #[test]
    fn dp_dominates_baselines(
        raw in prop::collection::vec((1.0..50.0f64, 0.1..3.0f64), 2..9)
    ) {
        // Build ascending grid and monotone valuations from the raw draws.
        let mut a = 0.0;
        let mut v = 0.0;
        let mut points = Vec::new();
        for (da, b) in &raw {
            a += da + 1.0;
            v += da * 2.0;
            points.push(BuyerPoint::new(a, v, *b));
        }
        let dp = solve_bv_dp(&points);
        for baseline in Baseline::ALL {
            let pf = baseline.pricing(&points);
            let r = revenue(&pf, &points);
            prop_assert!(
                dp.objective >= r - 1e-6,
                "{} beat DP: {} > {}", baseline.name(), r, dp.objective
            );
        }
    }

    /// Property: price interpolation solvers always return feasible curves,
    /// and on already-feasible targets they are exact.
    #[test]
    fn interpolation_solvers_feasible(
        raw in prop::collection::vec((0.5..10.0f64, 0.0..40.0f64), 2..8)
    ) {
        let mut a = 0.0;
        let mut pts = Vec::new();
        for (da, p) in &raw {
            a += da;
            pts.push(PricePoint::new(a, *p));
        }
        let l2 = solve_pi_l2(&pts);
        let l1 = solve_pi_l1(&pts);
        let grid: Vec<f64> = pts.iter().map(|p| p.a).collect();
        for sol in [l2, l1] {
            prop_assert!(mbp::optim::isotonic::is_relaxed_feasible(
                sol.pricing.prices(), &grid, 1e-6
            ));
        }
    }
}
