//! The verification layer, end-to-end: the mbp-testkit attack engine,
//! differential oracles, and schedule explorer run against *real*
//! optimizer output and the real concurrent broker — the acceptance
//! checks of the testkit PR.
//!
//! Theorems 5/6 say optimizer-emitted curves are arbitrage-free; the
//! attack engine gets 10^5 randomized trials per curve family to disagree.
//! The differential oracle holds the scan path, the compiled table, and
//! the Kahan-summed reference evaluator to 1e-12 relative agreement. The
//! schedule explorer samples 10^4 interleavings of concurrent broker
//! operations at 2–4 virtual threads and checks linearizability against a
//! single-threaded reference.

use mbp::prelude::*;
use mbp::randx::seeded_rng;
use mbp_testkit::{
    attack_curve, attack_error_space, check_error_space, check_pricing, AttackConfig, Corpus,
    OracleConfig, ScheduleConfig,
};
use rand::Rng;

/// Buyer points on an ascending precision grid with seeded valuations —
/// the `T_bv` instance family.
fn buyer_instance(seed: u64, n: usize) -> Vec<BuyerPoint> {
    let mut rng = seeded_rng(seed);
    let mut points = Vec::with_capacity(n);
    let mut valuation: f64 = 0.0;
    for i in 0..n {
        let a = 0.5 + i as f64 * 0.45;
        valuation += rng.gen_range(0.0..30.0);
        points.push(BuyerPoint::new(a, valuation, 1.0 / n as f64));
    }
    points
}

/// Price targets for the interpolation solvers — the `T²_pi`/`T∞_pi`
/// instance family (deliberately non-monotone targets, so the solvers
/// must actually project).
fn price_instance(seed: u64, n: usize) -> Vec<PricePoint> {
    let mut rng = seeded_rng(seed);
    (0..n)
        .map(|i| PricePoint::new(0.5 + i as f64 * 0.4, rng.gen_range(1.0..40.0)))
        .collect()
}

/// Every optimizer-emitted curve family survives 10^5 attack trials:
/// `T_bv` (buyer-valuation DP, Theorem 10), `T²_pi` (L2 price
/// interpolation), and `T∞_pi` (L∞ price interpolation).
#[test]
fn optimizer_emitted_curves_survive_1e5_attack_trials() {
    let solutions = [
        ("T_bv", solve_bv_dp(&buyer_instance(41, 24)).pricing),
        ("T2_pi", solve_pi_l2(&price_instance(42, 24)).pricing),
        ("Tinf_pi", solve_pi_l1(&price_instance(43, 24)).pricing),
    ];
    for (name, pricing) in &solutions {
        let cfg = AttackConfig {
            seed: 0xbead + pricing.grid().len() as u64,
            trials: 100_000,
            ..AttackConfig::default()
        };
        let report = attack_curve(pricing, &cfg);
        assert_eq!(report.trials, 100_000, "{name}: full budget must run");
        assert!(
            report.is_clean(),
            "{name}: optimizer curve is exploitable: {:?}",
            report.violations
        );
        // The persisted regression corpus replays clean too.
        let corpus = Corpus::load(&Corpus::default_dir().join("pricing.txt")).expect("corpus");
        assert!(
            corpus.replay(pricing, 1e-9).is_empty(),
            "{name}: corpus regression"
        );
    }
}

/// The ε-space attack (through the error transform φ) also comes up empty
/// against DP output.
#[test]
fn error_space_attack_is_clean_on_dp_output() {
    let pricing = solve_bv_dp(&buyer_instance(44, 16)).pricing;
    let report = attack_error_space(
        &pricing,
        &SquareLossTransform,
        &AttackConfig::quick(0xe5_ace),
    );
    assert!(report.is_clean(), "{:?}", report.violations);
}

/// Differential oracle: scan path, compiled table, and the high-precision
/// reference evaluator agree to 1e-12 (relative) on every optimizer
/// curve, for both forward pricing and budget inversion.
#[test]
fn differential_oracle_is_clean_on_optimizer_curves() {
    let curves = [
        solve_bv_dp(&buyer_instance(51, 24)).pricing,
        solve_pi_l2(&price_instance(52, 24)).pricing,
        solve_pi_l1(&price_instance(53, 24)).pricing,
    ];
    for pricing in &curves {
        let report = check_pricing(pricing, &OracleConfig::default());
        assert!(
            report.is_clean(),
            "evaluators diverged (max {:.3e}): {:?}",
            report.max_divergence,
            report.divergences
        );
        let eps = check_error_space(pricing, &SquareLossTransform, &OracleConfig::default());
        assert!(eps.is_clean(), "{:?}", eps.divergences);
    }
}

/// Schedule explorer: 10^4 sampled interleavings of concurrent
/// buy/quote/re-publish/reconcile operations at 2–4 virtual threads all
/// linearize against the single-threaded reference broker.
#[test]
fn schedule_explorer_linearizes_1e4_interleavings() {
    let report = mbp_testkit::explore(&ScheduleConfig {
        seed: 0x0011_ea12,
        interleavings: 10_000,
        threads: 4,
        ops_per_thread: 3,
        faults: false,
    });
    assert_eq!(report.explored, 10_000);
    assert!(
        report.is_linearizable(),
        "{}",
        report.failures.first().expect("failure present")
    );
}

/// Fault-injected schedules (poisoned stripe, mid-publish reader probes)
/// also linearize, and any failure would reproduce from its printed case
/// seed alone.
#[test]
fn fault_injected_schedules_linearize_and_replay_from_seed() {
    let report = mbp_testkit::explore(&ScheduleConfig {
        seed: 0xfa_017,
        interleavings: 500,
        threads: 3,
        ops_per_thread: 5,
        faults: true,
    });
    assert!(
        report.is_linearizable(),
        "{}",
        report.failures.first().expect("failure present")
    );
    // Replay determinism: the documented reproduction path is the seed.
    let a = mbp_testkit::run_case(0xca5e, 3, 5, true).expect("case linearizes");
    let b = mbp_testkit::run_case(0xca5e, 3, 5, true).expect("case linearizes");
    assert_eq!(a, b);
}
