//! End-to-end marketplace integration tests spanning every crate:
//! data generation → training → pricing → purchase → arbitrage audit.

use mbp::prelude::*;
use mbp::randx::seeded_rng;

fn listed_seller(seed: u64) -> Seller {
    let mut rng = seeded_rng(seed);
    let data = mbp::data::synth::simulated1(2000, 6, 0.5, &mut rng).split(0.75, &mut rng);
    Seller::new(
        data,
        mbp::core::market::curves::grid(10.0, 100.0, 10),
        ValueCurve::new(ValueShape::Concave { power: 2.0 }, 5.0, 150.0),
        DemandCurve::new(DemandShape::Uniform),
    )
}

#[test]
fn full_regression_market_roundtrip() {
    let seller = listed_seller(1);
    let mut broker = Broker::new(seller.data.clone());
    broker.support(ModelKind::LinearRegression, 1e-6).unwrap();
    let sol = broker.price_from_research(&seller);
    assert!(sol.objective > 0.0);

    // The derived pricing is arbitrage-free.
    let report = mbp::core::arbitrage::audit(&sol.pricing, &seller.grid, 10, 1e-6);
    assert!(report.is_clean(), "{report:?}");

    // All three purchase modes succeed and are consistent.
    let mut rng = seeded_rng(2);
    let t = SquareLossTransform;
    let s1 = broker
        .buy(
            ModelKind::LinearRegression,
            PurchaseRequest::AtNcp(0.05),
            &sol.pricing,
            &t,
            &mut rng,
        )
        .unwrap();
    assert_eq!(s1.ncp, 0.05);
    assert!((s1.price - sol.pricing.price_for_ncp(0.05)).abs() < 1e-12);

    let s2 = broker
        .buy(
            ModelKind::LinearRegression,
            PurchaseRequest::ErrorBudget(0.08),
            &sol.pricing,
            &t,
            &mut rng,
        )
        .unwrap();
    assert!(s2.expected_error <= 0.08 + 1e-12);

    let budget = s1.price;
    let s3 = broker
        .buy(
            ModelKind::LinearRegression,
            PurchaseRequest::PriceBudget(budget),
            &sol.pricing,
            &t,
            &mut rng,
        )
        .unwrap();
    assert!(s3.price <= budget + 1e-9);
    // With the same budget, the accuracy must be at least s1's.
    assert!(s3.ncp <= s1.ncp + 1e-9);

    assert_eq!(broker.ledger().len(), 3);
    let total = s1.price + s2.price + s3.price;
    assert!((broker.total_revenue() - total).abs() < 1e-9);
}

#[test]
fn all_three_menu_models_are_sellable() {
    let mut rng = seeded_rng(3);
    // A classification dataset works for SVM and logistic; a regression one
    // for least squares.
    let clf = mbp::data::synth::simulated2(1200, 5, 0.92, &mut rng).split(0.75, &mut rng);
    let reg = mbp::data::synth::simulated1(1200, 5, 0.5, &mut rng).split(0.75, &mut rng);
    let grid: Vec<f64> = (1..=8).map(|i| i as f64).collect();
    let pricing =
        PricingFunction::from_points(grid.clone(), grid.iter().map(|x| 10.0 * x.sqrt()).collect())
            .unwrap();

    for (data, kind) in [
        (reg, ModelKind::LinearRegression),
        (clf.clone(), ModelKind::LogisticRegression),
        (clf, ModelKind::LinearSvm),
    ] {
        let mut broker = Broker::new(data);
        broker.support(kind, 1e-3).unwrap();
        let sale = broker
            .buy(
                kind,
                PurchaseRequest::AtNcp(0.5),
                &pricing,
                &SquareLossTransform,
                &mut rng,
            )
            .unwrap_or_else(|e| panic!("{kind:?}: {e}"));
        assert_eq!(sale.model.kind(), kind);
        assert!(sale.model.weights().is_finite());
    }
}

#[test]
fn repeated_sales_have_independent_noise() {
    let seller = listed_seller(4);
    let mut broker = Broker::new(seller.data.clone());
    broker.support(ModelKind::LinearRegression, 1e-6).unwrap();
    let pricing = broker.price_from_research(&seller).pricing;
    let mut rng = seeded_rng(5);
    let a = broker
        .buy(
            ModelKind::LinearRegression,
            PurchaseRequest::AtNcp(0.5),
            &pricing,
            &SquareLossTransform,
            &mut rng,
        )
        .unwrap();
    let b = broker
        .buy(
            ModelKind::LinearRegression,
            PurchaseRequest::AtNcp(0.5),
            &pricing,
            &SquareLossTransform,
            &mut rng,
        )
        .unwrap();
    // Same price, different noise realizations.
    assert_eq!(a.price, b.price);
    assert_ne!(a.model.weights(), b.model.weights());
}

#[test]
fn cheaper_always_noisier_along_the_curve() {
    let seller = listed_seller(6);
    let mut broker = Broker::new(seller.data.clone());
    broker.support(ModelKind::LinearRegression, 1e-6).unwrap();
    let pricing = broker.price_from_research(&seller).pricing;
    let ncps: Vec<f64> = (1..=30).map(|i| 0.01 * i as f64).collect();
    let curve = broker
        .price_error_curve(
            ModelKind::LinearRegression,
            &SquareLossTransform,
            &pricing,
            &ncps,
        )
        .unwrap();
    assert!(curve.is_well_formed());
}

#[test]
fn csv_ingested_dataset_flows_through_market() {
    // Build a dataset, write it to CSV, read it back, sell models on it.
    let mut rng = seeded_rng(7);
    let ds = mbp::data::synth::simulated1(400, 3, 0.2, &mut rng);
    let mut buf = Vec::new();
    mbp::data::csv::write_dataset(&ds, &mut buf).unwrap();
    let back = mbp::data::csv::read_dataset(&buf[..]).unwrap();
    assert_eq!(back.n(), 400);
    let tt = back.split(0.75, &mut rng);
    let mut broker = Broker::new(tt);
    broker.support(ModelKind::LinearRegression, 1e-6).unwrap();
    let grid: Vec<f64> = vec![1.0, 2.0, 4.0];
    let pricing = PricingFunction::from_points(grid, vec![5.0, 8.0, 12.0]).unwrap();
    let sale = broker
        .buy(
            ModelKind::LinearRegression,
            PurchaseRequest::AtNcp(1.0),
            &pricing,
            &SquareLossTransform,
            &mut rng,
        )
        .unwrap();
    assert!(sale.model.weights().is_finite());
}

#[test]
fn mechanism_swap_does_not_change_prices() {
    // Uniform and Laplace mechanisms are calibrated to the same NCP
    // semantics, so the market prices identically under any of them.
    let seller = listed_seller(8);
    let pricing = {
        let broker = Broker::new(seller.data.clone());
        broker.price_from_research(&seller).pricing
    };
    let mut rng = seeded_rng(9);
    for mech in [
        Box::new(LaplaceMechanism) as Box<dyn NoiseMechanism>,
        Box::new(UniformAdditiveMechanism),
        Box::new(UniformMultiplicativeMechanism),
    ] {
        let mut broker = Broker::with_mechanism(seller.data.clone(), mech);
        broker.support(ModelKind::LinearRegression, 1e-6).unwrap();
        let sale = broker
            .buy(
                ModelKind::LinearRegression,
                PurchaseRequest::AtNcp(0.1),
                &pricing,
                &SquareLossTransform,
                &mut rng,
            )
            .unwrap();
        assert!((sale.price - pricing.price_for_ncp(0.1)).abs() < 1e-12);
    }
}
