//! # mbp — Model-Based Pricing for Machine Learning in a Data Marketplace
//!
//! A complete, from-scratch Rust implementation of
//! *Chen, Koutris, Kumar — "Towards Model-based Pricing for Machine Learning
//! in a Data Marketplace" (SIGMOD 2019)*, including every substrate the
//! paper relies on: dense linear algebra, distribution sampling, dataset
//! generation, GLM/SVM training, convex and combinatorial optimization, and
//! the marketplace itself.
//!
//! This facade crate re-exports the workspace's public API under one roof:
//!
//! ```
//! use mbp::prelude::*;
//! use mbp::randx::seeded_rng;
//!
//! // A seller lists a dataset with market research curves.
//! let mut rng = seeded_rng(42);
//! let data = mbp::data::synth::simulated1(500, 5, 0.5, &mut rng)
//!     .split(0.75, &mut rng);
//!
//! // The broker trains the optimal model once and derives arbitrage-free,
//! // revenue-maximizing prices from the research curves.
//! let seller = Seller::new(
//!     data,
//!     mbp::core::market::curves::grid(10.0, 100.0, 10),
//!     ValueCurve::new(ValueShape::Concave { power: 2.0 }, 0.0, 100.0),
//!     DemandCurve::new(DemandShape::Uniform),
//! );
//! let mut broker = Broker::new(seller.data.clone());
//! broker.support(ModelKind::LinearRegression, 0.0).unwrap();
//! let pricing = broker.price_from_research(&seller).pricing;
//!
//! // A buyer purchases the most accurate instance within budget.
//! let sale = broker
//!     .buy(
//!         ModelKind::LinearRegression,
//!         PurchaseRequest::PriceBudget(40.0),
//!         &pricing,
//!         &SquareLossTransform,
//!         &mut rng,
//!     )
//!     .unwrap();
//! assert!(sale.price <= 40.0);
//! ```

pub use mbp_core as core;
pub use mbp_data as data;
pub use mbp_linalg as linalg;
pub use mbp_ml as ml;
pub use mbp_obs as obs;
pub use mbp_optim as optim;
pub use mbp_randx as randx;

/// One-stop imports for building a marketplace.
pub mod prelude {
    pub use mbp_core::arbitrage::{audit, audit_k_bounded, combine_inverse_variance, AuditReport};
    pub use mbp_core::error::{
        DeltaMethodTransform, EmpiricalTransform, ErrorTransform, LinRegSquareTransform,
        SquareLossTransform,
    };
    pub use mbp_core::market::concurrent::SharedBroker;
    pub use mbp_core::market::curves::{
        buyer_points, grid, DemandCurve, DemandShape, ValueCurve, ValueShape,
    };
    pub use mbp_core::market::epochs::{run_adaptive_market, EpochConfig, EpochReport};
    pub use mbp_core::market::simulation::{simulate_market, SimulationConfig, SimulationOutcome};
    pub use mbp_core::market::{
        Broker, Buyer, MarketError, PriceErrorCurve, PurchaseRequest, Sale, Seller,
    };
    pub use mbp_core::mechanism::{
        GaussianMechanism, LaplaceMechanism, NoiseMechanism, UniformAdditiveMechanism,
        UniformMultiplicativeMechanism,
    };
    pub use mbp_core::pricing::{ErrorPricedView, PricingFunction};
    pub use mbp_core::revenue::{
        affordability, buyer_surplus, revenue, solve_bv_dp, solve_bv_dp_fair, solve_bv_exact,
        solve_pi_l1, solve_pi_l2, solve_separable_concave, welfare, Baseline, BuyerPoint,
        MarketWelfare, PricePoint,
    };
    pub use mbp_data::{Dataset, TrainTest};
    pub use mbp_ml::metrics::TestError;
    pub use mbp_ml::{LinearModel, ModelKind};
}
