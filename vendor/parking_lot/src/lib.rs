//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind the `parking_lot` API the workspace
//! uses: infallible `lock()` / `read()` / `write()` (poisoning is ignored —
//! matching parking_lot, which has no poisoning) and non-blocking
//! `try_lock()` variants returning `Option`.

#![allow(clippy::all)]

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{
    Mutex as StdMutex, MutexGuard as StdMutexGuard, RwLock as StdRwLock,
    RwLockReadGuard as StdReadGuard, RwLockWriteGuard as StdWriteGuard,
};

/// A mutual-exclusion lock with an infallible `lock()`.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

/// RAII guard for [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: StdMutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: StdMutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Never panics on a
    /// poisoned lock — the poison flag is cleared, like parking_lot.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let inner = match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        MutexGuard { inner }
    }

    /// Attempts the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: p.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

impl<'a, T: ?Sized> Deref for MutexGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<'a, T: ?Sized> DerefMut for MutexGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// A reader–writer lock with infallible `read()`/`write()`.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: StdRwLock<T>,
}

/// RAII guard for [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: StdReadGuard<'a, T>,
}

/// RAII guard for [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: StdWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: StdRwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let inner = match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        RwLockReadGuard { inner }
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let inner = match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        RwLockWriteGuard { inner }
    }

    /// Attempts a shared read guard without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(RwLockReadGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(RwLockReadGuard {
                inner: p.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts an exclusive write guard without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(RwLockWriteGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(RwLockWriteGuard {
                inner: p.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("RwLock { .. }")
    }
}

impl<'a, T: ?Sized> Deref for RwLockReadGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<'a, T: ?Sized> Deref for RwLockWriteGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<'a, T: ?Sized> DerefMut for RwLockWriteGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_mutual_exclusion() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = m.clone();
                thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }

    #[test]
    fn try_lock_reports_contention() {
        let m = Mutex::new(1);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(5);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a + *b, 10);
        }
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }

    #[test]
    fn rwlock_try_variants_report_contention() {
        let l = RwLock::new(3);
        {
            let w = l.write();
            assert!(l.try_read().is_none());
            assert!(l.try_write().is_none());
            drop(w);
        }
        {
            let r = l.read();
            assert!(l.try_read().is_some());
            assert!(l.try_write().is_none());
            drop(r);
        }
        assert!(l.try_write().is_some());
    }
}
