//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no crates.io access, so this vendored crate
//! re-implements exactly the surface the workspace uses: [`RngCore`],
//! [`SeedableRng::seed_from_u64`], the [`Rng`] extension trait
//! (`gen`, `gen_range`, `gen_bool`), [`rngs::StdRng`] (a deterministic,
//! portable xoshiro256++ generator seeded through SplitMix64), and
//! [`seq::SliceRandom::shuffle`]. Distribution sampling beyond uniform
//! ranges lives in `mbp-randx`, not here.
//!
//! Determinism contract: for a fixed seed the byte stream is stable across
//! platforms and releases of this stub — experiment outputs depend on it.

#![allow(clippy::all)]

use std::ops::Range;

/// Core random-number source: 32/64-bit words and byte fills.
pub trait RngCore {
    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Seedable construction.
pub trait SeedableRng: Sized {
    /// Deterministically builds the generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly from a half-open range.
pub trait SampleUniform: Sized + PartialOrd {
    /// Draws uniformly from `[lo, hi)`.
    fn sample_range<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

#[inline]
fn unit_f64(word: u64) -> f64 {
    // 53 uniform mantissa bits in [0, 1).
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
        debug_assert!(lo < hi, "gen_range requires lo < hi");
        let u = unit_f64(rng.next_u64());
        let v = lo + (hi - lo) * u;
        // Guard against rounding up to the excluded endpoint.
        if v >= hi {
            // Nudge to the largest representable value below hi.
            f64::from_bits(hi.to_bits() - 1)
        } else {
            v
        }
    }
}

impl SampleUniform for f32 {
    fn sample_range<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
        f64::sample_range(lo as f64, hi as f64, rng) as f32
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                debug_assert!(lo < hi, "gen_range requires lo < hi");
                let span = (hi as u128).wrapping_sub(lo as u128) as u64;
                // Multiply-shift rejection-free mapping (Lemire); the bias
                // is < 2^-64 per draw, far below what these workloads see.
                let hi128 = (rng.next_u64() as u128) * (span as u128);
                lo + ((hi128 >> 64) as u64) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                debug_assert!(lo < hi, "gen_range requires lo < hi");
                let span = (hi as i128 - lo as i128) as u64;
                let hi128 = (rng.next_u64() as u128) * (span as u128);
                (lo as i128 + (hi128 >> 64) as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_signed!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

/// Extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// A uniformly random value of `T` (full width for integers).
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        distributions::Distribution::sample(&distributions::Standard, self)
    }

    /// Uniform draw from the half-open range `lo..hi`.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(range.start, range.end, self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Value distributions (only the `Standard` uniform one is provided).
pub mod distributions {
    use super::{unit_f64, RngCore};

    /// The "natural" uniform distribution for a type.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Standard;

    /// Sampling interface.
    pub trait Distribution<T> {
        /// Draws one value.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    impl Distribution<u64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
            rng.next_u64()
        }
    }

    impl Distribution<u32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u32 {
            rng.next_u32()
        }
    }

    impl Distribution<usize> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
            rng.next_u64() as usize
        }
    }

    impl Distribution<f64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            unit_f64(rng.next_u64())
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's deterministic standard RNG: xoshiro256++ with
    /// SplitMix64 seed expansion. (Upstream `rand` uses ChaCha12 here; the
    /// statistical quality of xoshiro256++ is ample for Monte-Carlo work
    /// and the implementation is dependency-free.)
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&x));
            let k = rng.gen_range(3..9usize);
            assert!((3..9).contains(&k));
            let u = rng.gen_range(1..6u64);
            assert!((1..6).contains(&u));
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 6];
        for _ in 0..1000 {
            seen[rng.gen_range(0..6usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.25).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..50).collect::<Vec<_>>(),
            "shuffle left input in order"
        );
    }

    #[test]
    fn fill_bytes_fills_every_length() {
        let mut rng = StdRng::seed_from_u64(5);
        for len in [1, 7, 8, 9, 31] {
            let mut buf = vec![0u8; len];
            rng.fill_bytes(&mut buf);
            // Overwhelmingly likely non-zero for len >= 4.
            if len >= 4 {
                assert!(buf.iter().any(|&b| b != 0));
            }
        }
    }

    #[test]
    fn mean_of_unit_uniform_is_half() {
        let mut rng = StdRng::seed_from_u64(6);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
