//! Offline stand-in for `proptest`.
//!
//! Implements the subset this workspace's property tests use: the
//! [`proptest!`] macro (with optional `#![proptest_config(...)]`), range and
//! tuple [`Strategy`]s, `prop::collection::vec`, `.prop_map`, and the
//! `prop_assert!` / `prop_assert_eq!` / `prop_assume!` macros.
//!
//! Differences from real proptest: no shrinking (failures report the raw
//! generated inputs), and case generation is deterministic per test name —
//! re-running a failing test reproduces the same inputs without a
//! persistence file.

#![allow(clippy::all)]

use rand::rngs::StdRng;
use rand::{Rng as _, SeedableRng as _};
use std::fmt::Debug;
use std::ops::Range;

/// RNG handed to strategies during generation.
pub type TestRng = StdRng;

/// Why a single test case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// An assertion failed; the property is violated.
    Fail(String),
    /// `prop_assume!` rejected the inputs; the case is skipped.
    Reject,
}

impl TestCaseError {
    /// Builds a failure with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Builds a rejection.
    pub fn reject() -> Self {
        TestCaseError::Reject
    }
}

/// Runner configuration (`cases` is the only knob this stub honors).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` accepted cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

/// A value generator.
pub trait Strategy {
    /// The generated type.
    type Value: Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy producing a fixed value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.start..self.end)
            }
        }
    )*};
}

impl_range_strategy!(f64, f32, u32, u64, usize, i32, i64);

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}

impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
    type Value = (A::Value, B::Value, C::Value, D::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
            self.3.generate(rng),
        )
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng as _;
    use std::ops::Range;

    /// Length specification for [`vec()`]: a fixed size or a half-open range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy generating `Vec`s of `elem` draws.
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// Vectors whose length is drawn from `size` and whose elements are
    /// drawn from `elem`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = if self.size.lo + 1 == self.size.hi {
                self.size.lo
            } else {
                rng.gen_range(self.size.lo..self.size.hi)
            };
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Drives one property: runs `cfg.cases` accepted cases with a
/// deterministic per-test RNG, panicking (with the generated inputs) on the
/// first failure. Called by the [`proptest!`] expansion — not user code.
pub fn run_property<F>(cfg: &ProptestConfig, test_name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> (Result<(), TestCaseError>, String),
{
    // Stable seed from the test name so failures reproduce run-to-run.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    let mut accepted = 0u32;
    let mut attempts = 0u64;
    let max_attempts = (cfg.cases as u64) * 20 + 100;
    while accepted < cfg.cases {
        attempts += 1;
        assert!(
            attempts <= max_attempts,
            "property {test_name}: too many prop_assume! rejections \
             ({accepted}/{} cases accepted after {attempts} attempts)",
            cfg.cases
        );
        let mut rng = TestRng::seed_from_u64(h ^ attempts.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let (result, inputs) = case(&mut rng);
        match result {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject) => continue,
            Err(TestCaseError::Fail(msg)) => {
                panic!("property {test_name} failed at case {accepted}: {msg}\n  inputs: {inputs}");
            }
        }
    }
}

/// Declares property tests. Supports the same surface syntax as upstream
/// proptest for the forms used in this workspace.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal item-by-item expansion for [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $( $arg:pat in $strat:expr ),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg = $cfg;
            $crate::run_property(
                &__cfg,
                concat!(module_path!(), "::", stringify!($name)),
                |__rng| {
                    let mut __inputs = ::std::string::String::new();
                    $(
                        let __value = $crate::Strategy::generate(&($strat), __rng);
                        __inputs.push_str(&::std::format!(
                            concat!(stringify!($arg), " = {:?}; "),
                            &__value
                        ));
                        let $arg = __value;
                    )+
                    let __result: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    (__result, __inputs)
                },
            );
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Asserts a condition inside a property, failing the case (not the whole
/// process) so the runner can report the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!($($fmt)*),
            ));
        }
    };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(::std::format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                __l,
                __r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(::std::format!(
                $($fmt)*
            )));
        }
    }};
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(::std::format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                __l
            )));
        }
    }};
}

/// Rejects the current case (skipped, not failed) when the precondition
/// does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::reject());
        }
    };
}

/// The glob-import surface: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, ProptestConfig,
        Strategy, TestCaseError,
    };

    /// Module alias so `prop::collection::vec(...)` resolves.
    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair() -> impl Strategy<Value = (Vec<f64>, f64)> {
        (prop::collection::vec(0.0..1.0f64, 1..5), 1.0..2.0f64)
            .prop_map(|(v, s)| (v.iter().map(|x| x * s).collect(), s))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Ranges respect their bounds.
        #[test]
        fn ranges_in_bounds(x in 0.25..0.75f64, n in 3usize..9, k in 1u64..4) {
            prop_assert!((0.25..0.75).contains(&x));
            prop_assert!((3..9).contains(&n));
            prop_assert!((1..4).contains(&k), "k = {k}");
        }

        /// Vec strategy honors both fixed and ranged sizes; tuple patterns
        /// destructure; prop_map composes.
        #[test]
        fn composite_strategies((scaled, s) in pair(), fixed in prop::collection::vec(0.0..1.0f64, 3)) {
            prop_assert_eq!(fixed.len(), 3);
            prop_assert!(!scaled.is_empty() && scaled.len() < 5);
            for v in &scaled {
                prop_assert!(*v <= s, "{v} > {s}");
            }
        }

        /// prop_assume skips, never fails.
        #[test]
        fn assume_filters(a in 0.0..1.0f64, b in 0.0..1.0f64) {
            prop_assume!(a < b);
            prop_assert!(b - a > 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "property")]
    fn failures_report_inputs() {
        crate::run_property(&ProptestConfig::with_cases(4), "demo", |_rng| {
            (Err(TestCaseError::fail("forced")), "x = 1; ".to_string())
        });
    }

    #[test]
    fn deterministic_across_runs() {
        let mut first = Vec::new();
        let mut second = Vec::new();
        for out in [&mut first, &mut second] {
            crate::run_property(&ProptestConfig::with_cases(5), "det", |rng| {
                out.push(crate::Strategy::generate(&(0.0..1.0f64), rng));
                (Ok(()), String::new())
            });
        }
        assert_eq!(first, second);
    }
}
