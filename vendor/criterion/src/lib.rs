//! Offline stand-in for `criterion`.
//!
//! Provides the API surface the workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function` / `bench_with_input`, `BenchmarkId`,
//! `criterion_group!` / `criterion_main!`, and `black_box` — backed by a
//! simple adaptive timing loop that prints mean per-iteration time. No
//! statistics engine, HTML reports, or baseline comparison.

#![allow(clippy::all)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Label for a parameterised benchmark, rendered as `name/param`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/param` id.
    pub fn new(name: impl Into<String>, param: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), param),
        }
    }

    /// Id consisting only of the parameter.
    pub fn from_parameter(param: impl Display) -> Self {
        BenchmarkId {
            id: param.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Per-benchmark timing driver.
pub struct Bencher {
    /// Measured mean seconds per iteration, filled in by [`Bencher::iter`].
    elapsed_per_iter: f64,
}

impl Bencher {
    /// Times `routine`: a short warm-up, then enough iterations to fill a
    /// small measurement window, recording mean wall time per iteration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and per-iteration cost estimate.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < Duration::from_millis(30) && warm_iters < 1_000_000 {
            black_box(routine());
            warm_iters += 1;
        }
        let est = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;

        // Measurement window sized for ~120ms, capped for very slow routines.
        let target = 0.12_f64;
        let iters = ((target / est.max(1e-9)) as u64).clamp(1, 10_000_000);
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.elapsed_per_iter = start.elapsed().as_secs_f64() / iters as f64;
    }
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{:.2} s", secs)
    }
}

fn run_one(label: &str, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher {
        elapsed_per_iter: 0.0,
    };
    f(&mut b);
    println!("{:<48} {:>12}/iter", label, fmt_time(b.elapsed_per_iter));
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Accepted for compatibility; this stub sizes its own windows.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Benchmarks `routine` under `id` within this group.
    pub fn bench_function<F: FnOnce(&mut Bencher)>(&mut self, id: impl Display, routine: F) {
        run_one(&format!("{}/{}", self.name, id), routine);
    }

    /// Benchmarks `routine` with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F: FnOnce(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        routine: F,
    ) {
        run_one(&format!("{}/{}", self.name, id), |b| routine(b, input));
    }

    /// Ends the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

/// Benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("== bench group: {name} ==");
        BenchmarkGroup {
            name,
            _parent: self,
        }
    }

    /// Benchmarks a standalone function.
    pub fn bench_function<F: FnOnce(&mut Bencher)>(&mut self, id: impl Display, routine: F) {
        run_one(&id.to_string(), routine);
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench `main` that runs each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::new("solve", 8).to_string(), "solve/8");
        assert_eq!(BenchmarkId::from_parameter("n=4").to_string(), "n=4");
    }

    #[test]
    fn bencher_measures_positive_time() {
        let mut b = Bencher {
            elapsed_per_iter: 0.0,
        };
        b.iter(|| black_box(3u64).wrapping_mul(7));
        assert!(b.elapsed_per_iter > 0.0);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(10);
        g.bench_with_input(BenchmarkId::new("sq", 4), &4u64, |b, &n| {
            b.iter(|| black_box(n) * n)
        });
        g.finish();
    }
}
