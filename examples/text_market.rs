//! Selling a high-dimensional sparse text classifier (the paper's
//! Example 3 at realistic dimensionality).
//!
//! Messages are hashed bag-of-words vectors in R^2000 with ~12 active
//! buckets each. The optimal model is trained with sparse mini-batch SGD
//! (one epoch touches only the non-zeros), then priced and released
//! through the ordinary dense machinery — the hypothesis itself is dense,
//! so the Gaussian mechanism, the error transform, and the arbitrage
//! analysis apply unchanged.
//!
//! Run with: `cargo run --example text_market --release`

use mbp::ml::sparse::{sgd_logistic_sparse, zero_one_error_sparse, SparseSgdConfig};
use mbp::prelude::*;
use mbp::randx::seeded_rng;

fn main() {
    let mut rng = seeded_rng(2023);

    // The seller's corpus: 20k messages, 2000 hashed buckets, ~12 nnz each.
    let corpus = mbp::data::sparse::sparse_text_standin(20_000, 2000, 12, 0.03, &mut rng);
    let (train, test) = corpus.split(0.75, &mut rng);
    println!(
        "corpus: {} train / {} test messages, d = {}, avg nnz = {:.1}",
        train.n(),
        test.n(),
        train.d(),
        train.avg_nnz()
    );

    // One-time training cost: sparse SGD.
    let t0 = std::time::Instant::now();
    let fit = sgd_logistic_sparse(
        &train,
        SparseSgdConfig {
            epochs: 25,
            batch_size: 128,
            step: 0.8,
            decay: 0.9,
            ridge: 1e-4,
            seed: 5,
        },
    );
    let train_time = t0.elapsed();
    let h_star = fit.weights;
    let floor = zero_one_error_sparse(&h_star, &test);
    println!(
        "trained in {train_time:?} ({} sgd steps); noiseless test error {floor:.4}",
        fit.iterations
    );

    // Pricing over precision, concave hence arbitrage-free.
    let kappa = h_star.norm2_squared();
    let grid: Vec<f64> = (1..=10).map(|i| i as f64 / kappa).collect();
    let prices: Vec<f64> = (1..=10).map(|i| 40.0 * (i as f64).sqrt()).collect();
    let pricing = PricingFunction::from_points(grid.clone(), prices).unwrap();
    assert!(mbp::core::arbitrage::audit(&pricing, &grid, 10, 1e-9).is_clean());

    // Release noisy classifiers at three price points; per-sale cost is a
    // d-dimensional Gaussian draw — microseconds, versus the training run.
    let mech = GaussianMechanism;
    println!("\nbudget -> released classifier quality:");
    for budget in [40.0, 90.0, 127.0] {
        let x = pricing
            .max_precision_for_budget(budget)
            .expect("affordable")
            .min(*grid.last().unwrap());
        let ncp = 1.0 / x;
        let t1 = std::time::Instant::now();
        let noisy = mech.perturb(&h_star, ncp, &mut rng);
        let sale_time = t1.elapsed();
        let err = zero_one_error_sparse(&noisy, &test);
        println!(
            "  {budget:>6.0} -> ncp {ncp:>8.3}, test error {err:.4} (release took {sale_time:?})"
        );
    }
    println!("\n(noiseless floor {floor:.4}; cheaper instances are strictly noisier)");
}
