//! The full Figure 1 flow over *relational* data: the seller holds two
//! tables (demographics and incomes), the buyer specifies a schema —
//! which features, which target — the broker joins/projects, trains the
//! optimal model on the buyer's schema, and sells noisy instances.
//!
//! Per the paper's Section 3.4, each listing fixes one feature set;
//! cross-feature-set arbitrage is out of scope, so the market prices only
//! noise levels within the fixed schema.
//!
//! Run with: `cargo run --example relational_pipeline --release`

use mbp::data::relation::Relation;
use mbp::data::Standardizer;
use mbp::prelude::*;
use mbp::randx::seeded_rng;

fn main() {
    let mut rng = seeded_rng(404);

    // --- The seller's relations (synthetic census-style tables). ---
    let n = 4000usize;
    use mbp::randx::{Distribution, StandardNormal, UniformRange};
    let age_dist = UniformRange::new(18.0, 80.0);
    let mut ids = Vec::with_capacity(n);
    let mut ages = Vec::with_capacity(n);
    let mut heights = Vec::with_capacity(n);
    let mut sexes = Vec::with_capacity(n);
    for i in 0..n {
        ids.push(i as f64);
        ages.push(age_dist.sample(&mut rng));
        heights.push(1.7 + 0.1 * StandardNormal.sample(&mut rng));
        sexes.push(if i % 2 == 0 { 1.0 } else { 0.0 });
    }
    let demographics = Relation::new(vec![
        ("id", ids.clone()),
        ("age", ages.clone()),
        ("sex", sexes.clone()),
        ("height", heights.clone()),
    ])
    .unwrap();
    // Income table: income depends on age (hump-shaped) + sex gap + noise;
    // some ids are missing (not everyone reports income).
    let mut inc_ids = Vec::new();
    let mut incomes = Vec::new();
    for i in 0..n {
        if i % 10 == 3 {
            continue; // missing income rows
        }
        let age = ages[i];
        let peak = 50.0;
        let base = 60_000.0 - 30.0 * (age - peak) * (age - peak);
        let gap = if sexes[i] > 0.5 { 4_000.0 } else { 0.0 };
        incomes.push(base + gap + 8_000.0 * StandardNormal.sample(&mut rng));
        inc_ids.push(i as f64);
    }
    let income_table = Relation::new(vec![("person", inc_ids), ("income", incomes)]).unwrap();
    println!(
        "seller relations: demographics ({} rows), incomes ({} rows)",
        demographics.n_rows(),
        income_table.n_rows()
    );

    // --- The buyer's schema: predict income from (age, sex, height). ---
    let joined = demographics
        .join(&income_table, "id", "person")
        .expect("join");
    println!(
        "joined listing: {} rows, schema {:?}",
        joined.n_rows(),
        joined.schema()
    );
    let ds = joined
        .to_dataset(&["age", "sex", "height"], "income")
        .expect("schema");
    let tt = ds.split(0.75, &mut rng);
    let tt = Standardizer::fit_apply(&tt);

    // --- Market as usual. ---
    let seller = Seller::new(
        tt,
        mbp::core::market::curves::grid(10.0, 100.0, 10),
        ValueCurve::new(ValueShape::Concave { power: 2.0 }, 20.0, 500.0),
        DemandCurve::new(DemandShape::Uniform),
    );
    let mut broker = Broker::new(seller.data.clone());
    broker
        .support(ModelKind::LinearRegression, 1e-6)
        .expect("train");
    let pricing = broker.price_from_research(&seller).pricing;
    broker
        .publish(
            ModelKind::LinearRegression,
            pricing,
            Box::new(SquareLossTransform),
        )
        .unwrap();

    let sale = broker
        .buy_listed(
            ModelKind::LinearRegression,
            PurchaseRequest::PriceBudget(150.0),
            &mut rng,
        )
        .expect("purchase");
    println!(
        "bought instance for {:.2} (ncp {:.4}); coefficients (age, sex, height): {:?}",
        sale.price,
        sale.ncp,
        sale.model
            .weights()
            .as_slice()
            .iter()
            .map(|w| (w * 100.0).round() / 100.0)
            .collect::<Vec<_>>()
    );
    // Age is the dominant (standardized) predictor by construction.
    let w = sale.model.weights().as_slice();
    assert!(
        w[0].abs() > w[2].abs(),
        "age should out-predict height: {w:?}"
    );
    println!(
        "ledger: {} sale(s), revenue {:.2}",
        broker.ledger().len(),
        broker.total_revenue()
    );
}
