//! The paper's Example 1 (Section 3.2), literally: the hypothesis space is
//! `R` and the "model" is the average of a column — the simplest possible
//! MBP instantiation. Alice buys noisy versions of the average annual
//! income of a region, at an accuracy matching her budget, instead of
//! buying the raw column.
//!
//! This also demonstrates the two alternative mechanisms from Example 1:
//! additive uniform noise `K₁` and multiplicative uniform noise `K₂`, both
//! unbiased and NCP-calibrated.
//!
//! Run with: `cargo run --example average_query --release`

use mbp::linalg::Vector;
use mbp::prelude::*;
use mbp::randx::seeded_rng;

fn main() {
    let mut rng = seeded_rng(88);

    // The seller's column: incomes of a region (synthetic, log-normal-ish).
    let incomes: Vec<f64> = (0..50_000)
        .map(|i| {
            let base = 30_000.0 + 40_000.0 * ((i as f64 * 0.7133).sin().abs());
            base + 15_000.0 * ((i as f64 * 0.137).cos())
        })
        .collect();
    let n = incomes.len() as f64;
    let true_mean = incomes.iter().sum::<f64>() / n;
    println!("true average income: {true_mean:.2} (hidden from the buyer)");

    // The optimal "model instance" for λ(h, D) = (h − x̄)² is just x̄ — a
    // 1-dimensional hypothesis.
    let h_star = Vector::from_vec(vec![true_mean]);

    // An arbitrage-free pricing over precision: concave in 1/δ.
    // Precisions are in units of 1/(income²); scale the grid accordingly.
    let unit = true_mean * true_mean;
    let grid: Vec<f64> = (1..=10).map(|i| i as f64 / unit).collect();
    let prices: Vec<f64> = (1..=10).map(|i| 25.0 * (i as f64).sqrt()).collect();
    let pricing = PricingFunction::from_points(grid.clone(), prices).unwrap();
    let report = mbp::core::arbitrage::audit(&pricing, &grid, 10, 1e-9);
    assert!(report.is_clean());
    println!("pricing curve audited: arbitrage-free\n");

    // Alice buys at three price points and sees the accuracy she paid for.
    for budget in [25.0, 50.0, 79.0] {
        let x = pricing
            .max_precision_for_budget(budget)
            .expect("affordable")
            .min(*grid.last().unwrap());
        let ncp = 1.0 / x;
        let mech = GaussianMechanism;
        let noisy = mech.perturb(&h_star, ncp, &mut rng);
        let rel_sd = (ncp.sqrt()) / true_mean * 100.0;
        println!(
            "budget {budget:>5.0} -> noise sd {:.0} ({rel_sd:.1}% of the mean): average ~ {:.2}",
            ncp.sqrt(),
            noisy[0]
        );
    }

    // The two Example 1 mechanisms agree on accuracy semantics: at equal
    // NCP they produce equal expected squared error.
    println!("\nmechanism calibration check at ncp = (5% of mean)^2:");
    let ncp = (0.05 * true_mean).powi(2);
    for mech in [
        Box::new(UniformAdditiveMechanism) as Box<dyn NoiseMechanism>,
        Box::new(UniformMultiplicativeMechanism),
        Box::new(GaussianMechanism),
        Box::new(LaplaceMechanism),
    ] {
        let reps = 40_000;
        let mut err = 0.0;
        for _ in 0..reps {
            let out = mech.perturb(&h_star, ncp, &mut rng);
            let d = out[0] - true_mean;
            err += d * d;
        }
        err /= reps as f64;
        println!(
            "  {:<24} measured E[(ĥ − x̄)²]/ncp = {:.3}",
            mech.name(),
            err / ncp
        );
        assert!((err / ncp - 1.0).abs() < 0.05);
    }
    println!("\nall four mechanisms are unbiased and NCP-calibrated — the same\npricing curve prices them all.");
}
