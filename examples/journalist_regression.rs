//! Example 1 from the paper: Alice the journalist.
//!
//! Alice studies how demographic features predict average annual household
//! income. The full dataset exceeds her budget, but a model-based market
//! lets her buy a *linear regression model instance* whose accuracy matches
//! what she can pay — she never needs the raw rows.
//!
//! Run with: `cargo run --example journalist_regression --release`

use mbp::prelude::*;
use mbp::randx::seeded_rng;

fn main() {
    let mut rng = seeded_rng(2019);

    // A demographics -> income table: (age, sex, height, ...) features with
    // a linear income signal — the paper's Example 2 schema, synthesized.
    let data = mbp::data::synth::regression_standin(6000, 4, 0.8, &mut rng).split(0.75, &mut rng);
    let data = mbp::data::Standardizer::fit_apply(&data);

    // The market: seller research says value saturates quickly (journalists
    // need directionally-correct coefficients, not production accuracy).
    let grid = mbp::core::market::curves::grid(5.0, 80.0, 12);
    let seller = Seller::new(
        data,
        grid,
        ValueCurve::new(ValueShape::Concave { power: 3.0 }, 50.0, 900.0),
        DemandCurve::new(DemandShape::Decreasing),
    );
    let mut broker = Broker::new(seller.data.clone());
    broker
        .support(ModelKind::LinearRegression, 1e-6)
        .expect("training failed");
    let pricing = broker.price_from_research(&seller).pricing;

    // Alice's budget would never buy the raw dataset (the whole-dataset
    // price is the curve's saturation price times a large markup).
    let alice = Buyer::new("Alice", 250.0);
    let full_dataset_price = pricing.max_price() * 10.0;
    println!(
        "whole-dataset price ~{full_dataset_price:.0}; Alice's budget {:.0}",
        alice.budget
    );
    assert!(alice.budget < full_dataset_price);

    // The buyer-facing error metric: data-space square loss, transformed
    // analytically (no Monte Carlo needed for linear regression).
    let h_star = broker
        .optimal_model(ModelKind::LinearRegression)
        .unwrap()
        .weights()
        .clone();
    let test = broker.data().test.clone();
    let transform = LinRegSquareTransform::new(&test, &h_star);
    println!(
        "noiseless test error {:.4}; error grows by {:.6} per unit of noise",
        transform.base(),
        transform.slope()
    );

    // Alice spends her budget on the most accurate instance she can afford.
    let sale = broker
        .buy(
            ModelKind::LinearRegression,
            PurchaseRequest::PriceBudget(alice.budget),
            &pricing,
            &transform,
            &mut rng,
        )
        .expect("purchase failed");
    println!(
        "Alice paid {:.2} for an instance with ncp {:.4} (expected error {:.4})",
        sale.price, sale.ncp, sale.expected_error
    );

    // She can immediately run her story analysis: which feature moves
    // income the most?
    let weights = sale.model.weights();
    let (best_idx, best_w) = weights
        .as_slice()
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.abs().partial_cmp(&b.1.abs()).unwrap())
        .unwrap();
    println!("strongest predictor: feature {best_idx} with coefficient {best_w:.3}");

    // Sanity: the noisy model's test error is near its promised expectation.
    let measured = TestError::SquareLoss.evaluate(sale.model.weights(), &test);
    println!(
        "measured test error of the purchased instance: {measured:.4} (promised E = {:.4})",
        sale.expected_error
    );
}
