//! Example 3 from the paper: Bob the business analyst.
//!
//! Bob wants a logistic-regression classifier telling whether a social-media
//! message relates to his company. Messages arrive as (sparse-ish) embedding
//! vectors; the market sells him classifier instances at accuracy levels
//! matching his budget, priced off the *misclassification rate* via an
//! empirically estimated error transform (the paper's Figure 6 machinery).
//!
//! Run with: `cargo run --example social_classifier --release`

use mbp::prelude::*;
use mbp::randx::seeded_rng;

fn main() {
    let mut rng = seeded_rng(411);

    // Embedded tweets: compact 10-dim embeddings, lightly noisy labels.
    let data =
        mbp::data::synth::classification_standin(5000, 10, 0.02, &mut rng).split(0.75, &mut rng);
    let seller = Seller::new(
        data,
        mbp::core::market::curves::grid(10.0, 100.0, 10),
        ValueCurve::new(ValueShape::Sigmoid { steepness: 9.0 }, 10.0, 400.0),
        DemandCurve::new(DemandShape::Peak {
            center: 0.7,
            width: 0.25,
        }),
    );
    let mut broker = Broker::new(seller.data.clone());
    let h_star = broker
        .support(ModelKind::LogisticRegression, 1e-3)
        .expect("training failed")
        .weights()
        .clone();
    let pricing = broker.price_from_research(&seller).pricing;

    // Bob cares about 0/1 accuracy, a non-convex error: the transform has
    // to be estimated empirically (Monte Carlo + isotonic smoothing).
    let test = broker.data().test.clone();
    let kappa = h_star.norm2_squared();
    let ncp_grid: Vec<f64> = (1..=12).map(|i| kappa * i as f64 / 12.0).collect();
    let transform = EmpiricalTransform::estimate(
        &GaussianMechanism,
        &h_star,
        &test,
        TestError::ZeroOne,
        &ncp_grid,
        400,
        99,
    );
    println!("estimated 0/1-error transform:");
    for (ncp, err) in transform.curve() {
        println!("  ncp {ncp:>7.3} -> expected misclassification {err:.4}");
    }
    let floor = TestError::ZeroOne.evaluate(&h_star, &test);
    println!("noiseless model's misclassification rate: {floor:.4}");

    // Bob asks: "give me the cheapest classifier that is wrong at most 30%
    // of the time" (the noiseless model itself is wrong ~24% of the time —
    // the labels are intrinsically noisy).
    let target = 0.30;
    match broker.buy(
        ModelKind::LogisticRegression,
        PurchaseRequest::ErrorBudget(target),
        &pricing,
        &transform,
        &mut rng,
    ) {
        Ok(sale) => {
            let measured = TestError::ZeroOne.evaluate(sale.model.weights(), &test);
            println!(
                "Bob paid {:.2} for a classifier with expected error {:.4} (measured {:.4})",
                sale.price, sale.expected_error, measured
            );
            // Use it: classify a fresh message.
            let message = &test.x.row(0).to_vec();
            let label = sale.model.classify(message);
            let prob = sale.model.probability(message);
            println!(
                "first test message: relevance prob {prob:.3} -> label {}",
                if label > 0.0 {
                    "RELEVANT"
                } else {
                    "irrelevant"
                }
            );
        }
        Err(e) => println!("purchase failed: {e}"),
    }

    // A tighter requirement than the noiseless floor is honestly refused.
    let impossible = floor * 0.5;
    match broker.buy(
        ModelKind::LogisticRegression,
        PurchaseRequest::ErrorBudget(impossible),
        &pricing,
        &transform,
        &mut rng,
    ) {
        Err(MarketError::UnachievableError(e)) => {
            println!("error budget {e:.4} correctly refused (below the noiseless floor)")
        }
        other => panic!("expected UnachievableError, got {other:?}"),
    }
}
