//! Trading revenue for affordability (the paper's Section 7 future-work
//! direction, implemented here as a λ-weighted variant of the Theorem 10
//! DP).
//!
//! A pure revenue maximizer may price the cheapest buyers out entirely. The
//! fairness-weighted solver adds a bonus of λ per *served* unit of demand,
//! sweeping out a Pareto frontier between seller revenue and buyer
//! affordability — every point of which is still arbitrage-free.
//!
//! Run with: `cargo run --example fairness_tradeoff --release`

use mbp::prelude::*;

fn main() {
    // A convex value curve: low-accuracy buyers value models near zero,
    // so revenue maximization tends to abandon them.
    let g = mbp::core::market::curves::grid(20.0, 100.0, 9);
    let buyers = buyer_points(
        &g,
        &ValueCurve::new(ValueShape::Convex { power: 2.5 }, 2.0, 100.0),
        &DemandCurve::new(DemandShape::Peak {
            center: 0.6,
            width: 0.35,
        }),
    )
    .expect("example grid is valid");

    println!("lambda  revenue  affordability  arbitrage-free");
    let mut frontier = Vec::new();
    for lambda in [0.0, 1.0, 5.0, 10.0, 20.0, 35.0, 50.0, 100.0] {
        let sol = solve_bv_dp_fair(&buyers, lambda);
        let r = revenue(&sol.pricing, &buyers);
        let a = affordability(&sol.pricing, &buyers);
        let clean = mbp::core::arbitrage::audit(&sol.pricing, &g, 10, 1e-6).is_clean();
        println!("{lambda:>6.1} {r:>8.3} {a:>14.3}  {clean}");
        assert!(clean, "fair pricing must stay arbitrage-free");
        frontier.push((lambda, r, a));
    }

    // The frontier is a genuine trade-off: revenue never rises and
    // affordability never falls as lambda grows.
    for w in frontier.windows(2) {
        assert!(w[1].1 <= w[0].1 + 1e-9, "revenue increased along lambda");
        assert!(w[1].2 >= w[0].2 - 1e-9, "affordability fell along lambda");
    }
    let first = frontier.first().unwrap();
    let last = frontier.last().unwrap();
    println!(
        "\nsweeping lambda 0 -> {}: revenue {:.2} -> {:.2}, affordability {:.2} -> {:.2}",
        last.0, first.1, last.1, first.2, last.2
    );
    assert!(last.2 > first.2, "fairness weight should buy affordability");
}
