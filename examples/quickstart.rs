//! Quickstart: stand up a model marketplace end to end.
//!
//! A seller lists a dataset with market-research curves, the broker trains
//! the optimal model (one-time cost), derives arbitrage-free revenue-
//! maximizing prices, and a buyer purchases a model instance under each of
//! the three purchase modes of the paper.
//!
//! Run with: `cargo run --example quickstart --release`

use mbp::prelude::*;
use mbp::randx::seeded_rng;

fn main() {
    let mut rng = seeded_rng(7);

    // --- Seller: a commercially valuable regression dataset + research. ---
    let data = mbp::data::synth::simulated1(4000, 8, 0.5, &mut rng).split(0.75, &mut rng);
    let grid = mbp::core::market::curves::grid(10.0, 100.0, 10);
    let seller = Seller::new(
        data,
        grid.clone(),
        ValueCurve::new(ValueShape::Concave { power: 2.0 }, 5.0, 120.0),
        DemandCurve::new(DemandShape::Uniform),
    );
    println!(
        "seller lists a dataset with {} train rows, {} features",
        seller.data.train.n(),
        seller.data.d()
    );

    // --- Broker: train once, price from research. ---
    let mut broker = Broker::new(seller.data.clone());
    let h_star = broker
        .support(ModelKind::LinearRegression, 1e-6)
        .expect("training failed")
        .clone();
    println!(
        "broker trained optimal model, |h*| = {:.3}",
        h_star.weights().norm2()
    );

    let solution = broker.price_from_research(&seller);
    let pricing = solution.pricing;
    println!(
        "broker derived arbitrage-free pricing; expected revenue {:.2}",
        solution.objective
    );

    // Audit it: the DP output must be clean.
    let report = mbp::core::arbitrage::audit(&pricing, &grid, 10, 1e-6);
    assert!(report.is_clean(), "DP pricing must be arbitrage-free");
    println!("arbitrage audit: clean");

    // --- Buyer: the three purchase modes. ---
    let transform = SquareLossTransform; // E[eps_s] = delta exactly (Lemma 3)

    // (1) Pick a point on the price-error curve.
    let curve = broker
        .price_error_curve(
            ModelKind::LinearRegression,
            &transform,
            &pricing,
            &[0.01, 0.02, 0.05, 0.1],
        )
        .unwrap();
    println!("\nprice-error curve shown to the buyer:");
    for p in &curve.points {
        println!(
            "  ncp {:>5.3}  expected error {:>6.4}  price {:>7.2}",
            p.ncp, p.expected_error, p.price
        );
    }
    let sale = broker
        .buy(
            ModelKind::LinearRegression,
            PurchaseRequest::AtNcp(0.02),
            &pricing,
            &transform,
            &mut rng,
        )
        .unwrap();
    println!("bought at ncp 0.02 for {:.2}", sale.price);

    // (2) Error budget: cheapest instance with expected error <= 0.05.
    let sale = broker
        .buy(
            ModelKind::LinearRegression,
            PurchaseRequest::ErrorBudget(0.05),
            &pricing,
            &transform,
            &mut rng,
        )
        .unwrap();
    println!(
        "error budget 0.05 -> ncp {:.4}, price {:.2}",
        sale.ncp, sale.price
    );

    // (3) Price budget: most accurate instance within 40 units.
    let sale = broker
        .buy(
            ModelKind::LinearRegression,
            PurchaseRequest::PriceBudget(40.0),
            &pricing,
            &transform,
            &mut rng,
        )
        .unwrap();
    println!(
        "price budget 40 -> ncp {:.4}, expected error {:.4}, paid {:.2}",
        sale.ncp, sale.expected_error, sale.price
    );
    assert!(sale.price <= 40.0 + 1e-9);

    println!(
        "\nbroker ledger: {} sales, total revenue {:.2}",
        broker.ledger().len(),
        broker.total_revenue()
    );
}
