//! Why arbitrage-freeness matters: attacking a broken pricing function.
//!
//! A naive broker prices precision *convexly* (`p̄(x) = x²`), reasoning that
//! accuracy should get expensive fast. A savvy buyer then buys several cheap
//! low-precision instances and averages them (inverse-variance weighting,
//! the estimator from the proof of Theorem 5), obtaining the accuracy of an
//! expensive instance for a fraction of its list price. The same attack
//! fails against the subadditive pricing produced by the revenue DP.
//!
//! Run with: `cargo run --example arbitrage_attack --release`

use mbp::prelude::*;
use mbp::randx::seeded_rng;

fn main() {
    let mut rng = seeded_rng(1337);
    let h_star = mbp::linalg::Vector::from_vec(vec![1.2, -3.1, 0.5, 0.1, -2.3, 7.2, -0.9, 5.5]);
    let grid: Vec<f64> = (1..=10).map(|i| i as f64).collect();

    // --- The broken market: superadditive (convex) prices. ---
    let convex =
        PricingFunction::from_points(grid.clone(), grid.iter().map(|x| x * x).collect()).unwrap();
    let report = audit(&convex, &grid, 10, 1e-9);
    println!(
        "audit of convex pricing found {} arbitrage opportunities",
        report.arbitrage.len()
    );
    let finding = report
        .arbitrage
        .iter()
        .max_by(|a, b| a.margin().partial_cmp(&b.margin()).unwrap())
        .expect("convex pricing is attackable");
    println!(
        "best attack: target precision {} (list price {:.0}) via bundle {:?} costing {:.0} — margin {:.0}",
        finding.target_precision,
        finding.list_price,
        finding.bundle,
        finding.bundle_price,
        finding.margin()
    );

    // Execute it against real Gaussian releases.
    let mech = GaussianMechanism;
    let mut purchases = Vec::new();
    let mut ncps = Vec::new();
    let mut paid = 0.0;
    for &(x, k) in &finding.bundle {
        for _ in 0..k {
            let ncp = 1.0 / x;
            purchases.push(mech.perturb(&h_star, ncp, &mut rng));
            ncps.push(ncp);
            paid += convex.price_at(x);
        }
    }
    let (_combined, combined_ncp) = combine_inverse_variance(&purchases, &ncps);
    println!(
        "attacker paid {:.0}, obtained combined ncp {:.4} (list price for that precision: {:.0})",
        paid,
        combined_ncp,
        convex.price_at(1.0 / combined_ncp)
    );
    // Verify empirically over many runs that the combined model really has
    // the promised accuracy.
    let reps = 5000;
    let mut err = 0.0;
    for _ in 0..reps {
        let models: Vec<_> = ncps
            .iter()
            .map(|&d| mech.perturb(&h_star, d, &mut rng))
            .collect();
        let (c, _) = combine_inverse_variance(&models, &ncps);
        err += c.sub(&h_star).unwrap().norm2_squared();
    }
    err /= reps as f64;
    println!("measured model-space error of the bundle: {err:.4} (promised {combined_ncp:.4})");
    assert!(paid < convex.price_at(1.0 / combined_ncp));

    // --- The fixed market: DP-optimized subadditive prices. ---
    let buyers: Vec<BuyerPoint> = grid
        .iter()
        .map(|&x| BuyerPoint::new(x, 10.0 * x.sqrt() * 10.0, 0.1))
        .collect();
    let dp = solve_bv_dp(&buyers);
    let report = audit(&dp.pricing, &grid, 10, 1e-6);
    println!(
        "\naudit of DP pricing: {} monotonicity violations, {} arbitrage opportunities",
        report.monotonicity_violations.len(),
        report.arbitrage.len()
    );
    assert!(
        report.is_clean(),
        "the DP must produce arbitrage-free prices"
    );
    println!("no bundle of cheap instances undercuts any list price — the market is safe");
}
