//! Golden tests for the interprocedural pass: each fixture under
//! `tests/fixtures/graph/` is a miniature workspace with one planted
//! defect that only exists *across* function boundaries — every file is
//! clean under the per-file rules. The expectations pin the exact
//! `(rule, path, line, col)` and the full witness chain, so a resolver
//! regression that silently drops an edge fails loudly here.

use std::path::{Path, PathBuf};

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures/graph")
        .join(name)
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// One reported finding: `(path, rule, line, col, msg)`.
type Row = (String, String, u32, u32, String);

/// Run the interprocedural pass over a fixture and return the finding
/// rows plus the budget errors.
fn scan(root: &Path) -> (Vec<Row>, Vec<String>) {
    let report = mbp_lint::run_interprocedural(root, None, None).expect("fixture scan");
    let rows = report
        .findings
        .iter()
        .map(|(p, f)| (p.clone(), f.rule.to_string(), f.line, f.col, f.msg.clone()))
        .collect();
    (rows, report.budget_errors)
}

#[test]
fn planted_transitive_panic_chain_is_caught_with_exact_witness() {
    let (rows, budget_errors) = scan(&fixture("panic_chain"));
    assert_eq!(
        rows,
        vec![(
            "crates/core/src/curve_ops.rs".to_string(),
            "reach-panic".to_string(),
            7,
            10,
            "may-panic site (slice indexing) reachable from serve root: \
             dispatch -> price_helper -> deep_index"
                .to_string(),
        )],
    );
    assert_eq!(budget_errors.len(), 1, "{budget_errors:?}");
    assert!(
        budget_errors[0].contains("reach-panic"),
        "{budget_errors:?}"
    );
}

#[test]
fn planted_det_taint_chain_is_caught_at_the_det_scope_entry() {
    let (rows, budget_errors) = scan(&fixture("taint_chain"));
    assert_eq!(
        rows,
        vec![(
            "crates/core/src/adjust.rs".to_string(),
            "taint-det".to_string(),
            2,
            8,
            "det-scope `adjusted_price` reaches a nondeterminism source \
             (Instant::now at crates/serve/src/clock.rs:4): adjusted_price -> wall_jitter"
                .to_string(),
        )],
    );
    assert_eq!(budget_errors.len(), 1, "{budget_errors:?}");
    assert!(budget_errors[0].contains("taint-det"), "{budget_errors:?}");
}

#[test]
fn planted_cross_function_lock_inversion_is_caught() {
    let (rows, budget_errors) = scan(&fixture("lock_inversion"));
    assert_eq!(
        rows,
        vec![(
            "crates/core/src/market/ledger_ext.rs".to_string(),
            "lock-graph".to_string(),
            12,
            14,
            "stripe 1 acquired while stripe 2 is held (descending order) \
             in `Ledger::settle` via Ledger::settle -> Ledger::tail"
                .to_string(),
        )],
    );
    assert_eq!(budget_errors.len(), 1, "{budget_errors:?}");
    assert!(budget_errors[0].contains("lock-graph"), "{budget_errors:?}");
}

/// The workspace itself must stay clean under the full interprocedural
/// pass with the checked-in baseline: zero graph findings, zero budget
/// errors. This is the self-hosting guarantee — the serve path is
/// transitively panic-free, the det crates are taint-free, and no lock
/// inversion exists across any call chain, as of this commit.
#[test]
fn repository_has_zero_graph_findings_under_checked_in_baseline() {
    let root = workspace_root();
    let baseline = root.join("lint.toml");
    let report = mbp_lint::run_interprocedural(&root, Some(&baseline), None).expect("repo scan");
    let graph_rows: Vec<_> = report
        .findings
        .iter()
        .filter(|(_, f)| mbp_lint::rules::GRAPH_RULE_IDS.contains(&f.rule))
        .collect();
    assert!(graph_rows.is_empty(), "graph findings: {graph_rows:?}");
    assert!(report.is_clean(), "{}", report.render());
}

/// `--graph-out` artifacts must carry the witness chains: the JSON names
/// every flagged function and its chain, the DOT file renders the kept
/// subgraph. Checked against a fixture so the artifact shape is pinned
/// without depending on the (large) repo graph.
#[test]
fn graph_artifacts_contain_witness_chains() {
    let dir = std::env::temp_dir().join("mbp_lint_interproc_artifacts");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let base = dir.join("graph");
    let _ = mbp_lint::run_interprocedural(&fixture("panic_chain"), None, Some(&base))
        .expect("fixture scan");
    let json = std::fs::read_to_string(base.with_extension("json")).expect("json artifact");
    let dot = std::fs::read_to_string(base.with_extension("dot")).expect("dot artifact");
    for name in ["dispatch", "price_helper", "deep_index"] {
        assert!(json.contains(name), "json artifact must mention {name}");
        assert!(dot.contains(name), "dot artifact must mention {name}");
    }
    assert!(
        json.contains("dispatch -> price_helper -> deep_index"),
        "json artifact must carry the witness chain"
    );
}
