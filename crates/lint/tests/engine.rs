//! Integration tests for the mbp-lint rule engine.
//!
//! Each fixture under `tests/fixtures/` exercises one rule; the assertions
//! pin the exact `(rule, line, col)` triples so any drift in tokenizer or
//! rule logic shows up as a diff, not a silent behavior change. Fixtures
//! are analyzed with [`ScopeMode::AllRules`], the mode the fixtures and
//! unit tests use to sidestep the repo's path-based scoping.

use mbp_lint::{lint_source, FileReport, ScopeMode};
use std::path::Path;

fn lint_fixture(name: &str) -> FileReport {
    let path = format!("{}/tests/fixtures/{name}.rs", env!("CARGO_MANIFEST_DIR"));
    let src =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading fixture {name}: {e}"));
    lint_source(&format!("{name}.rs"), &src, ScopeMode::AllRules)
}

/// The `(rule, line, col)` triples of a report, in emission order.
fn triples(report: &FileReport) -> Vec<(&str, u32, u32)> {
    report
        .findings
        .iter()
        .map(|f| (f.rule, f.line, f.col))
        .collect()
}

#[test]
fn det_fixture_pins_every_nondeterminism_site() {
    let rep = lint_fixture("det");
    assert_eq!(
        triples(&rep),
        vec![
            ("det", 6, 5),   // SystemTime::now()
            ("det", 10, 5),  // Instant::now()
            ("det", 16, 20), // m.iter()
            ("det", 19, 21), // for _ in &m
        ]
    );
    assert!(rep.waivers_used.is_empty());
}

#[test]
fn panic_fixture_pins_indexing_unwrap_expect_and_macro() {
    let rep = lint_fixture("panic");
    assert_eq!(
        triples(&rep),
        vec![
            ("panic", 4, 7),  // xs[0]
            ("panic", 8, 9),  // .unwrap()
            ("panic", 12, 9), // .expect()
            ("panic", 16, 5), // panic!()
        ]
    );
}

#[test]
fn float_fixture_pins_eq_ne_and_partial_cmp_chain() {
    let rep = lint_fixture("float");
    assert_eq!(
        triples(&rep),
        vec![
            ("float", 4, 7),   // a == 0.5
            ("float", 8, 7),   // b != 1.5
            ("float", 12, 7),  // partial_cmp().unwrap()
            ("panic", 12, 23), // the same .unwrap() is also a panic site
        ]
    );
}

#[test]
fn lock_fixture_pins_write_guard_overlap_and_descending_order() {
    let rep = lint_fixture("lock");
    let locks: Vec<_> = triples(&rep)
        .into_iter()
        .filter(|(rule, _, _)| *rule == "lock")
        .collect();
    assert_eq!(
        locks,
        vec![
            ("lock", 8, 24),  // stripes[0].lock() under core.write()
            ("lock", 14, 13), // stripe 0 locked after stripe 1
        ]
    );
}

/// The branchless quote-kernel idioms — conditional-move selects via
/// arithmetic on `bool`, Eytzinger descent with `usize::from`, checked
/// permutation scatter — must produce zero findings under every rule.
/// This pins the lint's blind spot deliberately: replacing a branch with
/// `usize::from(cond)` arithmetic must never require a waiver.
#[test]
fn branchless_fixture_is_clean_without_waivers() {
    let rep = lint_fixture("branchless");
    assert_eq!(triples(&rep), vec![]);
    assert!(rep.waivers_used.is_empty());
}

#[test]
fn cast_fixture_flags_narrowing_and_skips_widening_and_waived() {
    let rep = lint_fixture("cast");
    assert_eq!(
        triples(&rep),
        vec![
            ("cast", 4, 31), // payload_len as u32
            ("cast", 9, 15), // msg.len() as u16
        ]
    );
    assert_eq!(rep.waivers_used.get("cast"), Some(&1));
}

#[test]
fn safety_fixture_flags_only_the_undocumented_unsafe() {
    let rep = lint_fixture("safety");
    assert_eq!(triples(&rep), vec![("safety", 4, 5)]);
}

#[test]
fn waiver_suppresses_exactly_one_finding() {
    let rep = lint_fixture("waiver");
    // The waiver on line 7 covers the unwrap on line 8 and nothing else:
    // the twin unwrap on line 9 still fires.
    assert_eq!(
        triples(&rep),
        vec![
            ("panic", 9, 20),  // second.unwrap() — NOT covered by the waiver
            ("lint", 14, 5),   // stale waiver with no matching finding
            ("lint", 19, 5),   // malformed waiver (unknown rule id)
            ("panic", 20, 11), // third.unwrap() — malformed waiver waives nothing
        ]
    );
    assert_eq!(rep.waivers_used.get("panic"), Some(&1));
}

/// The workspace itself must lint clean against the checked-in baseline —
/// the same invariant CI enforces via `cargo run -p mbp-lint`.
#[test]
fn repository_is_clean_under_checked_in_baseline() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root");
    let baseline = root.join("lint.toml");
    let report = mbp_lint::run(&root, Some(&baseline)).expect("scan workspace");
    assert!(
        report.is_clean(),
        "workspace has lint findings:\n{}",
        report.render()
    );
    // The ratchet's hard floor: determinism and lock-order findings are
    // never waivable, so none may be in use anywhere in the workspace.
    assert_eq!(report.waivers_used.get("det"), None);
    assert_eq!(report.waivers_used.get("lock"), None);
}
