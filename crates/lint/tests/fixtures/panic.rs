//! Fixture: panics on the serve path (rule `panic`).

pub fn first(xs: &[f64]) -> f64 {
    xs[0]
}

pub fn must(opt: Option<f64>) -> f64 {
    opt.unwrap()
}

pub fn labelled(opt: Option<f64>) -> f64 {
    opt.expect("present")
}

pub fn boom() -> f64 {
    panic!("no quote")
}
