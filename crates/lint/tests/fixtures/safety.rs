//! Fixture: `unsafe` without a SAFETY comment (rule `safety`).

pub fn read_raw(p: *const u8) -> u8 {
    unsafe { *p }
}

pub fn read_documented(p: *const u8) -> u8 {
    // SAFETY: caller guarantees `p` is valid for reads (fixture control case).
    unsafe { *p }
}
