// Fixture for the `cast` rule: truncating casts in decode paths.

fn frame(payload_len: usize, out: &mut Vec<u8>) {
    let wrapped = payload_len as u32;
    out.extend_from_slice(&wrapped.to_le_bytes());
}

fn body_len(msg: &str) -> u16 {
    msg.len() as u16
}

fn widening_is_fine(n: u16, x: u32) -> (usize, u64, f64) {
    (n as usize, x as u64, x as f64)
}

fn waived(payload_len: usize) -> u32 {
    // LINT-ALLOW(cast): callers cap payload_len at MAX_PAYLOAD
    payload_len as u32
}
