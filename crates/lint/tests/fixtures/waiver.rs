//! Fixture: waiver semantics (rule `lint`).
//!
//! A `LINT-ALLOW` suppresses exactly one finding on its own line or the
//! line below; stale and malformed waivers are findings themselves.

pub fn pair(first: Option<f64>, second: Option<f64>) -> f64 {
    // LINT-ALLOW(panic): fixture — covers only the next line.
    let a = first.unwrap();
    let b = second.unwrap();
    a + b
}

pub fn stale() -> f64 {
    // LINT-ALLOW(panic): nothing to waive here.
    1.0
}

pub fn malformed(third: Option<f64>) -> f64 {
    // LINT-ALLOW(panics): misspelled rule id does not parse.
    third.unwrap()
}
