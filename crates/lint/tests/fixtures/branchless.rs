//! Fixture: the branchless quote-kernel idioms lint clean (no findings).
//!
//! The batch pricing path replaces data-dependent branches with arithmetic
//! on `bool` (conditional-move selects), descends Eytzinger trees with
//! `usize::from`, and scatters results through checked permutation
//! accessors. None of these may trip the panic-freedom, float, or
//! determinism rules — every access is `.get`/`.get_mut` based and every
//! float comparison is an ordering, never an equality.

/// Conditional-move select: branch-free `if cond { a } else { b }` over
/// indices, as used by the Eytzinger descent.
pub fn select(cond: bool, a: usize, b: usize) -> usize {
    let c = usize::from(cond);
    c * a + (1 - c) * b
}

/// One Eytzinger descent step: `k = 2k + (key <= x)` with no branch.
pub fn descend(k: usize, key: f64, x: f64) -> usize {
    2 * k + usize::from(key <= x)
}

/// Undo the final virtual step and clamp to the last segment without a
/// data-dependent branch.
pub fn finish(k: usize, n: usize) -> usize {
    let undone = k >> (k.trailing_ones() + 1);
    undone.saturating_sub(1).min(n.saturating_sub(1))
}

/// Permutation scatter: write `values` back in request order through the
/// inverse permutation, with checked accessors on both sides.
pub fn scatter(order: &[u32], values: &[f64], out: &mut [f64]) {
    for (slot, &v) in order.iter().zip(values) {
        if let Some(dst) = out.get_mut(slot as usize) {
            *dst = v;
        }
    }
}

/// Grid lookup fixup: arithmetic comparison folded into the index, no
/// float equality anywhere.
pub fn grid_fixup(i: usize, keys: &[f64], x: f64) -> usize {
    let here = keys.get(i).copied().unwrap_or(f64::INFINITY);
    let next = keys.get(i + 1).copied().unwrap_or(f64::INFINITY);
    i + usize::from(next <= x) - usize::from(here > x).min(i)
}
