// Fixture: serve-root dispatch whose panic is two calls away.
pub fn dispatch(q: usize, table: &[f64]) -> f64 {
    price_helper(q, table)
}
