// Fixture: the transitive may-panic chain the graph pass must prove out.
pub fn price_helper(q: usize, table: &[f64]) -> f64 {
    deep_index(q, table) * 2.0
}

fn deep_index(q: usize, table: &[f64]) -> f64 {
    table[q]
}
