// Fixture: a wall-clock read outside the det crates (and outside the
// obs barrier) feeding a deterministic-scope function.
pub fn wall_jitter() -> f64 {
    let t = std::time::Instant::now();
    t.elapsed().as_secs_f64()
}
