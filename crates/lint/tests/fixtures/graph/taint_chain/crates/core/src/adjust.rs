// Fixture: det-scope entry point tainted through a non-det callee.
pub fn adjusted_price(x: f64) -> f64 {
    x + wall_jitter()
}
