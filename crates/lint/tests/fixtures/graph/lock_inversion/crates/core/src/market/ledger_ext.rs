// Fixture: stripe order inversion that only exists across a call —
// each function alone acquires a single stripe and is locally clean.
use std::sync::Mutex;

pub struct Ledger {
    stripes: Vec<Mutex<Vec<f64>>>,
}

impl Ledger {
    pub fn settle(&self) {
        let g2 = self.stripes[2].lock();
        self.tail();
        drop(g2);
    }

    fn tail(&self) {
        let g1 = self.stripes[1].lock();
        drop(g1);
    }
}
