//! Fixture: float comparison hazards (rule `float`).

pub fn exact_eq(a: f64) -> bool {
    a == 0.5
}

pub fn exact_ne(b: f64) -> bool {
    b != 1.5
}

pub fn nan_trap(a: f64, b: f64) -> std::cmp::Ordering {
    a.partial_cmp(&b).unwrap()
}
