//! Fixture: determinism violations (rule `det`).
use std::collections::HashMap;
use std::time::{Instant, SystemTime};

pub fn wall_clock() -> SystemTime {
    SystemTime::now()
}

pub fn monotonic() -> Instant {
    Instant::now()
}

pub fn iterate() -> f64 {
    let m: HashMap<String, f64> = HashMap::new();
    let mut total = 0.0;
    for (_k, v) in m.iter() {
        total += *v;
    }
    for (_k, v) in &m {
        total += *v;
    }
    total
}
