//! Fixture: lock-order violations (rule `lock`).

use std::sync::{Mutex, RwLock};

pub fn stripe_under_core_write(core: &RwLock<u32>, stripes: &[Mutex<u32>; 2]) {
    let mut guard = core.write().unwrap();
    *guard += 1;
    let s = stripes[0].lock();
    drop(s);
}

pub fn descending_stripes(stripes: &[Mutex<u32>; 2]) {
    let a = stripes[1].lock();
    let b = stripes[0].lock();
    drop(a);
    drop(b);
}
