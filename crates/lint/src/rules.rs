//! The mbp-lint rule set.
//!
//! Five domain rules, each keyed by a short id used in findings and
//! waivers:
//!
//! * `det` — determinism: no wall-clock / entropy sources and no
//!   `HashMap`/`HashSet` iteration in the pricing, ledger, and
//!   serialization crates.
//! * `panic` — panic-freedom: no `.unwrap()`/`.expect()`/`panic!`-family
//!   macros/slice indexing in the serve-path modules of `crates/core`
//!   outside `#[cfg(test)]`.
//! * `float` — float discipline: no `==`/`!=` against float literals or
//!   infinity/NaN constants outside tests, and no NaN-unsafe
//!   `partial_cmp(..).unwrap()` chains.
//! * `lock` — lock order: `SharedBroker` stripe mutexes are acquired in
//!   ascending index only and never while a core `RwLock` write guard is
//!   held.
//! * `safety` — unsafe audit: every `unsafe` token carries a `SAFETY:`
//!   comment on the same line or in the comment block directly above.
//!
//! All rules are lexical: they walk the token stream from
//! [`crate::lexer`], which is precise about comments, strings, and
//! lifetimes but does not resolve types. The residual imprecision is
//! handled by the waiver mechanism (see `crate::lib` docs) and by scoping
//! each rule to the modules where its invariant is load-bearing.

use crate::lexer::{tokenize, Tok, TokKind};
use std::collections::BTreeSet;

/// All rule ids a waiver may name, including the engine's own `lint` id
/// used for malformed/unused waivers.
pub const RULE_IDS: &[&str] = &["det", "panic", "float", "lock", "safety", "cast"];

/// Interprocedural (call-graph) rule ids. These are *not* waivable with
/// `LINT-ALLOW` — a graph finding comes with a witness call chain and is
/// either fixed or excluded by a `LINT-SCOPE` annotation the analysis
/// itself verifies. Their `[graph]` budgets in `lint.toml` are pinned at
/// zero.
pub const GRAPH_RULE_IDS: &[&str] = &["reach-panic", "taint-det", "lock-graph"];

/// A single finding, positioned at the offending token.
#[derive(Debug, Clone)]
pub struct Finding {
    pub rule: &'static str,
    pub line: u32,
    pub col: u32,
    pub msg: String,
}

/// An inline waiver comment parsed out of the file.
#[derive(Debug, Clone)]
pub struct Waiver {
    pub rule: String,
    pub line: u32,
    pub col: u32,
    /// False when the comment matched the waiver marker but not the
    /// `(<rule>): <reason>` grammar.
    pub valid: bool,
}

/// How rules are scoped to the file being analyzed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScopeMode {
    /// Path-based scoping as configured for this repository.
    Repo,
    /// Every rule applies regardless of path; used by the fixture tests.
    AllRules,
}

/// Raw analysis of one file: pre-waiver findings plus the waivers seen.
#[derive(Debug, Default)]
pub struct FileAnalysis {
    pub findings: Vec<Finding>,
    pub waivers: Vec<Waiver>,
}

const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "drain",
    "retain",
];
const FLOAT_CONSTS: &[&str] = &["INFINITY", "NEG_INFINITY", "NAN"];
/// Keywords that can directly precede `[` without forming an index
/// expression (slice patterns, array types).
const NONINDEX_KEYWORDS: &[&str] = &[
    "let", "mut", "ref", "in", "return", "if", "else", "match", "move", "static", "const", "as",
    "break", "dyn", "impl", "where", "box",
];

/// Crates whose source must be free of wall-clock / entropy calls.
///
/// The serve daemon's decode/dispatch modules (`wire.rs`, `conn.rs`) are
/// in scope too: request handling must be a pure function of the byte
/// stream and the connection's Hello seed. The accept/IO loop
/// (`server.rs`) legitimately reads `Instant::now` for idle timeouts and
/// deliberately stays outside the scope rather than burning a waiver —
/// timeouts affect *when* work happens, never *what* it computes.
fn det_time_scope(path: &str) -> bool {
    const PREFIXES: &[&str] = &[
        "crates/core/src/",
        "crates/randx/src/",
        "crates/optim/src/",
        "crates/ml/src/",
        "crates/linalg/src/",
        "crates/data/src/",
    ];
    PREFIXES.iter().any(|p| path.starts_with(p))
        || matches!(
            path,
            "crates/serve/src/wire.rs" | "crates/serve/src/conn.rs"
        )
}

/// Map-iteration determinism additionally covers the serialization crate.
fn det_map_scope(path: &str) -> bool {
    det_time_scope(path) || path.starts_with("crates/obs/src/")
}

/// Serve-path modules: everything `quote`/`buy`/`*_into` executes, plus
/// their pricing/mechanism/error-transform dependencies — the network
/// daemon's wire decode/dispatch path, which faces untrusted bytes and
/// must return typed protocol errors instead of panicking — and the WAL
/// record codec and segment writer, whose recovery path scans arbitrarily
/// torn or corrupted on-disk bytes and must skip or truncate, never panic.
fn panic_scope(path: &str) -> bool {
    matches!(
        path,
        "crates/core/src/pricing.rs"
            | "crates/core/src/mechanism.rs"
            | "crates/core/src/error.rs"
            | "crates/core/src/market/agents.rs"
            | "crates/core/src/market/concurrent.rs"
            | "crates/serve/src/wire.rs"
            | "crates/serve/src/conn.rs"
            | "crates/wal/src/record.rs"
            | "crates/wal/src/log.rs"
    )
}

/// Decode paths where a truncating `as` cast can mis-frame a record: the
/// wire codec and the WAL record codec. A length or offset silently
/// wrapped by `as u32`/`as u16` frames the wrong number of bytes, which
/// the recovery scan then reads as torn data.
fn cast_scope(path: &str) -> bool {
    matches!(
        path,
        "crates/serve/src/wire.rs" | "crates/wal/src/record.rs"
    )
}

/// Whole-file test context: integration tests, benches, examples.
fn is_test_path(path: &str) -> bool {
    const MARKERS: &[&str] = &["tests/", "benches/", "examples/"];
    MARKERS
        .iter()
        .any(|m| path.starts_with(m) || path.contains(&format!("/{m}")))
}

/// Analyze one file. `rel_path` must use `/` separators and be relative
/// to the workspace root (it drives rule scoping in [`ScopeMode::Repo`]).
pub fn analyze(rel_path: &str, src: &str, mode: ScopeMode) -> FileAnalysis {
    let toks = tokenize(src);
    let code: Vec<&Tok> = toks.iter().filter(|t| !t.is_comment()).collect();
    let whole_file_test = mode == ScopeMode::Repo && is_test_path(rel_path);
    let test_mask = test_regions(&code, whole_file_test);
    let macro_mask = macro_regions(&code);
    let lines: Vec<&str> = src.lines().collect();

    let mut out = FileAnalysis {
        findings: Vec::new(),
        waivers: collect_waivers(&toks),
    };

    let all = mode == ScopeMode::AllRules;
    if all || det_time_scope(rel_path) {
        rule_det_time(&code, &test_mask, &mut out.findings);
    }
    if all || det_map_scope(rel_path) {
        rule_det_maps(&code, &test_mask, &mut out.findings);
    }
    if all || panic_scope(rel_path) {
        let scope_mask = scope_off_regions(&toks, &code, "reach-panic");
        let mask: Vec<bool> = test_mask
            .iter()
            .zip(scope_mask.iter())
            .map(|(t, s)| *t || *s)
            .collect();
        rule_panic(&code, &mask, &macro_mask, &mut out.findings);
    }
    if all || cast_scope(rel_path) {
        rule_cast(&code, &test_mask, &mut out.findings);
    }
    rule_float(&code, &test_mask, &mut out.findings);
    if all || code.iter().any(|t| t.is_ident("stripes")) {
        rule_lock(&code, &test_mask, &mut out.findings);
    }
    rule_safety(&toks, &code, &lines, &mut out.findings);

    out.findings.sort_by_key(|f| (f.line, f.col));
    out
}

/// Parse `LINT-ALLOW(<rule>): <reason>` waivers out of plain (non-doc)
/// comments. Doc comments are skipped so rule documentation can show the
/// grammar without registering a live waiver.
fn collect_waivers(toks: &[Tok]) -> Vec<Waiver> {
    let mut waivers = Vec::new();
    for t in toks {
        if !t.is_comment() {
            continue;
        }
        let text = &t.text;
        if text.starts_with("///")
            || text.starts_with("//!")
            || text.starts_with("/**")
            || text.starts_with("/*!")
        {
            continue;
        }
        let Some(pos) = text.find("LINT-ALLOW(") else {
            continue;
        };
        let rest = &text[pos + "LINT-ALLOW(".len()..];
        let valid = match rest.split_once(')') {
            Some((rule, tail)) => {
                let rule_ok = RULE_IDS.contains(&rule.trim());
                let reason_ok = tail
                    .trim_start()
                    .strip_prefix(':')
                    .is_some_and(|r| !r.trim().is_empty());
                if rule_ok && reason_ok {
                    waivers.push(Waiver {
                        rule: rule.trim().to_string(),
                        line: t.line,
                        col: t.col,
                        valid: true,
                    });
                    continue;
                }
                false
            }
            None => false,
        };
        if !valid {
            waivers.push(Waiver {
                rule: String::new(),
                line: t.line,
                col: t.col,
                valid: false,
            });
        }
    }
    waivers
}

/// Index of the token closing the delimiter opened at `open` (`(`/`[`/`{`).
/// Returns the last index when the file ends unbalanced.
fn match_delim(code: &[&Tok], open: usize) -> usize {
    let (o, c) = match code[open].text.as_str() {
        "(" => ("(", ")"),
        "[" => ("[", "]"),
        "{" => ("{", "}"),
        _ => return open,
    };
    let mut depth = 0usize;
    for (i, t) in code.iter().enumerate().skip(open) {
        if t.kind == TokKind::Punct {
            if t.text == o {
                depth += 1;
            } else if t.text == c {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
        }
    }
    code.len().saturating_sub(1)
}

/// Mark code tokens covered by `#[test]` / `#[cfg(test)]` / `#[bench]`
/// items (attribute through the item's closing brace or semicolon).
fn test_regions(code: &[&Tok], whole_file: bool) -> Vec<bool> {
    let n = code.len();
    let mut mask = vec![whole_file; n];
    if whole_file {
        return mask;
    }
    let mut i = 0usize;
    while i + 1 < n {
        if !(code[i].is_punct("#") && code[i + 1].is_punct("[")) {
            i += 1;
            continue;
        }
        let close = match_delim(code, i + 1);
        let is_test_attr = code[i + 1..close]
            .iter()
            .any(|t| t.is_ident("test") || t.is_ident("bench"));
        if !is_test_attr {
            i = close + 1;
            continue;
        }
        // Skip any further attributes on the same item.
        let mut k = close + 1;
        while k + 1 < n && code[k].is_punct("#") && code[k + 1].is_punct("[") {
            k = match_delim(code, k + 1) + 1;
        }
        // Walk to the item body: first `{` or `;` outside parens/brackets.
        let mut pd = 0i32;
        let mut end = None;
        while k < n {
            let t = code[k];
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "(" | "[" => pd += 1,
                    ")" | "]" => pd -= 1,
                    ";" if pd == 0 => {
                        end = Some(k);
                        break;
                    }
                    "{" if pd == 0 => {
                        end = Some(match_delim(code, k));
                        break;
                    }
                    _ => {}
                }
            }
            k += 1;
        }
        let end = end.unwrap_or(n - 1);
        for m in mask.iter_mut().take(end + 1).skip(i) {
            *m = true;
        }
        i = close + 1;
    }
    mask
}

/// Mark tokens inside macro invocation arguments (`name!(...)` etc.), so
/// lexical expression rules don't misread macro fragments.
fn macro_regions(code: &[&Tok]) -> Vec<bool> {
    let n = code.len();
    let mut mask = vec![false; n];
    for i in 0..n.saturating_sub(2) {
        let (name, bang, open) = (code[i], code[i + 1], code[i + 2]);
        let adjacent = name.kind == TokKind::Ident
            && bang.is_punct("!")
            && name.line == bang.line
            && name.col + name.text.len() as u32 == bang.col;
        if !adjacent {
            continue;
        }
        if !(open.is_punct("(") || open.is_punct("[") || open.is_punct("{")) {
            continue;
        }
        let close = match_delim(code, i + 2);
        for m in mask.iter_mut().take(close + 1).skip(i + 2) {
            *m = true;
        }
    }
    mask
}

/// Mark code tokens covered by an item carrying a
/// `// LINT-SCOPE(<rule>): <reason>` annotation directly above it.
///
/// Unlike `LINT-ALLOW`, a scope annotation is not a free pass: the
/// interprocedural pass re-checks every `reach-panic`-scoped function and
/// fails the run if it is actually reachable from a serve root. The
/// file-local rule only steps aside here so the proof obligation moves to
/// the call graph.
fn scope_off_regions(toks: &[Tok], code: &[&Tok], rule: &str) -> Vec<bool> {
    let n = code.len();
    let mut mask = vec![false; n];
    let marker = format!("LINT-SCOPE({rule})");
    for t in toks {
        if !t.is_comment() || t.text.starts_with("///") || t.text.starts_with("//!") {
            continue;
        }
        let Some(pos) = t.text.find(marker.as_str()) else {
            continue;
        };
        let tail = &t.text[pos + marker.len()..];
        let valid = tail
            .trim_start()
            .strip_prefix(':')
            .is_some_and(|r| !r.trim().is_empty());
        if !valid {
            continue;
        }
        // First code token past the annotation line starts the item.
        let Some(start) = code.iter().position(|c| c.line > t.line) else {
            continue;
        };
        // Skip attributes, then walk to the item body end.
        let mut k = start;
        while k + 1 < n && code[k].is_punct("#") && code[k + 1].is_punct("[") {
            k = match_delim(code, k + 1) + 1;
        }
        let mut pd = 0i32;
        let mut end = None;
        while k < n {
            let c = code[k];
            if c.kind == TokKind::Punct {
                match c.text.as_str() {
                    "(" | "[" => pd += 1,
                    ")" | "]" => pd -= 1,
                    ";" if pd == 0 => {
                        end = Some(k);
                        break;
                    }
                    "{" if pd == 0 => {
                        end = Some(match_delim(code, k));
                        break;
                    }
                    _ => {}
                }
            }
            k += 1;
        }
        let end = end.unwrap_or(n - 1);
        for m in mask.iter_mut().take(end + 1).skip(start) {
            *m = true;
        }
    }
    mask
}

/// Integer types a cast *into* can silently truncate on a 64-bit target.
/// `usize`/`u64`/`i64` and wider are excluded: the codec's native width is
/// 64 bits, so widening casts cannot lose framing information. The source
/// type is unknowable lexically — every cast into a narrow type is
/// flagged and the bound, if any, goes in the waiver reason.
const NARROW_CAST_TARGETS: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32"];

fn rule_cast(code: &[&Tok], test: &[bool], out: &mut Vec<Finding>) {
    for i in 0..code.len() {
        if test[i] {
            continue;
        }
        let t = code[i];
        if !t.is_ident("as") {
            continue;
        }
        let Some(target) = code.get(i + 1) else {
            continue;
        };
        if target.kind != TokKind::Ident || !NARROW_CAST_TARGETS.contains(&target.text.as_str()) {
            continue;
        }
        out.push(Finding {
            rule: "cast",
            line: t.line,
            col: t.col,
            msg: format!(
                "truncating `as {}` cast in a decode path — a wrapped length/offset mis-frames the record; use `try_from` with a typed error, or waive with the range proof",
                target.text
            ),
        });
    }
}

// -- pub(crate) accessors for the interprocedural layer ---------------------
//
// `symbols.rs` parses the same token stream and must agree token-for-token
// with the rule engine on what counts as test code, macro arguments, and
// delimiter matching — so it reuses these instead of reimplementing them.

pub(crate) fn is_test_path_pub(path: &str) -> bool {
    is_test_path(path)
}

pub(crate) fn match_delim_pub(code: &[&Tok], open: usize) -> usize {
    match_delim(code, open)
}

pub(crate) fn test_regions_pub(code: &[&Tok], whole_file: bool) -> Vec<bool> {
    test_regions(code, whole_file)
}

pub(crate) fn macro_regions_pub(code: &[&Tok]) -> Vec<bool> {
    macro_regions(code)
}

fn rule_det_time(code: &[&Tok], test: &[bool], out: &mut Vec<Finding>) {
    for i in 0..code.len() {
        if test[i] {
            continue;
        }
        let t = code[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        let clock = (t.text == "SystemTime" || t.text == "Instant")
            && code.get(i + 1).is_some_and(|n| n.is_punct("::"))
            && code.get(i + 2).is_some_and(|n| n.is_ident("now"));
        if clock {
            out.push(Finding {
                rule: "det",
                line: t.line,
                col: t.col,
                msg: format!(
                    "wall-clock call `{}::now` in a determinism-critical crate (thread seeded time through the config instead)",
                    t.text
                ),
            });
            continue;
        }
        if matches!(
            t.text.as_str(),
            "thread_rng" | "from_entropy" | "OsRng" | "ThreadRng"
        ) {
            out.push(Finding {
                rule: "det",
                line: t.line,
                col: t.col,
                msg: format!(
                    "entropy-seeded RNG `{}` in a determinism-critical crate (use the seeded mbp-randx streams)",
                    t.text
                ),
            });
        }
    }
}

fn rule_det_maps(code: &[&Tok], test: &[bool], out: &mut Vec<Finding>) {
    // Names bound or typed as HashMap/HashSet in this file.
    let mut names: BTreeSet<String> = BTreeSet::new();
    for i in 0..code.len() {
        let t = code[i];
        if !(t.is_ident("HashMap") || t.is_ident("HashSet")) {
            continue;
        }
        // Walk back over a `std::collections::` path prefix.
        let mut j = i;
        while j >= 2 && code[j - 1].is_punct("::") && code[j - 2].kind == TokKind::Ident {
            j -= 2;
        }
        if j == 0 {
            continue;
        }
        // `name: HashMap<..>` (binding or field type) or `name = HashMap::..`.
        let prev = code[j - 1];
        if (prev.is_punct(":") || prev.is_punct("="))
            && j >= 2
            && code[j - 2].kind == TokKind::Ident
        {
            names.insert(code[j - 2].text.clone());
        }
    }
    if names.is_empty() {
        return;
    }
    for i in 0..code.len() {
        if test[i] {
            continue;
        }
        let t = code[i];
        // map.iter() / .keys() / .values() / .drain() / .retain() …
        if t.kind == TokKind::Ident
            && names.contains(&t.text)
            && code.get(i + 1).is_some_and(|n| n.is_punct("."))
            && code.get(i + 2).is_some_and(|n| {
                n.kind == TokKind::Ident && ITER_METHODS.contains(&n.text.as_str())
            })
            && code.get(i + 3).is_some_and(|n| n.is_punct("("))
        {
            out.push(Finding {
                rule: "det",
                line: t.line,
                col: t.col,
                msg: format!(
                    "iteration over hash-ordered `{}` is nondeterministic (use BTreeMap/BTreeSet or collect-and-sort)",
                    t.text
                ),
            });
            continue;
        }
        // for pat in [&[mut]] map { … }
        if t.is_ident("for") {
            let mut k = i + 1;
            let limit = (i + 12).min(code.len());
            while k < limit && !code[k].is_ident("in") {
                k += 1;
            }
            if k >= limit {
                continue;
            }
            let mut m = k + 1;
            while code
                .get(m)
                .is_some_and(|x| x.is_punct("&") || x.is_ident("mut"))
            {
                m += 1;
            }
            if code
                .get(m)
                .is_some_and(|x| x.kind == TokKind::Ident && names.contains(&x.text))
                && code.get(m + 1).is_some_and(|x| x.is_punct("{"))
            {
                let x = code[m];
                out.push(Finding {
                    rule: "det",
                    line: x.line,
                    col: x.col,
                    msg: format!(
                        "for-loop over hash-ordered `{}` is nondeterministic (use BTreeMap/BTreeSet or collect-and-sort)",
                        x.text
                    ),
                });
            }
        }
    }
}

fn rule_panic(code: &[&Tok], test: &[bool], in_macro: &[bool], out: &mut Vec<Finding>) {
    for i in 0..code.len() {
        if test[i] {
            continue;
        }
        let t = code[i];
        // .unwrap( / .expect(
        if t.is_punct(".")
            && code
                .get(i + 1)
                .is_some_and(|n| n.is_ident("unwrap") || n.is_ident("expect"))
            && code.get(i + 2).is_some_and(|n| n.is_punct("("))
        {
            let n = code[i + 1];
            out.push(Finding {
                rule: "panic",
                line: n.line,
                col: n.col,
                msg: format!(
                    ".{}() can panic in a serve-path module (return a typed error or restructure infallibly)",
                    n.text
                ),
            });
            continue;
        }
        // panic!/unreachable!/todo!/unimplemented!
        if t.kind == TokKind::Ident
            && PANIC_MACROS.contains(&t.text.as_str())
            && code.get(i + 1).is_some_and(|n| {
                n.is_punct("!") && n.line == t.line && t.col + t.text.len() as u32 == n.col
            })
        {
            out.push(Finding {
                rule: "panic",
                line: t.line,
                col: t.col,
                msg: format!(
                    "{}! aborts the serve path (return a typed error instead)",
                    t.text
                ),
            });
            continue;
        }
        // Postfix indexing: `expr[...]` where expr ends in an identifier,
        // `)`, or `]`. Macro arguments are exempt (their fragments are not
        // plain expressions).
        if t.is_punct("[") && !in_macro[i] && i > 0 {
            let prev = code[i - 1];
            let postfix = match prev.kind {
                TokKind::Ident => !NONINDEX_KEYWORDS.contains(&prev.text.as_str()),
                TokKind::Punct => prev.text == ")" || prev.text == "]",
                _ => false,
            };
            if postfix {
                out.push(Finding {
                    rule: "panic",
                    line: t.line,
                    col: t.col,
                    msg: "slice/array indexing can panic in a serve-path module (use .get()/.first()/.last() or iterators)".to_string(),
                });
            }
        }
    }
}

fn rule_float(code: &[&Tok], test: &[bool], out: &mut Vec<Finding>) {
    for i in 0..code.len() {
        if test[i] {
            continue;
        }
        let t = code[i];
        if t.kind == TokKind::Punct && (t.text == "==" || t.text == "!=") {
            let prev_float = i > 0
                && (code[i - 1].kind == TokKind::Float
                    || (code[i - 1].kind == TokKind::Ident
                        && FLOAT_CONSTS.contains(&code[i - 1].text.as_str())));
            let next_float = code.get(i + 1).is_some_and(|n| n.kind == TokKind::Float) || {
                // `== f64::INFINITY`-style path: scan a short ident/`::` run.
                let mut j = i + 1;
                let mut hit = false;
                while j < code.len() && j <= i + 5 {
                    let n = code[j];
                    if n.kind == TokKind::Ident {
                        if FLOAT_CONSTS.contains(&n.text.as_str()) {
                            hit = true;
                        }
                        j += 1;
                    } else if n.is_punct("::") {
                        j += 1;
                    } else {
                        break;
                    }
                }
                hit
            };
            if prev_float || next_float {
                out.push(Finding {
                    rule: "float",
                    line: t.line,
                    col: t.col,
                    msg: format!(
                        "`{}` on floating-point values (compare against a tolerance, or restructure so exactness is provable)",
                        t.text
                    ),
                });
            }
            continue;
        }
        // partial_cmp(..).unwrap() / .expect(..): NaN panics at runtime.
        if t.is_ident("partial_cmp") && code.get(i + 1).is_some_and(|n| n.is_punct("(")) {
            let close = match_delim(code, i + 1);
            if code.get(close + 1).is_some_and(|n| n.is_punct("."))
                && code
                    .get(close + 2)
                    .is_some_and(|n| n.is_ident("unwrap") || n.is_ident("expect"))
            {
                out.push(Finding {
                    rule: "float",
                    line: t.line,
                    col: t.col,
                    msg: "partial_cmp().unwrap/expect panics on NaN (use f64::total_cmp)"
                        .to_string(),
                });
            }
        }
    }
}

fn rule_lock(code: &[&Tok], test: &[bool], out: &mut Vec<Finding>) {
    struct Guard {
        name: String,
        depth: i32,
        stmt_temp: bool,
    }
    let mut depth = 0i32;
    let mut write_guards: Vec<Guard> = Vec::new();
    let mut stripe_aliases: BTreeSet<String> = BTreeSet::new();
    let mut stmt_has_let = false;
    let mut let_name: Option<String> = None;
    let mut stmt_has_stripes = false;
    let mut last_const_idx: Option<i64> = None;
    // `for <vars> in …stripes… {` — the loop vars alias individual stripes.
    let mut for_state = 0u8; // 0 none, 1 collecting vars, 2 after `in`
    let mut for_vars: Vec<String> = Vec::new();
    let mut for_saw_stripes = false;

    for i in 0..code.len() {
        let t = code[i];
        match (t.kind, t.text.as_str()) {
            (TokKind::Punct, "{") => {
                depth += 1;
                if for_state == 2 && for_saw_stripes {
                    stripe_aliases.extend(for_vars.drain(..));
                }
                for_state = 0;
                stmt_has_let = false;
                let_name = None;
                stmt_has_stripes = false;
            }
            (TokKind::Punct, "}") => {
                depth -= 1;
                write_guards.retain(|g| g.depth <= depth);
                stmt_has_let = false;
                let_name = None;
                stmt_has_stripes = false;
            }
            (TokKind::Punct, ";") => {
                write_guards.retain(|g| !g.stmt_temp);
                for_state = 0;
                stmt_has_let = false;
                let_name = None;
                stmt_has_stripes = false;
            }
            (TokKind::Ident, "fn") => {
                last_const_idx = None;
            }
            (TokKind::Ident, "for") => {
                for_state = 1;
                for_vars.clear();
                for_saw_stripes = false;
            }
            (TokKind::Ident, "in") if for_state == 1 => {
                for_state = 2;
            }
            (TokKind::Ident, "let") => {
                stmt_has_let = true;
                let_name = None;
            }
            (TokKind::Ident, "drop")
                if code.get(i + 1).is_some_and(|n| n.is_punct("("))
                    && code.get(i + 2).is_some_and(|n| n.kind == TokKind::Ident)
                    && code.get(i + 3).is_some_and(|n| n.is_punct(")")) =>
            {
                let dropped = &code[i + 2].text;
                write_guards.retain(|g| &g.name != dropped);
            }
            (TokKind::Ident, "stripes") => {
                stmt_has_stripes = true;
                if for_state == 2 {
                    for_saw_stripes = true;
                }
                if stmt_has_let {
                    if let Some(n) = &let_name {
                        stripe_aliases.insert(n.clone());
                    }
                }
                // stripes[<const>].lock(): check ascending constant order.
                if code.get(i + 1).is_some_and(|n| n.is_punct("["))
                    && code.get(i + 2).is_some_and(|n| n.kind == TokKind::Int)
                    && code.get(i + 3).is_some_and(|n| n.is_punct("]"))
                    && code.get(i + 4).is_some_and(|n| n.is_punct("."))
                    && code
                        .get(i + 5)
                        .is_some_and(|n| n.is_ident("lock") || n.is_ident("try_lock"))
                {
                    let idx: i64 = code[i + 2].text.replace('_', "").parse().unwrap_or(0);
                    if let Some(last) = last_const_idx {
                        if idx < last {
                            out.push(Finding {
                                rule: "lock",
                                line: t.line,
                                col: t.col,
                                msg: format!(
                                    "stripe mutexes must be locked in ascending index order (stripe {idx} after stripe {last})"
                                ),
                            });
                        }
                    }
                    last_const_idx = Some(idx);
                }
            }
            (TokKind::Ident, "rev")
                if stmt_has_stripes
                    && i > 0
                    && code[i - 1].is_punct(".")
                    && code.get(i + 1).is_some_and(|n| n.is_punct("("))
                    && !test[i] =>
            {
                out.push(Finding {
                    rule: "lock",
                    line: t.line,
                    col: t.col,
                    msg: "reverse iteration over ledger stripes violates the ascending lock order"
                        .to_string(),
                });
            }
            (TokKind::Punct, ".")
                if code
                    .get(i + 1)
                    .is_some_and(|n| n.is_ident("lock") || n.is_ident("try_lock"))
                    && code.get(i + 2).is_some_and(|n| n.is_punct("(")) =>
            {
                let receiver_is_stripe = stmt_has_stripes
                    || (i > 0
                        && code[i - 1].kind == TokKind::Ident
                        && stripe_aliases.contains(&code[i - 1].text));
                if receiver_is_stripe && !write_guards.is_empty() && !test[i] {
                    let n = code[i + 1];
                    out.push(Finding {
                        rule: "lock",
                        line: n.line,
                        col: n.col,
                        msg: "stripe mutex acquired while the core RwLock write guard is held (drain stripes before taking the write lock)".to_string(),
                    });
                }
            }
            (TokKind::Ident, "write")
                if i > 0
                    && code[i - 1].is_punct(".")
                    && i > 1
                    && code[i - 2].is_ident("core")
                    && code.get(i + 1).is_some_and(|n| n.is_punct("(")) =>
            {
                write_guards.push(Guard {
                    name: let_name.clone().unwrap_or_default(),
                    depth,
                    stmt_temp: !stmt_has_let,
                });
            }
            (TokKind::Ident, _) => {
                if for_state == 1 {
                    for_vars.push(t.text.clone());
                } else if stmt_has_let && let_name.is_none() && t.text != "mut" {
                    let_name = Some(t.text.clone());
                }
            }
            _ => {}
        }
    }
}

fn rule_safety(toks: &[Tok], code: &[&Tok], lines: &[&str], out: &mut Vec<Finding>) {
    // Lines carrying a comment that contains "SAFETY:". Block comments
    // credit every line they span.
    let mut safety_lines: BTreeSet<u32> = BTreeSet::new();
    for t in toks {
        if t.is_comment() && t.text.contains("SAFETY:") {
            let span = t.text.matches('\n').count() as u32;
            for l in t.line..=t.line + span {
                safety_lines.insert(l);
            }
        }
    }
    for t in code {
        if !t.is_ident("unsafe") {
            continue;
        }
        let mut covered = safety_lines.contains(&t.line);
        let mut ln = t.line.saturating_sub(1);
        while !covered && ln >= 1 {
            if safety_lines.contains(&ln) {
                covered = true;
                break;
            }
            let raw = lines.get(ln as usize - 1).map_or("", |l| l.trim());
            // Walk up through the comment/attribute block (and adjacent
            // `unsafe impl`/`unsafe fn` lines sharing one justification).
            let skippable = raw.starts_with("//")
                || raw.starts_with("#[")
                || raw.starts_with("#!")
                || raw.starts_with("/*")
                || raw.starts_with('*')
                || raw.starts_with("unsafe ");
            if !skippable {
                break;
            }
            ln -= 1;
        }
        if !covered {
            out.push(Finding {
                rule: "safety",
                line: t.line,
                col: t.col,
                msg: "`unsafe` without a `// SAFETY:` comment justifying the invariant".to_string(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings(src: &str) -> Vec<Finding> {
        analyze("fixture.rs", src, ScopeMode::AllRules).findings
    }

    #[test]
    fn cfg_test_regions_are_exempt() {
        let src = r#"
fn hot(v: &[f64]) -> f64 { v.first().copied().unwrap_or(0.0) }
#[cfg(test)]
mod tests {
    #[test]
    fn t() { let v = vec![1.0]; let _ = v[0] + v.iter().sum::<f64>(); v.last().unwrap(); }
}
"#;
        assert!(
            findings(src).iter().all(|f| f.rule != "panic"),
            "{:?}",
            findings(src)
        );
    }

    #[test]
    fn indexing_in_macro_args_is_exempt() {
        let src = "fn f(w: &[f64]) { assert!(w[0] < w[1], \"sorted\"); }";
        assert!(findings(src).iter().all(|f| f.rule != "panic"));
    }

    #[test]
    fn slice_patterns_are_not_indexing() {
        let src = "fn f(v: &[f64; 2]) { let [a, b] = *v; let _ = a + b; }";
        assert!(findings(src).iter().all(|f| f.rule != "panic"));
    }

    #[test]
    fn hashmap_keyed_access_is_allowed() {
        let src = r#"
use std::collections::HashMap;
fn f(menu: &HashMap<u32, f64>) -> Option<f64> { menu.get(&1).copied() }
"#;
        assert!(findings(src).iter().all(|f| f.rule != "det"));
    }

    #[test]
    fn total_cmp_is_allowed() {
        let src = "fn f(v: &mut Vec<f64>) { v.sort_by(f64::total_cmp); }";
        assert!(findings(src).iter().all(|f| f.rule != "float"));
    }

    #[test]
    fn read_guard_plus_stripe_is_allowed() {
        let src = r#"
fn f(s: &Shared) {
    let core = s.inner.core.read();
    let total: f64 = s.inner.stripes.iter().map(|x| x.lock().len() as f64).sum();
    drop(core);
    let _ = total;
}
"#;
        assert!(
            findings(src).iter().all(|f| f.rule != "lock"),
            "{:?}",
            findings(src)
        );
    }

    #[test]
    fn drained_then_write_is_allowed() {
        let src = r#"
fn f(s: &Shared) {
    let mut drained = Vec::new();
    for stripe in s.inner.stripes.iter() {
        drained.append(&mut *stripe.lock());
    }
    let mut core = s.inner.core.write();
    core.settle(drained);
}
"#;
        assert!(
            findings(src).iter().all(|f| f.rule != "lock"),
            "{:?}",
            findings(src)
        );
    }

    #[test]
    fn safety_comment_above_group_covers_all() {
        let src = r#"
// SAFETY: the pointer is owned and unique for the region's lifetime.
unsafe impl Send for P {}
unsafe impl Sync for P {}
"#;
        assert!(
            findings(src).iter().all(|f| f.rule != "safety"),
            "{:?}",
            findings(src)
        );
    }

    // ---- serve daemon scope boundaries ------------------------------------
    // The wire decode/dispatch path faces untrusted bytes and must be
    // panic-free and clock-free; the accept/IO loop may read Instant for
    // idle timeouts and stays outside both scopes (no waiver spent).

    #[test]
    fn serve_request_path_is_in_det_and_panic_scope() {
        for path in ["crates/serve/src/wire.rs", "crates/serve/src/conn.rs"] {
            assert!(det_time_scope(path), "{path} must be det-scoped");
            assert!(det_map_scope(path), "{path} must be det-map-scoped");
            assert!(panic_scope(path), "{path} must be panic-scoped");
        }
        assert!(!det_time_scope("crates/serve/src/server.rs"));
        assert!(!panic_scope("crates/serve/src/server.rs"));
        assert!(!panic_scope("crates/serve/src/client.rs"));
        assert!(is_test_path("crates/serve/tests/loopback.rs"));
    }

    /// The WAL codec and segment writer parse torn / corrupted on-disk
    /// bytes and are panic-scoped; file I/O timing is legal there (no
    /// determinism scope), and the durability handle stays outside —
    /// its sink hooks only count errors.
    #[test]
    fn wal_recovery_path_is_panic_scoped_but_not_det_scoped() {
        for path in ["crates/wal/src/record.rs", "crates/wal/src/log.rs"] {
            assert!(panic_scope(path), "{path} must be panic-scoped");
            assert!(!det_time_scope(path), "{path} must not be det-scoped");
        }
        assert!(!panic_scope("crates/wal/src/durability.rs"));
        assert!(is_test_path("crates/wal/tests/wal_recovery.rs"));
    }

    #[test]
    fn serve_conn_fixture_flags_unwrap_and_clock_in_repo_mode() {
        let src =
            "fn f(v: &[u8]) -> u8 { let _t = std::time::Instant::now(); v.first().copied().unwrap() }";
        let conn = analyze("crates/serve/src/conn.rs", src, ScopeMode::Repo);
        assert!(
            conn.findings.iter().any(|f| f.rule == "panic"),
            "{:?}",
            conn.findings
        );
        assert!(
            conn.findings.iter().any(|f| f.rule == "det"),
            "{:?}",
            conn.findings
        );
        // The same source in the IO loop is legal: timeouts change when
        // work happens, never what it computes.
        let server = analyze("crates/serve/src/server.rs", src, ScopeMode::Repo);
        assert!(server.findings.is_empty(), "{:?}", server.findings);
    }

    // ---- tracing-layer idioms (mbp-obs v2) --------------------------------
    // The span/flight-recorder code keeps all wall-clock reads inside
    // `crates/obs` and `crates/bench`, which sit outside the `det` scope.
    // These fixtures pin the boundary: the patterns obs exports into
    // det-scoped crates stay clean, and the patterns it must NOT leak
    // (clock reads, HashMap iteration) still flag.

    #[test]
    fn wall_clock_read_still_flags_in_det_scope() {
        // Span timing must stay behind the obs API; an `Instant::now()`
        // smuggled into a pricing crate is a det finding, not a waiver.
        let src = "fn stamp() -> std::time::Instant { std::time::Instant::now() }";
        assert!(
            findings(src).iter().any(|f| f.rule == "det"),
            "{:?}",
            findings(src)
        );
    }

    #[test]
    fn thread_local_cell_trace_context_is_clean() {
        // The trace-context token (`trace << 32 | span`) propagated through
        // worker threads: thread_local Cell get/replace, no findings.
        let src = r#"
thread_local! {
    static CONTEXT: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}
fn enter(token: u64) -> u64 {
    CONTEXT.with(|c| c.replace(token))
}
fn current() -> u64 {
    CONTEXT.with(std::cell::Cell::get)
}
"#;
        assert!(findings(src).is_empty(), "{:?}", findings(src));
    }

    #[test]
    fn btreemap_iteration_is_allowed_where_hashmap_iteration_flags() {
        // Labeled histograms key series by (listing, mechanism, phase) in a
        // BTreeMap precisely so snapshot iteration stays deterministic.
        let clean = r#"
use std::collections::BTreeMap;
fn snapshot(series: &BTreeMap<String, u64>) -> Vec<(String, u64)> {
    series.iter().map(|(k, v)| (k.clone(), *v)).collect()
}
"#;
        assert!(
            findings(clean).iter().all(|f| f.rule != "det"),
            "{:?}",
            findings(clean)
        );
        let dirty = r#"
use std::collections::HashMap;
fn snapshot() -> Vec<(String, u64)> {
    let series: HashMap<String, u64> = HashMap::new();
    series.iter().map(|(k, v)| (k.clone(), *v)).collect()
}
"#;
        assert!(
            findings(dirty).iter().any(|f| f.rule == "det"),
            "{:?}",
            findings(dirty)
        );
    }

    #[test]
    fn phase_guard_before_stripe_lock_is_allowed() {
        // The concurrent ledger wraps stripe acquisition in a lock-wait
        // phase guard; the RAII guard binding must not confuse the
        // ascending-stripe lock-order rule.
        let src = r#"
fn f(s: &Shared) {
    let _wait = mbp_obs::phase(mbp_obs::Phase::LockWait);
    let a = s.inner.stripes[0].lock();
    drop(_wait);
    let _ledger = mbp_obs::phase(mbp_obs::Phase::Ledger);
    let b = s.inner.stripes[1].lock();
    let _ = (a, b);
}
"#;
        assert!(
            findings(src).iter().all(|f| f.rule != "lock"),
            "{:?}",
            findings(src)
        );
    }

    #[test]
    fn seqlock_ring_publish_is_clean() {
        // The flight recorder's seqlock slot protocol: sequence bump,
        // checked slot access, release store. No unsafe, no unwrap, no
        // indexing panics — the pattern must pass every rule unwaived.
        let src = r#"
use std::sync::atomic::{AtomicU64, Ordering};
struct Slot { seq: AtomicU64, payload: std::sync::Mutex<u64> }
fn record(slots: &[Slot], cursor: &AtomicU64, value: u64) {
    let idx = cursor.fetch_add(1, Ordering::Relaxed) as usize % slots.len().max(1);
    if let Some(slot) = slots.get(idx) {
        let seq = slot.seq.load(Ordering::Acquire);
        slot.seq.store(seq.wrapping_add(1), Ordering::Release);
        if let Ok(mut p) = slot.payload.lock() {
            *p = value;
        }
        slot.seq.store(seq.wrapping_add(2), Ordering::Release);
    }
}
"#;
        assert!(findings(src).is_empty(), "{:?}", findings(src));
    }
}
