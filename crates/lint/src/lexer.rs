//! A lightweight Rust tokenizer for the lint pass.
//!
//! This is not a full Rust lexer: it only distinguishes the token classes
//! the rule engine needs — identifiers, punctuation/operators, numeric
//! literals (int vs float), strings, char literals vs lifetimes, and
//! comments. It is careful about exactly the things that break naive
//! regex-based linting:
//!
//! * `//` and nested `/* */` comments (so `"// not a comment"` inside a
//!   string never starts one, and `unwrap` inside a comment never fires),
//! * string, raw-string (`r#"…"#`), byte-string, and char literals,
//! * `'a` lifetimes vs `'a'` char literals,
//! * float literals (`1.0`, `1e-9`, `2f64`) vs integers and ranges
//!   (`0..n` does not produce a float).
//!
//! Positions are 1-based line/column so findings can be emitted in the
//! conventional `file:line:col` format.

/// Classification of a lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (including raw identifiers `r#type`).
    Ident,
    /// A lifetime such as `'a` (never a char literal).
    Lifetime,
    /// Char literal `'x'`, `'\n'`.
    Char,
    /// String literal of any flavor: `"…"`, `r"…"`, `r#"…"#`, `b"…"`.
    Str,
    /// Integer literal.
    Int,
    /// Float literal (`1.0`, `1e9`, `3f64`).
    Float,
    /// `// …` line comment (doc comments included).
    LineComment,
    /// `/* … */` block comment (nesting handled).
    BlockComment,
    /// Operator or punctuation; multi-char operators (`==`, `::`, `..=`,
    /// `->`, …) are a single token.
    Punct,
}

/// One lexed token with its source text and 1-based position.
#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
    pub col: u32,
}

impl Tok {
    pub fn is(&self, kind: TokKind, text: &str) -> bool {
        self.kind == kind && self.text == text
    }
    pub fn is_ident(&self, text: &str) -> bool {
        self.is(TokKind::Ident, text)
    }
    pub fn is_punct(&self, text: &str) -> bool {
        self.is(TokKind::Punct, text)
    }
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokKind::LineComment | TokKind::BlockComment)
    }
}

/// Multi-char operators, longest first so greedy matching is correct.
const OPERATORS: &[&str] = &[
    "<<=", ">>=", "..=", "...", "==", "!=", "<=", ">=", "&&", "||", "::", "->", "=>", "..", "<<",
    ">>", "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=",
];

struct Cursor<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn new(src: &'a str) -> Self {
        Cursor {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek(0)?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }

    fn starts_with(&self, s: &str) -> bool {
        self.src[self.pos..].starts_with(s.as_bytes())
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Tokenize `src` into the flat token stream the rules walk.
///
/// The lexer never fails: unrecognized bytes become single-char `Punct`
/// tokens, and unterminated strings/comments consume to end of input.
pub fn tokenize(src: &str) -> Vec<Tok> {
    let mut cur = Cursor::new(src);
    let mut toks = Vec::new();
    while let Some(b) = cur.peek(0) {
        let (line, col) = (cur.line, cur.col);
        if b.is_ascii_whitespace() {
            cur.bump();
            continue;
        }
        let start = cur.pos;
        let kind = if cur.starts_with("//") {
            while let Some(c) = cur.peek(0) {
                if c == b'\n' {
                    break;
                }
                cur.bump();
            }
            TokKind::LineComment
        } else if cur.starts_with("/*") {
            cur.bump();
            cur.bump();
            let mut depth = 1usize;
            while depth > 0 {
                if cur.starts_with("/*") {
                    depth += 1;
                    cur.bump();
                    cur.bump();
                } else if cur.starts_with("*/") {
                    depth -= 1;
                    cur.bump();
                    cur.bump();
                } else if cur.bump().is_none() {
                    break;
                }
            }
            TokKind::BlockComment
        } else if b == b'"' {
            lex_string(&mut cur);
            TokKind::Str
        } else if (b == b'r' || b == b'b') && is_raw_or_byte_string(&cur) {
            // r"…", r#"…"#, b"…", br"…", rb…; consume prefix letters then
            // the string body.
            while matches!(cur.peek(0), Some(b'r') | Some(b'b')) {
                cur.bump();
            }
            if cur.peek(0) == Some(b'\'') {
                // b'x' byte char
                lex_char(&mut cur);
                TokKind::Char
            } else {
                let mut hashes = 0usize;
                while cur.peek(0) == Some(b'#') {
                    hashes += 1;
                    cur.bump();
                }
                if cur.peek(0) == Some(b'"') {
                    cur.bump();
                    lex_raw_string_body(&mut cur, hashes);
                }
                TokKind::Str
            }
        } else if b == b'\'' {
            // Lifetime vs char literal: `'a` followed by a non-quote is a
            // lifetime; `'a'`, `'\n'` are chars.
            if cur.peek(1).is_some_and(is_ident_start)
                && cur.peek(1) != Some(b'\\')
                && cur.peek(2) != Some(b'\'')
            {
                cur.bump(); // '
                while cur.peek(0).is_some_and(is_ident_continue) {
                    cur.bump();
                }
                TokKind::Lifetime
            } else {
                lex_char(&mut cur);
                TokKind::Char
            }
        } else if is_ident_start(b) {
            if cur.starts_with("r#") && cur.peek(2).is_some_and(is_ident_start) {
                cur.bump();
                cur.bump();
            }
            while cur.peek(0).is_some_and(is_ident_continue) {
                cur.bump();
            }
            TokKind::Ident
        } else if b.is_ascii_digit() {
            lex_number(&mut cur)
        } else {
            let mut matched = false;
            for op in OPERATORS {
                if cur.starts_with(op) {
                    for _ in 0..op.len() {
                        cur.bump();
                    }
                    matched = true;
                    break;
                }
            }
            if !matched {
                cur.bump();
            }
            TokKind::Punct
        };
        let text = String::from_utf8_lossy(&cur.src[start..cur.pos]).into_owned();
        toks.push(Tok {
            kind,
            text,
            line,
            col,
        });
    }
    toks
}

/// True when the cursor sits on a raw/byte string or byte-char prefix
/// (`r"`, `r#`, `b"`, `b'`, `br`, `rb` combos) rather than an identifier
/// that merely starts with `r`/`b`.
fn is_raw_or_byte_string(cur: &Cursor) -> bool {
    let mut i = 0;
    while matches!(cur.peek(i), Some(b'r') | Some(b'b')) && i < 2 {
        i += 1;
    }
    // Raw identifiers (`r#type`) are handled by the ident branch; `r#"` is
    // a raw string.
    match cur.peek(i) {
        Some(b'"') => true,
        Some(b'\'') if cur.peek(0) == Some(b'b') => true,
        Some(b'#') => {
            let mut j = i;
            while cur.peek(j) == Some(b'#') {
                j += 1;
            }
            cur.peek(j) == Some(b'"')
        }
        _ => false,
    }
}

fn lex_string(cur: &mut Cursor) {
    cur.bump(); // opening quote
    while let Some(c) = cur.bump() {
        match c {
            b'\\' => {
                cur.bump();
            }
            b'"' => break,
            _ => {}
        }
    }
}

fn lex_raw_string_body(cur: &mut Cursor, hashes: usize) {
    loop {
        match cur.bump() {
            None => break,
            Some(b'"') => {
                let mut h = 0usize;
                while h < hashes && cur.peek(0) == Some(b'#') {
                    cur.bump();
                    h += 1;
                }
                if h == hashes {
                    break;
                }
            }
            Some(_) => {}
        }
    }
}

fn lex_char(cur: &mut Cursor) {
    cur.bump(); // opening '
    let mut seen = 0usize;
    while let Some(c) = cur.peek(0) {
        match c {
            b'\\' => {
                cur.bump();
                cur.bump();
            }
            b'\'' => {
                cur.bump();
                break;
            }
            _ => {
                cur.bump();
            }
        }
        seen += 1;
        if seen > 12 {
            break; // malformed; bail rather than eat the file
        }
    }
}

fn lex_number(cur: &mut Cursor) -> TokKind {
    let mut float = false;
    if cur.starts_with("0x") || cur.starts_with("0b") || cur.starts_with("0o") {
        cur.bump();
        cur.bump();
        while cur
            .peek(0)
            .is_some_and(|c| c.is_ascii_alphanumeric() || c == b'_')
        {
            cur.bump();
        }
        return TokKind::Int;
    }
    while cur.peek(0).is_some_and(|c| c.is_ascii_digit() || c == b'_') {
        cur.bump();
    }
    // A `.` is part of the number only when followed by a digit, so `0..n`
    // and `1.max(x)` stay integers.
    if cur.peek(0) == Some(b'.') && cur.peek(1).is_some_and(|c| c.is_ascii_digit()) {
        float = true;
        cur.bump();
        while cur.peek(0).is_some_and(|c| c.is_ascii_digit() || c == b'_') {
            cur.bump();
        }
    }
    if matches!(cur.peek(0), Some(b'e') | Some(b'E'))
        && (cur.peek(1).is_some_and(|c| c.is_ascii_digit())
            || (matches!(cur.peek(1), Some(b'+') | Some(b'-'))
                && cur.peek(2).is_some_and(|c| c.is_ascii_digit())))
    {
        float = true;
        cur.bump();
        if matches!(cur.peek(0), Some(b'+') | Some(b'-')) {
            cur.bump();
        }
        while cur.peek(0).is_some_and(|c| c.is_ascii_digit() || c == b'_') {
            cur.bump();
        }
    }
    // Type suffix: `1f64` is a float, `1u32` an int.
    if cur.starts_with("f32") || cur.starts_with("f64") {
        float = true;
    }
    while cur.peek(0).is_some_and(is_ident_continue) {
        cur.bump();
    }
    if float {
        TokKind::Float
    } else {
        TokKind::Int
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        tokenize(src)
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn comments_hide_tokens() {
        let toks = kinds("a // unwrap()\nb /* expect() /* nested */ */ c");
        let idents: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Ident)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(idents, ["a", "b", "c"]);
        assert!(toks.iter().any(|(k, _)| *k == TokKind::LineComment));
        assert!(toks.iter().any(|(k, _)| *k == TokKind::BlockComment));
    }

    #[test]
    fn strings_do_not_start_comments() {
        let toks = kinds(r#"let s = "// not a comment"; x"#);
        assert!(toks.iter().all(|(k, _)| *k != TokKind::LineComment));
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Ident && t == "x"));
    }

    #[test]
    fn raw_strings_and_hashes() {
        let toks = kinds(r###"let s = r#"a "quoted" // thing"#; y"###);
        assert!(toks.iter().all(|(k, _)| *k != TokKind::LineComment));
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Ident && t == "y"));
    }

    #[test]
    fn lifetimes_vs_chars() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        let lifetimes = toks.iter().filter(|(k, _)| *k == TokKind::Lifetime).count();
        let chars = toks.iter().filter(|(k, _)| *k == TokKind::Char).count();
        assert_eq!(lifetimes, 2);
        assert_eq!(chars, 2);
    }

    #[test]
    fn numbers_ints_floats_ranges() {
        let toks = kinds("let a = 1.0; let b = 0..n; let c = 1e-9; let d = 2f64; let e = 7;");
        let floats: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Float)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(floats, ["1.0", "1e-9", "2f64"]);
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Punct && t == ".."));
    }

    #[test]
    fn multichar_operators_are_single_tokens() {
        let toks = kinds("a == b != c && d || e ..= f -> g => h :: i");
        let ops: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Punct)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(ops, ["==", "!=", "&&", "||", "..=", "->", "=>", "::"]);
    }

    #[test]
    fn positions_are_one_based() {
        let toks = tokenize("ab\n  cd");
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }
}
