//! The three interprocedural analyses over the workspace call graph.
//!
//! * [`analyze_reach_panic`] — transitive panic-freedom of the serve
//!   path. Roots (wire/conn dispatch, `quote_*`/`buy_*`/`price_at*`/
//!   `perturb*` entry points, `wal` `recover*`) must not reach any
//!   syntactic panic site or panic-capable std call.
//! * [`analyze_taint`] — determinism taint. Nondeterminism sources
//!   (clock reads, ambient RNG, hash-order iteration, thread ids) must
//!   not flow into the deterministic crates from *any* caller path.
//! * [`analyze_locks`] — interprocedural lock order. Function summaries
//!   of acquired-guard sets are replayed at every call site; descending
//!   stripe acquisition, stripes taken under the core write guard, and
//!   cycles in the global lock-order graph all fail.
//!
//! Every finding carries its witness: the call chain from a root (or a
//! det-scope function) to the offending site, rendered into the message
//! and exported in the `--graph-out` JSON artifact.

use crate::callgraph::CallGraph;
use crate::symbols::{BodyEvent, FnItem, LockClass};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// One interprocedural finding. `chain` is the witness path as graph ids
/// (root-first for reachability findings, det-fn-first for taint).
#[derive(Debug, Clone)]
pub struct GraphFinding {
    pub rule: &'static str,
    pub rel_path: String,
    pub line: u32,
    pub col: u32,
    pub msg: String,
    pub chain: Vec<usize>,
}

/// Serve-path roots: the functions adversarial input can drive.
///
/// Name patterns bind at a word boundary — `buy` and `buy_batch_into`
/// are roots, `buyer_population` is not (it is sim-construction code,
/// not a wire entry point).
pub fn is_serve_root(f: &FnItem) -> bool {
    if f.is_test || is_harness(f) {
        return false;
    }
    if matches!(
        f.rel_path.as_str(),
        "crates/serve/src/wire.rs" | "crates/serve/src/conn.rs"
    ) {
        return true;
    }
    if f.rel_path.starts_with("crates/wal/src/") && f.name.starts_with("recover") {
        return true;
    }
    const PATTERNS: &[&str] = &["quote", "buy", "price_at", "perturb"];
    PATTERNS.iter().any(|p| {
        f.name
            .strip_prefix(p)
            .is_some_and(|rest| rest.is_empty() || rest.starts_with('_'))
    })
}

/// Development-harness crates: test oracles, benches, load generators,
/// the CLI, and the linter itself. They are dev-dependencies (or separate
/// binaries) that never link into the serving process, and their panics
/// are part of their contract — a test oracle *should* abort loudly on an
/// impossible state. They are excluded from `reach-panic` roots and
/// traversal so oracle assertions do not drown the serve-path report.
pub fn is_harness(f: &FnItem) -> bool {
    const PREFIXES: &[&str] = &[
        "crates/testkit/",
        "crates/bench/",
        "crates/loadgen/",
        "crates/cli/",
        "crates/lint/",
    ];
    PREFIXES.iter().any(|p| f.rel_path.starts_with(p))
}

/// Crates whose outputs must be a pure function of their inputs.
pub fn is_det_scope(f: &FnItem) -> bool {
    const PREFIXES: &[&str] = &[
        "crates/core/src/",
        "crates/randx/src/",
        "crates/optim/src/",
        "crates/ml/src/",
        "crates/linalg/src/",
        "crates/data/src/",
    ];
    PREFIXES.iter().any(|p| f.rel_path.starts_with(p))
}

/// Taint barriers: observability and benches read clocks by design, and
/// their results never flow back into computed values (spans and counters
/// return `()` or guard types consumed for timing only). A function can
/// also declare itself a barrier with `LINT-SCOPE(taint-det)` — used for
/// instrumentation shims whose time reads are provably dead to pricing.
pub fn is_taint_barrier(f: &FnItem) -> bool {
    f.rel_path.starts_with("crates/obs/src/")
        || f.rel_path.starts_with("crates/bench/")
        || f.scope_off.contains("taint-det")
}

/// Shortest-path parents from `roots` over forward edges. `parent[id]`
/// is the caller that first reached `id` (roots map to themselves).
fn bfs_forward(g: &CallGraph, roots: &[usize]) -> BTreeMap<usize, usize> {
    let mut parent: BTreeMap<usize, usize> = BTreeMap::new();
    let mut q = VecDeque::new();
    for &r in roots {
        parent.entry(r).or_insert(r);
        q.push_back(r);
    }
    while let Some(id) = q.pop_front() {
        for e in &g.edges[id] {
            for &t in &e.targets {
                if g.fns[t].is_test || is_harness(&g.fns[t]) {
                    continue;
                }
                parent.entry(t).or_insert_with(|| {
                    q.push_back(t);
                    id
                });
            }
        }
    }
    parent
}

/// Witness chain root → ... → `id` using BFS parents.
fn chain_to(parent: &BTreeMap<usize, usize>, id: usize) -> Vec<usize> {
    let mut chain = vec![id];
    let mut cur = id;
    while let Some(&p) = parent.get(&cur) {
        if p == cur {
            break;
        }
        chain.push(p);
        cur = p;
    }
    chain.reverse();
    chain
}

/// Transitive panic-freedom of the serve path.
pub fn analyze_reach_panic(g: &CallGraph) -> (Vec<GraphFinding>, BTreeSet<usize>) {
    let roots = g.ids_where(is_serve_root);
    let parent = bfs_forward(g, &roots);
    let mut findings = Vec::new();
    let mut flagged = BTreeSet::new();

    for &id in parent.keys() {
        let f = &g.fns[id];
        let chain = chain_to(&parent, id);
        if f.scope_off.contains("reach-panic") {
            // The annotation claims unreachability; reaching it here
            // falsifies the claim. One finding for the function, not one
            // per panic site — fixing reachability fixes them all.
            findings.push(GraphFinding {
                rule: "reach-panic",
                rel_path: f.rel_path.clone(),
                line: f.line,
                col: f.col,
                msg: format!(
                    "`{}` is annotated LINT-SCOPE(reach-panic) but IS reachable from a serve root: {}",
                    f.display(),
                    g.chain(&chain)
                ),
                chain,
            });
            flagged.insert(id);
            continue;
        }
        for p in &f.panics {
            findings.push(GraphFinding {
                rule: "reach-panic",
                rel_path: f.rel_path.clone(),
                line: p.line,
                col: p.col,
                msg: format!(
                    "may-panic site ({}) reachable from serve root: {}",
                    p.what,
                    g.chain(&chain)
                ),
                chain: chain.clone(),
            });
            flagged.insert(id);
        }
        for e in &g.edges[id] {
            if e.std_panic {
                let call = &f.calls[e.call_idx];
                findings.push(GraphFinding {
                    rule: "reach-panic",
                    rel_path: f.rel_path.clone(),
                    line: call.line,
                    col: call.col,
                    msg: format!(
                        "call to panic-capable std `{}` reachable from serve root: {}",
                        call.name(),
                        g.chain(&chain)
                    ),
                    chain: chain.clone(),
                });
                flagged.insert(id);
            }
        }
    }
    let reachable: BTreeSet<usize> = parent.keys().copied().collect();
    (findings, reachable.union(&flagged).copied().collect())
}

/// Determinism taint: sources must not reach det-scope functions.
///
/// Reported at the det-scope *entry point* — the first det-scope function
/// on the path to the source — so one leak produces one finding, not one
/// per transitive caller.
pub fn analyze_taint(g: &CallGraph) -> (Vec<GraphFinding>, BTreeSet<usize>) {
    // Reverse adjacency.
    let mut radj: Vec<Vec<usize>> = vec![Vec::new(); g.fns.len()];
    for (id, edges) in g.edges.iter().enumerate() {
        for e in edges {
            for &t in &e.targets {
                radj[t].push(id);
            }
        }
    }
    // Seeds: non-test, non-barrier functions with a direct taint site.
    let seeds: Vec<usize> = g
        .fns
        .iter()
        .enumerate()
        .filter(|(_, f)| !f.is_test && !is_taint_barrier(f) && !f.taints.is_empty())
        .map(|(id, _)| id)
        .collect();
    // Propagate taint to callers; next_hop[caller] = callee toward seed.
    let mut next_hop: BTreeMap<usize, usize> = BTreeMap::new();
    let mut q = VecDeque::new();
    for &s in &seeds {
        next_hop.entry(s).or_insert(s);
        q.push_back(s);
    }
    while let Some(id) = q.pop_front() {
        for &caller in &radj[id] {
            let cf = &g.fns[caller];
            if cf.is_test || is_taint_barrier(cf) {
                continue;
            }
            next_hop.entry(caller).or_insert_with(|| {
                q.push_back(caller);
                id
            });
        }
    }

    let mut findings = Vec::new();
    let mut flagged = BTreeSet::new();
    for &id in next_hop.keys() {
        let f = &g.fns[id];
        if f.is_test || !is_det_scope(f) {
            continue;
        }
        // Entry point: directly tainted, or tainted via a non-det callee.
        let via = next_hop[&id];
        let is_entry = via == id || !is_det_scope(&g.fns[via]);
        if !is_entry {
            continue;
        }
        // Chain det fn → ... → seed.
        let mut chain = vec![id];
        let mut cur = id;
        while next_hop[&cur] != cur {
            cur = next_hop[&cur];
            chain.push(cur);
        }
        let seed = &g.fns[*chain.last().unwrap_or(&id)];
        let source = seed
            .taints
            .first()
            .map(|t| format!("{} at {}:{}", t.what, seed.rel_path, t.line))
            .unwrap_or_else(|| "nondeterminism source".to_string());
        findings.push(GraphFinding {
            rule: "taint-det",
            rel_path: f.rel_path.clone(),
            line: f.line,
            col: f.col,
            msg: format!(
                "det-scope `{}` reaches a nondeterminism source ({}): {}",
                f.display(),
                source,
                g.chain(&chain)
            ),
            chain: chain.clone(),
        });
        flagged.insert(id);
    }
    let tainted: BTreeSet<usize> = next_hop.keys().copied().collect();
    (findings, tainted)
}

/// Interprocedural lock order.
pub fn analyze_locks(g: &CallGraph) -> Vec<GraphFinding> {
    let n = g.fns.len();

    // --- Fixpoint: transitive acquire summaries -----------------------------
    // summary[f] = lock classes acquired at some point while f runs,
    // including callees. via[f][class] = the callee the class came through
    // (absent for direct acquisition) — used to build witness chains.
    let mut summary: Vec<BTreeSet<LockClass>> = vec![BTreeSet::new(); n];
    let mut via: Vec<BTreeMap<LockClass, usize>> = vec![BTreeMap::new(); n];
    for (id, f) in g.fns.iter().enumerate() {
        for c in &f.acquires {
            summary[id].insert(c.clone());
        }
    }
    let mut changed = true;
    while changed {
        changed = false;
        for id in 0..n {
            if g.fns[id].is_test {
                continue;
            }
            for e in &g.edges[id] {
                for &t in &e.targets {
                    if g.fns[t].is_test {
                        continue;
                    }
                    let classes: Vec<LockClass> = summary[t].iter().cloned().collect();
                    for c in classes {
                        if summary[id].insert(c.clone()) {
                            via[id].insert(c, t);
                            changed = true;
                        }
                    }
                }
            }
        }
    }

    // Witness: fn -> ... -> fn that directly acquires `class`.
    let acquire_chain = |mut id: usize, class: &LockClass| -> Vec<usize> {
        let mut chain = vec![id];
        while let Some(&next) = via[id].get(class) {
            if next == id {
                break;
            }
            chain.push(next);
            id = next;
        }
        chain
    };

    let mut findings = Vec::new();
    // Global lock-order edges between collapsed nodes, with provenance:
    // (held node, acquired node) -> (file, line, col, description).
    let mut order_edges: BTreeMap<(String, String), (String, u32, u32, String)> = BTreeMap::new();

    // --- Replay each body's events against held-guard state -----------------
    for (id, f) in g.fns.iter().enumerate() {
        if f.is_test {
            continue;
        }
        // (class, binding, depth): live guards. depth = block depth at bind
        // time; let-bound guards die when their block closes, temporaries
        // at statement end.
        let mut held: Vec<(LockClass, Option<String>, u32)> = Vec::new();
        let mut depth: u32 = 0;

        let check =
            |held: &[(LockClass, Option<String>, u32)],
             acquired: &LockClass,
             line: u32,
             col: u32,
             via_chain: Option<&Vec<usize>>,
             findings: &mut Vec<GraphFinding>,
             order_edges: &mut BTreeMap<(String, String), (String, u32, u32, String)>| {
                let suffix = match via_chain {
                    Some(chain) if chain.len() > 1 => format!(" via {}", g.chain(chain)),
                    _ => String::new(),
                };
                for (h, _, _) in held {
                    // Order edge (collapsed); self-edges carry no order info.
                    let (hn, an) = (h.order_node(), acquired.order_node());
                    if hn != an {
                        order_edges.entry((hn.clone(), an.clone())).or_insert((
                            f.rel_path.clone(),
                            line,
                            col,
                            format!("`{}` acquires {an} while holding {hn}{suffix}", f.display()),
                        ));
                    }
                    let violation = match (h, acquired) {
                        (LockClass::CoreWrite, a) if a.is_stripe() => Some(
                            "stripe mutex acquired while the core write guard is held".to_string(),
                        ),
                        (LockClass::StripeConst(i), LockClass::StripeConst(j)) if j <= i => {
                            Some(format!(
                                "stripe {j} acquired while stripe {i} is held (descending order)"
                            ))
                        }
                        (LockClass::StripeConst(_), LockClass::StripeAny) => {
                            Some("nested stripe acquisition with unprovable ordering".to_string())
                        }
                        (LockClass::StripeAny, a2) if a2.is_stripe() => {
                            Some("nested stripe acquisition with unprovable ordering".to_string())
                        }
                        _ => None,
                    };
                    if let Some(v) = violation {
                        let chain = via_chain.cloned().unwrap_or_else(|| vec![id]);
                        findings.push(GraphFinding {
                            rule: "lock-graph",
                            rel_path: f.rel_path.clone(),
                            line,
                            col,
                            msg: format!("{v} in `{}`{suffix}", f.display()),
                            chain,
                        });
                    }
                }
            };

        for ev in &f.events {
            match ev {
                BodyEvent::Open => depth += 1,
                BodyEvent::Close => {
                    depth = depth.saturating_sub(1);
                    held.retain(|(_, _, d)| *d <= depth);
                }
                BodyEvent::StmtEnd => held.retain(|(_, b, _)| b.is_some()),
                BodyEvent::DropName(name) => {
                    held.retain(|(_, b, _)| b.as_deref() != Some(name.as_str()));
                }
                BodyEvent::Acquire {
                    class,
                    binding,
                    line,
                    col,
                } => {
                    check(
                        &held,
                        class,
                        *line,
                        *col,
                        None,
                        &mut findings,
                        &mut order_edges,
                    );
                    held.push((class.clone(), binding.clone(), depth));
                }
                BodyEvent::Call(call_idx) => {
                    let call = &f.calls[*call_idx];
                    let e = g.edges[id].iter().find(|e| e.call_idx == *call_idx);
                    let Some(e) = e else { continue };
                    let mut callee_guard: Option<LockClass> = None;
                    for &t in &e.targets {
                        if g.fns[t].is_test {
                            continue;
                        }
                        let classes: Vec<LockClass> = summary[t].iter().cloned().collect();
                        for c in classes {
                            let mut chain = vec![id];
                            chain.extend(acquire_chain(t, &c));
                            check(
                                &held,
                                &c,
                                call.line,
                                call.col,
                                Some(&chain),
                                &mut findings,
                                &mut order_edges,
                            );
                        }
                        if g.fns[t].returns_guard {
                            // The callee hands its guard back to us: the
                            // first class it acquires stays held here.
                            callee_guard = callee_guard
                                .or_else(|| g.fns[t].acquires.first().cloned())
                                .or_else(|| summary[t].iter().next().cloned());
                        }
                    }
                    if let Some(c) = callee_guard {
                        held.push((c, None, depth));
                    }
                }
            }
        }
    }

    // --- Cycles in the global lock-order graph ------------------------------
    findings.extend(order_cycles(&order_edges));
    findings
}

/// DFS cycle detection over the collapsed order graph; one finding per
/// distinct cycle, positioned at the provenance of its closing edge.
fn order_cycles(
    edges: &BTreeMap<(String, String), (String, u32, u32, String)>,
) -> Vec<GraphFinding> {
    let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for (from, to) in edges.keys() {
        adj.entry(from).or_default().push(to);
    }
    let mut findings = Vec::new();
    let mut reported: BTreeSet<BTreeSet<String>> = BTreeSet::new();
    let nodes: Vec<&str> = adj.keys().copied().collect();
    for &start in &nodes {
        // Iterative DFS tracking the path from `start`; a back-edge to
        // `start` closes a cycle.
        let mut stack: Vec<(&str, usize)> = vec![(start, 0)];
        let mut path: Vec<&str> = vec![start];
        let mut on_path: BTreeSet<&str> = [start].into();
        while let Some((node, idx)) = stack.last_mut() {
            let succs = adj.get(*node).map(Vec::as_slice).unwrap_or(&[]);
            if *idx >= succs.len() {
                on_path.remove(*node);
                path.pop();
                stack.pop();
                continue;
            }
            let next = succs[*idx];
            *idx += 1;
            if next == start {
                let key: BTreeSet<String> = path.iter().map(|s| s.to_string()).collect();
                if reported.insert(key) {
                    let closing = &edges[&(path.last().unwrap().to_string(), start.to_string())];
                    let cycle = {
                        let mut c = path.clone();
                        c.push(start);
                        c.join(" -> ")
                    };
                    findings.push(GraphFinding {
                        rule: "lock-graph",
                        rel_path: closing.0.clone(),
                        line: closing.1,
                        col: closing.2,
                        msg: format!("lock-order cycle {cycle}: {}", closing.3),
                        chain: Vec::new(),
                    });
                }
                continue;
            }
            if !on_path.contains(next) {
                on_path.insert(next);
                path.push(next);
                stack.push((next, 0));
            }
        }
    }
    findings
}

/// Run all three analyses; returns findings sorted in report order plus
/// the artifact inputs (interesting node set, flagged nodes, witnesses).
pub struct InterprocResult {
    pub findings: Vec<GraphFinding>,
    pub keep: BTreeSet<usize>,
    pub flagged: BTreeSet<usize>,
    pub witnesses: Vec<(String, String, Vec<usize>)>,
}

pub fn run_analyses(g: &CallGraph) -> InterprocResult {
    let (mut findings, reach_keep) = analyze_reach_panic(g);
    let (taint_findings, taint_keep) = analyze_taint(g);
    findings.extend(taint_findings);
    findings.extend(analyze_locks(g));
    findings.sort_by(|a, b| {
        (&a.rel_path, a.line, a.col, a.rule).cmp(&(&b.rel_path, b.line, b.col, b.rule))
    });

    let mut keep: BTreeSet<usize> = reach_keep;
    keep.extend(taint_keep);
    let mut flagged = BTreeSet::new();
    let mut witnesses = Vec::new();
    for f in &findings {
        if let Some(&last) = f.chain.last() {
            flagged.insert(last);
        }
        keep.extend(f.chain.iter().copied());
        witnesses.push((f.rule.to_string(), f.msg.clone(), f.chain.clone()));
    }
    InterprocResult {
        findings,
        keep,
        flagged,
        witnesses,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbols::parse_file;

    fn graph(files: &[(&str, &str)]) -> CallGraph {
        CallGraph::build(files.iter().map(|(p, s)| parse_file(p, s)).collect())
    }

    #[test]
    fn serve_root_patterns_bind_at_word_boundaries() {
        let g = graph(&[(
            "crates/core/src/market/agents.rs",
            "fn buy() {}\nfn buy_batch_into() {}\nfn buyer_population() {}\nfn quote_one() {}\n",
        )]);
        let roots: Vec<&str> = g
            .ids_where(is_serve_root)
            .into_iter()
            .map(|id| g.fns[id].name.as_str())
            .collect();
        assert_eq!(roots, ["buy", "buy_batch_into", "quote_one"]);
    }

    #[test]
    fn transitive_panic_is_found_with_witness_chain() {
        let g = graph(&[
            (
                "crates/serve/src/conn.rs",
                "fn dispatch(b: &Broker) { helper_a(); }\nfn helper_a() { helper_b(); }\n",
            ),
            (
                "crates/core/src/lookup.rs",
                "fn helper_b() -> f64 { let v = vec![1.0]; *v.last().unwrap() }\n",
            ),
        ]);
        let (findings, _) = analyze_reach_panic(&g);
        let hits: Vec<&GraphFinding> = findings
            .iter()
            .filter(|f| f.msg.contains("unwrap"))
            .collect();
        assert_eq!(hits.len(), 1, "{findings:?}");
        // Every conn.rs fn is itself a root, so the shortest witness
        // starts at `helper_a`, not at `dispatch`.
        assert!(
            hits[0].msg.contains("helper_a -> helper_b"),
            "{}",
            hits[0].msg
        );
        assert_eq!(hits[0].rel_path, "crates/core/src/lookup.rs");
    }

    #[test]
    fn taint_reported_at_det_entry_point_only() {
        let g = graph(&[
            (
                "crates/core/src/pricing.rs",
                "fn outer() -> f64 { inner() }\nfn inner() -> f64 { helper() }\n",
            ),
            (
                "crates/serve/src/server.rs",
                "fn helper() -> f64 { let t = Instant::now(); 1.0 }\n",
            ),
        ]);
        let (findings, _) = analyze_taint(&g);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].msg.contains("`inner`"));
        assert!(findings[0].msg.contains("Instant::now"));
        assert!(findings[0].msg.contains("inner -> helper"));
    }

    #[test]
    fn obs_crate_is_a_taint_barrier() {
        let g = graph(&[
            (
                "crates/core/src/pricing.rs",
                "fn hot() -> f64 { span_enter(); 1.0 }\n",
            ),
            (
                "crates/obs/src/span.rs",
                "fn span_enter() { let t = Instant::now(); }\n",
            ),
        ]);
        let (findings, _) = analyze_taint(&g);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn cross_function_descending_stripes_are_caught() {
        let g = graph(&[(
            "crates/core/src/market/concurrent.rs",
            r#"
fn settle(s: &Shared) {
    let g1 = s.inner.stripes[1].lock();
    flush_low(s);
}
fn flush_low(s: &Shared) {
    let g0 = s.inner.stripes[0].lock();
}
"#,
        )]);
        let findings = analyze_locks(&g);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].msg.contains("descending"));
        assert!(findings[0].msg.contains("settle -> flush_low"));
    }

    #[test]
    fn drain_then_write_pattern_is_clean() {
        // The `with_broker` idiom: stripe guards drained inside the loop
        // body die at the iteration close; the core write that follows
        // holds no stripe.
        let g = graph(&[(
            "crates/core/src/market/concurrent.rs",
            r#"
fn with_broker(s: &Shared) {
    for stripe in s.inner.stripes.iter() {
        let mut guard = stripe.lock();
        guard.clear();
    }
    let mut core = s.inner.core.write();
    core.apply();
}
"#,
        )]);
        let findings = analyze_locks(&g);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn guard_returning_callee_extends_held_set() {
        let g = graph(&[(
            "crates/core/src/market/concurrent.rs",
            r#"
impl Ledger {
    fn lock_next_stripe(&self) -> MutexGuard<'_, Vec<Tx>> {
        let stripe = &self.inner.stripes[0];
        stripe.lock()
    }
    fn record(&self) {
        let mut guard = self.lock_next_stripe();
        let w = self.inner.core.write();
    }
}
"#,
        )]);
        let findings = analyze_locks(&g);
        // Holding a stripe while taking the core write lock creates the
        // stripe -> core.write order edge; with no reverse edge there is
        // no cycle, and stripe-then-core is not itself a violation.
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn lock_order_cycle_across_functions_is_caught() {
        let g = graph(&[(
            "crates/wal/src/log.rs",
            r#"
fn a(s: &S) {
    let w = s.writer.lock();
    b_inner(s);
}
fn b_inner(s: &S) {
    let f = s.flusher.lock();
}
fn c(s: &S) {
    let f = s.flusher.lock();
    d_inner(s);
}
fn d_inner(s: &S) {
    let w = s.writer.lock();
}
"#,
        )]);
        let findings = analyze_locks(&g);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].msg.contains("lock-order cycle"));
        assert!(
            findings[0].msg.contains("mutex:writer") && findings[0].msg.contains("mutex:flusher")
        );
    }
}
