//! `lint.toml` baseline: per-rule waiver budgets.
//!
//! The baseline is the ratchet. Every live `LINT-ALLOW` waiver in the
//! tree counts against its rule's budget; exceeding the budget fails the
//! run, so new violations cannot be waived into silence — the budget has
//! to be raised in a reviewed change to `lint.toml`. When the tree uses
//! fewer waivers than budgeted, the run prints a shrink notice so the
//! baseline only moves down over time.
//!
//! Grammar (a deliberate subset of TOML, parsed by hand to stay
//! zero-dependency):
//!
//! ```toml
//! [waivers]
//! det = 0
//! panic = 4
//! ```

use std::collections::BTreeMap;

/// Parsed baseline. Rules absent from the file default to a budget of 0.
#[derive(Debug, Default, Clone)]
pub struct Baseline {
    pub budgets: BTreeMap<String, usize>,
    /// `[graph]` finding budgets for the interprocedural rules. A graph
    /// finding cannot be waived, so these are *finding* counts, not waiver
    /// counts — and they stay pinned at 0.
    pub graph_budgets: BTreeMap<String, usize>,
}

impl Baseline {
    pub fn budget(&self, rule: &str) -> usize {
        self.budgets.get(rule).copied().unwrap_or(0)
    }

    pub fn graph_budget(&self, rule: &str) -> usize {
        self.graph_budgets.get(rule).copied().unwrap_or(0)
    }
}

/// Parse the `[waivers]` table out of `lint.toml` text.
pub fn parse(text: &str) -> Result<Baseline, String> {
    let mut baseline = Baseline::default();
    let mut section = String::new();
    for (ln, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
            section = name.trim().to_string();
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(format!("lint.toml line {}: expected `key = value`", ln + 1));
        };
        if section == "waivers" || section == "graph" {
            let key = key.trim();
            let value: usize = value.trim().parse().map_err(|_| {
                format!(
                    "lint.toml line {}: `{key}` must be a non-negative integer",
                    ln + 1
                )
            })?;
            if section == "waivers" {
                if !crate::rules::RULE_IDS.contains(&key) {
                    return Err(format!(
                        "lint.toml line {}: unknown rule id `{key}`",
                        ln + 1
                    ));
                }
                baseline.budgets.insert(key.to_string(), value);
            } else {
                if !crate::rules::GRAPH_RULE_IDS.contains(&key) {
                    return Err(format!(
                        "lint.toml line {}: unknown graph rule id `{key}`",
                        ln + 1
                    ));
                }
                baseline.graph_budgets.insert(key.to_string(), value);
            }
        }
    }
    Ok(baseline)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_budgets_and_comments() {
        let b = parse("# ratchet\n[waivers]\ndet = 0 # must stay zero\npanic = 3\n").unwrap();
        assert_eq!(b.budget("det"), 0);
        assert_eq!(b.budget("panic"), 3);
        assert_eq!(b.budget("float"), 0);
    }

    #[test]
    fn rejects_unknown_rule() {
        assert!(parse("[waivers]\nbogus = 1\n").is_err());
    }

    #[test]
    fn parses_graph_budgets_separately() {
        let b = parse("[waivers]\npanic = 4\n[graph]\nreach-panic = 0\ntaint-det = 0\n").unwrap();
        assert_eq!(b.budget("panic"), 4);
        assert_eq!(b.graph_budget("reach-panic"), 0);
        assert_eq!(b.graph_budget("lock-graph"), 0);
        // Graph ids are not valid waiver keys and vice versa.
        assert!(parse("[waivers]\nreach-panic = 1\n").is_err());
        assert!(parse("[graph]\npanic = 1\n").is_err());
    }

    #[test]
    fn rejects_non_integer() {
        assert!(parse("[waivers]\ndet = maybe\n").is_err());
    }
}
