//! Per-file item trees and function facts for the interprocedural pass.
//!
//! This layer parses the flat token stream from [`crate::lexer`] into a
//! pragmatic item tree: `fn` items with their `impl`/`mod` context, the
//! file's `use`-alias table, and — for every function body — the facts
//! the graph analyses consume:
//!
//! * **call sites** (plain `foo(..)`, path `a::b::foo(..)`, and method
//!   `.foo(..)` calls with a best-effort receiver-type hint),
//! * **syntactic panic sites** (`unwrap`/`expect`, `panic!`-family
//!   macros, postfix indexing, division by a literal zero),
//! * **determinism-taint sources** (`SystemTime::now`/`Instant::now`,
//!   ambient RNG constructors, `thread::current().id()`, iteration over
//!   `HashMap`/`HashSet` bindings),
//! * **lock events** (core write-guard acquisition, stripe-mutex
//!   acquisition by constant index or round-robin, `drop(..)` releases)
//!   in statement order, interleaved with the call sites so the
//!   interprocedural lock analysis can replay "what was held at this
//!   call".
//!
//! The parser is deliberately *not* a full Rust frontend: closures belong
//! to their enclosing function (a sound over-approximation — the closure
//! might never run), trait method declarations without bodies are
//! skipped, and generic arguments are skipped token-wise. `#[cfg(test)]`
//! masking is reused from the rule engine so test-only functions never
//! enter the graph.

use crate::lexer::{tokenize, Tok, TokKind};
use crate::rules::{self, ScopeMode};
use std::collections::{BTreeMap, BTreeSet};

/// How a call site names its callee.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CallKind {
    /// `foo(..)` — a bare name in expression position.
    Plain { name: String },
    /// `a::b::foo(..)` — a path call (module- or type-qualified).
    Path { segs: Vec<String> },
    /// `.foo(..)` — a method call; `recv` is the receiver *type* when the
    /// lightweight local-type inference could determine it.
    Method { name: String, recv: Option<String> },
}

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    pub kind: CallKind,
    pub line: u32,
    pub col: u32,
}

impl CallSite {
    /// The bare callee name (last path segment).
    pub fn name(&self) -> &str {
        match &self.kind {
            CallKind::Plain { name } | CallKind::Method { name, .. } => name,
            CallKind::Path { segs } => segs.last().map(String::as_str).unwrap_or(""),
        }
    }
}

/// A syntactic may-panic site.
#[derive(Debug, Clone)]
pub struct PanicSite {
    pub what: String,
    pub line: u32,
    pub col: u32,
}

/// A determinism-taint source.
#[derive(Debug, Clone)]
pub struct TaintSite {
    pub what: String,
    pub line: u32,
    pub col: u32,
}

/// Lock classes the interprocedural lock analysis tracks.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum LockClass {
    /// The `SharedBroker` core `RwLock` write guard (`core.write()`).
    CoreWrite,
    /// A ledger stripe mutex at a constant index (`stripes[K].lock()`).
    StripeConst(i64),
    /// A ledger stripe mutex at a runtime index (round-robin pick, loop
    /// variable, drained iteration).
    StripeAny,
    /// Any other named mutex (`self.writer.lock()` → `Other("writer")`).
    Other(String),
}

impl LockClass {
    pub fn is_stripe(&self) -> bool {
        matches!(self, LockClass::StripeConst(_) | LockClass::StripeAny)
    }

    /// Collapsed node name for the lock-order graph.
    pub fn order_node(&self) -> String {
        match self {
            LockClass::CoreWrite => "core.write".to_string(),
            LockClass::StripeConst(_) | LockClass::StripeAny => "stripe".to_string(),
            LockClass::Other(n) => format!("mutex:{n}"),
        }
    }
}

/// Ordered body events the lock analysis replays.
#[derive(Debug, Clone)]
pub enum BodyEvent {
    /// `{` — opens a scope (guards bound inside die at the close).
    Open,
    /// `}` — closes a scope.
    Close,
    /// `;` — end of statement (temporary guards die here).
    StmtEnd,
    /// A call; the index points into [`FnItem::calls`].
    Call(usize),
    /// A lock acquisition. `binding` is the `let` name holding the guard
    /// (None = temporary, released at statement end).
    Acquire {
        class: LockClass,
        binding: Option<String>,
        line: u32,
        col: u32,
    },
    /// `drop(name)` — explicit guard release.
    DropName(String),
}

/// One `fn` item with its facts.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Bare function name.
    pub name: String,
    /// `impl` self type when this is a method/associated fn.
    pub self_type: Option<String>,
    /// Trait name for `impl Trait for Type` methods.
    pub trait_name: Option<String>,
    /// Module path inside the crate (file-derived plus inline `mod`s).
    pub module: Vec<String>,
    /// Crate name (underscored, e.g. `mbp_core`).
    pub crate_name: String,
    /// Workspace-relative file path (`/`-separated).
    pub rel_path: String,
    pub line: u32,
    pub col: u32,
    /// Inside `#[cfg(test)]` / `#[test]` or a test-path file.
    pub is_test: bool,
    /// Rules named by a `// LINT-SCOPE(<rule>): reason` annotation
    /// directly above the item.
    pub scope_off: BTreeSet<String>,
    /// Parameter name → type hint (last path segment of the type).
    pub params: BTreeMap<String, String>,
    /// Return type mentions a `*Guard` type: calling this function
    /// acquires (and hands back) a lock.
    pub returns_guard: bool,
    pub calls: Vec<CallSite>,
    pub panics: Vec<PanicSite>,
    pub taints: Vec<TaintSite>,
    pub events: Vec<BodyEvent>,
    /// Lock classes acquired directly in this body (in order).
    pub acquires: Vec<LockClass>,
}

impl FnItem {
    /// Display name for witness chains: `Type::name` or `name`.
    pub fn display(&self) -> String {
        match &self.self_type {
            Some(t) => format!("{t}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// Parsed model of one source file.
#[derive(Debug, Clone)]
pub struct FileModel {
    pub rel_path: String,
    pub crate_name: String,
    pub fns: Vec<FnItem>,
    /// `use` aliases: local name → full path segments.
    pub uses: BTreeMap<String, Vec<String>>,
    /// All `LINT-SCOPE` annotations seen, malformed ones included — the
    /// interprocedural run reports invalid ones under the `lint` rule so
    /// a typo cannot silently disable a proof obligation.
    pub annotations: Vec<ScopeAnnotation>,
}

/// Crate name from a workspace-relative path: `crates/core/src/...` →
/// `mbp_core`; the root `src/` tree belongs to the `mbp` facade.
pub fn crate_name_of(rel_path: &str) -> String {
    if let Some(rest) = rel_path.strip_prefix("crates/") {
        if let Some((dir, _)) = rest.split_once('/') {
            return format!("mbp_{}", dir.replace('-', "_"));
        }
    }
    "mbp".to_string()
}

/// Module path segments implied by the file location: `src/market/mod.rs`
/// → `["market"]`, `src/market/agents.rs` → `["market", "agents"]`,
/// `src/lib.rs`/`src/main.rs` → `[]`.
fn file_module_path(rel_path: &str) -> Vec<String> {
    let after_src = match rel_path.find("/src/") {
        Some(i) => &rel_path[i + 5..],
        None => rel_path,
    };
    let mut segs: Vec<String> = after_src
        .trim_end_matches(".rs")
        .split('/')
        .map(str::to_string)
        .collect();
    if let Some(last) = segs.last() {
        if last == "lib" || last == "main" || last == "mod" {
            segs.pop();
        }
    }
    segs
}

/// Method names so ubiquitous in `std` that an *untyped* receiver is
/// resolved to the standard library instead of same-named workspace
/// methods. A typed receiver (param/`let` annotation/`self`) still binds
/// to the workspace impl. Documented under-approximation: see DESIGN §16.
const UBIQUITOUS_STD_METHODS: &[&str] = &[
    "len",
    "is_empty",
    "get",
    "get_mut",
    "first",
    "last",
    "push",
    "pop",
    "iter",
    "iter_mut",
    "into_iter",
    "next",
    "map",
    "filter",
    "and_then",
    "or_else",
    "unwrap_or",
    "unwrap_or_else",
    "unwrap_or_default",
    "ok",
    "err",
    "is_some",
    "is_none",
    "is_ok",
    "is_err",
    "clone",
    "to_string",
    "to_owned",
    "to_vec",
    "as_str",
    "as_slice",
    "as_bytes",
    "as_ref",
    "as_mut",
    "as_deref",
    "into",
    "from",
    "collect",
    "extend",
    "chain",
    "zip",
    "enumerate",
    "rev",
    "sum",
    "product",
    "min",
    "max",
    "abs",
    "sqrt",
    "powi",
    "powf",
    "exp",
    "ln",
    "floor",
    "ceil",
    "round",
    "to_le_bytes",
    "to_be_bytes",
    "contains",
    "starts_with",
    "ends_with",
    "trim",
    "split",
    "split_once",
    "splitn",
    "lines",
    "chars",
    "bytes",
    "parse",
    "fmt",
    "eq",
    "ne",
    "cmp",
    "partial_cmp",
    "hash",
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "retain",
    "clear",
    "entry",
    "or_insert",
    "or_insert_with",
    "or_default",
    "take",
    "replace",
    "copied",
    "cloned",
    "flush",
    "read",
    "read_exact",
    "write_all",
    "load",
    "store",
    "fetch_add",
    "fetch_sub",
    "compare_exchange",
    "send",
    "recv",
    "join",
    "keys",
    "values",
    "drain",
    "append",
    "insert",
    "remove",
    "resize",
    "reserve",
    "with_capacity",
    "position",
    "find",
    "any",
    "all",
    "count",
    "fold",
    "flat_map",
    "skip",
    "step_by",
    "windows",
    "chunks",
    "saturating_sub",
    "saturating_add",
    "wrapping_add",
    "wrapping_sub",
    "wrapping_mul",
    "checked_add",
    "checked_sub",
    "checked_mul",
    "checked_div",
    "min_by",
    "max_by",
    "total_cmp",
    "signum",
    "is_finite",
    "is_nan",
    "is_infinite",
    "to_bits",
    "from_bits",
    "front",
    "back",
    "push_back",
    "push_front",
    "pop_front",
    "pop_back",
    "make_contiguous",
    "elapsed",
    "duration_since",
    "as_secs_f64",
    "as_micros",
    "as_nanos",
    "unwrap",
    "expect",
    "lock",
    "try_lock",
    "set",
];

/// True for bare identifiers that look like calls but are not function
/// calls we should resolve (keywords, tuple-variant constructors).
fn plain_call_excluded(name: &str) -> bool {
    matches!(
        name,
        "if" | "while"
            | "match"
            | "for"
            | "loop"
            | "return"
            | "fn"
            | "move"
            | "in"
            | "as"
            | "where"
            | "Some"
            | "None"
            | "Ok"
            | "Err"
            | "Box"
            | "Vec"
            | "String"
            | "Arc"
            | "Rc"
            | "Cell"
            | "RefCell"
            | "Mutex"
            | "RwLock"
            | "Cow"
            | "Duration"
            | "Ordering"
            | "PhantomData"
    )
}

/// Is this method name treated as std when the receiver type is unknown?
pub fn is_ubiquitous_std_method(name: &str) -> bool {
    UBIQUITOUS_STD_METHODS.contains(&name)
}

/// Scope annotations parsed out of comments:
/// `// LINT-SCOPE(<rule>): <reason>`.
#[derive(Debug, Clone)]
pub struct ScopeAnnotation {
    pub rule: String,
    pub line: u32,
    pub col: u32,
    pub valid: bool,
}

/// Rules a `LINT-SCOPE` annotation may name.
pub const SCOPE_RULES: &[&str] = &["reach-panic", "taint-det", "lock-graph"];

/// Parse `LINT-SCOPE(<rule>): <reason>` annotations from the comment
/// tokens. Doc comments are skipped (documentation may show the grammar).
pub fn collect_scope_annotations(toks: &[Tok]) -> Vec<ScopeAnnotation> {
    let mut out = Vec::new();
    for t in toks {
        if !t.is_comment() {
            continue;
        }
        let text = &t.text;
        if text.starts_with("///")
            || text.starts_with("//!")
            || text.starts_with("/**")
            || text.starts_with("/*!")
        {
            continue;
        }
        let Some(pos) = text.find("LINT-SCOPE(") else {
            continue;
        };
        let rest = &text[pos + "LINT-SCOPE(".len()..];
        let parsed = rest.split_once(')').and_then(|(rule, tail)| {
            let rule = rule.trim();
            let reason_ok = tail
                .trim_start()
                .strip_prefix(':')
                .is_some_and(|r| !r.trim().is_empty());
            (SCOPE_RULES.contains(&rule) && reason_ok).then(|| rule.to_string())
        });
        out.push(ScopeAnnotation {
            rule: parsed.clone().unwrap_or_default(),
            line: t.line,
            col: t.col,
            valid: parsed.is_some(),
        });
    }
    out
}

/// Context stack entry while walking the item tree.
enum Ctx {
    Mod(String),
    Impl {
        self_type: Option<String>,
        trait_name: Option<String>,
    },
    Fn(usize),
    Block,
}

/// Parse one file into its [`FileModel`]. `rel_path` must be
/// workspace-relative with `/` separators.
pub fn parse_file(rel_path: &str, src: &str) -> FileModel {
    let toks = tokenize(src);
    let code: Vec<&Tok> = toks.iter().filter(|t| !t.is_comment()).collect();
    let whole_file_test = rules::is_test_path_pub(rel_path);
    let test_mask = rules::test_regions_pub(&code, whole_file_test);
    let macro_mask = rules::macro_regions_pub(&code);
    let annotations = collect_scope_annotations(&toks);
    let hash_names = collect_hash_names(&code);
    // Lines carrying a valid `panic` waiver: a waived site has a reviewed
    // bound proof, so it is not a seed for the transitive may-panic closure
    // either. (The waiver covers the same line or the line below,
    // mirroring the engine's application order.) The marker is spelled
    // via concatenation so this very file does not register a waiver.
    let panic_marker = concat!("LINT-", "ALLOW(panic)");
    let panic_waiver_lines: BTreeSet<u32> = toks
        .iter()
        .filter(|t| t.is_comment() && !t.text.starts_with("///") && !t.text.starts_with("//!"))
        .filter(|t| {
            t.text
                .split_once(panic_marker)
                .and_then(|(_, tail)| tail.trim_start().strip_prefix(':'))
                .is_some_and(|r| !r.trim().is_empty())
        })
        .map(|t| t.line)
        .collect();

    let crate_name = crate_name_of(rel_path);
    let file_mods = file_module_path(rel_path);

    let mut model = FileModel {
        rel_path: rel_path.to_string(),
        crate_name: crate_name.clone(),
        fns: Vec::new(),
        uses: BTreeMap::new(),
        annotations: annotations.clone(),
    };

    let mut ctx: Vec<Ctx> = Vec::new();
    // Pending item context set by `mod`/`impl`/`fn` keywords, attached at
    // the next `{`.
    enum Pending {
        None,
        Mod(String),
        Impl {
            self_type: Option<String>,
            trait_name: Option<String>,
        },
        Fn(usize),
    }
    let mut pending = Pending::None;

    // Statement-local state for lock-event extraction, valid while inside
    // at least one fn.
    let mut stmt_has_let = false;
    let mut let_name: Option<String> = None;
    let mut stmt_has_stripes = false;
    let mut stmt_has_closure = false;
    // `let <name>: <Type>` annotations seen inside the current fn, used as
    // receiver-type hints.
    let mut local_types: BTreeMap<String, String> = BTreeMap::new();

    let n = code.len();
    let mut i = 0usize;
    while i < n {
        let t = code[i];

        // --- use-alias collection (top level only; nested uses are rare) --
        if t.is_ident("use") && ctx.is_empty() {
            i = collect_use(&code, i, &mut model.uses);
            continue;
        }

        // --- item openers -------------------------------------------------
        if t.is_ident("mod")
            && code.get(i + 1).is_some_and(|x| x.kind == TokKind::Ident)
            && code.get(i + 2).is_some_and(|x| x.is_punct("{"))
        {
            pending = Pending::Mod(code[i + 1].text.clone());
            i += 2; // leave `{` for the brace handler
            continue;
        }
        if t.is_ident("impl") {
            let (self_type, trait_name, next) = parse_impl_header(&code, i);
            pending = Pending::Impl {
                self_type,
                trait_name,
            };
            i = next; // sits on the `{` (or past a `;`)
            continue;
        }
        if t.is_ident("fn") && code.get(i + 1).is_some_and(|x| x.kind == TokKind::Ident) {
            let name_tok = code[i + 1];
            let (params, returns_guard, body_open) = parse_fn_signature(&code, i + 1);
            let in_impl = ctx.iter().rev().find_map(|c| match c {
                Ctx::Impl {
                    self_type,
                    trait_name,
                } => Some((self_type.clone(), trait_name.clone())),
                _ => None,
            });
            let mut module = file_mods.clone();
            for c in &ctx {
                if let Ctx::Mod(m) = c {
                    module.push(m.clone());
                }
            }
            let is_test = test_mask.get(i).copied().unwrap_or(false) || whole_file_test;
            let scope_off: BTreeSet<String> = annotations
                .iter()
                .filter(|a| {
                    a.valid && a.line < name_tok.line && name_tok.line.saturating_sub(a.line) <= 8
                })
                .filter(|a| {
                    // The annotation must sit directly above the item:
                    // every code token between it and the fn keyword is
                    // part of the same item header (attributes, pub, etc.).
                    !code[..i]
                        .iter()
                        .rev()
                        .take_while(|c| c.line > a.line)
                        .any(|c| c.is_punct("}") || c.is_punct(";"))
                })
                .map(|a| a.rule.clone())
                .collect();
            let (self_type, trait_name) = in_impl.unwrap_or((None, None));
            let item = FnItem {
                name: name_tok.text.clone(),
                self_type: self_type.clone(),
                trait_name,
                module,
                crate_name: crate_name.clone(),
                rel_path: rel_path.to_string(),
                line: name_tok.line,
                col: name_tok.col,
                is_test,
                scope_off,
                params,
                returns_guard,
                calls: Vec::new(),
                panics: Vec::new(),
                taints: Vec::new(),
                events: Vec::new(),
                acquires: Vec::new(),
            };
            match body_open {
                Some(open) => {
                    model.fns.push(item);
                    pending = Pending::Fn(model.fns.len() - 1);
                    local_types.clear();
                    if let Some(st) = &self_type {
                        local_types.insert("self".to_string(), st.clone());
                    }
                    for (p, ty) in &model
                        .fns
                        .last()
                        .map(|f| f.params.clone())
                        .unwrap_or_default()
                    {
                        local_types.insert(p.clone(), ty.clone());
                    }
                    i = open; // brace handler attaches the Fn ctx
                    continue;
                }
                None => {
                    // Bodyless declaration (trait method): skip it.
                    i += 2;
                    continue;
                }
            }
        }

        // --- braces / statement boundaries --------------------------------
        if t.is_punct("{") {
            match std::mem::replace(&mut pending, Pending::None) {
                Pending::Mod(m) => ctx.push(Ctx::Mod(m)),
                Pending::Impl {
                    self_type,
                    trait_name,
                } => ctx.push(Ctx::Impl {
                    self_type,
                    trait_name,
                }),
                Pending::Fn(idx) => ctx.push(Ctx::Fn(idx)),
                Pending::None => ctx.push(Ctx::Block),
            }
            if let Some(f) = current_fn(&ctx, &mut model.fns) {
                f.events.push(BodyEvent::Open);
            }
            stmt_has_let = false;
            let_name = None;
            stmt_has_stripes = false;
            stmt_has_closure = false;
            i += 1;
            continue;
        }
        if t.is_punct("}") {
            if let Some(f) = current_fn(&ctx, &mut model.fns) {
                f.events.push(BodyEvent::Close);
            }
            ctx.pop();
            stmt_has_let = false;
            let_name = None;
            stmt_has_stripes = false;
            stmt_has_closure = false;
            i += 1;
            continue;
        }
        if t.is_punct(";") {
            if let Some(f) = current_fn(&ctx, &mut model.fns) {
                f.events.push(BodyEvent::StmtEnd);
            }
            stmt_has_let = false;
            let_name = None;
            stmt_has_stripes = false;
            stmt_has_closure = false;
            i += 1;
            continue;
        }

        // --- inside a fn body: extract facts -------------------------------
        let in_fn = ctx.iter().rev().find_map(|c| match c {
            Ctx::Fn(idx) => Some(*idx),
            _ => None,
        });
        let Some(fn_idx) = in_fn else {
            i += 1;
            continue;
        };
        let masked_test = test_mask.get(i).copied().unwrap_or(false);

        // `let` bindings: remember name and optional type annotation.
        if t.is_ident("let") {
            stmt_has_let = true;
            let_name = None;
            i += 1;
            continue;
        }
        if t.kind == TokKind::Ident && stmt_has_let && let_name.is_none() && t.text != "mut" {
            let_name = Some(t.text.clone());
            // `let name: Type = ...`
            if code.get(i + 1).is_some_and(|x| x.is_punct(":")) {
                if let Some(ty) = first_type_ident(&code, i + 2) {
                    local_types.insert(t.text.clone(), ty);
                }
            }
        }

        // drop(name)
        if t.is_ident("drop")
            && code.get(i + 1).is_some_and(|x| x.is_punct("("))
            && code.get(i + 2).is_some_and(|x| x.kind == TokKind::Ident)
            && code.get(i + 3).is_some_and(|x| x.is_punct(")"))
        {
            let name = code[i + 2].text.clone();
            model.fns[fn_idx].events.push(BodyEvent::DropName(name));
            i += 4;
            continue;
        }

        if t.is_ident("stripes") {
            stmt_has_stripes = true;
        }
        // A closure-parameter pipe: guards acquired past this point in the
        // statement live inside the closure body (per-iteration temporaries
        // in `.map(|s| s.lock()...)` chains), not in the `let` binding.
        if t.is_punct("|") || t.is_punct("||") {
            stmt_has_closure = true;
        }

        // Lock acquisitions --------------------------------------------------
        if let Some((class, adv)) = detect_lock_acquire(&code, i, stmt_has_stripes, &local_types) {
            let binding = if stmt_has_let && !stmt_has_closure {
                let_name.clone()
            } else {
                None
            };
            model.fns[fn_idx].acquires.push(class.clone());
            model.fns[fn_idx].events.push(BodyEvent::Acquire {
                class,
                binding,
                line: t.line,
                col: t.col,
            });
            i += adv;
            continue;
        }

        if !masked_test {
            // Panic sites ----------------------------------------------------
            if let Some(site) = detect_panic_site(&code, i, &macro_mask) {
                let waived = panic_waiver_lines.contains(&site.line)
                    || site.line > 0 && panic_waiver_lines.contains(&(site.line - 1));
                if !waived {
                    model.fns[fn_idx].panics.push(site);
                }
            }
            // Taint sources --------------------------------------------------
            if let Some(site) = detect_taint_site(&code, i, &hash_names) {
                model.fns[fn_idx].taints.push(site);
            }
        }

        // Call sites -----------------------------------------------------
        if let Some((site, adv)) = detect_call(&code, i, &local_types) {
            // `let t = Type::ctor(..)` — constructor-style initializers
            // type the binding for later receiver inference.
            if stmt_has_let {
                if let (Some(name), CallKind::Path { segs }) = (&let_name, &site.kind) {
                    if segs.len() >= 2 {
                        let ty = &segs[segs.len() - 2];
                        if ty.chars().next().is_some_and(char::is_uppercase) {
                            local_types.insert(name.clone(), ty.clone());
                        }
                    }
                }
            }
            if !masked_test {
                model.fns[fn_idx].calls.push(site);
                let idx = model.fns[fn_idx].calls.len() - 1;
                model.fns[fn_idx].events.push(BodyEvent::Call(idx));
            }
            i += adv;
            continue;
        }

        i += 1;
    }

    model
}

fn current_fn<'a>(ctx: &[Ctx], fns: &'a mut [FnItem]) -> Option<&'a mut FnItem> {
    let idx = ctx.iter().rev().find_map(|c| match c {
        Ctx::Fn(idx) => Some(*idx),
        _ => None,
    })?;
    fns.get_mut(idx)
}

/// Collect one `use` declaration into the alias table. Handles
/// `use a::b::C;`, `use a::b::C as D;`, and one level of braces
/// `use a::{B, C as D, e};`. Returns the index after the closing `;`.
fn collect_use(code: &[&Tok], start: usize, uses: &mut BTreeMap<String, Vec<String>>) -> usize {
    let mut i = start + 1;
    let mut prefix: Vec<String> = Vec::new();
    let mut current: Vec<String> = Vec::new();
    let mut alias: Option<String> = None;
    let mut in_braces = false;
    while i < code.len() {
        let t = code[i];
        if t.is_punct(";") {
            flush_use(uses, &prefix, &current, &alias);
            return i + 1;
        }
        if t.is_punct("{") {
            prefix = current.clone();
            current.clear();
            in_braces = true;
        } else if t.is_punct("}") {
            flush_use(uses, &prefix, &current, &alias);
            current.clear();
            alias = None;
            in_braces = false;
        } else if t.is_punct(",") && in_braces {
            flush_use(uses, &prefix, &current, &alias);
            current.clear();
            alias = None;
        } else if t.is_ident("as") {
            if let Some(next) = code.get(i + 1) {
                alias = Some(next.text.clone());
                i += 2;
                continue;
            }
        } else if t.kind == TokKind::Ident {
            current.push(t.text.clone());
        }
        i += 1;
    }
    code.len()
}

fn flush_use(
    uses: &mut BTreeMap<String, Vec<String>>,
    prefix: &[String],
    current: &[String],
    alias: &Option<String>,
) {
    if current.is_empty() {
        return;
    }
    let mut full: Vec<String> = prefix.to_vec();
    full.extend(current.iter().cloned());
    let key = alias
        .clone()
        .or_else(|| full.last().cloned())
        .unwrap_or_default();
    if !key.is_empty() && key != "*" {
        uses.insert(key, full);
    }
}

/// Parse an `impl` header starting at the `impl` keyword. Returns
/// `(self_type, trait_name, index_of_body_open_or_after_semi)`.
fn parse_impl_header(code: &[&Tok], start: usize) -> (Option<String>, Option<String>, usize) {
    let mut i = start + 1;
    // Skip generic parameter list.
    if code.get(i).is_some_and(|t| t.is_punct("<")) {
        i = skip_angles(code, i);
    }
    let mut first_path: Vec<String> = Vec::new();
    let mut second_path: Vec<String> = Vec::new();
    let mut after_for = false;
    while i < code.len() {
        let t = code[i];
        if t.is_punct("{") {
            break;
        }
        if t.is_punct(";") {
            return (None, None, i + 1);
        }
        if t.is_ident("for") {
            after_for = true;
        } else if t.is_ident("where") {
            // Skip the where clause to the `{`.
            while i < code.len() && !code[i].is_punct("{") {
                i += 1;
            }
            break;
        } else if t.kind == TokKind::Ident {
            if after_for {
                second_path.push(t.text.clone());
            } else {
                first_path.push(t.text.clone());
            }
            // Skip a generic argument list on the segment.
            if code.get(i + 1).is_some_and(|x| x.is_punct("<")) {
                i = skip_angles(code, i + 1);
                continue;
            }
        }
        i += 1;
    }
    let (ty_path, trait_path) = if after_for {
        (second_path, Some(first_path))
    } else {
        (first_path, None)
    };
    let self_type = ty_path.last().cloned();
    let trait_name = trait_path.and_then(|p| p.last().cloned());
    (self_type, trait_name, i)
}

/// Skip a `<...>` token run starting at the `<`. Returns the index after
/// the matching `>`. Handles `>>` closing two levels.
fn skip_angles(code: &[&Tok], start: usize) -> usize {
    let mut depth = 0i32;
    let mut i = start;
    while i < code.len() {
        let t = code[i];
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "<" | "<<" => depth += t.text.len() as i32,
                ">" => depth -= 1,
                ">>" => depth -= 2,
                "->" => {}
                ";" | "{" => return i,
                _ => {}
            }
        }
        i += 1;
        if depth <= 0 {
            return i;
        }
    }
    i
}

/// Parse a fn signature starting at the *name* token. Returns
/// `(params, returns_guard, body_open_index)`; `body_open_index` is None
/// for bodyless declarations.
fn parse_fn_signature(
    code: &[&Tok],
    name_idx: usize,
) -> (BTreeMap<String, String>, bool, Option<usize>) {
    let mut i = name_idx + 1;
    if code.get(i).is_some_and(|t| t.is_punct("<")) {
        i = skip_angles(code, i);
    }
    let mut params = BTreeMap::new();
    if code.get(i).is_some_and(|t| t.is_punct("(")) {
        let close = rules::match_delim_pub(code, i);
        // Walk `name: Type` pairs at paren depth 1.
        let mut depth = 0i32;
        let mut j = i;
        while j < close {
            let t = code[j];
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => depth -= 1,
                    "<" => {
                        j = skip_angles(code, j);
                        continue;
                    }
                    ":" if depth == 1
                        && j > 0
                        && code[j - 1].kind == TokKind::Ident
                        && !code.get(j + 1).is_some_and(|x| x.is_punct(":")) =>
                    {
                        let pname = code[j - 1].text.clone();
                        if let Some(ty) = first_type_ident(code, j + 1) {
                            params.insert(pname, ty);
                        }
                    }
                    _ => {}
                }
            }
            j += 1;
        }
        i = close + 1;
    }
    // Return type: scan to `{`, `;`, or `where` for a `*Guard` ident.
    let mut returns_guard = false;
    while i < code.len() {
        let t = code[i];
        if t.is_punct("{") {
            return (params, returns_guard, Some(i));
        }
        if t.is_punct(";") {
            return (params, returns_guard, None);
        }
        if t.kind == TokKind::Ident && t.text.ends_with("Guard") {
            returns_guard = true;
        }
        i += 1;
    }
    (params, returns_guard, None)
}

/// First meaningful type identifier after `start` (skipping `&`, `mut`,
/// lifetimes, `dyn`, `impl`): the *last* segment of the leading path, so
/// `&mut market::Broker` → `Broker` and `Vec<f64>` → `Vec`.
fn first_type_ident(code: &[&Tok], start: usize) -> Option<String> {
    let mut i = start;
    while i < code.len() {
        let t = code[i];
        match t.kind {
            TokKind::Punct if t.text == "&" || t.text == "*" => i += 1,
            TokKind::Lifetime => i += 1,
            TokKind::Ident if matches!(t.text.as_str(), "mut" | "dyn" | "impl" | "const") => i += 1,
            TokKind::Ident => {
                // Follow `a::b::C` to the last segment.
                let mut last = t.text.clone();
                let mut j = i;
                while code.get(j + 1).is_some_and(|x| x.is_punct("::"))
                    && code.get(j + 2).is_some_and(|x| x.kind == TokKind::Ident)
                {
                    j += 2;
                    last = code[j].text.clone();
                }
                return Some(last);
            }
            _ => return None,
        }
    }
    None
}

/// `HashMap`/`HashSet`-typed binding names in this file (same heuristic
/// as the file-local `det` rule).
fn collect_hash_names(code: &[&Tok]) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for i in 0..code.len() {
        let t = code[i];
        if !(t.is_ident("HashMap") || t.is_ident("HashSet")) {
            continue;
        }
        let mut j = i;
        while j >= 2 && code[j - 1].is_punct("::") && code[j - 2].kind == TokKind::Ident {
            j -= 2;
        }
        if j == 0 {
            continue;
        }
        let prev = code[j - 1];
        if (prev.is_punct(":") || prev.is_punct("="))
            && j >= 2
            && code[j - 2].kind == TokKind::Ident
        {
            names.insert(code[j - 2].text.clone());
        }
    }
    names
}

/// Detect a lock acquisition at token `i`. Returns the class and how many
/// tokens to advance.
fn detect_lock_acquire(
    code: &[&Tok],
    i: usize,
    stmt_has_stripes: bool,
    local_types: &BTreeMap<String, String>,
) -> Option<(LockClass, usize)> {
    let t = code[i];
    // core.write()
    if t.is_ident("write")
        && i >= 2
        && code[i - 1].is_punct(".")
        && code[i - 2].is_ident("core")
        && code.get(i + 1).is_some_and(|x| x.is_punct("("))
    {
        return Some((LockClass::CoreWrite, 1));
    }
    // stripes[K].lock() / stripes[expr].lock()
    if t.is_ident("stripes") && code.get(i + 1).is_some_and(|x| x.is_punct("[")) {
        let close = rules::match_delim_pub(code, i + 1);
        if code.get(close + 1).is_some_and(|x| x.is_punct("."))
            && code
                .get(close + 2)
                .is_some_and(|x| x.is_ident("lock") || x.is_ident("try_lock"))
        {
            let class = if close == i + 3 && code[i + 2].kind == TokKind::Int {
                let idx: i64 = code[i + 2].text.replace('_', "").parse().unwrap_or(0);
                LockClass::StripeConst(idx)
            } else {
                LockClass::StripeAny
            };
            return Some((class, close + 3 - i));
        }
    }
    // <recv>.lock() / .try_lock() on a non-stripes receiver.
    if (t.is_ident("lock") || t.is_ident("try_lock"))
        && i >= 1
        && code[i - 1].is_punct(".")
        && code.get(i + 1).is_some_and(|x| x.is_punct("("))
    {
        // Receiver ident two back (skip `stripes[...]` — handled above).
        let recv = (i >= 2 && code[i - 2].kind == TokKind::Ident).then(|| code[i - 2].text.clone());
        if let Some(r) = &recv {
            if r == "stripes" {
                return None; // malformed; the indexed form handles it
            }
            if stmt_has_stripes || r.contains("stripe") {
                return Some((LockClass::StripeAny, 1));
            }
            // Guards bound from locks of typed locals keep the local name.
            let _ = local_types;
            return Some((LockClass::Other(r.clone()), 1));
        }
        if stmt_has_stripes {
            return Some((LockClass::StripeAny, 1));
        }
        return Some((LockClass::Other("?".to_string()), 1));
    }
    None
}

/// Detect a syntactic panic site at token `i`.
fn detect_panic_site(code: &[&Tok], i: usize, macro_mask: &[bool]) -> Option<PanicSite> {
    let t = code[i];
    // .unwrap( / .expect(
    if t.is_punct(".")
        && code
            .get(i + 1)
            .is_some_and(|x| x.is_ident("unwrap") || x.is_ident("expect"))
        && code.get(i + 2).is_some_and(|x| x.is_punct("("))
    {
        let n = code[i + 1];
        return Some(PanicSite {
            what: format!(".{}()", n.text),
            line: n.line,
            col: n.col,
        });
    }
    // panic!/unreachable!/todo!/unimplemented!
    if t.kind == TokKind::Ident
        && matches!(
            t.text.as_str(),
            "panic" | "unreachable" | "todo" | "unimplemented"
        )
        && code.get(i + 1).is_some_and(|x| {
            x.is_punct("!") && x.line == t.line && t.col + t.text.len() as u32 == x.col
        })
    {
        return Some(PanicSite {
            what: format!("{}!", t.text),
            line: t.line,
            col: t.col,
        });
    }
    // Postfix indexing outside macro args.
    if t.is_punct("[") && !macro_mask.get(i).copied().unwrap_or(false) && i > 0 {
        let prev = code[i - 1];
        let postfix = match prev.kind {
            TokKind::Ident => !matches!(
                prev.text.as_str(),
                "let"
                    | "mut"
                    | "ref"
                    | "in"
                    | "return"
                    | "if"
                    | "else"
                    | "match"
                    | "move"
                    | "static"
                    | "const"
                    | "as"
                    | "break"
                    | "dyn"
                    | "impl"
                    | "where"
                    | "box"
            ),
            TokKind::Punct => prev.text == ")" || prev.text == "]",
            _ => false,
        };
        if postfix {
            return Some(PanicSite {
                what: "slice indexing".to_string(),
                line: t.line,
                col: t.col,
            });
        }
    }
    // Division / remainder by a literal zero.
    if t.kind == TokKind::Punct
        && (t.text == "/" || t.text == "%")
        && code
            .get(i + 1)
            .is_some_and(|x| x.kind == TokKind::Int && x.text.replace('_', "") == "0")
    {
        return Some(PanicSite {
            what: format!("`{} 0`", t.text),
            line: t.line,
            col: t.col,
        });
    }
    None
}

/// Detect a determinism-taint source at token `i`.
fn detect_taint_site(code: &[&Tok], i: usize, hash_names: &BTreeSet<String>) -> Option<TaintSite> {
    let t = code[i];
    // SystemTime::now / Instant::now
    if (t.is_ident("SystemTime") || t.is_ident("Instant"))
        && code.get(i + 1).is_some_and(|x| x.is_punct("::"))
        && code.get(i + 2).is_some_and(|x| x.is_ident("now"))
    {
        return Some(TaintSite {
            what: format!("{}::now", t.text),
            line: t.line,
            col: t.col,
        });
    }
    // Ambient RNG constructors.
    if t.kind == TokKind::Ident
        && matches!(
            t.text.as_str(),
            "thread_rng" | "from_entropy" | "OsRng" | "ThreadRng"
        )
    {
        return Some(TaintSite {
            what: format!("ambient RNG `{}`", t.text),
            line: t.line,
            col: t.col,
        });
    }
    // thread::current().id()
    if t.is_ident("current")
        && i >= 2
        && code[i - 1].is_punct("::")
        && code[i - 2].is_ident("thread")
        && code.get(i + 1).is_some_and(|x| x.is_punct("("))
    {
        let close = rules::match_delim_pub(code, i + 1);
        if code.get(close + 1).is_some_and(|x| x.is_punct("."))
            && code.get(close + 2).is_some_and(|x| x.is_ident("id"))
        {
            return Some(TaintSite {
                what: "thread::current().id()".to_string(),
                line: t.line,
                col: t.col,
            });
        }
    }
    // HashMap/HashSet iteration.
    if t.kind == TokKind::Ident
        && hash_names.contains(&t.text)
        && code.get(i + 1).is_some_and(|x| x.is_punct("."))
        && code.get(i + 2).is_some_and(|x| {
            x.kind == TokKind::Ident
                && matches!(
                    x.text.as_str(),
                    "iter"
                        | "iter_mut"
                        | "into_iter"
                        | "keys"
                        | "values"
                        | "values_mut"
                        | "drain"
                        | "retain"
                )
        })
        && code.get(i + 3).is_some_and(|x| x.is_punct("("))
    {
        return Some(TaintSite {
            what: format!("iteration over hash-ordered `{}`", t.text),
            line: t.line,
            col: t.col,
        });
    }
    None
}

/// Detect a call site at token `i`. Returns the site and how many tokens
/// to advance (to just past the callee name — arguments are walked
/// normally so nested calls are found).
fn detect_call(
    code: &[&Tok],
    i: usize,
    local_types: &BTreeMap<String, String>,
) -> Option<(CallSite, usize)> {
    let t = code[i];
    if t.kind != TokKind::Ident {
        return None;
    }
    let next = code.get(i + 1)?;
    if !next.is_punct("(") {
        return None;
    }
    // Macro invocation `name!(` is not a call (the `!` sits between).
    // (Handled implicitly: next is `(` directly.)

    // Method call: `.name(`
    if i >= 1 && code[i - 1].is_punct(".") {
        let recv = if i >= 2 {
            let r = code[i - 2];
            if r.is_ident("self") && i >= 3 && code[i - 3].is_punct(".") {
                // `self.field.name(` — field receiver, untyped.
                None
            } else if r.is_ident("self") {
                local_types.get("self").cloned()
            } else if r.kind == TokKind::Ident {
                local_types.get(&r.text).cloned()
            } else {
                None
            }
        } else {
            None
        };
        return Some((
            CallSite {
                kind: CallKind::Method {
                    name: t.text.clone(),
                    recv,
                },
                line: t.line,
                col: t.col,
            },
            2,
        ));
    }
    // Path call: walk back over `seg::` pairs.
    if i >= 2 && code[i - 1].is_punct("::") {
        let mut segs = vec![t.text.clone()];
        let mut j = i;
        while j >= 2 && code[j - 1].is_punct("::") && code[j - 2].kind == TokKind::Ident {
            segs.push(code[j - 2].text.clone());
            j -= 2;
        }
        segs.reverse();
        return Some((
            CallSite {
                kind: CallKind::Path { segs },
                line: t.line,
                col: t.col,
            },
            2,
        ));
    }
    // Plain call.
    if plain_call_excluded(&t.text) {
        return None;
    }
    Some((
        CallSite {
            kind: CallKind::Plain {
                name: t.text.clone(),
            },
            line: t.line,
            col: t.col,
        },
        2,
    ))
}

/// Parse with [`ScopeMode`] semantics for tests: `AllRules` is accepted
/// for symmetry but scoping decisions happen in the analyses, not here.
pub fn parse_source(rel_path: &str, src: &str, _mode: ScopeMode) -> FileModel {
    parse_file(rel_path, src)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> FileModel {
        parse_file("crates/core/src/pricing.rs", src)
    }

    #[test]
    fn fn_items_carry_impl_context_and_module_path() {
        let m = parse(
            r#"
pub struct Table;
impl Table {
    pub fn price_at(&self, x: f64) -> f64 { helper(x) }
}
fn helper(x: f64) -> f64 { x }
mod inner {
    pub fn nested() {}
}
"#,
        );
        assert_eq!(m.crate_name, "mbp_core");
        let names: Vec<_> = m.fns.iter().map(|f| f.display()).collect();
        assert_eq!(names, ["Table::price_at", "helper", "nested"]);
        assert_eq!(m.fns[0].module, vec!["pricing"]);
        assert_eq!(m.fns[2].module, vec!["pricing", "inner"]);
    }

    #[test]
    fn calls_are_classified_plain_path_method() {
        let m = parse(
            r#"
fn f(b: &Broker) -> f64 {
    let t = Table::compile(b);
    plain(1.0) + b.quote(2.0) + t.lookup(3.0) + mbp_core::pricing::price_at(4.0)
}
"#,
        );
        let calls = &m.fns[0].calls;
        let kinds: Vec<String> = calls
            .iter()
            .map(|c| match &c.kind {
                CallKind::Plain { name } => format!("plain:{name}"),
                CallKind::Path { segs } => format!("path:{}", segs.join("::")),
                CallKind::Method { name, recv } => {
                    format!("method:{name}@{}", recv.clone().unwrap_or_default())
                }
            })
            .collect();
        assert_eq!(
            kinds,
            [
                "path:Table::compile",
                "plain:plain",
                "method:quote@Broker",
                "method:lookup@Table",
                "path:mbp_core::pricing::price_at",
            ]
        );
    }

    #[test]
    fn panic_and_taint_sites_are_extracted() {
        let m = parse(
            r#"
fn f(v: &[f64]) -> f64 {
    let _t = std::time::Instant::now();
    v.last().unwrap() + v[0]
}
"#,
        );
        let f = &m.fns[0];
        assert_eq!(f.taints.len(), 1, "{:?}", f.taints);
        assert_eq!(f.panics.len(), 2, "{:?}", f.panics);
        assert!(f.panics[0].what.contains("unwrap"));
        assert!(f.panics[1].what.contains("indexing"));
    }

    #[test]
    fn cfg_test_fns_are_marked_and_emit_no_facts() {
        let m = parse(
            r#"
fn hot() -> f64 { 1.0 }
#[cfg(test)]
mod tests {
    #[test]
    fn t() { let v = vec![1.0]; v.last().unwrap(); }
}
"#,
        );
        assert!(!m.fns[0].is_test);
        let t = m.fns.iter().find(|f| f.name == "t").unwrap();
        assert!(t.is_test);
        assert!(t.panics.is_empty());
    }

    #[test]
    fn lock_events_capture_core_write_and_stripes() {
        let m = parse(
            r#"
fn f(s: &Shared) {
    let a = s.inner.stripes[0].lock();
    let mut core = s.inner.core.write();
    drop(a);
}
"#,
        );
        let f = &m.fns[0];
        assert_eq!(
            f.acquires,
            vec![LockClass::StripeConst(0), LockClass::CoreWrite]
        );
        assert!(f
            .events
            .iter()
            .any(|e| matches!(e, BodyEvent::DropName(n) if n == "a")));
    }

    #[test]
    fn use_aliases_are_collected() {
        let m = parse(
            "use std::time::Instant;\nuse mbp_core::market::{Broker, concurrent as conc};\nfn f() {}\n",
        );
        assert_eq!(
            m.uses.get("Instant"),
            Some(&vec![
                "std".to_string(),
                "time".to_string(),
                "Instant".to_string()
            ])
        );
        assert_eq!(m.uses.get("Broker").map(|v| v.len()), Some(3));
        assert!(m.uses.contains_key("conc"));
    }

    #[test]
    fn scope_annotations_attach_to_the_next_fn() {
        let m = parse(
            r#"
// LINT-SCOPE(reach-panic): setup-time constructor, unreachable from roots.
pub fn build() { panic!("contract"); }
pub fn other() {}
"#,
        );
        assert!(m.fns[0].scope_off.contains("reach-panic"));
        assert!(m.fns[1].scope_off.is_empty());
    }

    #[test]
    fn guard_returning_fn_is_detected() {
        let m = parse(
            "fn lock_next_stripe(&self) -> parking_lot::MutexGuard<'_, Vec<Tx>> { self.inner.stripes[0].lock() }\n",
        );
        assert!(m.fns[0].returns_guard);
        assert_eq!(m.fns[0].acquires, vec![LockClass::StripeConst(0)]);
    }
}
