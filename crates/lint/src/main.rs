//! `mbp-lint` binary: lint the workspace, print findings, gate CI.
//!
//! Exit codes: 0 clean, 1 findings or budget violations, 2 usage/IO error.

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
mbp-lint — zero-dependency static analysis for the mbp workspace

USAGE:
    mbp-lint [--root DIR] [--baseline FILE] [--report FILE] [--quiet]
             [--all-rules] [--interprocedural] [--graph-out BASE]

OPTIONS:
    --root DIR        Workspace root to scan (default: current directory)
    --baseline FILE   Waiver-budget baseline (default: <root>/lint.toml)
    --report FILE     Also write the findings report to FILE
    --quiet           Suppress the summary line when clean
    --all-rules       Apply every rule to every file, ignoring the repo's
                      path-based scoping (used to check the fixtures)
    --interprocedural Additionally build the workspace call graph and run
                      the reach-panic / taint-det / lock-graph analyses
    --graph-out BASE  With --interprocedural: write BASE.json and BASE.dot
                      call-graph artifacts (witness chains included)
    -h, --help        Show this help
";

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut baseline: Option<PathBuf> = None;
    let mut report_path: Option<PathBuf> = None;
    let mut quiet = false;
    let mut mode = mbp_lint::ScopeMode::Repo;
    let mut interprocedural = false;
    let mut graph_out: Option<PathBuf> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(v) => root = PathBuf::from(v),
                None => return usage_error("--root needs a value"),
            },
            "--baseline" => match args.next() {
                Some(v) => baseline = Some(PathBuf::from(v)),
                None => return usage_error("--baseline needs a value"),
            },
            "--report" => match args.next() {
                Some(v) => report_path = Some(PathBuf::from(v)),
                None => return usage_error("--report needs a value"),
            },
            "--quiet" => quiet = true,
            "--all-rules" => mode = mbp_lint::ScopeMode::AllRules,
            "--interprocedural" => interprocedural = true,
            "--graph-out" => match args.next() {
                Some(v) => graph_out = Some(PathBuf::from(v)),
                None => return usage_error("--graph-out needs a value"),
            },
            "-h" | "--help" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage_error(&format!("unknown argument `{other}`")),
        }
    }

    if graph_out.is_some() && !interprocedural {
        return usage_error("--graph-out requires --interprocedural");
    }
    let result = if interprocedural {
        if mode == mbp_lint::ScopeMode::AllRules {
            return usage_error("--interprocedural is incompatible with --all-rules");
        }
        mbp_lint::run_interprocedural(&root, baseline.as_deref(), graph_out.as_deref())
    } else {
        mbp_lint::run_with_mode(&root, baseline.as_deref(), mode)
    };
    let report = match result {
        Ok(r) => r,
        Err(e) => {
            eprintln!("mbp-lint: error: {e}");
            return ExitCode::from(2);
        }
    };
    let rendered = report.render();
    if let Some(path) = report_path {
        if let Err(e) = std::fs::write(&path, &rendered) {
            eprintln!("mbp-lint: error: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    if report.is_clean() {
        if !quiet {
            print!("{rendered}");
        }
        ExitCode::SUCCESS
    } else {
        print!("{rendered}");
        ExitCode::FAILURE
    }
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("mbp-lint: error: {msg}\n\n{USAGE}");
    ExitCode::from(2)
}
