//! mbp-lint: zero-dependency static analysis for the mbp workspace.
//!
//! The compiler cannot see the invariants this reproduction rests on:
//! arbitrage-freeness proofs assume deterministic replay, the serve path
//! (`quote`/`buy`/`*_into`) must not panic on adversarial input, and the
//! `SharedBroker` settlement protocol is deadlock-free only while stripe
//! mutexes are taken in ascending order and never under the core write
//! lock. `mbp-lint` walks every `.rs` file in the workspace with its own
//! lexer (comment/string/lifetime-aware — see [`lexer`]) and enforces
//! those invariants lexically (see [`rules`] for the rule set).
//!
//! ## Waivers and the baseline ratchet
//!
//! A finding is suppressed by an inline waiver comment on the same line
//! or the line directly above:
//!
//! ```text
//! // LINT-ALLOW(panic): idx < LEDGER_STRIPES by the modulo above
//! ```
//!
//! Each waiver suppresses **exactly one** finding; a second finding on
//! the same line needs its own waiver, and a waiver with no matching
//! finding is itself an error (so stale waivers cannot linger). The
//! number of live waivers per rule is capped by the `[waivers]` table in
//! `lint.toml` at the workspace root: exceeding a budget fails the run,
//! and unused headroom prints a shrink notice, so the baseline only
//! ratchets downward. Determinism (`det`) and lock-order (`lock`)
//! findings carry a budget of zero by policy — they must be fixed, never
//! waived.

pub mod callgraph;
pub mod config;
pub mod dataflow;
pub mod lexer;
pub mod rules;
pub mod symbols;

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

pub use config::Baseline;
pub use rules::{Finding, ScopeMode};

/// Outcome of linting one file after waiver application.
#[derive(Debug, Default)]
pub struct FileReport {
    /// Findings not covered by a waiver (includes malformed/unused-waiver
    /// findings under the synthetic `lint` rule).
    pub findings: Vec<Finding>,
    /// Consumed waivers per rule.
    pub waivers_used: BTreeMap<String, usize>,
}

/// Lint a single source string: run the rules, then apply waivers.
///
/// Waiver semantics: findings are processed in (line, col) order; each
/// looks for an unconsumed waiver of its rule on its own line first, then
/// on the line directly above. Leftover waivers become `lint` findings.
pub fn lint_source(rel_path: &str, src: &str, mode: ScopeMode) -> FileReport {
    let analysis = rules::analyze(rel_path, src, mode);
    let mut consumed = vec![false; analysis.waivers.len()];
    let mut report = FileReport::default();

    for f in analysis.findings {
        let mut waived = false;
        for offset in [0u32, 1u32] {
            let want = f.line.saturating_sub(offset);
            if want == 0 || (offset == 1 && want == f.line) {
                continue;
            }
            if let Some(w) = analysis
                .waivers
                .iter()
                .enumerate()
                .find(|(i, w)| !consumed[*i] && w.valid && w.rule == f.rule && w.line == want)
                .map(|(i, _)| i)
            {
                consumed[w] = true;
                *report.waivers_used.entry(f.rule.to_string()).or_insert(0) += 1;
                waived = true;
                break;
            }
        }
        if !waived {
            report.findings.push(f);
        }
    }
    for (i, w) in analysis.waivers.iter().enumerate() {
        if !w.valid {
            report.findings.push(Finding {
                rule: "lint",
                line: w.line,
                col: w.col,
                msg: "malformed waiver: expected `LINT-ALLOW(<rule>): <reason>` with a known rule id and a non-empty reason".to_string(),
            });
        } else if !consumed[i] {
            report.findings.push(Finding {
                rule: "lint",
                line: w.line,
                col: w.col,
                msg: format!(
                    "unused LINT-ALLOW({}) waiver — no matching finding on this or the next line; delete it",
                    w.rule
                ),
            });
        }
    }
    report.findings.sort_by_key(|f| (f.line, f.col));
    report
}

/// Aggregate report over a workspace run.
#[derive(Debug, Default)]
pub struct Report {
    /// `(relative path, finding)`, sorted by path then position.
    pub findings: Vec<(String, Finding)>,
    /// Consumed waivers per rule across all files.
    pub waivers_used: BTreeMap<String, usize>,
    /// Budget violations (waivers used > lint.toml budget).
    pub budget_errors: Vec<String>,
    /// Non-fatal notices (e.g. shrinkable budgets).
    pub notices: Vec<String>,
    pub files_scanned: usize,
}

impl Report {
    /// True when the run should exit 0.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty() && self.budget_errors.is_empty()
    }

    /// Render the findings report (the CI artifact format).
    pub fn render(&self) -> String {
        let mut s = String::new();
        for (path, f) in &self.findings {
            let _ = writeln!(s, "{path}:{}:{} [{}] {}", f.line, f.col, f.rule, f.msg);
        }
        for e in &self.budget_errors {
            let _ = writeln!(s, "error: {e}");
        }
        for n in &self.notices {
            let _ = writeln!(s, "note: {n}");
        }
        let used: usize = self.waivers_used.values().sum();
        let _ = writeln!(
            s,
            "mbp-lint: {} finding{}, {} waiver{} in use across {} files",
            self.findings.len(),
            if self.findings.len() == 1 { "" } else { "s" },
            used,
            if used == 1 { "" } else { "s" },
            self.files_scanned,
        );
        s
    }
}

/// Directories never descended into. `fixtures` under a `tests` directory
/// holds deliberately-violating lint fixtures; `corpus` holds testkit
/// counterexample data.
fn skip_dir(name: &str, parent: &str) -> bool {
    matches!(name, "target" | "vendor" | ".git" | "corpus")
        || (name == "fixtures" && parent == "tests")
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<_> = fs::read_dir(dir)?
        .collect::<io::Result<Vec<_>>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            let parent = dir.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if !skip_dir(name, parent) {
                collect_rs_files(&path, out)?;
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Run the full workspace lint rooted at `root`, reading the baseline
/// from `baseline_path` (default `<root>/lint.toml`; a missing file means
/// all budgets are zero).
pub fn run(root: &Path, baseline_path: Option<&Path>) -> io::Result<Report> {
    run_with_mode(root, baseline_path, ScopeMode::Repo)
}

/// [`run`] with an explicit [`ScopeMode`]. `ScopeMode::AllRules` applies
/// every rule to every scanned file regardless of its path — the mode the
/// fixtures under `crates/lint/tests/fixtures/` are checked with (via the
/// binary's `--all-rules` flag).
pub fn run_with_mode(
    root: &Path,
    baseline_path: Option<&Path>,
    mode: ScopeMode,
) -> io::Result<Report> {
    let default_baseline = root.join("lint.toml");
    let baseline_path = baseline_path.unwrap_or(&default_baseline);
    let baseline = match fs::read_to_string(baseline_path) {
        Ok(text) => config::parse(&text).map_err(io::Error::other)?,
        Err(e) if e.kind() == io::ErrorKind::NotFound => Baseline::default(),
        Err(e) => return Err(e),
    };

    let mut files = Vec::new();
    collect_rs_files(root, &mut files)?;

    let mut report = Report {
        files_scanned: files.len(),
        ..Report::default()
    };
    for path in &files {
        let src = fs::read_to_string(path)?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        let file_report = lint_source(&rel, &src, mode);
        for f in file_report.findings {
            report.findings.push((rel.clone(), f));
        }
        for (rule, n) in file_report.waivers_used {
            *report.waivers_used.entry(rule).or_insert(0) += n;
        }
    }
    report
        .findings
        .sort_by(|a, b| (&a.0, a.1.line, a.1.col).cmp(&(&b.0, b.1.line, b.1.col)));

    for rule in rules::RULE_IDS {
        let used = report.waivers_used.get(*rule).copied().unwrap_or(0);
        let budget = baseline.budget(rule);
        if used > budget {
            report.budget_errors.push(format!(
                "waiver budget exceeded for rule `{rule}`: {used} in use > {budget} allowed by lint.toml — fix the finding instead of waiving it"
            ));
        } else if used < budget {
            report.notices.push(format!(
                "rule `{rule}` uses {used} of {budget} budgeted waivers; shrink lint.toml to {used}"
            ));
        }
    }
    Ok(report)
}

/// Run the file-local lint **plus** the whole-workspace interprocedural
/// pass (call-graph construction and the `reach-panic` / `taint-det` /
/// `lock-graph` analyses — see [`dataflow`]).
///
/// When `graph_out` is given, writes `<graph_out>.json` and
/// `<graph_out>.dot`: the call graph restricted to serve-reachable and
/// tainted nodes, with every finding's witness chain. Findings are merged
/// into the same report/exit-code contract as [`run`]; the `[graph]`
/// budgets in `lint.toml` (pinned at 0) gate them.
pub fn run_interprocedural(
    root: &Path,
    baseline_path: Option<&Path>,
    graph_out: Option<&Path>,
) -> io::Result<Report> {
    let mut report = run_with_mode(root, baseline_path, ScopeMode::Repo)?;

    let default_baseline = root.join("lint.toml");
    let baseline_path = baseline_path.unwrap_or(&default_baseline);
    let baseline = match fs::read_to_string(baseline_path) {
        Ok(text) => config::parse(&text).map_err(io::Error::other)?,
        Err(e) if e.kind() == io::ErrorKind::NotFound => Baseline::default(),
        Err(e) => return Err(e),
    };

    let mut files = Vec::new();
    collect_rs_files(root, &mut files)?;
    let mut models = Vec::new();
    for path in &files {
        let src = fs::read_to_string(path)?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        let model = symbols::parse_file(&rel, &src);
        for a in &model.annotations {
            if !a.valid {
                report.findings.push((
                    rel.clone(),
                    Finding {
                        rule: "lint",
                        line: a.line,
                        col: a.col,
                        msg: "malformed scope annotation: expected `LINT-SCOPE(<graph-rule>): <reason>` with a known graph rule id and a non-empty reason".to_string(),
                    },
                ));
            }
        }
        models.push(model);
    }

    let graph = callgraph::CallGraph::build(models);
    let result = dataflow::run_analyses(&graph);

    let mut counts: BTreeMap<&str, usize> = BTreeMap::new();
    for gf in &result.findings {
        *counts.entry(gf.rule).or_insert(0) += 1;
    }
    for rule in rules::GRAPH_RULE_IDS {
        let found = counts.get(*rule).copied().unwrap_or(0);
        let budget = baseline.graph_budget(rule);
        if found > budget {
            report.budget_errors.push(format!(
                "graph budget exceeded for rule `{rule}`: {found} findings > {budget} allowed by lint.toml — fix along the witness chain, never waive"
            ));
        }
    }
    for gf in result.findings {
        report.findings.push((
            gf.rel_path,
            Finding {
                rule: gf.rule,
                line: gf.line,
                col: gf.col,
                msg: gf.msg,
            },
        ));
    }
    report
        .findings
        .sort_by(|a, b| (&a.0, a.1.line, a.1.col).cmp(&(&b.0, b.1.line, b.1.col)));

    if let Some(base) = graph_out {
        let json = graph.to_json(&result.keep, &result.witnesses);
        let dot = graph.to_dot(&result.keep, &result.flagged);
        fs::write(base.with_extension("json"), json)?;
        fs::write(base.with_extension("dot"), dot)?;
    }
    Ok(report)
}
