//! Workspace call graph: symbol table, pragmatic name resolution, and
//! the DOT/JSON graph artifact.
//!
//! ## Resolution scheme (documented over-approximation)
//!
//! Rust name resolution needs types; a lexical analyzer does not have
//! them. The scheme here trades precision for soundness *in the
//! direction that matters for each analysis* — when a callee cannot be
//! identified, the call resolves to **every** plausible workspace
//! function (assume-reachable), never silently to none:
//!
//! 1. **Plain calls** `foo(..)` — same file, then same crate, then the
//!    whole workspace by bare name.
//! 2. **Path calls** `a::b::foo(..)` — `use`-aliases are expanded first;
//!    a capitalized second-to-last segment is looked up as
//!    `Type::assoc_fn` (with `Self::` mapped to the enclosing impl
//!    type); otherwise candidates are filtered to functions whose
//!    module path ends with the call's module segments.
//! 3. **Method calls** `.foo(..)` — the receiver type is inferred from
//!    `self`, typed params, `let x: T`, and `let x = T::ctor(..)`
//!    bindings; a known receiver binds to that impl. An *unknown*
//!    receiver resolves to std when the name is on the ubiquitous-std
//!    list (`len`, `get`, `clone`, ... — see `symbols`), else to every
//!    workspace method with that name (this is the trait-object /
//!    fn-pointer over-approximation the tentpole requires).
//!
//! Unresolved calls are classified against the **std panic-capability
//! table**: a curated list of std methods that can panic (`insert`,
//! `split_at`, `copy_from_slice`, RefCell borrows, ...). Everything else
//! in std is assumed total — the std surface this workspace touches is
//! small and the table is easy to extend when a new panicky method
//! enters the vocabulary.

use crate::symbols::{CallKind, FileModel, FnItem};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

/// Std methods that can panic, by bare name. A call that resolves to std
/// (not to a workspace function) is a panic seed iff its name is listed
/// here. `unwrap`/`expect` are *not* listed — they are direct syntactic
/// panic sites already, and listing them would double-count.
///
/// Curation notes: `insert`/`remove`/`drain` are deliberately absent.
/// In this workspace those names are overwhelmingly the *total* map
/// operations (`HashMap`/`BTreeMap::insert`/`remove`) and range-clamped
/// buffer drains (`buf.drain(..n.min(buf.len()))`); listing them drowns
/// the report in false positives while the genuinely partial positional
/// `Vec::insert`/`remove` does not appear on any serve path here. The
/// remaining entries are partial on every receiver type that defines
/// them.
pub const PANICKY_STD: &[&str] = &[
    "split_at",
    "split_at_mut",
    "copy_from_slice",
    "clone_from_slice",
    "copy_within",
    "swap",
    "swap_remove",
    "split_off",
    "borrow_mut", // RefCell::borrow_mut; the Borrow trait has no borrow_mut
    "select_nth_unstable",
];

/// True when a std-resolved call with this bare name can panic.
pub fn std_can_panic(name: &str) -> bool {
    PANICKY_STD.contains(&name)
}

/// A resolved call-graph edge target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Target {
    /// Workspace function by graph id.
    Fn(usize),
    /// Standard library (or external) call; the bool is "can panic" per
    /// the capability table.
    Std { can_panic: bool },
}

/// One edge: caller body position + resolved targets. Ambiguous calls
/// carry several targets (assume-reachable).
#[derive(Debug, Clone)]
pub struct Edge {
    pub call_idx: usize,
    pub targets: Vec<usize>,
    /// The call resolved (possibly additionally) to std with panic
    /// capability.
    pub std_panic: bool,
}

/// The workspace call graph.
pub struct CallGraph {
    /// Flattened function items; index = graph id.
    pub fns: Vec<FnItem>,
    /// Per-function resolved edges, parallel to `fns`.
    pub edges: Vec<Vec<Edge>>,
    /// Per-file `use`-alias tables, keyed by rel path.
    pub uses: BTreeMap<String, BTreeMap<String, Vec<String>>>,
}

impl CallGraph {
    /// Build the graph from parsed file models. Test functions are kept
    /// (fixtures may want them) but callers exclude them via roots.
    pub fn build(models: Vec<FileModel>) -> CallGraph {
        let mut fns: Vec<FnItem> = Vec::new();
        let mut uses = BTreeMap::new();
        for m in models {
            uses.insert(m.rel_path.clone(), m.uses);
            fns.extend(m.fns);
        }

        // Indexes.
        let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut by_type_method: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
        let mut by_trait_method: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
        let mut by_file: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
        for (id, f) in fns.iter().enumerate() {
            by_name.entry(&f.name).or_default().push(id);
            by_file.entry((&f.rel_path, &f.name)).or_default().push(id);
            if let Some(t) = &f.self_type {
                by_type_method.entry((t, &f.name)).or_default().push(id);
            }
            if let Some(t) = &f.trait_name {
                by_trait_method.entry((t, &f.name)).or_default().push(id);
            }
        }

        let mut edges: Vec<Vec<Edge>> = Vec::with_capacity(fns.len());
        for f in &fns {
            let file_uses = uses.get(&f.rel_path);
            let mut fedges = Vec::with_capacity(f.calls.len());
            for (call_idx, call) in f.calls.iter().enumerate() {
                let (targets, std_panic) = resolve(
                    call,
                    f,
                    file_uses,
                    &by_name,
                    &by_type_method,
                    &by_trait_method,
                    &by_file,
                    &fns,
                );
                fedges.push(Edge {
                    call_idx,
                    targets,
                    std_panic,
                });
            }
            edges.push(fedges);
        }
        CallGraph { fns, edges, uses }
    }

    /// Graph ids of non-test functions matching a predicate.
    pub fn ids_where(&self, pred: impl Fn(&FnItem) -> bool) -> Vec<usize> {
        self.fns
            .iter()
            .enumerate()
            .filter(|(_, f)| !f.is_test && pred(f))
            .map(|(id, _)| id)
            .collect()
    }

    /// Render a witness call chain `a -> b -> c` from graph ids.
    pub fn chain(&self, ids: &[usize]) -> String {
        ids.iter()
            .map(|&id| self.fns[id].display())
            .collect::<Vec<_>>()
            .join(" -> ")
    }

    /// DOT rendering of the graph restricted to `keep` (plus all edges
    /// among kept nodes). Node labels carry `file:line`.
    pub fn to_dot(&self, keep: &BTreeSet<usize>, flagged: &BTreeSet<usize>) -> String {
        let mut s = String::from(
            "digraph mbp_callgraph {\n  rankdir=LR;\n  node [shape=box, fontsize=9];\n",
        );
        for &id in keep {
            let f = &self.fns[id];
            let color = if flagged.contains(&id) {
                ", color=red, penwidth=2"
            } else {
                ""
            };
            let _ = writeln!(
                s,
                "  n{id} [label=\"{}\\n{}:{}\"{color}];",
                f.display().replace('"', "'"),
                f.rel_path,
                f.line
            );
        }
        for &id in keep {
            let mut seen = BTreeSet::new();
            for e in &self.edges[id] {
                for &t in &e.targets {
                    if keep.contains(&t) && seen.insert(t) {
                        let _ = writeln!(s, "  n{id} -> n{t};");
                    }
                }
            }
        }
        s.push_str("}\n");
        s
    }

    /// JSON rendering: nodes, edges, and named witness chains. Hand-built
    /// (zero-dependency) — keys are fixed, strings escaped minimally.
    pub fn to_json(
        &self,
        keep: &BTreeSet<usize>,
        witnesses: &[(String, String, Vec<usize>)],
    ) -> String {
        fn esc(s: &str) -> String {
            s.replace('\\', "\\\\").replace('"', "\\\"")
        }
        let mut s = String::from("{\n  \"nodes\": [\n");
        let mut first = true;
        for &id in keep {
            let f = &self.fns[id];
            if !first {
                s.push_str(",\n");
            }
            first = false;
            let _ = write!(
                s,
                "    {{\"id\": {id}, \"fn\": \"{}\", \"file\": \"{}\", \"line\": {}}}",
                esc(&f.display()),
                esc(&f.rel_path),
                f.line
            );
        }
        s.push_str("\n  ],\n  \"edges\": [\n");
        first = true;
        for &id in keep {
            let mut seen = BTreeSet::new();
            for e in &self.edges[id] {
                for &t in &e.targets {
                    if keep.contains(&t) && seen.insert(t) {
                        if !first {
                            s.push_str(",\n");
                        }
                        first = false;
                        let _ = write!(s, "    {{\"from\": {id}, \"to\": {t}}}");
                    }
                }
            }
        }
        s.push_str("\n  ],\n  \"witnesses\": [\n");
        first = true;
        for (rule, msg, chain) in witnesses {
            if !first {
                s.push_str(",\n");
            }
            first = false;
            let _ = write!(
                s,
                "    {{\"rule\": \"{}\", \"msg\": \"{}\", \"chain\": \"{}\"}}",
                esc(rule),
                esc(msg),
                esc(&self.chain(chain))
            );
        }
        s.push_str("\n  ]\n}\n");
        s
    }
}

/// Resolve one call site to workspace targets and/or std.
#[allow(clippy::too_many_arguments)]
fn resolve(
    call: &crate::symbols::CallSite,
    caller: &FnItem,
    file_uses: Option<&BTreeMap<String, Vec<String>>>,
    by_name: &BTreeMap<&str, Vec<usize>>,
    by_type_method: &BTreeMap<(&str, &str), Vec<usize>>,
    by_trait_method: &BTreeMap<(&str, &str), Vec<usize>>,
    by_file: &BTreeMap<(&str, &str), Vec<usize>>,
    fns: &[FnItem],
) -> (Vec<usize>, bool) {
    match &call.kind {
        CallKind::Plain { name } => {
            // Same file first — the overwhelmingly common case for free fns.
            if let Some(ids) = by_file.get(&(caller.rel_path.as_str(), name.as_str())) {
                return (ids.clone(), false);
            }
            if let Some(ids) = by_name.get(name.as_str()) {
                let same_crate: Vec<usize> = ids
                    .iter()
                    .copied()
                    .filter(|&id| fns[id].crate_name == caller.crate_name)
                    .collect();
                if !same_crate.is_empty() {
                    return (same_crate, false);
                }
                return (ids.clone(), false);
            }
            // Unknown bare name: a std/macro-expanded helper. Assume total.
            (Vec::new(), false)
        }
        CallKind::Path { segs } => {
            // Expand a `use` alias on the first segment.
            let expanded: Vec<String> = match (segs.first(), file_uses) {
                (Some(first), Some(uses)) if uses.contains_key(first) => {
                    let mut v = uses[first].clone();
                    v.extend(segs.iter().skip(1).cloned());
                    v
                }
                _ => segs.clone(),
            };
            let name = expanded.last().cloned().unwrap_or_default();
            let qualifier = expanded
                .len()
                .checked_sub(2)
                .map(|i| expanded[i].as_str())
                .unwrap_or("");

            // `Self::f` → the enclosing impl type.
            let qualifier = if qualifier == "Self" {
                caller.self_type.as_deref().unwrap_or("Self")
            } else {
                qualifier
            };

            // Type-associated call: `Type::f`.
            if qualifier.chars().next().is_some_and(char::is_uppercase) {
                if let Some(ids) = by_type_method.get(&(qualifier, name.as_str())) {
                    return (ids.clone(), false);
                }
                // A std or foreign type: classify by capability table.
                return (Vec::new(), std_can_panic(&name));
            }

            // Module-qualified: filter candidates whose (crate, module)
            // path ends with the call's qualifying segments.
            if let Some(ids) = by_name.get(name.as_str()) {
                let quals: Vec<&str> = expanded[..expanded.len() - 1]
                    .iter()
                    .map(String::as_str)
                    .filter(|s| !matches!(*s, "crate" | "self" | "super"))
                    .collect();
                let matching: Vec<usize> = ids
                    .iter()
                    .copied()
                    .filter(|&id| {
                        let f = &fns[id];
                        let mut full: Vec<&str> = vec![f.crate_name.as_str()];
                        full.extend(f.module.iter().map(String::as_str));
                        quals
                            .iter()
                            .all(|q| full.contains(q) || f.crate_name == q.replace('-', "_"))
                    })
                    .collect();
                if !matching.is_empty() {
                    return (matching, false);
                }
                // Assume-reachable: every same-named workspace fn.
                return (ids.clone(), false);
            }
            (Vec::new(), std_can_panic(&name))
        }
        CallKind::Method { name, recv } => {
            // Known receiver type → that impl's method; a `dyn Trait`
            // receiver resolves to every impl of the trait.
            if let Some(ty) = recv {
                if let Some(ids) = by_type_method.get(&(ty.as_str(), name.as_str())) {
                    return (ids.clone(), false);
                }
                if let Some(ids) = by_trait_method.get(&(ty.as_str(), name.as_str())) {
                    return (ids.clone(), false);
                }
                // A known type without that method in the workspace:
                // fall through to the unknown-receiver handling, so a
                // foreign type's methods still classify against std and
                // non-ubiquitous names keep the assume-reachable fan-out.
            }
            // Unknown receiver: ubiquitous std names stay std...
            if crate::symbols::is_ubiquitous_std_method(name) {
                // ...unless exactly one workspace impl also defines the
                // name *and* nothing in std plausibly does — the list is
                // std-only names, so std it is.
                return (Vec::new(), std_can_panic(name));
            }
            // ...everything else fans out to every workspace method with
            // that name (trait-object / fn-pointer over-approximation).
            if let Some(ids) = by_name.get(name.as_str()) {
                let methods: Vec<usize> = ids
                    .iter()
                    .copied()
                    .filter(|&id| fns[id].self_type.is_some())
                    .collect();
                if !methods.is_empty() {
                    return (methods, false);
                }
                return (ids.clone(), false);
            }
            (Vec::new(), std_can_panic(name))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbols::parse_file;

    fn graph(files: &[(&str, &str)]) -> CallGraph {
        CallGraph::build(files.iter().map(|(p, s)| parse_file(p, s)).collect())
    }

    fn id_of(g: &CallGraph, name: &str) -> usize {
        g.fns
            .iter()
            .position(|f| f.display() == name)
            .unwrap_or_else(|| panic!("no fn {name}"))
    }

    fn targets_of(g: &CallGraph, caller: &str, callee_name: &str) -> Vec<String> {
        let c = id_of(g, caller);
        g.edges[c]
            .iter()
            .filter(|e| g.fns[c].calls[e.call_idx].name() == callee_name)
            .flat_map(|e| e.targets.iter().map(|&t| g.fns[t].display()))
            .collect()
    }

    #[test]
    fn plain_calls_prefer_same_file_then_crate() {
        let g = graph(&[
            (
                "crates/core/src/a.rs",
                "fn caller() { helper(); }\nfn helper() {}\n",
            ),
            ("crates/serve/src/b.rs", "fn helper() {}\n"),
        ]);
        assert_eq!(targets_of(&g, "caller", "helper"), ["helper"]);
        let c = id_of(&g, "caller");
        let t = g.edges[c][0].targets[0];
        assert_eq!(g.fns[t].rel_path, "crates/core/src/a.rs");
    }

    #[test]
    fn path_calls_resolve_through_use_aliases() {
        let g = graph(&[
            (
                "crates/serve/src/a.rs",
                "use mbp_core::pricing as p;\nfn caller() { p::price_at(1.0); }\n",
            ),
            (
                "crates/core/src/pricing.rs",
                "pub fn price_at(x: f64) -> f64 { x }\n",
            ),
        ]);
        assert_eq!(targets_of(&g, "caller", "price_at"), ["price_at"]);
    }

    #[test]
    fn self_calls_bind_to_the_impl_type() {
        let g = graph(&[(
            "crates/core/src/a.rs",
            r#"
struct T;
impl T {
    fn new() -> T { Self::setup() }
    fn setup() -> T { T }
}
"#,
        )]);
        assert_eq!(targets_of(&g, "T::new", "setup"), ["T::setup"]);
    }

    #[test]
    fn unknown_receiver_nonstd_name_fans_out_to_all_impls() {
        let g = graph(&[
            (
                "crates/core/src/a.rs",
                "struct A; impl A { fn settle(&self) {} }\n",
            ),
            (
                "crates/core/src/b.rs",
                "struct B; impl B { fn settle(&self) {} }\nfn caller(x: &dyn Tr) { x.settle(); }\n",
            ),
        ]);
        let mut t = targets_of(&g, "caller", "settle");
        t.sort();
        assert_eq!(t, ["A::settle", "B::settle"]);
    }

    #[test]
    fn unknown_receiver_ubiquitous_name_resolves_to_std() {
        let g = graph(&[(
            "crates/core/src/a.rs",
            "struct A; impl A { fn len(&self) -> usize { 0 } }\nfn caller(v: &Foo) { v.len(); }\n",
        )]);
        assert_eq!(targets_of(&g, "caller", "len"), Vec::<String>::new());
    }

    #[test]
    fn std_panic_capability_table_classifies_split_at() {
        // `split_at` is partial on every receiver; `insert` is curated
        // *out* of the table (map inserts are total and dominate this
        // workspace — see the PANICKY_STD doc comment); `push` is total.
        let g = graph(&[(
            "crates/core/src/a.rs",
            "fn caller(v: &mut Vec<u8>) { v.split_at(1); v.insert(0, 1); v.push(2); }\n",
        )]);
        let c = id_of(&g, "caller");
        let by_name: Vec<(&str, bool)> = g.edges[c]
            .iter()
            .map(|e| (g.fns[c].calls[e.call_idx].name(), e.std_panic))
            .collect();
        assert!(by_name.contains(&("split_at", true)));
        assert!(by_name.contains(&("insert", false)));
        assert!(by_name.contains(&("push", false)));
    }
}
