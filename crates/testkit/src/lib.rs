//! Verification layer for the MBP marketplace (machine-checked pricing
//! invariants, not spot tests).
//!
//! The whole value proposition of model-based pricing rests on
//! Theorems 5/6: a published price–error curve is arbitrage-free iff
//! `p̄(x) = p(1/x)` is non-negative, monotone non-decreasing, and
//! subadditive. After the compiled serving fast path, *three* independent
//! evaluators answer every quote (raw curve scan, compiled
//! [`mbp_core::pricing::PricingTable`], memoized φ inversion) — so a buyer
//! can arbitrage the implementation even when the math is sound. This crate
//! turns both risks into reusable, seed-deterministic machinery:
//!
//! * [`attack`] — an arbitrage **attack engine**: randomized multisets of
//!   precision points searched for monotonicity/subadditivity violations,
//!   budget-mode round-trip exploits, and ε-space attacks through φ, with
//!   greedy counterexample shrinking;
//! * [`oracle`] — a **differential oracle** driving the scan path, the
//!   compiled table, the φ memo, and a high-precision Kahan-summed
//!   reference evaluator over the same inputs, failing on divergence
//!   greater than `1e-12` (relative);
//! * [`schedule`] — a **deterministic schedule explorer** for
//!   [`mbp_core::market::concurrent::SharedBroker`]: a virtual-time
//!   scheduler that enumerates or samples interleavings of concurrent
//!   `quote_batch`/`buy_batch`/re-publish operations and checks
//!   linearizability of the striped ledger against a single-threaded
//!   reference broker, plus seeded fault-point injection;
//! * [`crash`] — a **crash-point fault injector** for durable logs:
//!   seeded kill-at-record/kill-at-byte schedules, content bit flips, and
//!   framing flips over an encoded log image, with recovery required to
//!   converge bit-identically from every surviving prefix (the `mbp-wal`
//!   crate plugs its recovery in through closures, so this crate stays
//!   storage-agnostic);
//! * [`corpus`] — persisted regression corpora (`testkit/corpus/`): every
//!   counterexample the engine ever found replays first on later runs.
//!
//! Everything is reproducible from a printed 64-bit seed alone.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attack;
pub mod corpus;
pub mod crash;
pub mod oracle;
pub mod schedule;

pub use attack::{attack_curve, attack_error_space, AttackConfig, AttackReport, Violation};
pub use corpus::{Case, Corpus};
pub use crash::{
    explore_crashes, CrashCase, CrashConfig, CrashFailure, CrashHarness, CrashOracle, CrashOutcome,
    CrashReport, CrashSchedule, LogGeometry,
};
pub use oracle::{check_error_space, check_pricing, OracleConfig, OracleReport, ReferenceCurve};
pub use schedule::{
    explore, explore_crash, run_case, run_crash_case, ScheduleConfig, ScheduleFailure,
    ScheduleReport,
};

/// Re-export of the core crate *as this crate links it*. `mbp-core`'s own
/// unit tests consume `mbp-testkit` through a dev-dependency cycle, where
/// the test-harness build of `mbp-core` is a distinct compilation from the
/// one linked here; those tests rebuild fixtures through this path so the
/// types unify.
pub use mbp_core;
