//! Persisted regression corpora for the attack engine.
//!
//! Every counterexample the engine ever finds is written to a plain-text
//! corpus file (one case per line, `#` comments allowed) under
//! `testkit/corpus/` at the repository root. Later runs replay the corpus
//! *before* randomized search, so a pricing defect that was fixed once can
//! never silently return — the same discipline proptest applies with its
//! `.proptest-regressions` files, but in a format readable without shrink
//! logs.
//!
//! Line format (whitespace-separated):
//!
//! ```text
//! mono <x_lo> <x_hi>
//! subadd <x_1> <x_2> [... <x_k>]
//! budget <b>
//! ```

use crate::attack::Violation;
use mbp_core::pricing::PricingFunction;
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};

/// One replayable attack case.
#[derive(Debug, Clone, PartialEq)]
pub enum Case {
    /// Monotonicity probe: check `p̄(x_lo) ≤ p̄(x_hi)`.
    Monotonicity(f64, f64),
    /// Subadditivity probe: check `p̄(Σ xᵢ) ≤ Σ p̄(xᵢ)`.
    Subadditivity(Vec<f64>),
    /// Budget round-trip probe: check the inversion of `b` re-prices
    /// within `b` and cannot be bettered.
    Budget(f64),
}

impl Case {
    /// Replays this case against `f`; `Some(violation)` when the defect is
    /// (still) present.
    pub fn replay(&self, f: &PricingFunction, tol: f64) -> Option<Violation> {
        let beats = |lhs: f64, rhs: f64| lhs > rhs + tol * lhs.abs().max(rhs.abs()).max(1.0);
        match self {
            Case::Monotonicity(x_lo, x_hi) => {
                let (p_lo, p_hi) = (f.price_at(*x_lo), f.price_at(*x_hi));
                beats(p_lo, p_hi).then_some(Violation::Monotonicity {
                    x_lo: *x_lo,
                    x_hi: *x_hi,
                    p_lo,
                    p_hi,
                })
            }
            Case::Subadditivity(parts) => {
                let whole: f64 = parts.iter().sum();
                let whole_price = f.price_at(whole);
                let parts_price: f64 = parts.iter().map(|&x| f.price_at(x)).sum();
                beats(whole_price, parts_price).then_some(Violation::Subadditivity {
                    parts: parts.clone(),
                    whole_price,
                    parts_price,
                })
            }
            Case::Budget(b) => {
                let x = f.max_precision_for_budget(*b)?;
                if !x.is_finite() {
                    return None;
                }
                let reprice = f.price_at(x);
                beats(reprice, *b).then_some(Violation::BudgetOvercharge {
                    budget: *b,
                    precision: x,
                    reprice,
                })
            }
        }
    }

    /// The corpus form of a found violation, when one exists (ε-space
    /// violations are transform-specific and not persisted).
    pub fn from_violation(v: &Violation) -> Option<Case> {
        match v {
            Violation::Monotonicity { x_lo, x_hi, .. } => Some(Case::Monotonicity(*x_lo, *x_hi)),
            Violation::Subadditivity { parts, .. } => Some(Case::Subadditivity(parts.clone())),
            Violation::BudgetOvercharge { budget, .. } => Some(Case::Budget(*budget)),
            Violation::BudgetUndersell { budget, .. } => Some(Case::Budget(*budget)),
            Violation::EpsilonSpace { .. } => None,
        }
    }
}

impl fmt::Display for Case {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Case::Monotonicity(lo, hi) => write!(f, "mono {lo} {hi}"),
            Case::Subadditivity(parts) => {
                write!(f, "subadd")?;
                for p in parts {
                    write!(f, " {p}")?;
                }
                Ok(())
            }
            Case::Budget(b) => write!(f, "budget {b}"),
        }
    }
}

/// A loaded corpus file.
#[derive(Debug, Clone, Default)]
pub struct Corpus {
    cases: Vec<Case>,
}

impl Corpus {
    /// The in-repo corpus directory (`testkit/corpus/` at the workspace
    /// root), for tests and CI; external callers pass explicit paths.
    pub fn default_dir() -> PathBuf {
        Path::new(env!("CARGO_MANIFEST_DIR")).join("../../testkit/corpus")
    }

    /// Parses a corpus from text (blank lines and `#` comments skipped).
    pub fn parse(text: &str) -> Result<Corpus, String> {
        let mut cases = Vec::new();
        for (i, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            let kind = parts.next().expect("non-empty line");
            let nums: Result<Vec<f64>, _> = parts.map(str::parse).collect();
            let nums = nums.map_err(|e| format!("line {}: {e}", i + 1))?;
            let case = match (kind, nums.len()) {
                ("mono", 2) => Case::Monotonicity(nums[0], nums[1]),
                ("subadd", n) if n >= 2 => Case::Subadditivity(nums),
                ("budget", 1) => Case::Budget(nums[0]),
                _ => return Err(format!("line {}: unrecognized case {line:?}", i + 1)),
            };
            cases.push(case);
        }
        Ok(Corpus { cases })
    }

    /// Loads a corpus file; a missing file is an empty corpus.
    pub fn load(path: &Path) -> io::Result<Corpus> {
        match std::fs::read_to_string(path) {
            Ok(text) => {
                Corpus::parse(&text).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(Corpus::default()),
            Err(e) => Err(e),
        }
    }

    /// Writes the corpus back out (one case per line, with a header).
    pub fn save(&self, path: &Path) -> io::Result<()> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        let mut text = String::from("# mbp-testkit regression corpus: one attack case per line.\n");
        for case in &self.cases {
            text.push_str(&case.to_string());
            text.push('\n');
        }
        std::fs::write(path, text)
    }

    /// The cases, in file order.
    pub fn cases(&self) -> &[Case] {
        &self.cases
    }

    /// Adds a case unless an identical one is already present.
    pub fn add(&mut self, case: Case) -> bool {
        if self.cases.contains(&case) {
            return false;
        }
        self.cases.push(case);
        true
    }

    /// Replays every case against `f`; returns the violations that still
    /// reproduce (must be empty for a regression-free curve).
    pub fn replay(&self, f: &PricingFunction, tol: f64) -> Vec<Violation> {
        self.cases.iter().filter_map(|c| c.replay(f, tol)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn broken() -> PricingFunction {
        PricingFunction::from_points(vec![1.0, 2.0, 4.0], vec![1.0, 4.0, 16.0]).unwrap()
    }

    fn sound() -> PricingFunction {
        PricingFunction::from_points(vec![1.0, 2.0, 4.0], vec![10.0, 14.0, 20.0]).unwrap()
    }

    #[test]
    fn round_trips_through_text() {
        let mut corpus = Corpus::default();
        corpus.add(Case::Monotonicity(1.0, 2.0));
        corpus.add(Case::Subadditivity(vec![1.0, 1.5]));
        corpus.add(Case::Budget(12.5));
        let text = corpus
            .cases()
            .iter()
            .map(|c| format!("{c}\n"))
            .collect::<String>();
        let reparsed = Corpus::parse(&text).unwrap();
        assert_eq!(reparsed.cases(), corpus.cases());
    }

    #[test]
    fn replay_flags_broken_and_clears_sound() {
        let corpus = Corpus::parse("subadd 1.0 1.0\nmono 1.0 2.0\nbudget 5.0\n").unwrap();
        assert!(!corpus.replay(&broken(), 1e-9).is_empty());
        assert!(corpus.replay(&sound(), 1e-9).is_empty());
    }

    #[test]
    fn dedupes_and_rejects_garbage() {
        let mut corpus = Corpus::default();
        assert!(corpus.add(Case::Budget(1.0)));
        assert!(!corpus.add(Case::Budget(1.0)));
        assert!(Corpus::parse("frobnicate 1 2\n").is_err());
        assert!(Corpus::parse("mono 1\n").is_err());
        assert!(Corpus::parse("# comment\n\n").unwrap().cases().is_empty());
    }

    #[test]
    fn save_and_load_round_trip() {
        let dir = std::env::temp_dir().join("mbp-testkit-corpus-test");
        let path = dir.join("pricing.txt");
        let mut corpus = Corpus::default();
        corpus.add(Case::Subadditivity(vec![0.5, 0.75, 1.0]));
        corpus.save(&path).unwrap();
        let loaded = Corpus::load(&path).unwrap();
        assert_eq!(loaded.cases(), corpus.cases());
        std::fs::remove_dir_all(&dir).ok();
        // Missing files load as empty corpora.
        assert!(Corpus::load(&path).unwrap().cases().is_empty());
    }

    #[test]
    fn in_repo_corpus_parses_and_holds_no_regressions_for_sound_curves() {
        let path = Corpus::default_dir().join("pricing.txt");
        let corpus = Corpus::load(&path).expect("corpus parses");
        assert!(
            !corpus.cases().is_empty(),
            "seed corpus should ship with the repo"
        );
        // Historical defects must stay fixed on a sound curve.
        assert!(corpus.replay(&sound(), 1e-9).is_empty());
        // ... and must still reproduce on the curve shape that caused them.
        assert!(!corpus.replay(&broken(), 1e-9).is_empty());
    }
}
