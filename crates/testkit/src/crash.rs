//! Crash-point fault injection for durable logs.
//!
//! The WAL recovery claim is prefix-convergence: killing the process at
//! **any** byte of the log must recover exactly the surviving record
//! prefix — bit-identical to an in-memory replay of those events — and
//! corrupt-but-framed records must be *skipped* with a counted warning
//! while framing damage *truncates*, never panicking on either.
//!
//! This module checks that claim mechanically without depending on any
//! particular log implementation. The implementation under test hands the
//! injector a [`LogGeometry`] (the encoded bytes plus record boundaries
//! and content spans) and a [`CrashOracle`] (a recovery closure plus
//! ground-truth digests computed straight from the original events,
//! *not* through the decoder). The injector then derives seeded crash
//! schedules —
//!
//! * **boundary kills**: the log cut after every complete record,
//! * **torn cuts**: seeded kill-at-byte offsets inside records and the
//!   file header,
//! * **content flips**: seeded bit flips inside a record's checksum or
//!   payload (framing intact, so recovery must skip exactly that record),
//! * **header flips**: seeded bit flips in a record's magic/version bytes
//!   (framing destroyed, so recovery must truncate at that record) —
//!
//! and requires recovery to converge from every one. The recovery closure
//! runs under a panic shield: a decoder that panics on corrupt bytes is a
//! failure in itself. Failing schedules persist to the regression corpus
//! (`testkit/corpus/crash.txt`) and replay first on later runs, the same
//! discipline [`crate::corpus`] applies to pricing attacks.
//!
//! The concurrent half lives in [`crate::schedule::explore_crash`]: a
//! [`CrashCase`] built by a [`CrashHarness`] plugs a real durability sink
//! into `SharedBroker` buys, kills the writer mid-group-commit, and
//! checks the recovered ledger is a sub-multiset of the in-memory one.

use mbp_core::market::DurabilitySink;
use mbp_randx::seeded_rng;
use rand::Rng;
use std::fmt;
use std::io;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// The byte-level shape of one encoded log: everything the injector needs
/// to address every cut and flip site without parsing the format itself.
#[derive(Debug, Clone)]
pub struct LogGeometry {
    /// The full encoded log (file header plus records).
    pub bytes: Vec<u8>,
    /// Length of the file header preceding the first record.
    pub header_len: usize,
    /// `record_ends[k]` is the byte offset just past record `k`.
    pub record_ends: Vec<usize>,
    /// Per record, the `(start, end)` byte range covering its checksum and
    /// payload — where a flip corrupts *content* but leaves framing (and
    /// therefore resynchronization) intact.
    pub content_spans: Vec<(usize, usize)>,
}

impl LogGeometry {
    /// Number of complete records in the log.
    pub fn records(&self) -> usize {
        self.record_ends.len()
    }

    /// Byte offset of the boundary after `k` complete records (`k = 0` is
    /// the end of the file header).
    pub fn boundary(&self, k: usize) -> Option<usize> {
        if k == 0 {
            Some(self.header_len)
        } else {
            self.record_ends.get(k - 1).copied()
        }
    }

    /// Start offset of record `k`.
    pub fn record_start(&self, k: usize) -> Option<usize> {
        self.boundary(k)
    }

    /// `true` when `offset` is a record boundary (or the header boundary,
    /// or 0): a cut there leaves a *clean* log, not a torn one.
    pub fn is_boundary(&self, offset: usize) -> bool {
        offset == 0 || offset == self.header_len || self.record_ends.contains(&offset)
    }

    /// Number of records wholly contained in `bytes[..offset]`.
    pub fn records_before(&self, offset: usize) -> usize {
        self.record_ends
            .iter()
            .take_while(|&&e| e <= offset)
            .count()
    }

    /// The record whose content span contains `offset`, if any.
    pub fn content_record(&self, offset: usize) -> Option<usize> {
        self.content_spans
            .iter()
            .position(|&(lo, hi)| (lo..hi).contains(&offset))
    }
}

/// What one recovery run observed, as reported by the implementation
/// under test.
#[derive(Debug, Clone, PartialEq)]
pub struct CrashOutcome {
    /// Digest of the applied-event sequence (the implementation's own
    /// bit-exact event encoding, so equal digests mean equal events).
    pub digest: u64,
    /// Number of events applied.
    pub applied: usize,
    /// Corrupt-but-framed records skipped with a counted warning.
    pub skipped: usize,
    /// Whether recovery truncated the stream before a clean end.
    pub truncated: bool,
}

/// The implementation under test: a recovery closure plus ground-truth
/// expectations computed from the original event list (never through the
/// decoder being tested — that would make the oracle circular).
pub struct CrashOracle<'a> {
    /// Recovers a (possibly cut or corrupted) byte image. Runs under a
    /// panic shield; panicking on corrupt bytes is itself a failure.
    pub recover: &'a (dyn Fn(&[u8]) -> CrashOutcome + Sync),
    /// Ground-truth digest of an in-memory replay of the first `k`
    /// events.
    pub expect_prefix: &'a (dyn Fn(usize) -> u64 + Sync),
    /// Ground-truth digest of an in-memory replay with event `k` removed
    /// (what a skip of record `k` must converge to).
    pub expect_skip: &'a (dyn Fn(usize) -> u64 + Sync),
}

/// One crash schedule, replayable from its corpus line alone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashSchedule {
    /// Kill the writer exactly at the boundary after `k` complete records.
    Boundary(usize),
    /// Kill the writer mid-record: keep only `bytes[..offset]`.
    Cut(usize),
    /// Flip bit `bit` of `bytes[byte]` inside a record's content span.
    ContentFlip {
        /// Absolute byte offset of the flip.
        byte: usize,
        /// Bit index `0..8`.
        bit: u8,
    },
    /// Flip bit `bit` of `bytes[byte]` inside a record's framing bytes.
    HeaderFlip {
        /// Absolute byte offset of the flip.
        byte: usize,
        /// Bit index `0..8`.
        bit: u8,
    },
    /// A concurrent schedule-explorer crash case (see
    /// [`crate::schedule::run_crash_case`]), persisted by its seed.
    Concurrent(u64),
}

impl fmt::Display for CrashSchedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CrashSchedule::Boundary(k) => write!(f, "boundary {k}"),
            CrashSchedule::Cut(offset) => write!(f, "cut {offset}"),
            CrashSchedule::ContentFlip { byte, bit } => write!(f, "flip {byte} {bit}"),
            CrashSchedule::HeaderFlip { byte, bit } => write!(f, "hflip {byte} {bit}"),
            CrashSchedule::Concurrent(seed) => write!(f, "sched {seed}"),
        }
    }
}

impl CrashSchedule {
    /// Parses one corpus line (the [`fmt::Display`] form).
    pub fn parse(line: &str) -> Result<CrashSchedule, String> {
        let mut parts = line.split_whitespace();
        let kind = parts.next().ok_or("empty line")?;
        let nums: Result<Vec<u64>, _> = parts.map(str::parse).collect();
        let nums = nums.map_err(|e| format!("bad number in {line:?}: {e}"))?;
        match (kind, nums.len()) {
            ("boundary", 1) => Ok(CrashSchedule::Boundary(nums[0] as usize)),
            ("cut", 1) => Ok(CrashSchedule::Cut(nums[0] as usize)),
            ("flip", 2) => Ok(CrashSchedule::ContentFlip {
                byte: nums[0] as usize,
                bit: (nums[1] % 8) as u8,
            }),
            ("hflip", 2) => Ok(CrashSchedule::HeaderFlip {
                byte: nums[0] as usize,
                bit: (nums[1] % 8) as u8,
            }),
            ("sched", 1) => Ok(CrashSchedule::Concurrent(nums[0])),
            _ => Err(format!("unrecognized crash schedule {line:?}")),
        }
    }
}

/// Configuration of one byte-level crash exploration.
#[derive(Debug, Clone)]
pub struct CrashConfig {
    /// Master seed for the sampled cut and flip sites.
    pub seed: u64,
    /// Seeded mid-record kill-at-byte cuts (boundary kills are always
    /// exhaustive and come on top of these).
    pub torn_cuts: usize,
    /// Seeded bit flips inside record content spans.
    pub content_flips: usize,
    /// Seeded bit flips inside record framing bytes.
    pub header_flips: usize,
    /// Regression corpus: persisted schedules replay first, and newly
    /// failing schedules are appended. `None` disables persistence.
    pub corpus: Option<PathBuf>,
}

impl Default for CrashConfig {
    fn default() -> Self {
        CrashConfig {
            seed: 0xc4a5_4b07,
            torn_cuts: 64,
            content_flips: 32,
            header_flips: 16,
            corpus: None,
        }
    }
}

/// One failed crash schedule.
#[derive(Debug, Clone)]
pub struct CrashFailure {
    /// The schedule that failed; its [`fmt::Display`] form is the corpus
    /// line that replays it.
    pub schedule: CrashSchedule,
    /// What diverged.
    pub detail: String,
}

impl fmt::Display for CrashFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "crash schedule [{}] failed: {}",
            self.schedule, self.detail
        )
    }
}

/// Outcome of a crash exploration.
#[derive(Debug, Clone, Default)]
pub struct CrashReport {
    /// Schedules executed (corpus replays included).
    pub schedules: usize,
    /// Schedules skipped because they fell outside this log's geometry
    /// (stale corpus offsets, empty logs).
    pub skipped: usize,
    /// Divergences found (empty = recovery converged from every probe).
    pub failures: Vec<CrashFailure>,
}

impl CrashReport {
    /// `true` when recovery converged from every executed schedule.
    pub fn converged(&self) -> bool {
        self.failures.is_empty()
    }
}

/// The in-repo crash corpus (`testkit/corpus/crash.txt` at the workspace
/// root).
pub fn default_corpus_path() -> PathBuf {
    crate::corpus::Corpus::default_dir().join("crash.txt")
}

/// Loads persisted crash schedules; a missing file is an empty corpus.
pub fn load_corpus(path: &Path) -> io::Result<Vec<CrashSchedule>> {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e),
    };
    let mut schedules = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        schedules.push(
            CrashSchedule::parse(line)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?,
        );
    }
    Ok(schedules)
}

/// Appends `new` schedules to the corpus, deduplicating against what is
/// already persisted.
pub fn append_corpus(path: &Path, new: &[CrashSchedule]) -> io::Result<()> {
    let mut schedules = load_corpus(path)?;
    let mut added = false;
    for s in new {
        if !schedules.contains(s) {
            schedules.push(*s);
            added = true;
        }
    }
    if !added && path.exists() {
        return Ok(());
    }
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let mut text =
        String::from("# mbp-testkit crash-schedule regression corpus: one schedule per line.\n");
    for s in &schedules {
        text.push_str(&s.to_string());
        text.push('\n');
    }
    std::fs::write(path, text)
}

/// What the injector expects recovery to observe for one schedule.
#[derive(Debug, Clone, PartialEq)]
struct Expectation {
    digest: u64,
    applied: usize,
    skipped: usize,
    truncated: bool,
}

/// Materializes one schedule against `geom`: the byte image to recover
/// and the expected outcome. `None` when the schedule falls outside this
/// log's geometry (a stale corpus line for a different history).
fn materialize(
    geom: &LogGeometry,
    oracle: &CrashOracle<'_>,
    schedule: CrashSchedule,
) -> Option<(Vec<u8>, Expectation)> {
    let n = geom.records();
    match schedule {
        CrashSchedule::Boundary(k) => {
            let offset = geom.boundary(k).filter(|&o| o <= geom.bytes.len())?;
            Some((
                geom.bytes.get(..offset)?.to_vec(),
                Expectation {
                    digest: (oracle.expect_prefix)(k),
                    applied: k,
                    skipped: 0,
                    truncated: false,
                },
            ))
        }
        CrashSchedule::Cut(offset) => {
            if offset >= geom.bytes.len() || geom.is_boundary(offset) {
                return None;
            }
            let k = geom.records_before(offset);
            Some((
                geom.bytes.get(..offset)?.to_vec(),
                Expectation {
                    digest: (oracle.expect_prefix)(k),
                    applied: k,
                    skipped: 0,
                    truncated: true,
                },
            ))
        }
        CrashSchedule::ContentFlip { byte, bit } => {
            let k = geom.content_record(byte)?;
            let mut bytes = geom.bytes.clone();
            *bytes.get_mut(byte)? ^= 1 << (bit % 8);
            Some((
                bytes,
                Expectation {
                    digest: (oracle.expect_skip)(k),
                    applied: n - 1,
                    skipped: 1,
                    truncated: false,
                },
            ))
        }
        CrashSchedule::HeaderFlip { byte, bit } => {
            // Only the magic/version bytes (first three of a record
            // header) guarantee framing damage: a flipped type byte can
            // land on another valid tag and degrade to a checksum skip.
            let k = (0..n).find(|&k| {
                geom.record_start(k)
                    .is_some_and(|s| (s..s + 3).contains(&byte))
            })?;
            let mut bytes = geom.bytes.clone();
            *bytes.get_mut(byte)? ^= 1 << (bit % 8);
            Some((
                bytes,
                Expectation {
                    digest: (oracle.expect_prefix)(k),
                    applied: k,
                    skipped: 0,
                    truncated: true,
                },
            ))
        }
        CrashSchedule::Concurrent(_) => None, // needs a live harness
    }
}

/// Runs one schedule; `Ok(false)` when it fell outside the geometry.
fn run_schedule(
    geom: &LogGeometry,
    oracle: &CrashOracle<'_>,
    schedule: CrashSchedule,
) -> Result<bool, CrashFailure> {
    let Some((bytes, expect)) = materialize(geom, oracle, schedule) else {
        return Ok(false);
    };
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let outcome = catch_unwind(AssertUnwindSafe(|| (oracle.recover)(&bytes)));
    std::panic::set_hook(prev);
    let outcome = outcome.map_err(|_| CrashFailure {
        schedule,
        detail: "recovery PANICKED on corrupt bytes (must classify damage instead)".to_string(),
    })?;
    let got = Expectation {
        digest: outcome.digest,
        applied: outcome.applied,
        skipped: outcome.skipped,
        truncated: outcome.truncated,
    };
    if got != expect {
        return Err(CrashFailure {
            schedule,
            detail: format!(
                "expected digest {:#018x} applied {} skipped {} truncated {}, \
                 got digest {:#018x} applied {} skipped {} truncated {}",
                expect.digest,
                expect.applied,
                expect.skipped,
                expect.truncated,
                got.digest,
                got.applied,
                got.skipped,
                got.truncated
            ),
        });
    }
    Ok(true)
}

/// Explores crash schedules against one encoded log: the persisted corpus
/// first, then every record boundary, then seeded cuts and flips. Newly
/// failing schedules are appended to the corpus (when configured) so they
/// replay first forever after.
pub fn explore_crashes(
    geom: &LogGeometry,
    oracle: &CrashOracle<'_>,
    cfg: &CrashConfig,
) -> CrashReport {
    let _span = mbp_obs::span("mbp.testkit.crash");
    let mut report = CrashReport::default();
    let run = |schedule: CrashSchedule, report: &mut CrashReport| match run_schedule(
        geom, oracle, schedule,
    ) {
        Ok(true) => report.schedules += 1,
        Ok(false) => report.skipped += 1,
        Err(f) => {
            report.schedules += 1;
            report.failures.push(f);
        }
    };

    // 1. Regression corpus replays first.
    if let Some(path) = &cfg.corpus {
        for schedule in load_corpus(path).unwrap_or_default() {
            run(schedule, &mut report);
        }
    }

    // 2. The empty image (a process killed before the header was even
    //    written), then every record-boundary prefix, exhaustively.
    {
        let empty = LogGeometry {
            bytes: Vec::new(),
            header_len: 0,
            record_ends: Vec::new(),
            content_spans: Vec::new(),
        };
        match run_schedule(&empty, oracle, CrashSchedule::Boundary(0)) {
            Ok(true) => report.schedules += 1,
            Ok(false) => report.skipped += 1,
            Err(f) => {
                report.schedules += 1;
                report.failures.push(f);
            }
        }
    }
    for k in 0..=geom.records() {
        run(CrashSchedule::Boundary(k), &mut report);
    }

    // 3. Seeded torn cuts, content flips, and header flips.
    let mut rng = seeded_rng(cfg.seed);
    if geom.bytes.len() > 1 {
        for _ in 0..cfg.torn_cuts {
            run(
                CrashSchedule::Cut(rng.gen_range(1..geom.bytes.len())),
                &mut report,
            );
        }
    }
    for _ in 0..cfg.content_flips {
        if geom.records() == 0 {
            break;
        }
        let k = rng.gen_range(0..geom.records());
        if let Some(&(lo, hi)) = geom.content_spans.get(k) {
            if lo < hi {
                run(
                    CrashSchedule::ContentFlip {
                        byte: rng.gen_range(lo..hi),
                        bit: rng.gen_range(0u32..8) as u8,
                    },
                    &mut report,
                );
            }
        }
    }
    for _ in 0..cfg.header_flips {
        if geom.records() == 0 {
            break;
        }
        let k = rng.gen_range(0..geom.records());
        if let Some(start) = geom.record_start(k) {
            run(
                CrashSchedule::HeaderFlip {
                    byte: start + rng.gen_range(0usize..3),
                    bit: rng.gen_range(0u32..8) as u8,
                },
                &mut report,
            );
        }
    }

    // 4. Persist anything new that failed.
    if let Some(path) = &cfg.corpus {
        if !report.failures.is_empty() {
            let new: Vec<CrashSchedule> = report.failures.iter().map(|f| f.schedule).collect();
            let _ = append_corpus(path, &new);
        }
    }
    mbp_obs::counter_add("mbp.testkit.crash.schedules", report.schedules as u64);
    report
}

/// One live crash case for the concurrent explorer: a durability sink to
/// plug into `SharedBroker`, a kill switch that crashes the writer
/// mid-group-commit, and a recovery probe reading back what survived.
///
/// All members are closures so `mbp-testkit` stays independent of any
/// concrete WAL crate; the WAL's own tests supply the real thing.
#[derive(Clone)]
pub struct CrashCase {
    /// The sink under test, attached to the broker for the case.
    pub sink: Arc<dyn DurabilitySink>,
    /// Crashes the writer at the instant of the call: buffered,
    /// un-synced records are lost, later appends fail.
    pub kill: Arc<dyn Fn() + Send + Sync>,
    /// Recovers the durable image *as it is right now* (dead writer,
    /// buffered tail lost) and returns the recovered sales as
    /// `(ncp_bits, price_bits)` pairs in recovered order.
    pub recovered_sales: Arc<dyn Fn() -> Vec<(u64, u64)> + Send + Sync>,
}

/// Builds a fresh [`CrashCase`] for a case seed (fresh WAL directory,
/// fresh writer).
pub type CrashHarness = Arc<dyn Fn(u64) -> CrashCase + Send + Sync>;

#[cfg(test)]
mod tests {
    use super::*;

    /// Local FNV-1a so the toy log needs no wire-crate dependency.
    const DIGEST_SEED: u64 = 0xcbf2_9ce4_8422_2325;
    fn digest_bytes(seed: u64, bytes: &[u8]) -> u64 {
        let mut d = seed;
        for &b in bytes {
            d ^= b as u64;
            d = d.wrapping_mul(0x0000_0100_0000_01b3);
        }
        d
    }

    /// A toy framed log, independent of mbp-wal: 4-byte header `TLOG`,
    /// records `[0xAA, 0xAA, 0xAA, len, checksum:u64le, payload...]`.
    /// Three magic bytes so the injector's header flips (record offsets
    /// `0..3`) always hit framing, a full 8-byte FNV checksum so content
    /// flips cannot collide.
    fn toy_encode(payloads: &[&[u8]]) -> LogGeometry {
        let mut bytes = vec![b'T', b'L', b'O', b'G'];
        let mut record_ends = Vec::new();
        let mut content_spans = Vec::new();
        for p in payloads {
            let start = bytes.len();
            bytes.extend_from_slice(&[0xAA, 0xAA, 0xAA, p.len() as u8]);
            bytes.extend_from_slice(&digest_bytes(DIGEST_SEED, p).to_le_bytes());
            bytes.extend_from_slice(p);
            content_spans.push((start + 4, bytes.len()));
            record_ends.push(bytes.len());
        }
        LogGeometry {
            bytes,
            header_len: 4,
            record_ends,
            content_spans,
        }
    }

    fn toy_recover(bytes: &[u8]) -> (Vec<Vec<u8>>, usize, bool) {
        if bytes.is_empty() {
            return (Vec::new(), 0, false);
        }
        if bytes.len() < 4 || &bytes[..4] != b"TLOG" {
            return (Vec::new(), 0, true);
        }
        let (mut events, mut skipped, mut offset) = (Vec::new(), 0usize, 4usize);
        loop {
            if offset == bytes.len() {
                return (events, skipped, false);
            }
            if bytes.len() - offset < 12 || bytes[offset..offset + 3] != [0xAA, 0xAA, 0xAA] {
                return (events, skipped, true);
            }
            let len = bytes[offset + 3] as usize;
            if bytes.len() - offset < 12 + len {
                return (events, skipped, true);
            }
            let stored = u64::from_le_bytes(bytes[offset + 4..offset + 12].try_into().unwrap());
            let payload = &bytes[offset + 12..offset + 12 + len];
            if digest_bytes(DIGEST_SEED, payload) != stored {
                skipped += 1;
            } else {
                events.push(payload.to_vec());
            }
            offset += 12 + len;
        }
    }

    fn digest_events(events: &[Vec<u8>]) -> u64 {
        let mut d = DIGEST_SEED;
        for e in events {
            d = digest_bytes(digest_bytes(d, &[e.len() as u8]), e);
        }
        d
    }

    fn payloads() -> Vec<Vec<u8>> {
        vec![
            b"alpha".to_vec(),
            b"bravo-7".to_vec(),
            b"c".to_vec(),
            b"delta-delta".to_vec(),
            b"echo99".to_vec(),
        ]
    }

    fn run_toy(recover: &(dyn Fn(&[u8]) -> CrashOutcome + Sync), cfg: &CrashConfig) -> CrashReport {
        let events = payloads();
        let refs: Vec<&[u8]> = events.iter().map(|e| e.as_slice()).collect();
        let geom = toy_encode(&refs);
        let expect_prefix = |k: usize| digest_events(&events[..k]);
        let expect_skip = |k: usize| {
            let mut rest = events.clone();
            rest.remove(k);
            digest_events(&rest)
        };
        let oracle = CrashOracle {
            recover,
            expect_prefix: &expect_prefix,
            expect_skip: &expect_skip,
        };
        explore_crashes(&geom, &oracle, cfg)
    }

    fn sound_recover(bytes: &[u8]) -> CrashOutcome {
        let (events, skipped, truncated) = toy_recover(bytes);
        CrashOutcome {
            digest: digest_events(&events),
            applied: events.len(),
            skipped,
            truncated,
        }
    }

    #[test]
    fn a_sound_recovery_converges_from_every_schedule() {
        let report = run_toy(&sound_recover, &CrashConfig::default());
        assert!(
            report.converged(),
            "{}",
            report.failures.first().expect("failure present")
        );
        // Exhaustive boundaries (0..=5 plus the empty image) plus most of
        // the sampled schedules must actually have run.
        assert!(report.schedules >= 7);
    }

    #[test]
    fn a_dropped_final_record_is_caught_by_boundary_probes() {
        // The classic off-by-one: clean EOF treated as a torn tail.
        let sabotaged = |bytes: &[u8]| {
            let mut out = sound_recover(bytes);
            if !out.truncated && out.applied > 0 {
                out.applied -= 1;
                out.digest ^= 0xdead_beef; // any wrong digest
            }
            out
        };
        let report = run_toy(&sabotaged, &CrashConfig::default());
        assert!(!report.converged());
    }

    #[test]
    fn a_panicking_decoder_is_a_failure_not_a_crash() {
        let panicky = |bytes: &[u8]| {
            let out = sound_recover(bytes);
            assert!(!out.truncated, "decoder panics on torn bytes");
            out
        };
        let report = run_toy(&panicky, &CrashConfig::default());
        assert!(report
            .failures
            .iter()
            .any(|f| f.detail.contains("PANICKED")));
    }

    #[test]
    fn schedules_round_trip_through_corpus_lines() {
        let schedules = vec![
            CrashSchedule::Boundary(3),
            CrashSchedule::Cut(137),
            CrashSchedule::ContentFlip { byte: 52, bit: 4 },
            CrashSchedule::HeaderFlip { byte: 9, bit: 7 },
            CrashSchedule::Concurrent(0xfeed),
        ];
        for s in &schedules {
            assert_eq!(CrashSchedule::parse(&s.to_string()).unwrap(), *s);
        }
        assert!(CrashSchedule::parse("frobnicate 1").is_err());

        let dir = std::env::temp_dir().join("mbp-testkit-crash-corpus-test");
        let path = dir.join("crash.txt");
        std::fs::remove_dir_all(&dir).ok();
        append_corpus(&path, &schedules).unwrap();
        append_corpus(&path, &schedules[..2]).unwrap(); // dedupes
        assert_eq!(load_corpus(&path).unwrap(), schedules);
        std::fs::remove_dir_all(&dir).ok();
        assert!(load_corpus(&path).unwrap().is_empty());
    }

    #[test]
    fn failing_schedules_persist_to_the_corpus_and_replay_first() {
        let dir = std::env::temp_dir().join("mbp-testkit-crash-persist-test");
        let path = dir.join("crash.txt");
        std::fs::remove_dir_all(&dir).ok();
        let cfg = CrashConfig {
            corpus: Some(path.clone()),
            ..CrashConfig::default()
        };
        let sabotaged = |bytes: &[u8]| {
            let mut out = sound_recover(bytes);
            if !out.truncated && out.applied > 0 {
                out.applied -= 1;
                out.digest ^= 1;
            }
            out
        };
        let first = run_toy(&sabotaged, &cfg);
        assert!(!first.converged());
        let persisted = load_corpus(&path).unwrap();
        assert!(!persisted.is_empty(), "failures must persist");
        // A later sound run replays the corpus (schedules include them)
        // and stays green.
        let again = run_toy(&sound_recover, &cfg);
        assert!(again.converged());
        std::fs::remove_dir_all(&dir).ok();
    }
}
