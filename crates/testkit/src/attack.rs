//! The arbitrage attack engine.
//!
//! Theorem 5: a buyer who can buy `k` model instances at precisions
//! `x_1..x_k` and combine them (inverse-variance weighting — precisions
//! add) defeats any pricing function that is not monotone and subadditive
//! on the inverse-NCP axis. The grid-quantized auditors in
//! [`mbp_core::arbitrage`] certify curves over a fixed resolution; this
//! engine is their randomized complement: it searches *off-grid* multisets
//! for
//!
//! * monotonicity violations (`x₁ < x₂` but `p̄(x₁) > p̄(x₂)`),
//! * subadditivity violations (`p̄(Σxᵢ) > Σ p̄(xᵢ)`: buying the parts and
//!   combining beats buying the whole),
//! * budget-mode round-trip exploits (the precision quoted for budget `b`
//!   re-prices above `b`, or a strictly better precision was affordable),
//! * ε-space attacks through φ (error-unit prices that reward *worse*
//!   accuracy, or overcharge against the δ-axis list price).
//!
//! Every found violation is greedily shrunk (fewer parts, rounder
//! numbers) before being reported, and the whole search is reproducible
//! from its 64-bit seed.

use crate::oracle::ReferenceCurve;
use mbp_core::error::ErrorTransform;
use mbp_core::pricing::{ErrorPricedTable, PricingFunction};
use mbp_randx::MbpRng;
use rand::Rng;
use std::fmt;

/// Configuration of an attack run.
#[derive(Debug, Clone, Copy)]
pub struct AttackConfig {
    /// Master seed; the run (and any counterexample) is reproducible from
    /// this value alone.
    pub seed: u64,
    /// Number of randomized trials.
    pub trials: u64,
    /// Largest multiset size `k` tried per subadditivity probe.
    pub max_bundle: usize,
    /// Relative exploit margin below which a probe is *not* a violation
    /// (absorbs last-ulp noise in the interpolation arithmetic).
    pub tol: f64,
    /// Stop after this many (shrunk) counterexamples.
    pub max_violations: usize,
}

impl Default for AttackConfig {
    fn default() -> Self {
        AttackConfig {
            seed: 0xa77a_c400,
            trials: 100_000,
            max_bundle: 5,
            tol: 1e-9,
            max_violations: 8,
        }
    }
}

impl AttackConfig {
    /// A short fixed-budget run (CI smoke and unit tests).
    pub fn quick(seed: u64) -> Self {
        AttackConfig {
            seed,
            trials: 10_000,
            ..AttackConfig::default()
        }
    }
}

/// One exploitable pricing defect, with the concrete inputs that exhibit
/// it.
#[derive(Debug, Clone, PartialEq)]
pub enum Violation {
    /// `x_lo < x_hi` but the lower precision costs more.
    Monotonicity {
        /// Lower precision.
        x_lo: f64,
        /// Higher precision.
        x_hi: f64,
        /// Price at `x_lo`.
        p_lo: f64,
        /// Price at `x_hi`.
        p_hi: f64,
    },
    /// Buying the parts and combining them (precisions add) undercuts the
    /// list price of the whole.
    Subadditivity {
        /// The multiset of part precisions.
        parts: Vec<f64>,
        /// `p̄(Σ parts)` — the list price of the combined precision.
        whole_price: f64,
        /// `Σ p̄(partᵢ)` — what the attacker actually pays.
        parts_price: f64,
    },
    /// The precision quoted for budget `b` re-prices above `b`.
    BudgetOvercharge {
        /// The buyer's budget.
        budget: f64,
        /// Precision quoted by budget inversion.
        precision: f64,
        /// List price of that precision (exceeds the budget).
        reprice: f64,
    },
    /// A strictly better precision than the quoted one was affordable.
    BudgetUndersell {
        /// The buyer's budget.
        budget: f64,
        /// Precision quoted by budget inversion.
        quoted: f64,
        /// A higher precision that still fits the budget.
        better: f64,
        /// List price of the better precision.
        better_price: f64,
    },
    /// In error units: a strictly worse (larger) error costs more, or the
    /// φ-composed price overcharges against the δ-axis list price.
    EpsilonSpace {
        /// The lower (better) expected error.
        err_lo: f64,
        /// The higher (worse) expected error.
        err_hi: f64,
        /// Price quoted for `err_lo`.
        p_lo: f64,
        /// Price quoted for `err_hi`.
        p_hi: f64,
    },
}

impl Violation {
    /// The attacker's margin: how much cheaper the exploit is than honest
    /// purchasing.
    pub fn margin(&self) -> f64 {
        match self {
            Violation::Monotonicity { p_lo, p_hi, .. } => p_lo - p_hi,
            Violation::Subadditivity {
                whole_price,
                parts_price,
                ..
            } => whole_price - parts_price,
            Violation::BudgetOvercharge {
                budget, reprice, ..
            } => reprice - budget,
            Violation::BudgetUndersell {
                budget,
                better_price,
                ..
            } => budget - better_price,
            Violation::EpsilonSpace { p_lo, p_hi, .. } => p_hi - p_lo,
        }
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::Monotonicity { x_lo, x_hi, p_lo, p_hi } => write!(
                f,
                "monotonicity: p({x_lo}) = {p_lo} > p({x_hi}) = {p_hi} although {x_lo} < {x_hi}"
            ),
            Violation::Subadditivity { parts, whole_price, parts_price } => write!(
                f,
                "subadditivity: combining {parts:?} costs {parts_price} < list price {whole_price} of the sum"
            ),
            Violation::BudgetOvercharge { budget, precision, reprice } => write!(
                f,
                "budget overcharge: budget {budget} was quoted precision {precision}, which re-prices at {reprice}"
            ),
            Violation::BudgetUndersell { budget, quoted, better, better_price } => write!(
                f,
                "budget undersell: budget {budget} was quoted {quoted} but {better} costs only {better_price}"
            ),
            Violation::EpsilonSpace { err_lo, err_hi, p_lo, p_hi } => write!(
                f,
                "epsilon-space: error {err_hi} (worse) costs {p_hi} > error {err_lo} costs {p_lo}"
            ),
        }
    }
}

/// A shrunk violation plus the trial that found it, for replay.
#[derive(Debug, Clone)]
pub struct Counterexample {
    /// The (shrunk) violation.
    pub violation: Violation,
    /// The master seed of the run that found it.
    pub seed: u64,
    /// Zero-based trial index within that run.
    pub trial: u64,
}

/// Result of an attack run.
#[derive(Debug, Clone)]
pub struct AttackReport {
    /// Trials executed.
    pub trials: u64,
    /// Individual exploit predicates evaluated.
    pub checks: u64,
    /// Shrunk counterexamples, in discovery order.
    pub violations: Vec<Counterexample>,
}

impl AttackReport {
    /// `true` when no exploit was found.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// The exploit margin must beat `tol` *relative to the price scale* to
/// count, so last-ulp interpolation noise never reports a violation.
fn exceeds(lhs: f64, rhs: f64, tol: f64) -> bool {
    lhs > rhs + tol * lhs.abs().max(rhs.abs()).max(1.0)
}

/// Draws one precision from a domain-aware mixture: interior points, the
/// origin ray, the saturated tail, and exact/near-knot values (where
/// piecewise-linear defects live).
fn sample_precision(f: &PricingFunction, rng: &mut MbpRng) -> f64 {
    let grid = f.grid();
    let x_max = *grid.last().expect("non-empty");
    match rng.gen_range(0u32..10) {
        0 => rng.gen_range(0.0..grid[0]).max(f64::MIN_POSITIVE), // ray
        1 => rng.gen_range(x_max..3.0 * x_max),                  // tail
        2 | 3 => {
            // On or near a knot.
            let k = grid[rng.gen_range(0..grid.len())];
            if rng.gen_bool(0.5) {
                k
            } else {
                (k * (1.0 + 1e-6 * (rng.gen::<f64>() - 0.5))).max(f64::MIN_POSITIVE)
            }
        }
        _ => rng.gen_range(0.0..1.2 * x_max).max(f64::MIN_POSITIVE),
    }
}

/// Checks every exploit predicate once for a single randomized draw.
/// Returns the first violation found (unshrunk).
fn probe(
    f: &PricingFunction,
    cfg: &AttackConfig,
    rng: &mut MbpRng,
    checks: &mut u64,
) -> Option<Violation> {
    // Monotonicity.
    let a = sample_precision(f, rng);
    let b = sample_precision(f, rng);
    let (x_lo, x_hi) = if a <= b { (a, b) } else { (b, a) };
    let (p_lo, p_hi) = (f.price_at(x_lo), f.price_at(x_hi));
    *checks += 1;
    if exceeds(p_lo, p_hi, cfg.tol) {
        return Some(Violation::Monotonicity {
            x_lo,
            x_hi,
            p_lo,
            p_hi,
        });
    }

    // Subadditivity: buy the parts, combine, compare to the whole.
    let k = rng.gen_range(2..cfg.max_bundle.max(2) + 1);
    let parts: Vec<f64> = (0..k).map(|_| sample_precision(f, rng)).collect();
    let whole: f64 = parts.iter().sum();
    let whole_price = f.price_at(whole);
    let parts_price: f64 = parts.iter().map(|&x| f.price_at(x)).sum();
    *checks += 1;
    if exceeds(whole_price, parts_price, cfg.tol) {
        return Some(Violation::Subadditivity {
            parts,
            whole_price,
            parts_price,
        });
    }

    // Budget round trip.
    let budget = rng.gen_range(0.0..1.2 * f.max_price().max(1.0));
    if let Some(x) = f.max_precision_for_budget(budget) {
        if x.is_finite() {
            let reprice = f.price_at(x);
            *checks += 1;
            if exceeds(reprice, budget, cfg.tol) {
                return Some(Violation::BudgetOvercharge {
                    budget,
                    precision: x,
                    reprice,
                });
            }
            // Any strictly better precision must exceed the budget.
            let x_max = *f.grid().last().expect("non-empty");
            for _ in 0..3 {
                let better = rng.gen_range(x..(1.5 * x_max).max(x * 2.0));
                if better <= x {
                    continue;
                }
                let better_price = f.price_at(better);
                *checks += 1;
                if exceeds(budget, better_price, cfg.tol) {
                    return Some(Violation::BudgetUndersell {
                        budget,
                        quoted: x,
                        better,
                        better_price,
                    });
                }
            }
        }
    }
    None
}

/// Greedy counterexample shrinking: drop parts, then snap survivors to the
/// nearest knot or to short decimals, as long as the violation persists.
fn shrink(f: &PricingFunction, v: Violation, tol: f64) -> Violation {
    match v {
        Violation::Subadditivity { mut parts, .. } => {
            let still_violates = |parts: &[f64]| -> Option<(f64, f64)> {
                if parts.len() < 2 {
                    return None;
                }
                let whole: f64 = parts.iter().sum();
                let wp = f.price_at(whole);
                let pp: f64 = parts.iter().map(|&x| f.price_at(x)).sum();
                exceeds(wp, pp, tol).then_some((wp, pp))
            };
            // Phase 1: drop parts.
            let mut i = 0;
            while parts.len() > 2 && i < parts.len() {
                let mut candidate = parts.clone();
                candidate.remove(i);
                if still_violates(&candidate).is_some() {
                    parts = candidate;
                } else {
                    i += 1;
                }
            }
            // Phase 2: snap each part to a knot or a short decimal.
            for i in 0..parts.len() {
                let mut snaps: Vec<f64> = f.grid().to_vec();
                for digits in 0..=3 {
                    let scale = 10f64.powi(digits);
                    snaps.push((parts[i] * scale).round() / scale);
                }
                for s in snaps {
                    if s <= 0.0 || s == parts[i] {
                        continue;
                    }
                    let mut candidate = parts.clone();
                    candidate[i] = s;
                    if still_violates(&candidate).is_some() {
                        parts = candidate;
                        break;
                    }
                }
            }
            parts.sort_by(f64::total_cmp);
            let whole: f64 = parts.iter().sum();
            let whole_price = f.price_at(whole);
            let parts_price = parts.iter().map(|&x| f.price_at(x)).sum();
            Violation::Subadditivity {
                parts,
                whole_price,
                parts_price,
            }
        }
        Violation::Monotonicity {
            mut x_lo, mut x_hi, ..
        } => {
            // Pull the pair toward knots while the inversion persists.
            for s in f.grid() {
                if *s < x_hi && exceeds(f.price_at(*s), f.price_at(x_hi), tol) {
                    x_lo = *s;
                    break;
                }
            }
            for s in f.grid().iter().rev() {
                if *s > x_lo && exceeds(f.price_at(x_lo), f.price_at(*s), tol) {
                    x_hi = *s;
                    break;
                }
            }
            Violation::Monotonicity {
                x_lo,
                x_hi,
                p_lo: f.price_at(x_lo),
                p_hi: f.price_at(x_hi),
            }
        }
        other => other,
    }
}

/// Runs the attack engine against a published curve in inverse-NCP space.
///
/// Every trial draws a fresh randomized probe (pair, multiset, budget) and
/// evaluates all exploit predicates; found violations are shrunk before
/// being recorded. The run is fully determined by `cfg.seed`.
pub fn attack_curve(f: &PricingFunction, cfg: &AttackConfig) -> AttackReport {
    let _span = mbp_obs::span("mbp.testkit.attack");
    let mut rng = mbp_randx::seeded_rng(cfg.seed);
    let mut report = AttackReport {
        trials: 0,
        checks: 0,
        violations: Vec::new(),
    };
    for trial in 0..cfg.trials {
        report.trials += 1;
        if let Some(v) = probe(f, cfg, &mut rng, &mut report.checks) {
            mbp_obs::inc("mbp.testkit.attack.violations");
            let shrunk = shrink(f, v, cfg.tol);
            report.violations.push(Counterexample {
                violation: shrunk,
                seed: cfg.seed,
                trial,
            });
            if report.violations.len() >= cfg.max_violations {
                break;
            }
        }
    }
    mbp_obs::counter_add("mbp.testkit.attack.trials", report.trials);
    report
}

/// Runs the ε-space attack through φ: prices in error units must never
/// reward a worse error, and the φ-composed price of `E[ε(δ)]` must never
/// exceed the δ-axis list price (overcharge).
pub fn attack_error_space(
    f: &PricingFunction,
    transform: &dyn ErrorTransform,
    cfg: &AttackConfig,
) -> AttackReport {
    let _span = mbp_obs::span("mbp.testkit.attack");
    let table = f.compile();
    let priced = ErrorPricedTable::new(&table, transform);
    let reference = ReferenceCurve::new(f);
    let x_max = *f.grid().last().expect("non-empty");
    let mut rng = mbp_randx::seeded_rng(cfg.seed ^ 0x5eed);
    let mut report = AttackReport {
        trials: 0,
        checks: 0,
        violations: Vec::new(),
    };
    for trial in 0..cfg.trials {
        report.trials += 1;
        // Two achievable errors via the forward transform.
        let d1 = rng.gen_range(1e-3 / x_max..4.0 / x_max);
        let d2 = rng.gen_range(1e-3 / x_max..4.0 / x_max);
        let (e1, e2) = (transform.expected_error(d1), transform.expected_error(d2));
        let (err_lo, err_hi) = if e1 <= e2 { (e1, e2) } else { (e2, e1) };
        let (p_lo, p_hi) = (
            priced.price_for_error(err_lo),
            priced.price_for_error(err_hi),
        );
        report.checks += 1;
        if let (Some(lo), Some(hi)) = (p_lo, p_hi) {
            // Worse error must not cost more.
            if exceeds(hi, lo, cfg.tol) {
                report.violations.push(Counterexample {
                    violation: Violation::EpsilonSpace {
                        err_lo,
                        err_hi,
                        p_lo: lo,
                        p_hi: hi,
                    },
                    seed: cfg.seed,
                    trial,
                });
                if report.violations.len() >= cfg.max_violations {
                    break;
                }
                continue;
            }
        }
        // Round trip: quoting E[ε(δ)] must not overcharge vs the list
        // price p̄(1/δ). (Undercutting is legitimate: PAVA-pooled
        // transforms resolve flat error stretches buyer-optimally.)
        let list = reference.price_at(1.0 / d1);
        report.checks += 1;
        if let Some(through_phi) = priced.price_for_error(e1) {
            if exceeds(through_phi, list, cfg.tol.max(1e-9)) {
                report.violations.push(Counterexample {
                    violation: Violation::EpsilonSpace {
                        err_lo: e1,
                        err_hi: e1,
                        p_lo: list,
                        p_hi: through_phi,
                    },
                    seed: cfg.seed,
                    trial,
                });
                if report.violations.len() >= cfg.max_violations {
                    break;
                }
            }
        }
    }
    mbp_obs::counter_add("mbp.testkit.attack.trials", report.trials);
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbp_core::error::SquareLossTransform;

    fn sound() -> PricingFunction {
        // Concave through the origin: monotone + subadditive.
        let grid: Vec<f64> = (1..=12).map(|i| i as f64 * 0.75).collect();
        let prices: Vec<f64> = grid.iter().map(|x| 6.0 * x.sqrt()).collect();
        PricingFunction::from_points(grid, prices).unwrap()
    }

    fn superadditive() -> PricingFunction {
        // Convex (superlinear) prices: buying parts beats the whole.
        PricingFunction::from_points(vec![1.0, 2.0, 4.0], vec![1.0, 4.0, 16.0]).unwrap()
    }

    fn non_monotone() -> PricingFunction {
        PricingFunction::from_points(vec![1.0, 2.0, 3.0], vec![5.0, 3.0, 9.0]).unwrap()
    }

    #[test]
    fn sound_curve_survives_many_trials() {
        let report = attack_curve(&sound(), &AttackConfig::quick(7));
        assert!(report.is_clean(), "{:?}", report.violations);
        assert_eq!(report.trials, 10_000);
        assert!(report.checks > 20_000);
    }

    #[test]
    fn superadditive_curve_is_broken_fast() {
        let report = attack_curve(&superadditive(), &AttackConfig::quick(7));
        assert!(!report.is_clean());
        let ce = &report.violations[0];
        assert!(
            matches!(ce.violation, Violation::Subadditivity { .. }),
            "{:?}",
            ce.violation
        );
        assert!(ce.violation.margin() > 0.0);
        // Found essentially immediately.
        assert!(ce.trial < 100, "took {} trials", ce.trial);
    }

    #[test]
    fn non_monotone_curve_is_caught_and_shrunk_to_knots() {
        let report = attack_curve(&non_monotone(), &AttackConfig::quick(11));
        let mono = report
            .violations
            .iter()
            .find_map(|c| match &c.violation {
                Violation::Monotonicity { x_lo, x_hi, .. } => Some((*x_lo, *x_hi)),
                _ => None,
            })
            .expect("monotonicity violation found");
        // Shrinking snaps the witness pair onto the defective knots.
        assert_eq!(mono, (1.0, 2.0));
    }

    #[test]
    fn attack_runs_are_deterministic_in_the_seed() {
        let f = superadditive();
        let a = attack_curve(&f, &AttackConfig::quick(42));
        let b = attack_curve(&f, &AttackConfig::quick(42));
        assert_eq!(a.trials, b.trials);
        assert_eq!(a.violations.len(), b.violations.len());
        for (x, y) in a.violations.iter().zip(&b.violations) {
            assert_eq!(x.violation, y.violation);
            assert_eq!(x.trial, y.trial);
        }
    }

    #[test]
    fn shrunk_subadditive_counterexample_is_minimal() {
        let f = superadditive();
        let report = attack_curve(&f, &AttackConfig::quick(3));
        let parts = report
            .violations
            .iter()
            .find_map(|c| match &c.violation {
                Violation::Subadditivity { parts, .. } => Some(parts.clone()),
                _ => None,
            })
            .expect("subadditivity violation found");
        assert_eq!(
            parts.len(),
            2,
            "greedy shrink should reach a pair: {parts:?}"
        );
        // The shrunk witness still violates.
        let whole: f64 = parts.iter().sum();
        let pp: f64 = parts.iter().map(|&x| f.price_at(x)).sum();
        assert!(f.price_at(whole) > pp);
    }

    #[test]
    fn error_space_attack_is_clean_on_identity_transform() {
        let report = attack_error_space(&sound(), &SquareLossTransform, &AttackConfig::quick(5));
        assert!(report.is_clean(), "{:?}", report.violations);
    }
}
