//! Deterministic schedule exploration for the concurrent broker.
//!
//! [`SharedBroker`] serves quotes under a shared read lock and lands
//! transactions in 8 independently locked ledger stripes; maintenance
//! drains the stripes under the write lock. The linearizability claim is
//! that *any* interleaving of `quote_batch`/`buy_batch`/re-publish/
//! reconcile operations is observationally equivalent to executing the
//! same operations, in linearization order, against a plain
//! single-threaded [`Broker`].
//!
//! This module checks that claim mechanically. A **virtual-time
//! scheduler** derives, from one 64-bit case seed, a set of 2–4 virtual
//! threads with randomized operation programs and an interleaving of
//! their steps; it executes the interleaving against a real
//! [`SharedBroker`] and then replays the identical linearization against
//! a reference [`Broker`] with bit-identical per-thread RNG streams. All
//! observations — sale prices (compared as exact bit patterns), error
//! variants, ledger counts — must match, and the final ledger multisets
//! must be identical. Small cases can also be **enumerated** exhaustively
//! over every interleaving.
//!
//! Seeded fault points pin graceful degradation: a maintenance closure
//! that panics mid-flight (the "poisoned stripe") must not lose settled
//! transactions or wedge later operations, and a reader racing a
//! re-publish must only ever observe one of the published curves, never a
//! torn listing.
//!
//! Any failure reproduces from the printed case seed alone via
//! [`run_case`].

use crate::crash::{append_corpus, load_corpus, CrashHarness, CrashSchedule};
use mbp_core::error::SquareLossTransform;
use mbp_core::market::concurrent::SharedBroker;
use mbp_core::market::{Broker, MarketError, PurchaseRequest, Sale};
use mbp_core::pricing::PricingFunction;
use mbp_data::synth;
use mbp_ml::ModelKind;
use mbp_randx::{seeded_rng, MbpRng, SeedStream};
use rand::Rng;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;

/// Configuration of an exploration run.
#[derive(Debug, Clone, Copy)]
pub struct ScheduleConfig {
    /// Master seed; every sampled case derives its own case seed from it.
    pub seed: u64,
    /// Number of sampled interleavings.
    pub interleavings: u64,
    /// Virtual threads per case (clamped to `2..=4`).
    pub threads: usize,
    /// Operations per virtual thread.
    pub ops_per_thread: usize,
    /// Inject seeded fault points (poisoned stripe, mid-publish reader).
    pub faults: bool,
}

impl Default for ScheduleConfig {
    fn default() -> Self {
        ScheduleConfig {
            seed: 0x5c4e_d00d,
            interleavings: 1_000,
            threads: 3,
            ops_per_thread: 5,
            faults: false,
        }
    }
}

/// A linearizability divergence, reproducible from the seed alone.
#[derive(Debug, Clone)]
pub struct ScheduleFailure {
    /// The case seed: `run_case(case_seed, threads, ops_per_thread,
    /// faults)` reproduces the failure with no other state.
    pub case_seed: u64,
    /// Virtual threads in the failing case.
    pub threads: usize,
    /// Operations per thread in the failing case.
    pub ops_per_thread: usize,
    /// Step index at which the observation streams diverged.
    pub step: usize,
    /// Human-readable description of the divergence.
    pub detail: String,
}

impl fmt::Display for ScheduleFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "schedule case {} diverged at step {}: {} \
             [replay: mbp_testkit::schedule::run_case({}, {}, {}, faults)]",
            self.case_seed,
            self.step,
            self.detail,
            self.case_seed,
            self.threads,
            self.ops_per_thread
        )
    }
}

/// Outcome of an exploration run.
#[derive(Debug, Clone)]
pub struct ScheduleReport {
    /// Interleavings executed.
    pub explored: u64,
    /// Total virtual-time steps executed across all interleavings.
    pub steps: u64,
    /// Divergences found (empty = linearizable over the sampled space).
    pub failures: Vec<ScheduleFailure>,
}

impl ScheduleReport {
    /// `true` when every sampled interleaving linearized.
    pub fn is_linearizable(&self) -> bool {
        self.failures.is_empty()
    }
}

/// One virtual-thread operation.
#[derive(Debug, Clone)]
enum Op {
    /// Batch purchase against the published listing (compiled-table path).
    BuyBatch(Vec<PurchaseRequest>),
    /// Single purchase through the scan path with an explicit curve.
    BuyScan(PurchaseRequest),
    /// Re-publish the listing with curve `A` (0) or `B` (1).
    Republish(usize),
    /// Read `sales_count` / `total_revenue`.
    Snapshot,
    /// Drain the stripes into the core ledger and read its length.
    Reconcile,
    /// Fault point: a maintenance closure that panics mid-flight.
    PoisonStripe,
    /// Fault point: quote against the listing and check the observed
    /// price is exactly one published curve, never a torn mixture.
    ReaderProbe,
}

/// The two standing curves cases re-publish between.
fn curves() -> [PricingFunction; 2] {
    let grid: Vec<f64> = (1..=6).map(|i| i as f64).collect();
    let a: Vec<f64> = grid.iter().map(|x| 5.0 * x.sqrt()).collect();
    let b: Vec<f64> = grid.iter().map(|x| 7.0 * x.sqrt()).collect();
    [
        PricingFunction::from_points(grid.clone(), a).expect("curve A is valid"),
        PricingFunction::from_points(grid, b).expect("curve B is valid"),
    ]
}

fn random_request(rng: &mut MbpRng) -> PurchaseRequest {
    match rng.gen_range(0u32..4) {
        0 | 1 => PurchaseRequest::AtNcp(rng.gen_range(0.25..2.0)),
        2 => PurchaseRequest::ErrorBudget(rng.gen_range(0.5..3.0)),
        // Spans unaffordable (tiny) through saturating (large) budgets, so
        // error parity is exercised too.
        _ => PurchaseRequest::PriceBudget(rng.gen_range(0.0..15.0)),
    }
}

fn random_op(rng: &mut MbpRng, faults: bool) -> Op {
    let hi = if faults { 12 } else { 10 };
    match rng.gen_range(0u32..hi) {
        0..=3 => {
            let n = rng.gen_range(1usize..4);
            Op::BuyBatch((0..n).map(|_| random_request(rng)).collect())
        }
        4..=5 => Op::BuyScan(random_request(rng)),
        6..=7 => Op::Republish(rng.gen_range(0usize..2)),
        8 => Op::Snapshot,
        9 => Op::Reconcile,
        10 => Op::PoisonStripe,
        _ => Op::ReaderProbe,
    }
}

/// One observation in virtual time. Prices compare as exact bit patterns;
/// revenue sums compare within `1e-9` relative (stripe-order vs
/// chronological-order float summation legitimately differs in the last
/// ulps).
#[derive(Debug, Clone, PartialEq)]
enum Obs {
    Price(u64),
    Error(String),
    Count(usize),
    Revenue(f64),
    Text(String),
}

fn obs_eq(a: &Obs, b: &Obs) -> bool {
    match (a, b) {
        (Obs::Revenue(x), Obs::Revenue(y)) => (x - y).abs() <= 1e-9 * y.abs().max(1.0),
        _ => a == b,
    }
}

fn sale_obs(out: &mut Vec<Obs>, r: &Result<Sale, MarketError>) {
    match r {
        Ok(sale) => out.push(Obs::Price(sale.price.to_bits())),
        Err(e) => out.push(Obs::Error(format!("{e:?}"))),
    }
}

/// Builds the broker under test: a small synthetic dataset (quotes are
/// cheap, so tens of thousands of cases stay fast) with linear regression
/// on the menu and curve `A` published.
fn build_broker(data_seed: u64) -> Broker {
    let mut rng = seeded_rng(data_seed);
    let data = synth::simulated1(60, 3, 0.5, &mut rng).split(0.75, &mut rng);
    let mut broker = Broker::new(data);
    broker
        .support(ModelKind::LinearRegression, 1e-6)
        .expect("linear regression is supported");
    broker
        .publish(
            ModelKind::LinearRegression,
            curves()[0].clone(),
            Box::new(SquareLossTransform),
        )
        .expect("publish succeeds");
    broker
}

/// Executes `programs` against the shared broker in the given
/// interleaving, collecting the observation stream.
fn run_shared(
    programs: &[Vec<Op>],
    order: &[usize],
    rng_seeds: &[u64],
    data_seed: u64,
) -> (Vec<Obs>, Vec<u64>) {
    let kind = ModelKind::LinearRegression;
    let sb = SharedBroker::new(build_broker(data_seed));
    let curves = curves();
    let mut rngs: Vec<MbpRng> = rng_seeds.iter().map(|&s| seeded_rng(s)).collect();
    let mut cursors = vec![0usize; programs.len()];
    let mut current = 0usize;
    let mut obs = Vec::new();
    for &t in order {
        let op = &programs[t][cursors[t]];
        cursors[t] += 1;
        match op {
            Op::BuyBatch(reqs) => {
                let results = sb.buy_batch(kind, reqs, &mut rngs[t]).expect("listed");
                for r in &results {
                    sale_obs(&mut obs, r);
                }
            }
            Op::BuyScan(req) => {
                let r = sb.buy(
                    kind,
                    *req,
                    &curves[current],
                    &SquareLossTransform,
                    &mut rngs[t],
                );
                sale_obs(&mut obs, &r);
            }
            Op::Republish(i) => {
                sb.publish(kind, curves[*i].clone(), Box::new(SquareLossTransform))
                    .expect("publish succeeds");
                current = *i;
                obs.push(Obs::Text(format!("publish {i}")));
            }
            Op::Snapshot => {
                obs.push(Obs::Count(sb.sales_count()));
                obs.push(Obs::Revenue(sb.total_revenue()));
            }
            Op::Reconcile => {
                let n = sb.with_broker(|b| b.ledger().len());
                obs.push(Obs::Count(n));
            }
            Op::PoisonStripe => {
                // A maintenance closure that dies mid-flight. The stripes
                // were already drained; the panic must neither lose those
                // transactions nor wedge the broker (parking_lot locks do
                // not poison).
                let prev = std::panic::take_hook();
                std::panic::set_hook(Box::new(|_| {}));
                let result = catch_unwind(AssertUnwindSafe(|| {
                    sb.with_broker(|_| panic!("injected stripe poison"))
                }));
                std::panic::set_hook(prev);
                obs.push(Obs::Text(format!("poison panicked={}", result.is_err())));
                obs.push(Obs::Count(sb.sales_count()));
            }
            Op::ReaderProbe => {
                // A reader overlapping re-publishes: the quoted price must
                // be the table price of exactly the currently-published
                // curve — a torn listing would price off mixed knots.
                let results = sb
                    .buy_batch(kind, &[PurchaseRequest::AtNcp(1.0)], &mut rngs[t])
                    .expect("listed");
                let price = results[0].as_ref().expect("NCP 1.0 is valid").price;
                let expected = curves[current].price_at(1.0);
                obs.push(Obs::Text(format!(
                    "reader torn={}",
                    price.to_bits() != expected.to_bits()
                )));
                obs.push(Obs::Price(price.to_bits()));
            }
        }
    }
    let ledger: Vec<u64> = sb.with_broker(|b| {
        let mut prices: Vec<u64> = b.ledger().iter().map(|t| t.price.to_bits()).collect();
        prices.sort_unstable();
        prices
    });
    (obs, ledger)
}

/// Executes the identical linearization against a plain single-threaded
/// broker with bit-identical RNG streams — the reference history.
fn run_reference(
    programs: &[Vec<Op>],
    order: &[usize],
    rng_seeds: &[u64],
    data_seed: u64,
) -> (Vec<Obs>, Vec<u64>) {
    let kind = ModelKind::LinearRegression;
    let mut broker = build_broker(data_seed);
    let curves = curves();
    let mut rngs: Vec<MbpRng> = rng_seeds.iter().map(|&s| seeded_rng(s)).collect();
    let mut cursors = vec![0usize; programs.len()];
    let mut current = 0usize;
    let mut obs = Vec::new();
    for &t in order {
        let op = &programs[t][cursors[t]];
        cursors[t] += 1;
        match op {
            Op::BuyBatch(reqs) => {
                let results = broker.buy_batch(kind, reqs, &mut rngs[t]).expect("listed");
                for r in &results {
                    sale_obs(&mut obs, r);
                }
            }
            Op::BuyScan(req) => {
                let r = broker.buy(
                    kind,
                    *req,
                    &curves[current],
                    &SquareLossTransform,
                    &mut rngs[t],
                );
                sale_obs(&mut obs, &r);
            }
            Op::Republish(i) => {
                broker
                    .publish(kind, curves[*i].clone(), Box::new(SquareLossTransform))
                    .expect("publish succeeds");
                current = *i;
                obs.push(Obs::Text(format!("publish {i}")));
            }
            Op::Snapshot => {
                obs.push(Obs::Count(broker.ledger().len()));
                obs.push(Obs::Revenue(broker.total_revenue()));
            }
            Op::Reconcile => {
                obs.push(Obs::Count(broker.ledger().len()));
            }
            Op::PoisonStripe => {
                // The reference broker has no maintenance to fault; the
                // observable contract is only "nothing lost, not wedged".
                obs.push(Obs::Text("poison panicked=true".to_string()));
                obs.push(Obs::Count(broker.ledger().len()));
            }
            Op::ReaderProbe => {
                let results = broker
                    .buy_batch(kind, &[PurchaseRequest::AtNcp(1.0)], &mut rngs[t])
                    .expect("listed");
                let price = results[0].as_ref().expect("NCP 1.0 is valid").price;
                obs.push(Obs::Text("reader torn=false".to_string()));
                obs.push(Obs::Price(price.to_bits()));
            }
        }
    }
    let mut ledger: Vec<u64> = broker.ledger().iter().map(|t| t.price.to_bits()).collect();
    ledger.sort_unstable();
    (obs, ledger)
}

/// Derives programs, RNG seeds, and (optionally) a sampled interleaving
/// from one case seed; `forced_order` overrides the interleaving for
/// exhaustive enumeration.
fn case_inputs(
    case_seed: u64,
    threads: usize,
    ops_per_thread: usize,
    faults: bool,
    forced_order: Option<&[usize]>,
) -> (Vec<Vec<Op>>, Vec<u64>, Vec<usize>, u64) {
    let threads = threads.clamp(2, 4);
    let mut seeds = SeedStream::new(case_seed);
    let data_seed = seeds.next_seed();
    let mut program_rng = seeds.next_rng();
    let mut interleave_rng = seeds.next_rng();
    let rng_seeds: Vec<u64> = (0..threads).map(|_| seeds.next_seed()).collect();
    let programs: Vec<Vec<Op>> = (0..threads)
        .map(|_| {
            (0..ops_per_thread)
                .map(|_| random_op(&mut program_rng, faults))
                .collect()
        })
        .collect();
    let order = match forced_order {
        Some(o) => o.to_vec(),
        None => {
            let mut remaining: Vec<usize> = vec![ops_per_thread; threads];
            let mut order = Vec::with_capacity(threads * ops_per_thread);
            while remaining.iter().any(|&r| r > 0) {
                let live: Vec<usize> = (0..threads).filter(|&t| remaining[t] > 0).collect();
                let t = live[interleave_rng.gen_range(0..live.len())];
                remaining[t] -= 1;
                order.push(t);
            }
            order
        }
    };
    (programs, rng_seeds, order, data_seed)
}

fn check_case(
    case_seed: u64,
    threads: usize,
    ops_per_thread: usize,
    faults: bool,
    forced_order: Option<&[usize]>,
) -> Result<usize, ScheduleFailure> {
    let (programs, rng_seeds, order, data_seed) =
        case_inputs(case_seed, threads, ops_per_thread, faults, forced_order);
    let (shared_obs, shared_ledger) = run_shared(&programs, &order, &rng_seeds, data_seed);
    let (ref_obs, ref_ledger) = run_reference(&programs, &order, &rng_seeds, data_seed);
    let fail = |step: usize, detail: String| ScheduleFailure {
        case_seed,
        threads: threads.clamp(2, 4),
        ops_per_thread,
        step,
        detail,
    };
    if shared_obs.len() != ref_obs.len() {
        return Err(fail(
            shared_obs.len().min(ref_obs.len()),
            format!(
                "observation streams differ in length: shared {} vs reference {}",
                shared_obs.len(),
                ref_obs.len()
            ),
        ));
    }
    for (i, (s, r)) in shared_obs.iter().zip(&ref_obs).enumerate() {
        if !obs_eq(s, r) {
            return Err(fail(i, format!("shared observed {s:?}, reference {r:?}")));
        }
    }
    if shared_ledger != ref_ledger {
        return Err(fail(
            shared_obs.len(),
            format!(
                "final ledger multisets differ: shared {} txs vs reference {} txs",
                shared_ledger.len(),
                ref_ledger.len()
            ),
        ));
    }
    Ok(order.len())
}

/// Runs one schedule case from its seed alone and checks linearizability
/// against the reference broker. This is the replay entry point printed
/// in every [`ScheduleFailure`].
pub fn run_case(
    case_seed: u64,
    threads: usize,
    ops_per_thread: usize,
    faults: bool,
) -> Result<usize, ScheduleFailure> {
    check_case(case_seed, threads, ops_per_thread, faults, None)
}

/// Samples `cfg.interleavings` cases (each with its own derived seed,
/// thread programs, and interleaving) and checks every one. Thread count
/// cycles through `2..=cfg.threads` so every width is exercised.
pub fn explore(cfg: &ScheduleConfig) -> ScheduleReport {
    let _span = mbp_obs::span("mbp.testkit.schedule");
    let mut seeds = SeedStream::new(cfg.seed);
    let mut report = ScheduleReport {
        explored: 0,
        steps: 0,
        failures: Vec::new(),
    };
    let max_threads = cfg.threads.clamp(2, 4);
    for i in 0..cfg.interleavings {
        let case_seed = seeds.next_seed();
        let threads = 2 + (i as usize % (max_threads - 1));
        report.explored += 1;
        match run_case(case_seed, threads, cfg.ops_per_thread, cfg.faults) {
            Ok(steps) => report.steps += steps as u64,
            Err(f) => {
                report.failures.push(f);
                if report.failures.len() >= 5 {
                    break;
                }
            }
        }
    }
    mbp_obs::counter_add("mbp.testkit.schedule.cases", report.explored);
    report
}

/// Exhaustively enumerates *every* interleaving of one case's programs
/// (2 threads recommended; the count is the binomial coefficient) and
/// checks each. Complements [`explore`]'s sampling on small cases.
pub fn enumerate_case(
    case_seed: u64,
    threads: usize,
    ops_per_thread: usize,
    faults: bool,
) -> ScheduleReport {
    let threads = threads.clamp(2, 4);
    let mut report = ScheduleReport {
        explored: 0,
        steps: 0,
        failures: Vec::new(),
    };
    let mut order = Vec::with_capacity(threads * ops_per_thread);
    let mut remaining = vec![ops_per_thread; threads];
    enumerate_orders(
        case_seed,
        threads,
        ops_per_thread,
        faults,
        &mut order,
        &mut remaining,
        &mut report,
    );
    report
}

fn enumerate_orders(
    case_seed: u64,
    threads: usize,
    ops_per_thread: usize,
    faults: bool,
    order: &mut Vec<usize>,
    remaining: &mut Vec<usize>,
    report: &mut ScheduleReport,
) {
    if report.failures.len() >= 5 {
        return;
    }
    if remaining.iter().all(|&r| r == 0) {
        report.explored += 1;
        match check_case(case_seed, threads, ops_per_thread, faults, Some(order)) {
            Ok(steps) => report.steps += steps as u64,
            Err(f) => report.failures.push(f),
        }
        return;
    }
    for t in 0..threads {
        if remaining[t] == 0 {
            continue;
        }
        remaining[t] -= 1;
        order.push(t);
        enumerate_orders(
            case_seed,
            threads,
            ops_per_thread,
            faults,
            order,
            remaining,
            report,
        );
        order.pop();
        remaining[t] += 1;
    }
}

/// `true` when `sub` is a sub-multiset of `sup` (both are consumed as
/// scratch space).
fn is_sub_multiset(sub: &mut [(u64, u64)], sup: &mut [(u64, u64)]) -> bool {
    sub.sort_unstable();
    sup.sort_unstable();
    let mut i = 0;
    for s in sup.iter() {
        if i < sub.len() && sub[i] == *s {
            i += 1;
        }
    }
    i == sub.len()
}

/// Runs one concurrent **crash-fault** case: `threads` real buyer threads
/// hammer a [`SharedBroker`] wired to the harness's durability sink while
/// a killer thread crashes the log writer mid-group-commit at a seeded
/// point in the op stream. Durability may lose the buffered, un-synced
/// tail — but it must never invent, duplicate, or corrupt a sale, so the
/// recovered `(ncp, price)` bit-pattern multiset must be a sub-multiset
/// of the in-memory ledger.
///
/// Unlike [`run_case`], real threads race here, so the kill lands at a
/// nondeterministic instant; the checked property holds for *every*
/// landing point, and the seed still pins the op stream, the data, and
/// the scheduled kill trigger.
pub fn run_crash_case(
    case_seed: u64,
    threads: usize,
    ops_per_thread: usize,
    harness: &CrashHarness,
) -> Result<usize, ScheduleFailure> {
    let threads = threads.clamp(2, 4);
    let mut seeds = SeedStream::new(case_seed);
    let data_seed = seeds.next_seed();
    let total_ops = threads * ops_per_thread.max(1);
    let kill_after = 1 + (seeds.next_seed() as usize % total_ops);
    let rng_seeds: Vec<u64> = (0..threads).map(|_| seeds.next_seed()).collect();
    let case = (harness)(case_seed);
    let sb = SharedBroker::with_durability(build_broker(data_seed), Arc::clone(&case.sink));
    let progress = Arc::new(AtomicU64::new(0));

    let killer = {
        let progress = Arc::clone(&progress);
        let kill = Arc::clone(&case.kill);
        thread::spawn(move || {
            while progress.load(Ordering::Acquire) < kill_after as u64 {
                thread::yield_now();
            }
            kill();
        })
    };
    let buyers: Vec<_> = rng_seeds
        .iter()
        .map(|&rng_seed| {
            let sb = sb.clone();
            let progress = Arc::clone(&progress);
            let ops = ops_per_thread.max(1);
            thread::spawn(move || {
                let mut rng = seeded_rng(rng_seed);
                for _ in 0..ops {
                    let ncp = rng.gen_range(0.5..1.8);
                    let _ = sb.buy_batch(
                        ModelKind::LinearRegression,
                        &[PurchaseRequest::AtNcp(ncp)],
                        &mut rng,
                    );
                    progress.fetch_add(1, Ordering::Release);
                }
            })
        })
        .collect();
    for b in buyers {
        let _ = b.join();
    }
    let _ = killer.join(); // kill_after <= total_ops, so it always fires

    let mut recovered = (case.recovered_sales)();
    let mut in_mem: Vec<(u64, u64)> = sb.with_broker(|b| {
        b.ledger()
            .iter()
            .map(|t| (t.ncp.to_bits(), t.price.to_bits()))
            .collect()
    });
    let (rec_n, mem_n) = (recovered.len(), in_mem.len());
    if !is_sub_multiset(&mut recovered, &mut in_mem) {
        return Err(ScheduleFailure {
            case_seed,
            threads,
            ops_per_thread,
            step: rec_n,
            detail: format!(
                "recovered ledger is NOT a sub-multiset of the in-memory ledger \
                 ({rec_n} recovered vs {mem_n} in memory) \
                 [replay: mbp_testkit::schedule::run_crash_case({case_seed}, \
                 {threads}, {ops_per_thread}, harness)]"
            ),
        });
    }
    Ok(total_ops)
}

/// Samples `cfg.interleavings` concurrent crash cases through `harness`
/// (see [`run_crash_case`]). When `corpus` is given, persisted
/// `sched <seed>` schedules replay first and newly failing seeds are
/// appended — the same regression discipline as
/// [`crate::crash::explore_crashes`].
pub fn explore_crash(
    cfg: &ScheduleConfig,
    harness: &CrashHarness,
    corpus: Option<&Path>,
) -> ScheduleReport {
    let _span = mbp_obs::span("mbp.testkit.schedule.crash");
    let mut report = ScheduleReport {
        explored: 0,
        steps: 0,
        failures: Vec::new(),
    };
    let max_threads = cfg.threads.clamp(2, 4);
    if let Some(path) = corpus {
        for schedule in load_corpus(path).unwrap_or_default() {
            let CrashSchedule::Concurrent(seed) = schedule else {
                continue; // byte-level schedules need a geometry, not a harness
            };
            report.explored += 1;
            match run_crash_case(seed, max_threads, cfg.ops_per_thread, harness) {
                Ok(steps) => report.steps += steps as u64,
                Err(f) => report.failures.push(f),
            }
        }
    }
    let mut seeds = SeedStream::new(cfg.seed);
    for i in 0..cfg.interleavings {
        let case_seed = seeds.next_seed();
        let threads = 2 + (i as usize % (max_threads - 1).max(1));
        report.explored += 1;
        match run_crash_case(case_seed, threads, cfg.ops_per_thread, harness) {
            Ok(steps) => report.steps += steps as u64,
            Err(f) => {
                report.failures.push(f);
                if report.failures.len() >= 5 {
                    break;
                }
            }
        }
    }
    if let Some(path) = corpus {
        if !report.failures.is_empty() {
            let new: Vec<CrashSchedule> = report
                .failures
                .iter()
                .map(|f| CrashSchedule::Concurrent(f.case_seed))
                .collect();
            let _ = append_corpus(path, &new);
        }
    }
    mbp_obs::counter_add("mbp.testkit.schedule.crash.cases", report.explored);
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn sampled_interleavings_linearize() {
        let report = explore(&ScheduleConfig {
            seed: 11,
            interleavings: 300,
            threads: 4,
            ops_per_thread: 4,
            faults: false,
        });
        assert!(
            report.is_linearizable(),
            "{}",
            report.failures.first().expect("failure present")
        );
        assert_eq!(report.explored, 300);
        assert!(report.steps >= 300 * 2 * 4);
    }

    #[test]
    fn fault_injected_interleavings_still_linearize() {
        let report = explore(&ScheduleConfig {
            seed: 13,
            interleavings: 120,
            threads: 3,
            ops_per_thread: 5,
            faults: true,
        });
        assert!(
            report.is_linearizable(),
            "{}",
            report.failures.first().expect("failure present")
        );
    }

    #[test]
    fn exhaustive_enumeration_of_a_small_case() {
        // 2 threads x 3 ops: C(6, 3) = 20 interleavings, all checked.
        let report = enumerate_case(4242, 2, 3, false);
        assert_eq!(report.explored, 20);
        assert!(
            report.is_linearizable(),
            "{}",
            report.failures.first().expect("failure present")
        );
    }

    #[test]
    fn cases_replay_identically_from_their_seed() {
        let a = run_case(77, 3, 4, true);
        let b = run_case(77, 3, 4, true);
        match (a, b) {
            (Ok(x), Ok(y)) => assert_eq!(x, y),
            (Err(x), Err(y)) => assert_eq!(x.detail, y.detail),
            (x, y) => panic!("replay diverged: {x:?} vs {y:?}"),
        }
    }

    /// An in-memory stand-in for a WAL sink with group-commit semantics:
    /// sales buffer locally and only "reach disk" every `group` records;
    /// `kill` drops the buffered tail and goes dead. This is the
    /// loss-model contract `run_crash_case` checks — the real WAL plugs
    /// in through the same harness from its own test suite.
    #[derive(Default)]
    struct FakeWalState {
        committed: Vec<(u64, u64)>,
        buffer: Vec<(u64, u64)>,
        dead: bool,
    }

    struct FakeWalSink {
        group: usize,
        state: std::sync::Mutex<FakeWalState>,
    }

    impl FakeWalSink {
        fn kill(&self) {
            let mut s = self.state.lock().unwrap();
            s.buffer.clear();
            s.dead = true;
        }

        fn committed(&self) -> Vec<(u64, u64)> {
            self.state.lock().unwrap().committed.clone()
        }
    }

    impl mbp_core::market::DurabilitySink for FakeWalSink {
        fn record_sale(&self, tx: &mbp_core::market::Transaction) {
            let mut s = self.state.lock().unwrap();
            if s.dead {
                return; // dead writer: appends fail silently, like a counted io error
            }
            s.buffer.push((tx.ncp.to_bits(), tx.price.to_bits()));
            if s.buffer.len() >= self.group {
                let buffered = std::mem::take(&mut s.buffer);
                s.committed.extend(buffered);
            }
        }
        fn record_support(&self, _: ModelKind, _: f64) {}
        fn record_publish(&self, _: ModelKind, _: &[f64], _: &[f64]) {}
        fn record_epoch(&self, _: u64) {}
        fn record_rng_cursor(&self, _: u64, _: u64) {}
    }

    #[test]
    fn concurrent_crash_cases_recover_a_sub_multiset() {
        let harness: CrashHarness = Arc::new(|_case_seed: u64| {
            let sink = Arc::new(FakeWalSink {
                group: 4,
                state: std::sync::Mutex::default(),
            });
            crate::crash::CrashCase {
                sink: sink.clone(),
                kill: {
                    let sink = sink.clone();
                    Arc::new(move || sink.kill())
                },
                recovered_sales: Arc::new(move || sink.committed()),
            }
        });
        let report = explore_crash(
            &ScheduleConfig {
                seed: 17,
                interleavings: 25,
                threads: 4,
                ops_per_thread: 6,
                faults: true,
            },
            &harness,
            None,
        );
        assert_eq!(report.explored, 25);
        assert!(
            report.failures.is_empty(),
            "{}",
            report.failures.first().expect("failure present")
        );
    }

    #[test]
    fn a_sink_that_invents_sales_fails_the_crash_explorer() {
        // Sabotage: the "recovery" returns one sale that never happened.
        let harness: CrashHarness = Arc::new(|_case_seed: u64| {
            let sink = Arc::new(FakeWalSink {
                group: 4,
                state: std::sync::Mutex::default(),
            });
            crate::crash::CrashCase {
                sink: sink.clone(),
                kill: {
                    let sink = sink.clone();
                    Arc::new(move || sink.kill())
                },
                recovered_sales: Arc::new(move || {
                    let mut sales = sink.committed();
                    sales.push((0xbad0_bad0, 0xbad0_bad0)); // phantom sale
                    sales
                }),
            }
        });
        let report = explore_crash(
            &ScheduleConfig {
                seed: 18,
                interleavings: 3,
                threads: 2,
                ops_per_thread: 4,
                faults: true,
            },
            &harness,
            None,
        );
        assert!(!report.failures.is_empty());
    }

    /// Real-thread companion to the virtual-time `ReaderProbe`: a reader
    /// hammers the listing while the main thread re-publishes; every
    /// observed quote must be the exact table price of curve A or curve B
    /// at the probed point — a torn listing would price off mixed state.
    #[test]
    fn real_mid_publish_reader_never_sees_a_torn_listing() {
        let sb = SharedBroker::new(build_broker(2024));
        let [a, b] = curves();
        let (pa, pb) = (a.price_at(1.0), b.price_at(1.0));
        let stop = Arc::new(AtomicBool::new(false));
        let reader = {
            let sb = sb.clone();
            let stop = Arc::clone(&stop);
            thread::spawn(move || {
                let mut rng = seeded_rng(31);
                let mut seen = Vec::new();
                while !stop.load(Ordering::Relaxed) {
                    let r = sb
                        .buy_batch(
                            ModelKind::LinearRegression,
                            &[PurchaseRequest::AtNcp(1.0)],
                            &mut rng,
                        )
                        .expect("listed");
                    seen.push(r[0].as_ref().expect("valid NCP").price);
                }
                seen
            })
        };
        for i in 0..200 {
            let curve = if i % 2 == 0 { b.clone() } else { a.clone() };
            sb.publish(
                ModelKind::LinearRegression,
                curve,
                Box::new(SquareLossTransform),
            )
            .expect("publish succeeds");
        }
        stop.store(true, Ordering::Relaxed);
        let seen = reader.join().expect("reader thread");
        assert!(!seen.is_empty());
        for price in seen {
            assert!(
                price.to_bits() == pa.to_bits() || price.to_bits() == pb.to_bits(),
                "torn quote {price}, expected {pa} or {pb}"
            );
        }
    }
}
