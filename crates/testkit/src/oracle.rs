//! Differential pricing oracles.
//!
//! Every quote in the marketplace can be answered by three production
//! evaluators — the raw [`PricingFunction`] segment scan, the compiled
//! [`mbp_core::pricing::PricingTable`], and the memoized φ path ([`ErrorPricedTable`]) — plus
//! the high-precision [`ReferenceCurve`] defined here. The differential
//! harness drives all of them over the same probe set (structured
//! boundary probes plus seeded random probes) and fails on any divergence
//! above `1e-12` relative, which is how implementation-level arbitrage
//! (two evaluators quoting different prices for the same point) is kept
//! impossible.

use mbp_core::error::ErrorTransform;
use mbp_core::pricing::{ErrorPricedTable, ErrorPricedView, PricingFunction};
use rand::Rng;

/// Relative divergence tolerance between evaluators.
pub const ORACLE_TOL: f64 = 1e-12;

/// Compensated (Kahan–Neumaier) accumulator: the running error of every
/// add is carried in a second `f64`, so sums of a handful of terms are
/// exact to well below an ulp of the result.
#[derive(Debug, Clone, Copy, Default)]
struct Kahan {
    sum: f64,
    comp: f64,
}

impl Kahan {
    fn add(&mut self, x: f64) {
        let t = self.sum + x;
        if self.sum.abs() >= x.abs() {
            self.comp += (self.sum - t) + x;
        } else {
            self.comp += (x - t) + self.sum;
        }
        self.sum = t;
    }

    fn value(self) -> f64 {
        self.sum + self.comp
    }
}

/// Splits `a * b` into a rounded product and its exact residual using a
/// fused multiply-add, so products feed the compensated sum exactly.
fn two_prod(a: f64, b: f64) -> (f64, f64) {
    let p = a * b;
    (p, a.mul_add(b, -p))
}

/// A high-precision reference evaluator for the Proposition 1 curve.
///
/// Same clamp semantics as [`PricingFunction::price_at`], but the
/// interpolation is evaluated in the symmetric barycentric form
/// `(y0·(x1−x) + y1·(x−x0)) / (x1−x0)` with `f64`-widened products
/// (`two_prod`) Kahan-summed before the single final division. The
/// production evaluators must agree with it to [`ORACLE_TOL`] relative.
#[derive(Debug, Clone)]
pub struct ReferenceCurve {
    grid: Vec<f64>,
    prices: Vec<f64>,
}

impl ReferenceCurve {
    /// Builds the reference from the same points as the production curve.
    pub fn new(f: &PricingFunction) -> Self {
        ReferenceCurve {
            grid: f.grid().to_vec(),
            prices: f.prices().to_vec(),
        }
    }

    /// Widened linear interpolation between `(x0, y0)` and `(x1, y1)`.
    fn lerp(x0: f64, x1: f64, y0: f64, y1: f64, x: f64) -> f64 {
        let mut acc = Kahan::default();
        let (p0, e0) = two_prod(y0, x1 - x);
        let (p1, e1) = two_prod(y1, x - x0);
        acc.add(p0);
        acc.add(e0);
        acc.add(p1);
        acc.add(e1);
        acc.value() / (x1 - x0)
    }

    /// Reference `p̄(x)` (clamp semantics of the production scan).
    pub fn price_at(&self, x: f64) -> f64 {
        if x.is_nan() || x <= 0.0 {
            return 0.0;
        }
        let n = self.grid.len();
        if n == 1 {
            return self.prices[0];
        }
        if x <= self.grid[0] {
            return Self::lerp(0.0, self.grid[0], 0.0, self.prices[0], x);
        }
        if x >= self.grid[n - 1] {
            return self.prices[n - 1];
        }
        let idx = self.grid.partition_point(|&g| g <= x);
        Self::lerp(
            self.grid[idx - 1],
            self.grid[idx],
            self.prices[idx - 1],
            self.prices[idx],
            x,
        )
    }

    /// Reference budget inversion (clamp semantics of the production scan).
    pub fn max_precision_for_budget(&self, b: f64) -> Option<f64> {
        if b.is_nan() || b < 0.0 {
            return None;
        }
        let n = self.grid.len();
        if b >= self.prices[n - 1] {
            return Some(f64::INFINITY);
        }
        if b < self.prices[0] {
            if n == 1 || self.prices[0] <= 0.0 {
                return None;
            }
            let x = Self::lerp(0.0, self.prices[0], 0.0, self.grid[0], b);
            return (x > 0.0).then_some(x);
        }
        let mut best = self.grid[0];
        for i in 0..n - 1 {
            let (y0, y1) = (self.prices[i], self.prices[i + 1]);
            if b >= y1 {
                best = self.grid[i + 1];
                continue;
            }
            if b >= y0 && y1 > y0 {
                best = Self::lerp(y0, y1, self.grid[i], self.grid[i + 1], b);
            }
            break;
        }
        Some(best)
    }
}

/// Configuration of a differential run.
#[derive(Debug, Clone, Copy)]
pub struct OracleConfig {
    /// Seed for the random probe stream.
    pub seed: u64,
    /// Number of random probes (structured boundary probes are always
    /// added on top).
    pub probes: usize,
    /// Relative divergence tolerance (default [`ORACLE_TOL`]).
    pub tol: f64,
}

impl Default for OracleConfig {
    fn default() -> Self {
        OracleConfig {
            seed: 0x6d62_7000,
            probes: 2_000,
            tol: ORACLE_TOL,
        }
    }
}

/// Outcome of a differential run.
#[derive(Debug, Clone)]
pub struct OracleReport {
    /// Total evaluator comparisons performed.
    pub comparisons: u64,
    /// Largest relative divergence observed among agreeing paths.
    pub max_divergence: f64,
    /// Human-readable divergence descriptions (empty when all paths agree).
    pub divergences: Vec<String>,
}

impl OracleReport {
    /// `true` when every evaluator pair agreed within tolerance.
    pub fn is_clean(&self) -> bool {
        self.divergences.is_empty()
    }
}

fn rel_diff(a: f64, b: f64) -> f64 {
    if a == b || (a.is_nan() && b.is_nan()) {
        return 0.0;
    }
    (a - b).abs() / b.abs().max(1.0)
}

/// Structured probes every differential run includes: the knots, segment
/// midpoints, the origin ray, the saturated tail, and the documented
/// out-of-domain clamp inputs.
fn structured_probes(f: &PricingFunction) -> Vec<f64> {
    let g = f.grid();
    let mut probes = vec![
        0.0,
        -1.0,
        f64::NAN,
        f64::INFINITY,
        g[0] * 0.5,
        g[0],
        *g.last().expect("non-empty"),
        g.last().expect("non-empty") * 4.0,
    ];
    for w in g.windows(2) {
        probes.push(w[0]);
        probes.push(0.5 * (w[0] + w[1]));
    }
    probes
}

/// Drives `p̄(x)` and budget inversion through the scan path, the compiled
/// table, and the [`ReferenceCurve`] over structured plus `cfg.probes`
/// random inputs, recording any divergence above `cfg.tol`.
pub fn check_pricing(f: &PricingFunction, cfg: &OracleConfig) -> OracleReport {
    let _span = mbp_obs::span("mbp.testkit.oracle");
    let table = f.compile();
    let reference = ReferenceCurve::new(f);
    let x_max = *f.grid().last().expect("non-empty");
    let p_max = f.max_price();
    let mut rng = mbp_randx::seeded_rng(cfg.seed);
    let mut report = OracleReport {
        comparisons: 0,
        max_divergence: 0.0,
        divergences: Vec::new(),
    };

    let mut xs = structured_probes(f);
    let mut budgets: Vec<f64> = vec![0.0, -1.0, f64::NAN, f64::INFINITY, p_max];
    budgets.extend(f.prices().iter().copied());
    for _ in 0..cfg.probes {
        xs.push(rng.gen_range(0.0..1.5 * x_max.max(1.0)));
        budgets.push(rng.gen_range(0.0..1.2 * p_max.max(1.0)));
    }

    for &x in &xs {
        let scan = f.price_at(x);
        let fast = table.price_at(x);
        let gold = reference.price_at(x);
        for (name, val) in [("table", fast), ("reference", gold)] {
            let d = rel_diff(val, scan);
            report.comparisons += 1;
            report.max_divergence = report.max_divergence.max(d);
            if d > cfg.tol {
                report
                    .divergences
                    .push(format!("price_at({x}): scan={scan} vs {name}={val}"));
            }
        }
    }
    for &b in &budgets {
        let scan = f.max_precision_for_budget(b);
        let fast = table.max_precision_for_budget(b);
        let gold = reference.max_precision_for_budget(b);
        for (name, val) in [("table", fast), ("reference", gold)] {
            report.comparisons += 1;
            match (scan, val) {
                (None, None) => {}
                (Some(a), Some(v)) => {
                    let d = rel_diff(v, a);
                    report.max_divergence = report.max_divergence.max(d);
                    if d > cfg.tol {
                        report.divergences.push(format!(
                            "max_precision_for_budget({b}): scan={a} vs {name}={v}"
                        ));
                    }
                }
                (a, v) => report.divergences.push(format!(
                    "max_precision_for_budget({b}): achievability diverged, scan={a:?} vs {name}={v:?}"
                )),
            }
        }
    }
    report
}

/// Differential check of the φ (error-space) path: the memoized
/// [`ErrorPricedTable`] against the virtual-dispatch [`ErrorPricedView`]
/// and the reference composition `p̄_ref(1/φ(err))`, over errors spanning
/// unachievable, saturated, interior, and tail regions.
pub fn check_error_space(
    f: &PricingFunction,
    transform: &dyn ErrorTransform,
    cfg: &OracleConfig,
) -> OracleReport {
    let _span = mbp_obs::span("mbp.testkit.oracle");
    let table = f.compile();
    let reference = ReferenceCurve::new(f);
    let view = ErrorPricedView::new(f, transform);
    let memo = ErrorPricedTable::new(&table, transform);
    let mut rng = mbp_randx::seeded_rng(cfg.seed ^ 0x9e37_79b9);
    let mut report = OracleReport {
        comparisons: 0,
        max_divergence: 0.0,
        divergences: Vec::new(),
    };

    // Error probes derived from the δ axis, so they track the transform's
    // achievable range: δ from well inside the saturated band out past the
    // free tail, plus negative and sub-achievable errors.
    let x_max = *f.grid().last().expect("non-empty");
    let mut errs = vec![-1.0, 0.0, transform.expected_error(0.0) * (1.0 - 1e-9)];
    for i in 0..=40 {
        errs.push(transform.expected_error(0.02 * i as f64 / x_max));
    }
    for _ in 0..cfg.probes {
        let delta = rng.gen_range(0.0..4.0 / x_max.max(1e-9));
        errs.push(transform.expected_error(delta));
    }

    for &err in &errs {
        let slow = view.price_for_error(err);
        let fast = memo.price_for_error(err);
        let gold = transform.ncp_for_error(err).map(|ncp| {
            if ncp <= 0.0 {
                reference.price_at(f64::INFINITY)
            } else {
                reference.price_at(1.0 / ncp)
            }
        });
        for (name, val) in [("memo", fast), ("reference", gold)] {
            report.comparisons += 1;
            match (slow, val) {
                (None, None) => {}
                (Some(a), Some(v)) => {
                    let d = rel_diff(v, a);
                    report.max_divergence = report.max_divergence.max(d);
                    if d > cfg.tol {
                        report
                            .divergences
                            .push(format!("price_for_error({err}): view={a} vs {name}={v}"));
                    }
                }
                (a, v) => report.divergences.push(format!(
                    "price_for_error({err}): achievability diverged, view={a:?} vs {name}={v:?}"
                )),
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbp_core::error::SquareLossTransform;

    fn pf() -> PricingFunction {
        PricingFunction::from_points(vec![1.0, 2.0, 4.0], vec![10.0, 14.0, 20.0]).unwrap()
    }

    #[test]
    fn reference_matches_scan_on_dense_probes() {
        let p = pf();
        let r = ReferenceCurve::new(&p);
        for i in 0..4000 {
            let x = i as f64 * 0.002;
            let a = r.price_at(x);
            let b = p.price_at(x);
            assert!(
                (a - b).abs() <= 1e-12 * b.abs().max(1.0),
                "x={x}: {a} vs {b}"
            );
        }
        assert_eq!(r.price_at(f64::INFINITY), p.max_price());
        assert_eq!(r.price_at(-1.0), 0.0);
        assert_eq!(r.max_precision_for_budget(25.0), Some(f64::INFINITY));
        assert_eq!(r.max_precision_for_budget(-1.0), None);
    }

    #[test]
    fn kahan_beats_naive_on_adversarial_sum() {
        // 1 + 1e-16 repeated: naive accumulation loses every tiny term.
        let mut k = Kahan::default();
        k.add(1.0);
        for _ in 0..1000 {
            k.add(1e-16);
        }
        assert!((k.value() - (1.0 + 1000.0 * 1e-16)).abs() < 1e-16);
    }

    #[test]
    fn differential_run_is_clean_on_a_sound_curve() {
        let report = check_pricing(&pf(), &OracleConfig::default());
        assert!(report.is_clean(), "{:?}", report.divergences);
        assert!(report.comparisons > 4000);
        assert!(report.max_divergence <= ORACLE_TOL);
    }

    #[test]
    fn error_space_differential_is_clean() {
        let report = check_error_space(&pf(), &SquareLossTransform, &OracleConfig::default());
        assert!(report.is_clean(), "{:?}", report.divergences);
        assert!(report.comparisons > 2000);
    }

    #[test]
    fn oracle_flags_a_diverging_evaluator() {
        // A hand-broken "reference": perturbing one price after compilation
        // is not possible through the public API, so instead check that the
        // divergence detector itself fires on a synthetic mismatch.
        assert!(rel_diff(1.0 + 1e-9, 1.0) > ORACLE_TOL);
        assert_eq!(rel_diff(f64::NAN, f64::NAN), 0.0);
    }
}
