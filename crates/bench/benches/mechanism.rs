//! Criterion benchmarks for the release path: the paper's claim that noisy
//! model generation is "real time" because the optimal model is trained
//! once and each sale only adds noise. We measure the per-sale perturbation
//! cost across dimensions and mechanisms, and the audit cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mbp_core::arbitrage::{audit, combine_inverse_variance};
use mbp_core::mechanism::{
    GaussianMechanism, LaplaceMechanism, NoiseMechanism, UniformAdditiveMechanism,
};
use mbp_core::pricing::PricingFunction;
use mbp_linalg::Vector;
use mbp_randx::seeded_rng;
use std::hint::black_box;

fn model(d: usize) -> Vector {
    (0..d).map(|i| (i as f64 * 0.37).sin() * 3.0).collect()
}

fn bench_perturb(c: &mut Criterion) {
    let mut group = c.benchmark_group("mechanism/perturb");
    for d in [16usize, 64, 256, 1024] {
        let h = model(d);
        let mut rng = seeded_rng(1);
        group.bench_with_input(BenchmarkId::new("gaussian", d), &h, |b, h| {
            b.iter(|| GaussianMechanism.perturb(black_box(h), 1.0, &mut rng))
        });
    }
    group.finish();
}

fn bench_mechanism_variants(c: &mut Criterion) {
    let h = model(128);
    let mut group = c.benchmark_group("mechanism/variants_d128");
    let mechs: Vec<(&str, Box<dyn NoiseMechanism>)> = vec![
        ("gaussian", Box::new(GaussianMechanism)),
        ("laplace", Box::new(LaplaceMechanism)),
        ("uniform", Box::new(UniformAdditiveMechanism)),
    ];
    for (name, mech) in mechs {
        let mut rng = seeded_rng(2);
        group.bench_function(name, |b| {
            b.iter(|| mech.perturb(black_box(&h), 1.0, &mut rng))
        });
    }
    group.finish();
}

fn bench_combine(c: &mut Criterion) {
    let mut group = c.benchmark_group("mechanism/combine_attack");
    for k in [2usize, 8, 32] {
        let models: Vec<Vector> = (0..k).map(|_| model(128)).collect();
        let ncps = vec![2.0; k];
        group.bench_with_input(BenchmarkId::from_parameter(k), &models, |b, models| {
            b.iter(|| combine_inverse_variance(black_box(models), &ncps))
        });
    }
    group.finish();
}

fn bench_audit(c: &mut Criterion) {
    let mut group = c.benchmark_group("mechanism/audit");
    for n in [10usize, 50, 100] {
        let grid: Vec<f64> = (1..=n).map(|i| i as f64).collect();
        let prices: Vec<f64> = grid.iter().map(|x| 10.0 * x.sqrt()).collect();
        let pf = PricingFunction::from_points(grid.clone(), prices).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(n), &pf, |b, pf| {
            b.iter(|| audit(black_box(pf), &grid, 4, 1e-7))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_perturb,
    bench_mechanism_variants,
    bench_combine,
    bench_audit
);
criterion_main!(benches);
