//! Criterion benchmarks for the broker's one-time training cost: the
//! closed-form / Newton / gradient-descent trainers across dataset sizes.
//! Together with `mechanism.rs` this quantifies the paper's train-once,
//! perturb-per-sale economics.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mbp_data::synth;
use mbp_ml::sgd::{sgd, SgdConfig};
use mbp_ml::train::{gradient_descent, newton_logistic, ridge_closed_form, TrainConfig};
use mbp_ml::{LogisticLoss, SmoothedHingeLoss, SquaredLoss};
use mbp_randx::seeded_rng;
use std::hint::black_box;

fn bench_ridge(c: &mut Criterion) {
    let mut group = c.benchmark_group("training/ridge_closed_form");
    for (n, d) in [(1000usize, 10usize), (5000, 20), (20000, 50)] {
        let mut rng = seeded_rng(11);
        let ds = synth::simulated1(n, d, 0.5, &mut rng);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("n{n}_d{d}")),
            &ds,
            |b, ds| b.iter(|| ridge_closed_form(black_box(ds), 1e-4).unwrap()),
        );
    }
    group.finish();
}

fn bench_logistic_newton(c: &mut Criterion) {
    let mut group = c.benchmark_group("training/logistic_newton");
    group.sample_size(20);
    for (n, d) in [(1000usize, 10usize), (5000, 20)] {
        let mut rng = seeded_rng(12);
        let ds = synth::simulated2(n, d, 0.92, &mut rng);
        let loss = LogisticLoss::ridge(1e-3);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("n{n}_d{d}")),
            &ds,
            |b, ds| b.iter(|| newton_logistic(&loss, black_box(ds), TrainConfig::default())),
        );
    }
    group.finish();
}

fn bench_svm_gd(c: &mut Criterion) {
    let mut group = c.benchmark_group("training/svm_gradient_descent");
    group.sample_size(10);
    let mut rng = seeded_rng(13);
    let ds = synth::simulated2(2000, 10, 0.95, &mut rng);
    let loss = SmoothedHingeLoss::new(1e-2, 0.5);
    let cfg = TrainConfig {
        max_iters: 200,
        tol: 1e-6,
    };
    group.bench_function("n2000_d10", |b| {
        b.iter(|| gradient_descent(&loss, black_box(&ds), cfg))
    });
    group.finish();
}

fn bench_sgd_vs_closed_form(c: &mut Criterion) {
    // Ablation: one SGD epoch budget vs the exact Cholesky solve at a size
    // where both are feasible.
    let mut rng = seeded_rng(14);
    let ds = synth::simulated1(10_000, 20, 0.5, &mut rng);
    let mut group = c.benchmark_group("training/sgd_vs_closed_n10k_d20");
    group.sample_size(10);
    group.bench_function("closed_form", |b| {
        b.iter(|| ridge_closed_form(black_box(&ds), 1e-4).unwrap())
    });
    group.bench_function("sgd_5_epochs", |b| {
        b.iter(|| {
            sgd(
                &SquaredLoss::ridge(1e-4),
                black_box(&ds),
                SgdConfig {
                    epochs: 5,
                    batch_size: 128,
                    step: 0.1,
                    decay: 0.9,
                    seed: 3,
                },
            )
        })
    });
    group.finish();
}

fn bench_sparse_sgd(c: &mut Criterion) {
    // The Example 3 workload: sparse rows make one epoch O(sum nnz)
    // instead of O(n*d); compare against training on the densified copy.
    use mbp_data::sparse::sparse_text_standin;
    use mbp_ml::sparse::{sgd_logistic_sparse, SparseSgdConfig};
    let mut rng = seeded_rng(15);
    let sp = sparse_text_standin(4000, 2000, 12, 0.03, &mut rng);
    let dense = sp.to_dense();
    let mut group = c.benchmark_group("training/sparse_vs_dense_n4k_d2000");
    group.sample_size(10);
    group.bench_function("sparse_sgd_5_epochs", |b| {
        b.iter(|| {
            sgd_logistic_sparse(
                black_box(&sp),
                SparseSgdConfig {
                    epochs: 5,
                    ..SparseSgdConfig::default()
                },
            )
        })
    });
    group.bench_function("dense_sgd_5_epochs", |b| {
        b.iter(|| {
            sgd(
                &LogisticLoss::ridge(1e-4),
                black_box(&dense),
                SgdConfig {
                    epochs: 5,
                    ..SgdConfig::default()
                },
            )
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_ridge,
    bench_logistic_newton,
    bench_svm_gd,
    bench_sgd_vs_closed_form,
    bench_sparse_sgd
);
criterion_main!(benches);
