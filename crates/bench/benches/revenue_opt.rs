//! Criterion benchmarks behind Figures 9–10: revenue-optimization runtime
//! as the number of price points grows — the O(n²) DP vs the exponential
//! exact solver vs the naive baselines.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mbp_core::market::curves::{
    buyer_points, grid, DemandCurve, DemandShape, ValueCurve, ValueShape,
};
use mbp_core::revenue::{
    solve_bv_dp, solve_bv_dp_fair, solve_bv_exact, solve_pi_l1, solve_pi_l2,
    solve_separable_concave, Baseline, BuyerPoint, PricePoint,
};
use mbp_optim::projgrad::SquaredInterpolation;
use std::hint::black_box;

fn population(n: usize) -> Vec<BuyerPoint> {
    let g = grid(20.0, 100.0, n);
    buyer_points(
        &g,
        &ValueCurve::new(ValueShape::Concave { power: 2.5 }, 2.0, 100.0),
        &DemandCurve::new(DemandShape::Peak {
            center: 0.5,
            width: 0.25,
        }),
    )
    .expect("bench grid is valid")
}

fn bench_dp_vs_exact(c: &mut Criterion) {
    let mut group = c.benchmark_group("revenue/dp_vs_exact");
    for n in [4usize, 6, 8, 10, 12] {
        let pts = population(n);
        group.bench_with_input(BenchmarkId::new("mbp_dp", n), &pts, |b, pts| {
            b.iter(|| solve_bv_dp(black_box(pts)))
        });
        group.bench_with_input(BenchmarkId::new("milp_exact", n), &pts, |b, pts| {
            b.iter(|| solve_bv_exact(black_box(pts), 2.0))
        });
    }
    group.finish();
}

fn bench_dp_scaling(c: &mut Criterion) {
    // The DP alone scales to hundreds of points — show the quadratic curve.
    let mut group = c.benchmark_group("revenue/dp_scaling");
    for n in [10usize, 50, 100, 200, 400] {
        let pts = population(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &pts, |b, pts| {
            b.iter(|| solve_bv_dp(black_box(pts)))
        });
    }
    group.finish();
}

fn bench_baselines(c: &mut Criterion) {
    let pts = population(10);
    let mut group = c.benchmark_group("revenue/baselines_n10");
    for baseline in Baseline::ALL {
        group.bench_function(baseline.name(), |b| {
            b.iter(|| baseline.pricing(black_box(&pts)))
        });
    }
    group.finish();
}

fn bench_interpolation(c: &mut Criterion) {
    let mut group = c.benchmark_group("revenue/price_interpolation");
    for n in [5usize, 10, 20] {
        let pts: Vec<PricePoint> = (1..=n)
            .map(|i| PricePoint::new(i as f64, (i as f64).sqrt() * 8.0 + ((i % 3) as f64) * 4.0))
            .collect();
        group.bench_with_input(BenchmarkId::new("l2_dykstra", n), &pts, |b, pts| {
            b.iter(|| solve_pi_l2(black_box(pts)))
        });
        group.bench_with_input(BenchmarkId::new("l1_simplex", n), &pts, |b, pts| {
            b.iter(|| solve_pi_l1(black_box(pts)))
        });
    }
    group.finish();
}

fn bench_fairness(c: &mut Criterion) {
    // Ablation: the fairness-weighted DP costs the same O(n^2) as the
    // plain one.
    let pts = population(50);
    let mut group = c.benchmark_group("revenue/fairness_dp_n50");
    group.bench_function("lambda_0", |b| b.iter(|| solve_bv_dp(black_box(&pts))));
    group.bench_function("lambda_10", |b| {
        b.iter(|| solve_bv_dp_fair(black_box(&pts), 10.0))
    });
    group.finish();
}

fn bench_projgrad_vs_dykstra(c: &mut Criterion) {
    // Ablation for the T2_pi design choice: direct Dykstra projection vs
    // the generic projected-gradient solver on the same objective.
    let n = 20usize;
    let pts: Vec<PricePoint> = (1..=n)
        .map(|i| PricePoint::new(i as f64, (i as f64).sqrt() * 8.0 + ((i % 3) as f64) * 4.0))
        .collect();
    let grid: Vec<f64> = pts.iter().map(|p| p.a).collect();
    let targets: Vec<f64> = pts.iter().map(|p| p.target).collect();
    let mut group = c.benchmark_group("revenue/l2_ablation_n20");
    group.bench_function("dykstra_direct", |b| {
        b.iter(|| solve_pi_l2(black_box(&pts)))
    });
    group.bench_function("projected_gradient", |b| {
        b.iter(|| {
            let obj = SquaredInterpolation {
                targets: targets.clone(),
            };
            solve_separable_concave(&obj, black_box(&grid), &targets)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_dp_vs_exact,
    bench_dp_scaling,
    bench_baselines,
    bench_interpolation,
    bench_fairness,
    bench_projgrad_vs_dykstra
);
criterion_main!(benches);
