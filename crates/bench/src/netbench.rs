//! Network-serving saturation sweep for the `mbp-serve` daemon.
//!
//! Boots an in-process daemon on an ephemeral loopback port and drives it
//! with real TCP clients at 1/4/16/64 concurrent connections. Every client
//! replays a fixed per-connection request stream (seeded by its `Hello`
//! frame) in pipelined bursts, so the byte stream each client receives is
//! a pure function of the sweep point; each point runs twice and
//! `deterministic` asserts the response digests reproduce exactly.
//!
//! The headline ratio is **batch admission**: the daemon coalesces each
//! connection's pending same-listing buys into one `buy_batch_into` call.
//! `batch_admission_speedup` re-runs the saturation point with coalescing
//! disabled (one kernel dispatch per request — the classic
//! request-per-call server) and reports saturated RPS over that baseline.
//! Because batch admission cannot change results (the PR 7 kernel consumes
//! RNG purely in request order), the two modes must also produce
//! bit-identical response digests — `per_request_matches_batched` pins it.
//!
//! Bursts are kept far below the server's admission queue limit so
//! backpressure frames (which are timing-dependent) never enter the
//! response streams being digested.
//!
//! The `loadgen` binary serializes the result to `BENCH_serve_net.json`.

use mbp_core::error::SquareLossTransform;
use mbp_core::market::concurrent::SharedBroker;
use mbp_core::market::{Broker, PurchaseRequest};
use mbp_core::PricingFunction;
use mbp_ml::ModelKind;
use mbp_randx::seeded_rng;
use mbp_serve::wire::{Request, Response};
use mbp_serve::{Client, ServerConfig};
use std::time::Instant;

/// Pipelined requests per flush; far below the server queue limit so the
/// digested streams never contain timing-dependent backpressure frames.
const BURST: usize = 64;

/// Connection counts swept, in order.
pub const SWEEP_CONNS: [usize; 4] = [1, 4, 16, 64];

/// One measured sweep point.
#[derive(Debug, Clone)]
pub struct NetSweepPoint {
    /// Concurrent client connections.
    pub connections: usize,
    /// Total requests served across all connections in one run.
    pub requests: usize,
    /// Wall seconds for the faster of the two runs.
    pub seconds: f64,
    /// Requests per second derived from `seconds`.
    pub rps: f64,
    /// Median per-request latency in microseconds (burst-amortized, best
    /// of the two runs).
    pub p50_micros: f64,
    /// 99th-percentile per-request latency in microseconds.
    pub p99_micros: f64,
    /// Combined response digest of the first run (per-client FNV digests
    /// folded in connection order).
    pub digest: u64,
    /// Whether the second run reproduced `digest` exactly.
    pub deterministic: bool,
}

/// The full network-serving baseline (`BENCH_serve_net.json`).
#[derive(Debug, Clone)]
pub struct NetBaseline {
    /// Machine + commit + timestamp provenance stamp.
    pub meta: crate::RunMeta,
    /// Fixed request-stream length per connection.
    pub requests_per_conn: usize,
    /// Batched-admission sweep over [`SWEEP_CONNS`].
    pub sweep: Vec<NetSweepPoint>,
    /// Highest RPS across the sweep.
    pub saturation_rps: f64,
    /// Connection count that achieved `saturation_rps`.
    pub saturation_conns: usize,
    /// RPS at `saturation_conns` with batch admission disabled (one
    /// kernel dispatch per request).
    pub per_request_rps: f64,
    /// `saturation_rps / per_request_rps` — the batch-admission win.
    pub batch_admission_speedup: f64,
    /// The per-request run reproduced the batched run's digest exactly
    /// (batch coalescing must never change responses).
    pub per_request_matches_batched: bool,
    /// Every sweep point (and the per-request run) reproduced its digest.
    pub deterministic: bool,
}

fn dense_pricing(points: usize) -> PricingFunction {
    let grid: Vec<f64> = (1..=points).map(|i| 1.0 + i as f64 * 0.25).collect();
    let prices: Vec<f64> = grid.iter().map(|x| 10.0 * x.sqrt()).collect();
    PricingFunction::from_points(grid, prices).expect("curve is arbitrage-free")
}

fn listed_broker(seed: u64) -> Broker {
    let mut rng = seeded_rng(seed);
    let data = mbp_data::synth::simulated1(400, 5, 0.5, &mut rng).split(0.75, &mut rng);
    let mut broker = Broker::new(data);
    broker
        .support(ModelKind::LinearRegression, 1e-6)
        .expect("training failed");
    broker
        .publish(
            ModelKind::LinearRegression,
            dense_pricing(512),
            Box::new(SquareLossTransform),
        )
        .expect("listing accepted");
    broker
}

/// The per-connection request stream: all three request kinds, all
/// satisfiable, offset by connection index so streams differ per client.
fn conn_stream(conn: usize, n: usize) -> Vec<PurchaseRequest> {
    (0..n)
        .map(|i| match (conn + i) % 3 {
            0 => PurchaseRequest::AtNcp(0.1 + (i % 37) as f64 * 0.05),
            1 => PurchaseRequest::ErrorBudget(0.5 + (i % 23) as f64 * 0.1),
            _ => PurchaseRequest::PriceBudget(12.0 + (i % 50) as f64),
        })
        .collect()
}

struct RunResult {
    seconds: f64,
    latencies: Vec<f64>,
    digest: u64,
}

/// Boots a fresh daemon, drives `conns` clients through their streams, and
/// tears the daemon down. Returns wall time, burst-amortized per-request
/// latencies from every client, and the order-folded response digest.
fn drive(conns: usize, per_conn: usize, batch_admission: bool) -> RunResult {
    let shared = SharedBroker::new(listed_broker(0xA11));
    let cfg = ServerConfig {
        batch_admission,
        ..ServerConfig::default()
    };
    let handle = mbp_serve::start(shared, cfg).expect("server starts");
    let addr = handle.addr();

    let t0 = Instant::now();
    let workers: Vec<_> = (0..conns)
        .map(|c| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let hello = client.hello(0xC0_0000 + c as u64).expect("hello");
                assert_eq!(hello, Response::HelloOk);
                let stream = conn_stream(c, per_conn);
                let mut latencies = Vec::with_capacity(per_conn.div_ceil(BURST));
                for burst in stream.chunks(BURST) {
                    let b0 = Instant::now();
                    for &request in burst {
                        client.enqueue(&Request::Buy {
                            kind: ModelKind::LinearRegression,
                            request,
                        });
                    }
                    client.flush().expect("flush");
                    for _ in 0..burst.len() {
                        let (_, resp) = client.recv().expect("recv");
                        assert!(
                            matches!(resp, Response::BuyOk { .. }),
                            "stream is satisfiable, got {resp:?}"
                        );
                    }
                    latencies.push(b0.elapsed().as_secs_f64() / burst.len() as f64);
                }
                (latencies, client.digest())
            })
        })
        .collect();

    let mut latencies = Vec::new();
    let mut digest = mbp_serve::wire::DIGEST_SEED;
    for w in workers {
        let (lat, d) = w.join().expect("client thread");
        latencies.extend(lat);
        digest = mbp_serve::wire::digest_bytes(digest, &d.to_le_bytes());
    }
    let seconds = t0.elapsed().as_secs_f64();

    handle.shutdown();
    handle.wait();
    RunResult {
        seconds,
        latencies,
        digest,
    }
}

fn percentile_micros(latencies: &mut [f64], q: f64) -> f64 {
    if latencies.is_empty() {
        return 0.0;
    }
    latencies.sort_by(f64::total_cmp);
    let idx = ((latencies.len() as f64 * q) as usize).min(latencies.len() - 1);
    latencies[idx] * 1e6
}

/// Runs one sweep point twice from identical seeds, keeping the faster
/// run's wall time and the better tail, and checking digest equality.
fn measure_point(conns: usize, per_conn: usize, batch_admission: bool) -> NetSweepPoint {
    let mut first = drive(conns, per_conn, batch_admission);
    let mut second = drive(conns, per_conn, batch_admission);
    let requests = conns * per_conn;
    let seconds = first.seconds.min(second.seconds);
    let p50 = percentile_micros(&mut first.latencies, 0.50)
        .min(percentile_micros(&mut second.latencies, 0.50));
    let p99 = percentile_micros(&mut first.latencies, 0.99)
        .min(percentile_micros(&mut second.latencies, 0.99));
    NetSweepPoint {
        connections: conns,
        requests,
        seconds,
        rps: if seconds > 0.0 {
            requests as f64 / seconds
        } else {
            0.0
        },
        p50_micros: p50,
        p99_micros: p99,
        digest: first.digest,
        deterministic: first.digest == second.digest,
    }
}

/// Runs the full network sweep with `per_conn` requests per connection.
pub fn run(per_conn: usize) -> NetBaseline {
    let _span = mbp_obs::span("mbp.bench.netbench");
    let per_conn = per_conn.max(BURST);

    let sweep: Vec<NetSweepPoint> = SWEEP_CONNS
        .iter()
        .map(|&conns| measure_point(conns, per_conn, true))
        .collect();

    let best = sweep
        .iter()
        .max_by(|a, b| a.rps.total_cmp(&b.rps))
        .expect("sweep is non-empty");
    let saturation_rps = best.rps;
    let saturation_conns = best.connections;
    let batched_digest_at_best = best.digest;

    // The one-dispatch-per-request baseline at the saturation point.
    let per_request = measure_point(saturation_conns, per_conn, false);
    let per_request_rps = per_request.rps;
    let batch_admission_speedup = if per_request_rps > 0.0 {
        saturation_rps / per_request_rps
    } else {
        0.0
    };
    let per_request_matches_batched = per_request.digest == batched_digest_at_best;

    let deterministic = sweep.iter().all(|p| p.deterministic) && per_request.deterministic;

    NetBaseline {
        meta: crate::RunMeta::from_env(),
        requests_per_conn: per_conn,
        sweep,
        saturation_rps,
        saturation_conns,
        per_request_rps,
        batch_admission_speedup,
        per_request_matches_batched,
        deterministic,
    }
}

impl NetBaseline {
    /// Serializes the baseline as a standalone JSON document
    /// (`BENCH_serve_net.json`).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&self.meta.json_fields());
        out.push_str(&format!(
            "  \"requests_per_conn\": {},\n",
            self.requests_per_conn
        ));
        out.push_str(&format!(
            "  \"saturation_rps\": {:.1},\n",
            self.saturation_rps
        ));
        out.push_str(&format!(
            "  \"saturation_conns\": {},\n",
            self.saturation_conns
        ));
        out.push_str(&format!(
            "  \"per_request_rps\": {:.1},\n",
            self.per_request_rps
        ));
        out.push_str(&format!(
            "  \"batch_admission_speedup\": {:.4},\n",
            self.batch_admission_speedup
        ));
        out.push_str(&format!(
            "  \"per_request_matches_batched\": {},\n",
            self.per_request_matches_batched
        ));
        out.push_str(&format!("  \"deterministic\": {},\n", self.deterministic));
        out.push_str("  \"sweep\": [\n");
        for (i, p) in self.sweep.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"connections\": {}, \"requests\": {}, \"seconds\": {:.6}, \"rps\": {:.1}, \"p50_micros\": {:.3}, \"p99_micros\": {:.3}, \"digest\": {}, \"deterministic\": {}}}{}\n",
                p.connections,
                p.requests,
                p.seconds,
                p.rps,
                p.p50_micros,
                p.p99_micros,
                p.digest,
                p.deterministic,
                if i + 1 == self.sweep.len() { "" } else { "," }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_sweep_is_deterministic_and_complete() {
        let b = run(64);
        assert_eq!(b.sweep.len(), SWEEP_CONNS.len());
        assert!(b.sweep.iter().all(|p| p.rps > 0.0));
        assert!(b.deterministic, "a sweep point failed to reproduce");
        assert!(
            b.per_request_matches_batched,
            "batch admission changed responses"
        );
        assert!(b.batch_admission_speedup > 0.0);
    }

    #[test]
    fn json_artifact_has_required_fields() {
        let b = run(64);
        let json = b.to_json();
        for key in [
            "\"hardware_threads\"",
            "\"commit\"",
            "\"generated_at\"",
            "\"requests_per_conn\"",
            "\"saturation_rps\"",
            "\"saturation_conns\"",
            "\"per_request_rps\"",
            "\"batch_admission_speedup\"",
            "\"per_request_matches_batched\"",
            "\"deterministic\"",
            "\"connections\"",
            "\"p99_micros\"",
        ] {
            assert!(json.contains(key), "missing {key}");
        }
        assert!(json.trim_start().starts_with('{') && json.trim_end().ends_with('}'));
    }
}
