//! Quote-serving throughput baseline for the pricing fast path.
//!
//! Measures the serving-side hot paths introduced with the compiled
//! [`PricingTable`](mbp_core::PricingTable):
//!
//! * **pricing-scan vs pricing-table** — a mixed stream of
//!   `price_for_ncp` and `max_precision_for_budget` resolutions against a
//!   dense pricing grid, answered by the original piecewise-linear scan
//!   and by the compiled table. Both are single-threaded CPU-bound
//!   lookups, so the ratio is honest on any machine, including a
//!   single-core container.
//! * **serve-single / serve-into / serve-batch** — end-to-end purchases
//!   against a published listing: one `buy_listed` per quote, the
//!   zero-allocation `buy_listed_into` variant, and `buy_batch` in chunks.
//! * **factor-cache off/on** — ridge re-training across distinct ridge
//!   values via one-shot `ridge_closed_form` (re-forms the Gram matrix
//!   every call) vs a [`RidgeSolver`] that
//!   forms the Gram once and caches Cholesky factors per ridge.
//!
//! Every workload runs its quote stream twice from the same seed and
//! records both digests; `deterministic` asserts they agree exactly. The
//! `all` binary serializes the result to `BENCH_serving.json`.

use mbp_core::error::SquareLossTransform;
use mbp_core::market::{Broker, PurchaseRequest, Sale};
use mbp_core::PricingFunction;
use mbp_ml::train::{ridge_closed_form, RidgeSolver};
use mbp_ml::ModelKind;
use mbp_randx::seeded_rng;
use std::time::Instant;

/// One measured serving workload.
#[derive(Debug, Clone)]
pub struct ServingWorkload {
    /// Workload label.
    pub name: &'static str,
    /// Quotes (or solves) served in one run.
    pub quotes: usize,
    /// Wall seconds for the faster of the two runs.
    pub seconds: f64,
    /// Throughput derived from `seconds`.
    pub quotes_per_sec: f64,
    /// Median per-quote latency in microseconds (best of the two runs).
    pub p50_micros: f64,
    /// 99th-percentile per-quote latency in microseconds (best of the
    /// two runs).
    pub p99_micros: f64,
    /// Scalar output digest of the first run.
    pub digest: f64,
    /// Whether the second run reproduced `digest` exactly.
    pub deterministic: bool,
}

/// The full serving baseline.
#[derive(Debug, Clone)]
pub struct ServingBaseline {
    /// Machine + commit + timestamp provenance stamp.
    pub meta: crate::RunMeta,
    /// Knots in the benchmark pricing grid.
    pub grid_points: usize,
    /// Model dimension of the listed instance.
    pub model_dim: usize,
    /// Per-workload measurements.
    pub workloads: Vec<ServingWorkload>,
    /// `pricing-scan` throughput ÷ `pricing-table` throughput, inverted so
    /// values above 1.0 mean the compiled table is faster.
    pub table_speedup_vs_scan: f64,
    /// `serve-batch` throughput over `serve-single` throughput.
    pub batch_speedup_vs_single: f64,
    /// Cached-factor solve throughput over one-shot retraining throughput.
    pub factor_cache_speedup: f64,
    /// Scan and table answered the shared query stream identically
    /// (relative 1e-9; the table's fused-slope interior evaluation may
    /// differ from the scan by strict rounding).
    pub table_matches_scan: bool,
    /// Every workload reproduced its digest on the second run.
    pub deterministic: bool,
}

/// Timed samples from one run: total seconds plus per-quote latencies
/// (each sample amortized over `block` quotes).
struct RunTiming {
    seconds: f64,
    latencies: Vec<f64>,
}

fn run_blocks(n: usize, block: usize, mut work: impl FnMut(usize) -> f64) -> (RunTiming, f64) {
    let mut latencies = Vec::with_capacity(n.div_ceil(block));
    let mut digest = 0.0;
    let mut seconds = 0.0;
    let mut i = 0;
    while i < n {
        let take = block.min(n - i);
        let t0 = Instant::now();
        for j in i..i + take {
            digest += work(j);
        }
        let dt = t0.elapsed().as_secs_f64();
        seconds += dt;
        latencies.push(dt / take as f64);
        i += take;
    }
    (RunTiming { seconds, latencies }, digest)
}

fn percentile_micros(latencies: &mut [f64], q: f64) -> f64 {
    if latencies.is_empty() {
        return 0.0;
    }
    latencies.sort_by(f64::total_cmp);
    let idx = ((latencies.len() as f64 * q) as usize).min(latencies.len() - 1);
    latencies[idx] * 1e6
}

/// Runs `work` twice (it must reset its own state per run via `run`
/// index), keeping the faster run's wall time and checking digest
/// equality. Percentiles are taken per run and the minimum kept: a
/// scheduler preemption inflates one run's p99 by an order of magnitude
/// while barely moving its total seconds, so "faster run's tail" is not
/// spike-proof — "best tail of two identically-seeded runs" is, unless
/// interference hits both runs.
fn measure(
    name: &'static str,
    quotes: usize,
    block: usize,
    mut work: impl FnMut(usize, usize) -> f64,
) -> ServingWorkload {
    let (mut first, digest_a) = run_blocks(quotes, block, |i| work(0, i));
    let (mut second, digest_b) = run_blocks(quotes, block, |i| work(1, i));
    let seconds = first.seconds.min(second.seconds);
    let p50_a = percentile_micros(&mut first.latencies, 0.50);
    let p99_a = percentile_micros(&mut first.latencies, 0.99);
    let p50_b = percentile_micros(&mut second.latencies, 0.50);
    let p99_b = percentile_micros(&mut second.latencies, 0.99);
    ServingWorkload {
        name,
        quotes,
        seconds,
        quotes_per_sec: if seconds > 0.0 {
            quotes as f64 / seconds
        } else {
            0.0
        },
        p50_micros: p50_a.min(p50_b),
        p99_micros: p99_a.min(p99_b),
        digest: digest_a,
        deterministic: digest_a == digest_b,
    }
}

/// A dense arbitrage-free pricing curve: `p̄(x) = 10·√x` sampled on
/// `points` knots (monotone and subadditive).
fn dense_pricing(points: usize) -> PricingFunction {
    let grid: Vec<f64> = (1..=points).map(|i| 1.0 + i as f64 * 0.25).collect();
    let prices: Vec<f64> = grid.iter().map(|x| 10.0 * x.sqrt()).collect();
    PricingFunction::from_points(grid, prices).expect("curve is arbitrage-free")
}

/// The mixed pricing-resolution query stream: NCP pricing and budget
/// inversion interleaved, with inputs cycling through in-domain and
/// clamped out-of-domain values.
fn pricing_query(pf: &PricingFunction, i: usize) -> f64 {
    let x_max = *pf.grid().last().expect("non-empty grid");
    match i % 3 {
        0 => pf.price_for_ncp(0.05 + (i % 97) as f64 * 0.01),
        1 => pf
            .max_precision_for_budget(1.0 + (i % 89) as f64)
            .unwrap_or(0.0)
            .min(x_max),
        _ => pf.price_at((i % 131) as f64 * 0.5),
    }
}

fn table_query(table: &mbp_core::PricingTable, i: usize) -> f64 {
    let x_max = *table.knots().last().expect("non-empty grid");
    match i % 3 {
        0 => table.price_for_ncp(0.05 + (i % 97) as f64 * 0.01),
        1 => table
            .max_precision_for_budget(1.0 + (i % 89) as f64)
            .unwrap_or(0.0)
            .min(x_max),
        _ => table.price_at((i % 131) as f64 * 0.5),
    }
}

/// The end-to-end purchase request stream: all three request kinds, all
/// satisfiable against [`dense_pricing`] with the identity transform.
fn request_stream(n: usize) -> Vec<PurchaseRequest> {
    (0..n)
        .map(|i| match i % 3 {
            0 => PurchaseRequest::AtNcp(0.1 + (i % 37) as f64 * 0.05),
            1 => PurchaseRequest::ErrorBudget(0.5 + (i % 23) as f64 * 0.1),
            _ => PurchaseRequest::PriceBudget(12.0 + (i % 50) as f64),
        })
        .collect()
}

fn listed_broker(seed: u64, pricing: &PricingFunction) -> Broker {
    let mut rng = seeded_rng(seed);
    let data = mbp_data::synth::simulated1(400, 5, 0.5, &mut rng).split(0.75, &mut rng);
    let mut broker = Broker::new(data);
    broker
        .support(ModelKind::LinearRegression, 1e-6)
        .expect("training failed");
    broker
        .publish(
            ModelKind::LinearRegression,
            pricing.clone(),
            Box::new(SquareLossTransform),
        )
        .expect("listing accepted");
    broker
}

/// Runs the full serving baseline with `quotes` quotes per workload.
pub fn run(quotes: usize) -> ServingBaseline {
    let _span = mbp_obs::span("mbp.bench.servebench");
    let quotes = quotes.max(64);
    const GRID_POINTS: usize = 512;
    const BATCH: usize = 256;
    const PRICING_BLOCK: usize = 64;
    let pricing = dense_pricing(GRID_POINTS);
    let table = pricing.compile();

    let scan = measure("pricing-scan", quotes, PRICING_BLOCK, |_, i| {
        pricing_query(&pricing, i)
    });
    let tab = measure("pricing-table", quotes, PRICING_BLOCK, |_, i| {
        table_query(&table, i)
    });
    let table_matches_scan = (scan.digest - tab.digest).abs() <= 1e-9 * scan.digest.abs().max(1.0);

    let requests = request_stream(quotes);

    // serve-single: one buy_listed per quote. Fresh broker + RNG per run so
    // the two runs are bit-identical.
    let mut singles: Vec<(Broker, mbp_randx::MbpRng)> = (0..2)
        .map(|_| (listed_broker(0xA11, &pricing), seeded_rng(0x5e1)))
        .collect();
    let serve_single = measure("serve-single", quotes, 1, |run, i| {
        let (broker, rng) = &mut singles[run];
        let sale = broker
            .buy_listed(ModelKind::LinearRegression, requests[i], rng)
            .expect("request is satisfiable");
        sale.price + sale.ncp
    });

    // serve-into: the zero-allocation variant with a reused Sale buffer.
    let mut intos: Vec<(Broker, mbp_randx::MbpRng, Sale)> = (0..2)
        .map(|_| {
            let broker = listed_broker(0xA11, &pricing);
            let sale = Sale {
                model: broker
                    .optimal_model(ModelKind::LinearRegression)
                    .expect("supported")
                    .clone(),
                price: 0.0,
                ncp: 0.0,
                expected_error: 0.0,
            };
            (broker, seeded_rng(0x5e1), sale)
        })
        .collect();
    for (broker, _, _) in &mut intos {
        broker.reserve_ledger(quotes);
    }
    let serve_into = measure("serve-into", quotes, 1, |run, i| {
        let (broker, rng, sale) = &mut intos[run];
        broker
            .buy_listed_into(ModelKind::LinearRegression, requests[i], rng, sale)
            .expect("request is satisfiable");
        sale.price + sale.ncp
    });

    // serve-batch: same stream in BATCH-sized chunks; the per-"quote" work
    // item is one whole batch, so latencies are per batch.
    let n_batches = quotes.div_ceil(BATCH);
    let mut batchers: Vec<(Broker, mbp_randx::MbpRng)> = (0..2)
        .map(|_| (listed_broker(0xA11, &pricing), seeded_rng(0x5e1)))
        .collect();
    let serve_batch_raw = measure("serve-batch", n_batches, 1, |run, b| {
        let (broker, rng) = &mut batchers[run];
        let lo = b * BATCH;
        let hi = (lo + BATCH).min(quotes);
        broker
            .buy_batch(ModelKind::LinearRegression, &requests[lo..hi], rng)
            .expect("listing exists")
            .into_iter()
            .map(|r| {
                let sale = r.expect("request is satisfiable");
                sale.price + sale.ncp
            })
            .sum()
    });
    // Re-express the batch workload in per-quote units.
    let serve_batch = ServingWorkload {
        name: "serve-batch",
        quotes,
        quotes_per_sec: if serve_batch_raw.seconds > 0.0 {
            quotes as f64 / serve_batch_raw.seconds
        } else {
            0.0
        },
        p50_micros: serve_batch_raw.p50_micros / BATCH as f64,
        p99_micros: serve_batch_raw.p99_micros / BATCH as f64,
        ..serve_batch_raw
    };

    // factor-cache off/on: retrain across RIDGES distinct ridge values,
    // twice over. "Off" re-forms the Gram matrix per call (the one-shot
    // path); "on" forms it once and caches one Cholesky factor per ridge,
    // so the second sweep is pure cache hits.
    const RIDGES: usize = 24;
    let mut rng = seeded_rng(0xD5);
    let train = mbp_data::synth::simulated1(400, 5, 0.5, &mut rng)
        .split(0.75, &mut rng)
        .train;
    let solves = 2 * RIDGES;
    let mu_at = |i: usize| 1e-6 * ((i % RIDGES) + 1) as f64;
    let factor_off = measure("factor-cache-off", solves, 1, |_, i| {
        ridge_closed_form(&train, mu_at(i)).expect("solvable")[0]
    });
    let mut solvers: Vec<RidgeSolver> = (0..2)
        .map(|_| RidgeSolver::new(&train).expect("gram formed"))
        .collect();
    let factor_on = measure("factor-cache-on", solves, 1, |run, i| {
        solvers[run].solve(mu_at(i)).expect("solvable")[0]
    });

    let ratio = |num: &ServingWorkload, den: &ServingWorkload| {
        if den.quotes_per_sec > 0.0 {
            num.quotes_per_sec / den.quotes_per_sec
        } else {
            1.0
        }
    };
    let table_speedup_vs_scan = ratio(&tab, &scan);
    let batch_speedup_vs_single = ratio(&serve_batch, &serve_single);
    let factor_cache_speedup = ratio(&factor_on, &factor_off);
    let workloads = vec![
        scan,
        tab,
        serve_single,
        serve_into,
        serve_batch,
        factor_off,
        factor_on,
    ];
    let deterministic = workloads.iter().all(|w| w.deterministic) && table_matches_scan;

    ServingBaseline {
        meta: crate::RunMeta::from_env(),
        grid_points: GRID_POINTS,
        model_dim: 5,
        workloads,
        table_speedup_vs_scan,
        batch_speedup_vs_single,
        factor_cache_speedup,
        table_matches_scan,
        deterministic,
    }
}

impl ServingBaseline {
    /// Serializes the baseline as a standalone JSON document
    /// (`BENCH_serving.json`).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&self.meta.json_fields());
        out.push_str(&format!("  \"grid_points\": {},\n", self.grid_points));
        out.push_str(&format!("  \"model_dim\": {},\n", self.model_dim));
        out.push_str(&format!(
            "  \"table_speedup_vs_scan\": {:.4},\n",
            self.table_speedup_vs_scan
        ));
        out.push_str(&format!(
            "  \"batch_speedup_vs_single\": {:.4},\n",
            self.batch_speedup_vs_single
        ));
        out.push_str(&format!(
            "  \"factor_cache_speedup\": {:.4},\n",
            self.factor_cache_speedup
        ));
        out.push_str(&format!(
            "  \"table_matches_scan\": {},\n",
            self.table_matches_scan
        ));
        out.push_str(&format!("  \"deterministic\": {},\n", self.deterministic));
        out.push_str("  \"workloads\": [\n");
        for (i, w) in self.workloads.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"quotes\": {}, \"seconds\": {:.6}, \"quotes_per_sec\": {:.1}, \"p50_micros\": {:.3}, \"p99_micros\": {:.3}, \"digest\": {:.6}, \"deterministic\": {}}}{}\n",
                w.name,
                w.quotes,
                w.seconds,
                w.quotes_per_sec,
                w.p50_micros,
                w.p99_micros,
                w.digest,
                w.deterministic,
                if i + 1 == self.workloads.len() { "" } else { "," }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_is_deterministic_and_complete() {
        let b = run(512);
        assert_eq!(b.workloads.len(), 7);
        assert!(b.workloads.iter().all(|w| w.quotes_per_sec > 0.0));
        assert!(b.table_matches_scan, "table answers diverged from scan");
        assert!(b.deterministic, "a workload failed to reproduce its digest");
        assert!(b.table_speedup_vs_scan > 0.0);
        assert!(b.factor_cache_speedup > 0.0);
    }

    #[test]
    fn json_artifact_has_required_fields() {
        let b = run(256);
        let json = b.to_json();
        for key in [
            "\"hardware_threads\"",
            "\"commit\"",
            "\"generated_at\"",
            "\"grid_points\"",
            "\"table_speedup_vs_scan\"",
            "\"batch_speedup_vs_single\"",
            "\"factor_cache_speedup\"",
            "\"quotes_per_sec\"",
            "\"p50_micros\"",
            "\"p99_micros\"",
            "\"deterministic\"",
            "\"pricing-table\"",
            "\"factor-cache-on\"",
        ] {
            assert!(json.contains(key), "missing {key}");
        }
        assert!(json.trim_start().starts_with('{') && json.trim_end().ends_with('}'));
    }

    #[test]
    fn percentiles_are_ordered() {
        let b = run(256);
        for w in &b.workloads {
            assert!(
                w.p99_micros >= w.p50_micros,
                "{}: p99 {} < p50 {}",
                w.name,
                w.p99_micros,
                w.p50_micros
            );
        }
    }
}
