//! Durability microbench: WAL append throughput, the fsync-interval
//! price curve, and recovery speed.
//!
//! Three measurements over the same seeded mostly-sales event history:
//!
//! * **append** — raw group-commit append throughput with no periodic
//!   fsync (one explicit durability point at the end);
//! * **fsync sweep** — the same stream at fsync intervals 1/8/64/512,
//!   showing what each durability granularity costs;
//! * **recovery** — scanning the segment back off disk and folding it
//!   into a [`RecoveredState`], i.e. the `serve --wal` boot path.
//!
//! `recovery_replay_speedup` is the same-process ratio *live ingest
//! seconds ÷ recovery seconds*: replaying a log must never be slower
//! than writing it was, or crash recovery could not catch up with a
//! live market. The ratchet holds the committed artifact to a hard
//! floor of 1.0 on that ratio. Recovery runs twice from the same bytes
//! and must reproduce its state digest (`deterministic`). The `all`
//! binary serializes the result to `BENCH_wal.json`.

use mbp_randx::SeedStream;
use mbp_wal::{recover_dir, RecoveredState, WalConfig, WalEvent, WalWriter};
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Fsync intervals exercised by the sweep (records between fsyncs).
pub const FSYNC_INTERVALS: [usize; 4] = [1, 8, 64, 512];

/// One timed append workload.
#[derive(Debug, Clone)]
pub struct WalWorkload {
    /// Workload label, `append` or `fsync@N`.
    pub name: String,
    /// Records between fsyncs (0 = final explicit sync only).
    pub fsync_interval: usize,
    /// Records appended.
    pub records: usize,
    /// Wall seconds for the whole stream, including the final sync.
    pub seconds: f64,
    /// Throughput derived from `seconds`.
    pub records_per_sec: f64,
    /// `fsync` calls the writer issued.
    pub syncs: u64,
}

/// The recovery-side measurement.
#[derive(Debug, Clone)]
pub struct WalRecoveryStats {
    /// Records recovered (must equal the records written).
    pub records: usize,
    /// Wall seconds to scan + fold, best of two runs.
    pub seconds: f64,
    /// Throughput derived from `seconds`.
    pub records_per_sec: f64,
    /// State digest of the first fold.
    pub digest: u64,
    /// Whether the second fold reproduced `digest` exactly.
    pub deterministic: bool,
}

/// The full durability baseline.
#[derive(Debug, Clone)]
pub struct WalBaseline {
    /// Machine + commit + timestamp provenance stamp.
    pub meta: crate::RunMeta,
    /// Records per workload.
    pub records: usize,
    /// Append workloads: the no-fsync run plus the interval sweep.
    pub workloads: Vec<WalWorkload>,
    /// Recovery scan + fold measurement.
    pub recovery: WalRecoveryStats,
    /// Live ingest seconds ÷ recovery seconds (hard floor 1.0).
    pub recovery_replay_speedup: f64,
}

/// Seeded mostly-sales history, every record type present — the same
/// shape the recovery property suite uses.
fn seeded_history(seed: u64, n: usize) -> Vec<WalEvent> {
    use mbp_ml::ModelKind;
    const KINDS: [ModelKind; 3] = [
        ModelKind::LinearRegression,
        ModelKind::LogisticRegression,
        ModelKind::LinearSvm,
    ];
    let mut seeds = SeedStream::new(seed);
    (0..n)
        .map(|i| {
            let r = seeds.next_seed();
            let kind = KINDS[(r % 3) as usize];
            match (r >> 2) % 100 {
                0..=2 => WalEvent::Support { kind, ridge: 1e-6 },
                3..=5 => {
                    let grid: Vec<f64> = (1..=6).map(|j| j as f64).collect();
                    let prices: Vec<f64> = grid.iter().map(|x| 8.0 * x.sqrt()).collect();
                    WalEvent::Publish { kind, grid, prices }
                }
                6 => WalEvent::Epoch { epoch: i as u64 },
                _ => WalEvent::Sale {
                    kind,
                    ncp: 0.05 + ((r >> 9) % 1_000) as f64 * 0.002,
                    price: 0.5 + ((r >> 19) % 10_000) as f64 * 0.006,
                },
            }
        })
        .collect()
}

/// Scratch directory for one benchmark run.
fn scratch_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("mbp-walbench-{}-{tag}", std::process::id()))
}

/// Appends the whole history to a fresh segment at the given fsync
/// interval, ending with an explicit durability point.
fn timed_append(events: &[WalEvent], fsync_interval: usize, tag: &str) -> (WalWorkload, PathBuf) {
    let dir = scratch_dir(tag);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let path = dir.join("wal-000001.log");
    let cfg = WalConfig {
        group_commit: 64,
        fsync_interval,
    };
    let mut writer = WalWriter::create(&path, cfg).expect("segment creates");
    let t0 = Instant::now();
    for event in events {
        writer.append(event).expect("append");
    }
    writer.sync().expect("final durability point");
    let seconds = t0.elapsed().as_secs_f64();
    let syncs = writer.syncs();
    drop(writer);
    let name = if fsync_interval == 0 {
        "append".to_string()
    } else {
        format!("fsync@{fsync_interval}")
    };
    (
        WalWorkload {
            name,
            fsync_interval,
            records: events.len(),
            seconds,
            records_per_sec: if seconds > 0.0 {
                events.len() as f64 / seconds
            } else {
                0.0
            },
            syncs,
        },
        dir,
    )
}

/// One recovery pass: scan the directory and fold the state.
fn timed_recovery(dir: &Path) -> (f64, usize, u64) {
    let t0 = Instant::now();
    let scanned = recover_dir(dir).expect("recovery scans");
    let state = RecoveredState::from_events(&scanned.events);
    (
        t0.elapsed().as_secs_f64(),
        scanned.events.len(),
        state.digest(),
    )
}

/// Runs the full durability sweep with `records` events per workload.
pub fn run(records: usize) -> WalBaseline {
    let _span = mbp_obs::span("mbp.bench.walbench");
    let records = records.max(1_000);
    let events = seeded_history(0xaa17_90b5, records);

    let mut workloads = Vec::new();

    // Raw append throughput: no periodic fsync, one durability point at
    // the end. This run is also the live-ingest side of the recovery
    // speedup ratio, and its segment is what recovery replays.
    let (append, append_dir) = timed_append(&events, 0, "append");
    let ingest_seconds = append.seconds;
    workloads.push(append);

    for interval in FSYNC_INTERVALS {
        let (w, dir) = timed_append(&events, interval, &format!("f{interval}"));
        workloads.push(w);
        let _ = std::fs::remove_dir_all(&dir);
    }

    let (sec_a, recovered_a, digest_a) = timed_recovery(&append_dir);
    let (sec_b, recovered_b, digest_b) = timed_recovery(&append_dir);
    let _ = std::fs::remove_dir_all(&append_dir);
    assert_eq!(recovered_a, records, "recovery must see every record");
    assert_eq!(
        recovered_b, records,
        "second recovery must see every record"
    );
    let seconds = sec_a.min(sec_b);
    let recovery = WalRecoveryStats {
        records: recovered_a,
        seconds,
        records_per_sec: if seconds > 0.0 {
            recovered_a as f64 / seconds
        } else {
            0.0
        },
        digest: digest_a,
        deterministic: digest_a == digest_b,
    };

    let recovery_replay_speedup = if recovery.seconds > 0.0 {
        ingest_seconds / recovery.seconds
    } else {
        1.0
    };

    WalBaseline {
        meta: crate::RunMeta::from_env(),
        records,
        workloads,
        recovery,
        recovery_replay_speedup,
    }
}

impl WalBaseline {
    /// Serializes the baseline as a standalone JSON document
    /// (`BENCH_wal.json`).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&self.meta.json_fields());
        out.push_str(&format!("  \"records\": {},\n", self.records));
        out.push_str(&format!(
            "  \"recovery_replay_speedup\": {:.4},\n",
            self.recovery_replay_speedup
        ));
        out.push_str(&format!(
            "  \"deterministic\": {},\n",
            self.recovery.deterministic
        ));
        out.push_str(&format!(
            "  \"recovery\": {{\"records\": {}, \"seconds\": {:.6}, \"records_per_sec\": {:.1}, \"digest\": {}, \"deterministic\": {}}},\n",
            self.recovery.records,
            self.recovery.seconds,
            self.recovery.records_per_sec,
            self.recovery.digest,
            self.recovery.deterministic
        ));
        out.push_str("  \"workloads\": [\n");
        for (i, w) in self.workloads.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"fsync_interval\": {}, \"records\": {}, \"seconds\": {:.6}, \"records_per_sec\": {:.1}, \"syncs\": {}}}{}\n",
                w.name,
                w.fsync_interval,
                w.records,
                w.seconds,
                w.records_per_sec,
                w.syncs,
                if i + 1 == self.workloads.len() { "" } else { "," }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_is_deterministic_and_complete() {
        let b = run(2_000);
        assert_eq!(b.workloads.len(), 1 + FSYNC_INTERVALS.len());
        assert_eq!(b.recovery.records, b.records);
        assert!(b.recovery.deterministic, "recovery digest must reproduce");
        assert!(b.workloads.iter().all(|w| w.records_per_sec > 0.0));
        assert!(b.recovery.records_per_sec > 0.0);
        // fsync@1 must issue at least one fsync per group; the no-fsync
        // run issues exactly the one explicit durability point.
        assert!(b.workloads[0].syncs >= 1);
        let per_record = b.workloads.iter().find(|w| w.name == "fsync@1").unwrap();
        assert!(per_record.syncs > b.workloads[0].syncs);
    }

    #[test]
    fn json_artifact_has_required_fields() {
        let b = run(1_000);
        let json = b.to_json();
        for key in [
            "\"hardware_threads\"",
            "\"records\"",
            "\"recovery_replay_speedup\"",
            "\"deterministic\"",
            "\"recovery\"",
            "\"records_per_sec\"",
            "\"fsync@512\"",
            "\"append\"",
        ] {
            assert!(json.contains(key), "missing {key}");
        }
        let doc = crate::ratchet::parse_json(&json).expect("artifact parses");
        assert_eq!(
            doc.get("workloads")
                .and_then(crate::ratchet::Json::as_arr)
                .map(<[_]>::len),
            Some(1 + FSYNC_INTERVALS.len())
        );
    }
}
