//! Tiny TSV/box report printer shared by the experiment binaries.

/// Prints a titled TSV table: a header row, then one row per record.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("## {title}");
    println!("{}", header.join("\t"));
    for row in rows {
        println!("{}", row.join("\t"));
    }
    println!();
}

/// Formats a float with 4 significant-ish decimals, trimming noise.
pub fn fmt(x: f64) -> String {
    // LINT-ALLOW(float): exact-zero sentinel for display formatting only.
    if x == 0.0 {
        return "0".to_string();
    }
    let a = x.abs();
    if a >= 1000.0 {
        format!("{x:.1}")
    } else if a >= 1.0 {
        format!("{x:.3}")
    } else {
        format!("{x:.5}")
    }
}

/// Prints a titled table of every metric in an [`mbp_obs`] snapshot: one
/// row per counter and gauge, and one per histogram with count, mean, and
/// interpolated p50/p99 (formatted as durations, since the workspace's
/// histograms record span wall-times in seconds).
pub fn print_metrics(title: &str, snap: &mbp_obs::Snapshot) {
    if snap.is_empty() {
        return;
    }
    let mut rows: Vec<Vec<String>> = Vec::new();
    for (name, v) in &snap.counters {
        rows.push(vec![name.clone(), "counter".into(), v.to_string()]);
    }
    for (name, v) in &snap.gauges {
        rows.push(vec![name.clone(), "gauge".into(), fmt(*v)]);
    }
    for h in &snap.histograms {
        let q = |x: Option<f64>| x.map_or_else(|| "-".to_string(), fmt_secs);
        rows.push(vec![
            h.name.clone(),
            "histogram".into(),
            format!(
                "count {} mean {} p50 {} p99 {}",
                h.count,
                fmt_secs(h.mean()),
                q(h.p50),
                q(h.p99)
            ),
        ]);
    }
    print_table(title, &["metric", "kind", "value"], &rows);
}

/// Formats a duration in seconds with appropriate precision.
pub fn fmt_secs(s: f64) -> String {
    if s < 1e-6 {
        format!("{:.1}ns", s * 1e9)
    } else if s < 1e-3 {
        format!("{:.1}us", s * 1e6)
    } else if s < 1.0 {
        format!("{:.2}ms", s * 1e3)
    } else {
        format!("{s:.2}s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_ranges() {
        assert_eq!(fmt(0.0), "0");
        assert_eq!(fmt(1234.5), "1234.5");
        assert_eq!(fmt(2.71911), "2.719");
        assert_eq!(fmt(0.001234), "0.00123");
    }

    #[test]
    fn print_metrics_handles_empty_and_populated_snapshots() {
        print_metrics("empty", &mbp_obs::Snapshot::default()); // prints nothing
        let snap = mbp_obs::Snapshot {
            counters: vec![("mbp.test.count".into(), 3)],
            gauges: vec![("mbp.test.gauge".into(), 1.5)],
            histograms: Vec::new(),
            labeled: Vec::new(),
        };
        print_metrics("populated", &snap); // smoke: must not panic
    }

    #[test]
    fn fmt_secs_units() {
        assert!(fmt_secs(2e-9).ends_with("ns"));
        assert!(fmt_secs(2e-5).ends_with("us"));
        assert!(fmt_secs(2e-2).ends_with("ms"));
        assert!(fmt_secs(2.0).ends_with('s'));
    }
}
