//! The experiment implementations, one function per paper table/figure.

use crate::Config;
use mbp_core::arbitrage::audit;
use mbp_core::error::EmpiricalTransform;
use mbp_core::market::curves::{grid, DemandCurve, DemandShape, ValueCurve, ValueShape};
use mbp_core::mechanism::GaussianMechanism;
use mbp_core::pricing::PricingFunction;
use mbp_core::revenue::{
    affordability, revenue, solve_bv_dp, solve_bv_exact, welfare, Baseline, BuyerPoint,
};
use mbp_data::catalog::{self, Task};
use mbp_ml::metrics::TestError;
use mbp_ml::train::{newton_logistic, ridge_closed_form, TrainConfig};
use mbp_ml::LogisticLoss;
use std::time::Instant;

// ---------------------------------------------------------------------------
// Table 3
// ---------------------------------------------------------------------------

/// One row of the Table 3 reproduction.
#[derive(Debug, Clone)]
pub struct Table3Row {
    /// Dataset name.
    pub name: String,
    /// Task label ("Regression"/"Classification").
    pub task: &'static str,
    /// Paper's train size.
    pub paper_n1: usize,
    /// Paper's test size.
    pub paper_n2: usize,
    /// Our materialized train size at the configured scale.
    pub our_n1: usize,
    /// Our materialized test size.
    pub our_n2: usize,
    /// Feature count.
    pub d: usize,
}

/// Regenerates Table 3: the dataset catalog, materialized at `cfg.scale`.
pub fn table3(cfg: &Config) -> Vec<Table3Row> {
    catalog::TABLE3
        .iter()
        .map(|spec| {
            let tt = catalog::load(spec, cfg.scale, cfg.seed);
            let (n1, n2) = tt.sizes();
            Table3Row {
                name: spec.name.to_string(),
                task: match spec.task {
                    Task::Regression => "Regression",
                    Task::Classification => "Classification",
                },
                paper_n1: spec.paper_n_train,
                paper_n2: spec.paper_n_test,
                our_n1: n1,
                our_n2: n2,
                d: spec.d,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Figure 6: error transformation curves
// ---------------------------------------------------------------------------

/// One sampled point of an error-transformation curve.
#[derive(Debug, Clone)]
pub struct Fig6Point {
    /// Dataset name.
    pub dataset: String,
    /// Error function label.
    pub error_kind: &'static str,
    /// Inverse NCP (the x-axis of Figure 6).
    pub inv_ncp: f64,
    /// Monte-Carlo expected error on the test split.
    pub expected_error: f64,
}

/// The inverse-NCP axis used throughout the experiments (the paper's
/// `1/NCP ∈ {10, 20, …, 100}`).
pub fn inv_ncp_axis() -> Vec<f64> {
    (1..=10).map(|i| (i * 10) as f64).collect()
}

/// Maps an inverse-NCP axis value to an actual δ for a given optimal model.
///
/// The paper's MATLAB prototype used unstandardized features with large
/// coefficients, so raw `δ = 1/x` produced visible error changes over
/// `x ∈ [10, 100]`. Our data is standardized, so we calibrate the noise to
/// the model: `δ(x) = (10/x) · ‖h*‖²` — at `x = 10` the injected noise has
/// the same energy as the model itself, at `x = 100` a tenth of it. This is
/// a pure units choice on the δ axis and does not affect any pricing result
/// (pricing operates on `x` directly).
pub fn ncp_for_axis(x: f64, h_star_sq_norm: f64) -> f64 {
    10.0 * h_star_sq_norm.max(1e-9) / x
}

/// Regenerates Figure 6: for each Table 3 dataset, the expected test error
/// of the Gaussian release as a function of the inverse NCP — square loss
/// for the regression rows, logistic and 0/1 loss for the classification
/// rows.
pub fn fig6(cfg: &Config) -> Vec<Fig6Point> {
    let axis = inv_ncp_axis();
    let mut out = Vec::new();
    for spec in &catalog::TABLE3 {
        let tt = catalog::load(spec, cfg.scale, cfg.seed);
        let (h_star, errors): (_, Vec<TestError>) = match spec.task {
            Task::Regression => (
                ridge_closed_form(&tt.train, 1e-6).expect("regression training failed"),
                vec![TestError::SquareLoss],
            ),
            Task::Classification => (
                newton_logistic(
                    &LogisticLoss::ridge(1e-4),
                    &tt.train,
                    TrainConfig::default(),
                )
                .weights,
                vec![TestError::LogisticLoss, TestError::ZeroOne],
            ),
        };
        let kappa = h_star.norm2_squared();
        let ncp_grid: Vec<f64> = axis
            .iter()
            .rev() // δ ascending (axis descending)
            .map(|&x| ncp_for_axis(x, kappa))
            .collect();
        for error_kind in errors {
            let transform = EmpiricalTransform::estimate(
                &GaussianMechanism,
                &h_star,
                &tt.test,
                error_kind,
                &ncp_grid,
                cfg.reps,
                cfg.seed ^ 0xf166,
            );
            let curve: Vec<(f64, f64)> = transform.curve().collect();
            // δ ascending ⇒ axis descending; report in axis order.
            for (i, &x) in axis.iter().enumerate() {
                let (_, err) = curve[curve.len() - 1 - i];
                out.push(Fig6Point {
                    dataset: spec.name.to_string(),
                    error_kind: error_kind.name(),
                    inv_ncp: x,
                    expected_error: err,
                });
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Figures 7–8: revenue and affordability gain
// ---------------------------------------------------------------------------

/// Outcome of one pricing method on one scenario.
#[derive(Debug, Clone)]
pub struct MethodOutcome {
    /// Method label ("MBP", "Lin", "MaxC", "MedC", "OptC", "MILP").
    pub method: &'static str,
    /// Total revenue against the scenario's buyer population.
    pub revenue: f64,
    /// Affordability ratio.
    pub affordability: f64,
    /// Buyer surplus left on the table (welfare kept by buyers).
    pub buyer_surplus: f64,
    /// Welfare efficiency: (revenue + surplus) / total surplus.
    pub efficiency: f64,
    /// Prices at the scenario grid points.
    pub prices: Vec<f64>,
}

/// One panel of Figures 7/8: a buyer population and every method's outcome.
#[derive(Debug, Clone)]
pub struct RevenueScenario {
    /// Panel label.
    pub label: String,
    /// Inverse-NCP grid.
    pub grid: Vec<f64>,
    /// Buyer population on the grid.
    pub buyers: Vec<BuyerPoint>,
    /// Per-method outcomes (MBP first).
    pub outcomes: Vec<MethodOutcome>,
}

fn run_scenario(label: String, buyers: Vec<BuyerPoint>) -> RevenueScenario {
    let g: Vec<f64> = buyers.iter().map(|p| p.a).collect();
    let mut outcomes = Vec::new();
    let mbp = solve_bv_dp(&buyers);
    let w = welfare(&mbp.pricing, &buyers);
    outcomes.push(MethodOutcome {
        method: "MBP",
        revenue: w.revenue,
        affordability: w.affordability,
        buyer_surplus: w.buyer_surplus,
        efficiency: w.efficiency,
        prices: mbp.pricing.prices().to_vec(),
    });
    // The baselines are independent of one another: price and evaluate each
    // on its own worker (par_map keeps paper order).
    let _span = mbp_obs::span("mbp.bench.scenario.baselines.par");
    outcomes.extend(mbp_par::par_map(Baseline::ALL.len(), 1, |i| {
        let b = Baseline::ALL[i];
        let pf = b.pricing(&buyers);
        let w = welfare(&pf, &buyers);
        MethodOutcome {
            method: b.name(),
            revenue: w.revenue,
            affordability: w.affordability,
            buyer_surplus: w.buyer_surplus,
            efficiency: w.efficiency,
            prices: g.iter().map(|&x| pf.price_at(x)).collect(),
        }
    }));
    RevenueScenario {
        label,
        grid: g,
        buyers,
        outcomes,
    }
}

/// Regenerates Figure 7: fixed (unimodal) demand, varying buyer value
/// curve — panel (a) convex, panel (b) concave.
pub fn fig7(_cfg: &Config) -> Vec<RevenueScenario> {
    let g = grid(20.0, 100.0, 9);
    let demand = DemandCurve::new(DemandShape::Peak {
        center: 0.6,
        width: 0.35,
    });
    let panels = [
        ("convex value curve", ValueShape::Convex { power: 2.5 }),
        ("concave value curve", ValueShape::Concave { power: 2.5 }),
    ];
    let _span = mbp_obs::span("mbp.bench.fig7.panels.par");
    mbp_par::par_map(panels.len(), 1, |i| {
        let (label, shape) = panels[i];
        let value = ValueCurve::new(shape, 2.0, 100.0);
        let buyers = mbp_core::market::curves::buyer_points(&g, &value, &demand)
            .expect("experiment grid is valid");
        run_scenario(format!("Fig7 {label}"), buyers)
    })
}

/// Regenerates Figure 8: fixed (linear) value curve, varying demand —
/// panel (a) mid-peaked, panel (b) bimodal.
pub fn fig8(_cfg: &Config) -> Vec<RevenueScenario> {
    let g = grid(20.0, 100.0, 9);
    let value = ValueCurve::new(ValueShape::Linear, 2.0, 100.0);
    let panels = [
        (
            "mid-peaked demand",
            DemandShape::Peak {
                center: 0.5,
                width: 0.18,
            },
        ),
        ("bimodal demand", DemandShape::Bimodal { width: 0.15 }),
    ];
    let _span = mbp_obs::span("mbp.bench.fig8.panels.par");
    mbp_par::par_map(panels.len(), 1, |i| {
        let (label, shape) = panels[i];
        let demand = DemandCurve::new(shape);
        let buyers = mbp_core::market::curves::buyer_points(&g, &value, &demand)
            .expect("experiment grid is valid");
        run_scenario(format!("Fig8 {label}"), buyers)
    })
}

// ---------------------------------------------------------------------------
// Figures 9–10: runtime sweeps vs the exact (MILP) solver
// ---------------------------------------------------------------------------

/// One `(n, method)` measurement of the runtime sweep.
#[derive(Debug, Clone)]
pub struct RuntimeRow {
    /// Number of price points.
    pub n: usize,
    /// Method label.
    pub method: &'static str,
    /// Wall-clock runtime in seconds.
    pub runtime_s: f64,
    /// Revenue achieved.
    pub revenue: f64,
    /// Affordability ratio achieved.
    pub affordability: f64,
}

/// One panel of Figures 9/10.
#[derive(Debug, Clone)]
pub struct RuntimeScenario {
    /// Panel label.
    pub label: String,
    /// Sweep rows, grouped by `n` then method.
    pub rows: Vec<RuntimeRow>,
}

fn time<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t0 = Instant::now();
    let out = f();
    (out, t0.elapsed().as_secs_f64())
}

// Deliberately sequential: the per-method wall times ARE the figure's
// y-axis, so the solvers must not share cores with each other. Population
// metrics evaluated after each timed section still route through the
// (parallel-capable) `revenue`/`affordability` evaluators.
fn runtime_sweep(
    label: String,
    value: ValueCurve,
    demand: DemandCurve,
    max_n: usize,
) -> RuntimeScenario {
    let mut rows = Vec::new();
    for n in 2..=max_n {
        let g = grid(20.0, 100.0, n);
        let buyers = mbp_core::market::curves::buyer_points(&g, &value, &demand)
            .expect("experiment grid is valid");
        // MBP: the O(n²) DP.
        let (mbp, t_mbp) = time(|| solve_bv_dp(&buyers));
        rows.push(RuntimeRow {
            n,
            method: "MBP",
            runtime_s: t_mbp,
            revenue: revenue(&mbp.pricing, &buyers),
            affordability: affordability(&mbp.pricing, &buyers),
        });
        // Naive baselines.
        for b in Baseline::ALL {
            let (pf, t) = time(|| b.pricing(&buyers));
            rows.push(RuntimeRow {
                n,
                method: b.name(),
                runtime_s: t,
                revenue: revenue(&pf, &buyers),
                affordability: affordability(&pf, &buyers),
            });
        }
        // MILP stand-in: the exact exponential solver. Quantization scale 1
        // keeps grid points integral (they are multiples of 10/(n−1)·…, so
        // use a finer scale to keep them distinct for every n).
        let (exact, t_exact) = time(|| solve_bv_exact(&buyers, 2.0));
        rows.push(RuntimeRow {
            n,
            method: "MILP",
            runtime_s: t_exact,
            revenue: exact.objective,
            affordability: affordability(&exact.pricing, &buyers),
        });
    }
    RuntimeScenario { label, rows }
}

/// Regenerates Figure 9: runtime/revenue/affordability vs number of price
/// points, fixed demand, two valuation shapes.
pub fn fig9(cfg: &Config) -> Vec<RuntimeScenario> {
    let demand = DemandCurve::new(DemandShape::Peak {
        center: 0.5,
        width: 0.25,
    });
    vec![
        runtime_sweep(
            "Fig9 convex value curve".into(),
            ValueCurve::new(ValueShape::Convex { power: 2.5 }, 2.0, 100.0),
            demand,
            cfg.max_n,
        ),
        runtime_sweep(
            "Fig9 concave value curve".into(),
            ValueCurve::new(ValueShape::Concave { power: 2.5 }, 2.0, 100.0),
            demand,
            cfg.max_n,
        ),
    ]
}

/// Regenerates Figure 10: same sweep with fixed value curve and varying
/// demand shape.
pub fn fig10(cfg: &Config) -> Vec<RuntimeScenario> {
    let value = ValueCurve::new(ValueShape::Linear, 2.0, 100.0);
    vec![
        runtime_sweep(
            "Fig10 mid-peaked demand".into(),
            value,
            DemandCurve::new(DemandShape::Peak {
                center: 0.5,
                width: 0.18,
            }),
            cfg.max_n,
        ),
        runtime_sweep(
            "Fig10 bimodal demand".into(),
            value,
            DemandCurve::new(DemandShape::Bimodal { width: 0.15 }),
            cfg.max_n,
        ),
    ]
}

// ---------------------------------------------------------------------------
// Extension experiments (beyond the paper's figures)
// ---------------------------------------------------------------------------

/// One point of the revenue–fairness trade-off sweep.
#[derive(Debug, Clone)]
pub struct FairnessRow {
    /// Scalarization weight λ.
    pub lambda: f64,
    /// Revenue of the λ-optimal pricing.
    pub revenue: f64,
    /// Affordability of the λ-optimal pricing.
    pub affordability: f64,
}

/// Ablation for the paper's Section 7 future-work item: sweeping the
/// fairness weight of [`mbp_core::revenue::solve_bv_dp_fair`] traces the
/// revenue-vs-affordability Pareto frontier on a Figure 7-style scenario.
pub fn fairness_sweep(_cfg: &Config) -> Vec<FairnessRow> {
    let g = grid(20.0, 100.0, 9);
    let buyers = mbp_core::market::curves::buyer_points(
        &g,
        &ValueCurve::new(ValueShape::Convex { power: 2.5 }, 2.0, 100.0),
        &DemandCurve::new(DemandShape::Peak {
            center: 0.6,
            width: 0.35,
        }),
    )
    .expect("experiment grid is valid");
    let mut rows = Vec::new();
    for &lambda in &[0.0, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0] {
        let sol = mbp_core::revenue::solve_bv_dp_fair(&buyers, lambda);
        rows.push(FairnessRow {
            lambda,
            revenue: revenue(&sol.pricing, &buyers),
            affordability: affordability(&sol.pricing, &buyers),
        });
    }
    rows
}

/// Predicted-vs-realized comparison from a simulated selling season.
#[derive(Debug, Clone)]
pub struct SimulationRow {
    /// Scenario label.
    pub label: String,
    /// Revenue per buyer predicted from the research curves.
    pub predicted_revenue: f64,
    /// Average realized revenue per simulated buyer.
    pub realized_revenue: f64,
    /// Predicted affordability.
    pub predicted_affordability: f64,
    /// Realized affordability.
    pub realized_affordability: f64,
    /// Buyers served.
    pub served: usize,
}

/// End-to-end validation experiment: run a simulated buyer stream through
/// the real broker under the DP pricing and under the OptC baseline, and
/// compare predicted vs realized revenue/affordability.
pub fn simulation_experiment(cfg: &Config) -> Vec<SimulationRow> {
    use mbp_core::error::SquareLossTransform;
    use mbp_core::market::simulation::{simulate_market, SimulationConfig};
    use mbp_core::market::{Broker, Seller};
    use mbp_ml::ModelKind;
    use mbp_randx::seeded_rng;

    let mut rng = seeded_rng(cfg.seed ^ 0x0513);
    let data = mbp_data::synth::simulated1(2000, 6, 0.5, &mut rng).split(0.75, &mut rng);
    let seller = Seller::new(
        data.clone(),
        grid(10.0, 100.0, 10),
        ValueCurve::new(ValueShape::Concave { power: 2.0 }, 5.0, 100.0),
        DemandCurve::new(DemandShape::Peak {
            center: 0.5,
            width: 0.3,
        }),
    );
    let mut broker = Broker::new(data);
    broker
        .support(ModelKind::LinearRegression, 1e-6)
        .expect("training failed");
    let population = seller.buyer_population();
    let dp = solve_bv_dp(&population).pricing;
    let optc = Baseline::OptC.pricing(&population);
    let mut rows = Vec::new();
    for (label, pricing) in [("MBP (DP)", &dp), ("OptC baseline", &optc)] {
        let out = simulate_market(
            &mut broker,
            &seller,
            ModelKind::LinearRegression,
            pricing,
            &SquareLossTransform,
            SimulationConfig {
                n_buyers: 3000,
                valuation_jitter: 0.0,
            },
            &mut rng,
        )
        .expect("simulation failed");
        rows.push(SimulationRow {
            label: label.to_string(),
            predicted_revenue: out.predicted_revenue_per_buyer,
            realized_revenue: out.realized_revenue_per_buyer,
            predicted_affordability: out.predicted_affordability,
            realized_affordability: out.realized_affordability(),
            served: out.served,
        });
    }
    rows
}

/// One row of the error-transform accuracy ablation.
#[derive(Debug, Clone)]
pub struct TransformRow {
    /// Noise level relative to the model energy (`δ / ‖h*‖²`).
    pub relative_ncp: f64,
    /// Monte-Carlo ("ground truth") expected logistic loss.
    pub monte_carlo: f64,
    /// Second-order delta-method prediction.
    pub delta_method: f64,
    /// Empirical-transform interpolation at the same δ.
    pub empirical: f64,
}

/// Ablation of the error-transform design: the cheap analytic delta method
/// versus the Monte-Carlo empirical transform, across noise levels. The
/// quadratic approximation tracks truth at small δ and diverges as noise
/// grows — quantifying when the broker can skip the Monte-Carlo estimate.
pub fn transform_ablation(cfg: &Config) -> Vec<TransformRow> {
    use mbp_core::error::{DeltaMethodTransform, ErrorTransform};
    use mbp_core::mechanism::NoiseMechanism;
    use mbp_randx::seeded_rng;

    let mut rng = seeded_rng(cfg.seed ^ 0x7a0f);
    let ds = mbp_data::synth::simulated2(2000, 6, 0.92, &mut rng);
    let h = newton_logistic(&LogisticLoss::ridge(1e-3), &ds, TrainConfig::default()).weights;
    let kappa = h.norm2_squared();
    let rels: Vec<f64> = vec![0.01, 0.05, 0.1, 0.25, 0.5, 1.0, 2.0];
    let ncps: Vec<f64> = rels.iter().map(|r| r * kappa).collect();
    let delta = DeltaMethodTransform::for_logistic(&ds, &h);
    let empirical = EmpiricalTransform::estimate(
        &GaussianMechanism,
        &h,
        &ds,
        TestError::LogisticLoss,
        &ncps,
        cfg.reps.max(200),
        cfg.seed ^ 0xab1a,
    );
    let mech = GaussianMechanism;
    rels.iter()
        .zip(&ncps)
        .map(|(&rel, &ncp)| {
            // High-replica Monte Carlo as ground truth.
            let reps = 2000;
            let mut acc = 0.0;
            for _ in 0..reps {
                let released = mech.perturb(&h, ncp, &mut rng);
                acc += TestError::LogisticLoss.evaluate(&released, &ds);
            }
            TransformRow {
                relative_ncp: rel,
                monte_carlo: acc / reps as f64,
                delta_method: delta.expected_error(ncp),
                empirical: empirical.expected_error(ncp),
            }
        })
        .collect()
}

/// One epoch row of the adaptive-pricing experiment.
#[derive(Debug, Clone)]
pub struct AdaptiveRow {
    /// Epoch number (1-based).
    pub epoch: usize,
    /// Realized revenue per buyer that season.
    pub revenue_per_buyer: f64,
    /// Acceptance rate that season.
    pub acceptance_rate: f64,
    /// RMSE of the valuation estimate vs truth.
    pub estimate_rmse: f64,
}

/// Extension experiment: dynamic pricing when the seller's market research
/// is wrong by 3×. Each epoch posts DP-optimal (arbitrage-free) prices for
/// the current estimate and updates from observed acceptances; the oracle
/// revenue (perfect research, no jitter) is returned for reference.
pub fn adaptive_experiment(cfg: &Config) -> (Vec<AdaptiveRow>, f64) {
    use mbp_core::market::epochs::{run_adaptive_market, EpochConfig};
    use mbp_randx::seeded_rng;

    let g = grid(10.0, 100.0, 10);
    let truth = mbp_core::market::curves::buyer_points(
        &g,
        &ValueCurve::new(ValueShape::Concave { power: 2.0 }, 10.0, 100.0),
        &DemandCurve::new(DemandShape::Uniform),
    )
    .expect("experiment grid is valid");
    let bad_guess: Vec<f64> = truth.iter().map(|p| p.valuation / 3.0).collect();
    let mut rng = seeded_rng(cfg.seed ^ 0xada0);
    let reports = run_adaptive_market(
        &truth,
        &bad_guess,
        EpochConfig {
            epochs: 30,
            buyers_per_epoch: 2000,
            learning_rate: 0.4,
            valuation_jitter: 0.05,
        },
        &mut rng,
    );
    let oracle = solve_bv_dp(&truth);
    let oracle_rev = revenue(&oracle.pricing, &truth);
    (
        reports
            .into_iter()
            .map(|r| AdaptiveRow {
                epoch: r.epoch,
                revenue_per_buyer: r.revenue_per_buyer,
                acceptance_rate: r.acceptance_rate,
                estimate_rmse: r.estimate_rmse,
            })
            .collect(),
        oracle_rev,
    )
}

// ---------------------------------------------------------------------------
// Figure 5: the worked 4-point example
// ---------------------------------------------------------------------------

/// One approach's outcome on the Figure 5 instance.
#[derive(Debug, Clone)]
pub struct Fig5Row {
    /// Approach label (panel letter + name).
    pub approach: &'static str,
    /// Prices at `a = 1, 2, 3, 4`.
    pub prices: Vec<f64>,
    /// Revenue against the instance's buyers.
    pub revenue: f64,
    /// Affordability ratio.
    pub affordability: f64,
    /// Whether the arbitrage auditor found an attack against this pricing.
    pub has_arbitrage: bool,
}

/// The Figure 5 instance: `a = 1..4`, `b = 0.25` each,
/// `v = (100, 150, 280, 350)`.
pub fn figure5_instance() -> Vec<BuyerPoint> {
    vec![
        BuyerPoint::new(1.0, 100.0, 0.25),
        BuyerPoint::new(2.0, 150.0, 0.25),
        BuyerPoint::new(3.0, 280.0, 0.25),
        BuyerPoint::new(4.0, 350.0, 0.25),
    ]
}

/// Regenerates Figure 5: the five pricing approaches on the worked example,
/// with an arbitrage audit of each.
pub fn fig5() -> Vec<Fig5Row> {
    let buyers = figure5_instance();
    let g: Vec<f64> = buyers.iter().map(|p| p.a).collect();
    let mut rows = Vec::new();
    let mut push = |approach: &'static str, pf: PricingFunction, buyers: &[BuyerPoint]| {
        let report = audit(&pf, &g, 10, 1e-6);
        rows.push(Fig5Row {
            approach,
            prices: g.iter().map(|&x| pf.price_at(x)).collect(),
            revenue: revenue(&pf, buyers),
            affordability: affordability(&pf, buyers),
            has_arbitrage: !report.is_clean(),
        });
    };
    // (a) price = valuation: maximal revenue on paper, but arbitrageable.
    let naive =
        PricingFunction::from_points(g.clone(), buyers.iter().map(|p| p.valuation).collect())
            .expect("valid points");
    push("(a) valuation-as-price", naive, &buyers);
    // (b) constant price (OptC).
    push(
        "(b) constant (OptC)",
        Baseline::OptC.pricing(&buyers),
        &buyers,
    );
    // (c) linear pricing.
    push("(c) linear (Lin)", Baseline::Lin.pricing(&buyers), &buyers);
    // (d) revenue-optimal arbitrage-free (the coNP-hard problem, solved
    // exactly by branch and bound).
    let exact = solve_bv_exact(&buyers, 1.0);
    push("(d) optimal (exact)", exact.pricing, &buyers);
    // (e) the paper's polynomial-time approximation.
    let dp = solve_bv_dp(&buyers);
    push("(e) MBP (approx)", dp.pricing, &buyers);
    rows
}
