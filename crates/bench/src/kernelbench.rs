//! Segment-lookup microbench: branchy `partition_point` vs the compiled
//! [`SegmentIndex`] layouts.
//!
//! For each knot count (16 / 512 / 8192) the same query stream is resolved
//! four ways:
//!
//! * **pp-uniform** — `slice::partition_point` over a uniform knot grid
//!   (the pre-index serving code path);
//! * **grid** — the fixed-stride grid layout the index compiles for
//!   near-uniform knots (one multiply + two arithmetic fixups, no
//!   data-dependent branch);
//! * **pp-jittered** — `partition_point` over a non-uniform grid;
//! * **eytzinger** — the Eytzinger (BFS-ordered) layout with
//!   conditional-move descent, compiled for irregular knots.
//!
//! Before any timing, every query is cross-checked: both index layouts
//! must return *exactly* `partition_point`'s answer (`consistent`). Each
//! workload runs twice from identical state and must reproduce its digest
//! (`deterministic`). The `all` binary serializes the result to
//! `BENCH_kernel.json`; the ratchet diffs per-layout throughput and the
//! grid/eytzinger-vs-partition-point speedup ratios against the committed
//! baseline.

use mbp_core::SegmentIndex;
use std::time::Instant;

/// Knot counts exercised by the sweep.
pub const SIZES: [usize; 3] = [16, 512, 8192];

/// One measured lookup workload.
#[derive(Debug, Clone)]
pub struct KernelWorkload {
    /// Workload label, `layout@knots`.
    pub name: String,
    /// Knots in the searched array.
    pub knots: usize,
    /// Lookup implementation: `partition_point`, `grid`, or `eytzinger`.
    pub layout: &'static str,
    /// Lookups per run.
    pub lookups: usize,
    /// Wall seconds for the faster of the two runs.
    pub seconds: f64,
    /// Throughput derived from `seconds`.
    pub lookups_per_sec: f64,
    /// Index-sum digest of the first run.
    pub digest: f64,
    /// Whether the second run reproduced `digest` exactly.
    pub deterministic: bool,
}

/// A same-process throughput ratio (machine-independent).
#[derive(Debug, Clone)]
pub struct KernelSpeedup {
    /// Ratio label, e.g. `grid_vs_pp@512`.
    pub name: String,
    /// Index throughput ÷ `partition_point` throughput on the same keys.
    pub value: f64,
}

/// The full lookup-kernel baseline.
#[derive(Debug, Clone)]
pub struct KernelBaseline {
    /// Machine + commit + timestamp provenance stamp.
    pub meta: crate::RunMeta,
    /// Per-workload measurements.
    pub workloads: Vec<KernelWorkload>,
    /// Grid / Eytzinger speedups over `partition_point`, per knot count.
    pub speedups: Vec<KernelSpeedup>,
    /// Both index layouts answered every query exactly like
    /// `partition_point` (checked outside the timed sections).
    pub consistent: bool,
    /// Every workload reproduced its digest on the second run.
    pub deterministic: bool,
}

/// Near-uniform keys: `1.0 + i·0.25`, eligible for the grid layout.
fn uniform_keys(n: usize) -> Vec<f64> {
    (0..n).map(|i| 1.0 + i as f64 * 0.25).collect()
}

/// Irregular keys: strictly ascending with pseudo-random gaps, forcing the
/// Eytzinger layout.
fn jittered_keys(n: usize) -> Vec<f64> {
    let mut acc = 1.0;
    (0..n)
        .map(|i| {
            acc += 0.2 + ((i * 37 + 11) % 13) as f64 * 0.03;
            acc
        })
        .collect()
}

/// The deterministic query stream: a golden-ratio walk over a band 20%
/// wider than the key range (so below-first and above-last clamps are
/// exercised), with every seventh probe landing exactly on a knot.
fn queries(keys: &[f64], lookups: usize) -> Vec<f64> {
    let lo = keys.first().copied().unwrap_or(0.0);
    let hi = keys.last().copied().unwrap_or(1.0);
    let span = (hi - lo).max(1.0);
    (0..lookups)
        .map(|i| {
            if i % 7 == 0 {
                keys[i % keys.len()]
            } else {
                let frac = (i as f64 * 0.618_033_988_749_894_9).fract();
                lo - 0.1 * span + 1.2 * span * frac
            }
        })
        .collect()
}

/// Times `work` twice over the query stream; keeps the faster run.
fn measure(
    name: String,
    knots: usize,
    layout: &'static str,
    xs: &[f64],
    mut work: impl FnMut(f64) -> usize,
) -> KernelWorkload {
    let mut run = |xs: &[f64]| -> (f64, f64) {
        let t0 = Instant::now();
        let mut digest = 0usize;
        for &x in xs {
            digest = digest.wrapping_add(work(x));
        }
        (t0.elapsed().as_secs_f64(), digest as f64)
    };
    let (sec_a, digest_a) = run(xs);
    let (sec_b, digest_b) = run(xs);
    let seconds = sec_a.min(sec_b);
    KernelWorkload {
        name,
        knots,
        layout,
        lookups: xs.len(),
        seconds,
        lookups_per_sec: if seconds > 0.0 {
            xs.len() as f64 / seconds
        } else {
            0.0
        },
        digest: digest_a,
        deterministic: digest_a == digest_b,
    }
}

/// Runs the full lookup sweep with `lookups` queries per workload.
pub fn run(lookups: usize) -> KernelBaseline {
    let _span = mbp_obs::span("mbp.bench.kernelbench");
    let lookups = lookups.max(1024);
    let mut workloads = Vec::new();
    let mut speedups = Vec::new();
    let mut consistent = true;

    for n in SIZES {
        let uniform = uniform_keys(n);
        let jittered = jittered_keys(n);
        let grid_idx = SegmentIndex::new(&uniform);
        let eytz_idx = SegmentIndex::new(&jittered);
        assert!(grid_idx.is_grid(), "uniform keys must compile to the grid");
        assert!(
            !eytz_idx.is_grid(),
            "jittered keys must compile to Eytzinger"
        );

        let qs_uniform = queries(&uniform, lookups);
        let qs_jittered = queries(&jittered, lookups);
        // Exactness cross-check on every query, outside the timed runs.
        consistent &= qs_uniform
            .iter()
            .all(|&x| grid_idx.upper_bound(&uniform, x) == uniform.partition_point(|&k| k <= x));
        consistent &= qs_jittered
            .iter()
            .all(|&x| eytz_idx.upper_bound(&jittered, x) == jittered.partition_point(|&k| k <= x));

        let pp_uniform = measure(
            format!("pp-uniform@{n}"),
            n,
            "partition_point",
            &qs_uniform,
            |x| uniform.partition_point(|&k| k <= x),
        );
        let grid = measure(format!("grid@{n}"), n, "grid", &qs_uniform, |x| {
            grid_idx.upper_bound(&uniform, x)
        });
        let pp_jittered = measure(
            format!("pp-jittered@{n}"),
            n,
            "partition_point",
            &qs_jittered,
            |x| jittered.partition_point(|&k| k <= x),
        );
        let eytz = measure(
            format!("eytzinger@{n}"),
            n,
            "eytzinger",
            &qs_jittered,
            |x| eytz_idx.upper_bound(&jittered, x),
        );

        let ratio = |num: &KernelWorkload, den: &KernelWorkload| {
            if den.lookups_per_sec > 0.0 {
                num.lookups_per_sec / den.lookups_per_sec
            } else {
                1.0
            }
        };
        speedups.push(KernelSpeedup {
            name: format!("grid_vs_pp@{n}"),
            value: ratio(&grid, &pp_uniform),
        });
        speedups.push(KernelSpeedup {
            name: format!("eytzinger_vs_pp@{n}"),
            value: ratio(&eytz, &pp_jittered),
        });
        workloads.extend([pp_uniform, grid, pp_jittered, eytz]);
    }

    let deterministic = workloads.iter().all(|w| w.deterministic);
    KernelBaseline {
        meta: crate::RunMeta::from_env(),
        workloads,
        speedups,
        consistent,
        deterministic,
    }
}

impl KernelBaseline {
    /// Serializes the baseline as a standalone JSON document
    /// (`BENCH_kernel.json`).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&self.meta.json_fields());
        out.push_str(&format!(
            "  \"sizes\": [{}],\n",
            SIZES.map(|n| n.to_string()).join(", ")
        ));
        out.push_str(&format!("  \"consistent\": {},\n", self.consistent));
        out.push_str(&format!("  \"deterministic\": {},\n", self.deterministic));
        out.push_str("  \"speedups\": [\n");
        for (i, s) in self.speedups.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"value\": {:.4}}}{}\n",
                s.name,
                s.value,
                if i + 1 == self.speedups.len() {
                    ""
                } else {
                    ","
                }
            ));
        }
        out.push_str("  ],\n  \"workloads\": [\n");
        for (i, w) in self.workloads.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"knots\": {}, \"layout\": \"{}\", \"lookups\": {}, \"seconds\": {:.6}, \"lookups_per_sec\": {:.1}, \"digest\": {:.1}, \"deterministic\": {}}}{}\n",
                w.name,
                w.knots,
                w.layout,
                w.lookups,
                w.seconds,
                w.lookups_per_sec,
                w.digest,
                w.deterministic,
                if i + 1 == self.workloads.len() { "" } else { "," }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_is_consistent_and_complete() {
        let b = run(2048);
        assert_eq!(b.workloads.len(), 4 * SIZES.len());
        assert_eq!(b.speedups.len(), 2 * SIZES.len());
        assert!(
            b.consistent,
            "an index layout diverged from partition_point"
        );
        assert!(b.deterministic, "a workload failed to reproduce its digest");
        assert!(b.workloads.iter().all(|w| w.lookups_per_sec > 0.0));
        assert!(b.speedups.iter().all(|s| s.value > 0.0));
    }

    #[test]
    fn json_artifact_has_required_fields() {
        let b = run(1024);
        let json = b.to_json();
        for key in [
            "\"hardware_threads\"",
            "\"sizes\"",
            "\"consistent\"",
            "\"deterministic\"",
            "\"speedups\"",
            "\"lookups_per_sec\"",
            "\"grid_vs_pp@512\"",
            "\"eytzinger_vs_pp@8192\"",
            "\"pp-uniform@16\"",
        ] {
            assert!(json.contains(key), "missing {key}");
        }
        assert!(json.trim_start().starts_with('{') && json.trim_end().ends_with('}'));
        // The artifact must round-trip through the ratchet's parser.
        let doc = crate::ratchet::parse_json(&json).expect("artifact parses");
        assert_eq!(
            doc.get("workloads")
                .and_then(crate::ratchet::Json::as_arr)
                .map(<[_]>::len),
            Some(4 * SIZES.len())
        );
    }
}
