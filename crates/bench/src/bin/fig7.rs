//! Regenerates Figure 7: revenue/affordability gains, varying value curves.

use mbp_bench::experiments::fig7;
use mbp_bench::report::{fmt, print_table};
use mbp_bench::Config;

fn main() {
    let cfg = Config::from_env();
    for scenario in fig7(&cfg) {
        print_scenario(&scenario);
    }
}

pub(crate) fn print_scenario(s: &mbp_bench::experiments::RevenueScenario) {
    let grid_labels: Vec<String> = s.grid.iter().map(|&x| format!("p({x:.0})")).collect();
    let mut header: Vec<&str> = vec![
        "method",
        "revenue",
        "affordability",
        "buyer_surplus",
        "efficiency",
    ];
    let refs: Vec<&str> = grid_labels.iter().map(String::as_str).collect();
    header.extend(refs);
    let mbp_rev = s.outcomes[0].revenue;
    print_table(
        &format!(
            "{} — buyers: {}",
            s.label,
            s.buyers
                .iter()
                .map(|b| format!("(a={:.0},v={:.1},b={:.3})", b.a, b.valuation, b.demand))
                .collect::<Vec<_>>()
                .join(" ")
        ),
        &header,
        &s.outcomes
            .iter()
            .map(|o| {
                let mut row = vec![
                    format!(
                        "{}{}",
                        o.method,
                        if o.method != "MBP" && o.revenue > 0.0 {
                            format!(" ({:.1}x)", mbp_rev / o.revenue)
                        } else {
                            String::new()
                        }
                    ),
                    fmt(o.revenue),
                    fmt(o.affordability),
                    fmt(o.buyer_surplus),
                    fmt(o.efficiency),
                ];
                row.extend(o.prices.iter().map(|&p| fmt(p)));
                row
            })
            .collect::<Vec<_>>(),
    );
}
