//! Runs the entire experiment suite — every paper table/figure plus the
//! extension experiments — and prints one combined report.
//!
//! `cargo run -p mbp-bench --release --bin all` regenerates everything
//! EXPERIMENTS.md records. The run is observability-instrumented: every
//! phase executes with the `mbp-obs` registry enabled, its wall time and
//! metrics snapshot are collected, and a combined JSON artifact is written
//! next to the report (`experiments/metrics.json`, overridable with
//! `MBP_METRICS_OUT`).

use mbp_bench::experiments::{
    adaptive_experiment, fairness_sweep, fig10, fig5, fig6, fig7, fig8, fig9,
    simulation_experiment, table3,
};
use mbp_bench::report::{fmt, fmt_secs, print_metrics, print_table};
use mbp_bench::Config;
use std::time::Instant;

/// One executed phase: its label, wall time, and the metrics it recorded.
struct PhaseRecord {
    name: &'static str,
    secs: f64,
    snapshot: mbp_obs::Snapshot,
}

/// Runs `f` with a clean metrics registry and captures its per-phase
/// snapshot (the registry is reset first, so each record holds only the
/// metrics that phase produced).
fn run_phase(records: &mut Vec<PhaseRecord>, name: &'static str, f: impl FnOnce()) {
    mbp_obs::reset();
    let t0 = Instant::now();
    f();
    records.push(PhaseRecord {
        name,
        secs: t0.elapsed().as_secs_f64(),
        snapshot: mbp_obs::snapshot(),
    });
}

/// Serializes the phase records as one JSON document.
fn phases_to_json(records: &[PhaseRecord]) -> String {
    let mut out = String::from("{\n  \"phases\": [\n");
    for (i, r) in records.iter().enumerate() {
        let metrics = mbp_obs::to_json(&r.snapshot)
            .lines()
            .collect::<Vec<_>>()
            .join("\n      ");
        out.push_str(&format!(
            "    {{\n      \"name\": \"{}\",\n      \"seconds\": {:.6},\n      \"metrics\": {}\n    }}{}\n",
            r.name,
            r.secs,
            metrics,
            if i + 1 == records.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let cfg = Config::from_env();
    mbp_obs::enable();
    println!(
        "# MBP full experiment suite (scale={}, reps={}, max_n={}, seed={})\n",
        cfg.scale, cfg.reps, cfg.max_n, cfg.seed
    );

    let mut phases: Vec<PhaseRecord> = Vec::new();

    run_phase(&mut phases, "table3", || {
        print_table(
            "Table 3: dataset statistics",
            &[
                "dataset", "task", "paper_n1", "paper_n2", "our_n1", "our_n2", "d",
            ],
            &table3(&cfg)
                .iter()
                .map(|r| {
                    vec![
                        r.name.clone(),
                        r.task.to_string(),
                        r.paper_n1.to_string(),
                        r.paper_n2.to_string(),
                        r.our_n1.to_string(),
                        r.our_n2.to_string(),
                        r.d.to_string(),
                    ]
                })
                .collect::<Vec<_>>(),
        );
    });

    run_phase(&mut phases, "fig5", || {
        print_table(
            "Figure 5: pricing approaches on the worked example",
            &[
                "approach",
                "p(1)",
                "p(2)",
                "p(3)",
                "p(4)",
                "revenue",
                "afford",
                "arbitrage?",
            ],
            &fig5()
                .iter()
                .map(|r| {
                    let mut row = vec![r.approach.to_string()];
                    row.extend(r.prices.iter().map(|&p| fmt(p)));
                    row.push(fmt(r.revenue));
                    row.push(fmt(r.affordability));
                    row.push(if r.has_arbitrage { "YES" } else { "no" }.into());
                    row
                })
                .collect::<Vec<_>>(),
        );
    });

    run_phase(&mut phases, "fig6", || {
        print_table(
            "Figure 6: expected test error vs 1/NCP",
            &["dataset", "error", "1/NCP", "expected_error"],
            &fig6(&cfg)
                .iter()
                .map(|p| {
                    vec![
                        p.dataset.clone(),
                        p.error_kind.to_string(),
                        fmt(p.inv_ncp),
                        fmt(p.expected_error),
                    ]
                })
                .collect::<Vec<_>>(),
        );
    });

    run_phase(&mut phases, "fig7-8", || {
        for scenario in fig7(&cfg).into_iter().chain(fig8(&cfg)) {
            print_table(
                &scenario.label,
                &["method", "revenue", "affordability"],
                &scenario
                    .outcomes
                    .iter()
                    .map(|o| vec![o.method.to_string(), fmt(o.revenue), fmt(o.affordability)])
                    .collect::<Vec<_>>(),
            );
        }
    });

    run_phase(&mut phases, "fig9-10", || {
        for scenario in fig9(&cfg).into_iter().chain(fig10(&cfg)) {
            print_table(
                &scenario.label,
                &["n", "method", "runtime", "revenue", "affordability"],
                &scenario
                    .rows
                    .iter()
                    .map(|r| {
                        vec![
                            r.n.to_string(),
                            r.method.to_string(),
                            fmt_secs(r.runtime_s),
                            fmt(r.revenue),
                            fmt(r.affordability),
                        ]
                    })
                    .collect::<Vec<_>>(),
            );
        }
    });

    run_phase(&mut phases, "fairness", || {
        print_table(
            "Extension: revenue vs affordability (fairness weight sweep)",
            &["lambda", "revenue", "affordability"],
            &fairness_sweep(&cfg)
                .iter()
                .map(|r| vec![fmt(r.lambda), fmt(r.revenue), fmt(r.affordability)])
                .collect::<Vec<_>>(),
        );
    });

    run_phase(&mut phases, "simulation", || {
        print_table(
            "Extension: simulated selling season",
            &[
                "pricing",
                "predicted_rev",
                "realized_rev",
                "predicted_aff",
                "realized_aff",
                "served",
            ],
            &simulation_experiment(&cfg)
                .iter()
                .map(|r| {
                    vec![
                        r.label.clone(),
                        fmt(r.predicted_revenue),
                        fmt(r.realized_revenue),
                        fmt(r.predicted_affordability),
                        fmt(r.realized_affordability),
                        r.served.to_string(),
                    ]
                })
                .collect::<Vec<_>>(),
        );
    });

    run_phase(&mut phases, "adaptive", || {
        let (rows, oracle) = adaptive_experiment(&cfg);
        print_table(
            &format!(
                "Extension: adaptive pricing (oracle revenue/buyer = {})",
                fmt(oracle)
            ),
            &["epoch", "revenue/buyer", "acceptance", "estimate_rmse"],
            &rows
                .iter()
                .map(|r| {
                    vec![
                        r.epoch.to_string(),
                        fmt(r.revenue_per_buyer),
                        fmt(r.acceptance_rate),
                        fmt(r.estimate_rmse),
                    ]
                })
                .collect::<Vec<_>>(),
        );
    });

    // Speedup baseline for the parallel hot paths: times each parallelized
    // phase at 1/2/4 threads and writes BENCH_parallel.json (overridable
    // with MBP_BENCH_OUT; repetitions with MBP_PAR_REPS).
    run_phase(&mut phases, "parallel-baseline", || {
        let reps = std::env::var("MBP_PAR_REPS")
            .ok()
            .and_then(|s| s.parse::<usize>().ok())
            .filter(|&r| r >= 1)
            .unwrap_or(3);
        let baseline = mbp_bench::parbench::run(reps);
        print_table(
            &format!(
                "Parallel baseline (hardware threads: {}, pool default: {}, min of {} reps)",
                baseline.hardware_threads, baseline.default_threads, baseline.reps
            ),
            &[
                "phase",
                "t1",
                "t2",
                "t4",
                "speedup_2",
                "speedup_4",
                "deterministic",
            ],
            &baseline
                .phases
                .iter()
                .map(|p| {
                    vec![
                        p.name.to_string(),
                        fmt_secs(p.seconds[0]),
                        fmt_secs(p.seconds[1]),
                        fmt_secs(p.seconds[2]),
                        fmt(p.speedup_at(2)),
                        fmt(p.speedup_at(4)),
                        p.deterministic.to_string(),
                    ]
                })
                .collect::<Vec<_>>(),
        );
        let bench_out =
            std::env::var("MBP_BENCH_OUT").unwrap_or_else(|_| "BENCH_parallel.json".to_string());
        match std::fs::write(&bench_out, baseline.to_json()) {
            Ok(()) => println!("parallel baseline written to {bench_out}"),
            Err(e) => eprintln!("could not write parallel baseline {bench_out}: {e}"),
        }
    });

    // Quote-serving baseline: compiled-table vs scan pricing, batched and
    // zero-allocation purchase paths, and the ridge factorization cache.
    // Writes BENCH_serving.json (overridable with MBP_SERVING_OUT; quote
    // count with MBP_SERVE_QUOTES).
    run_phase(&mut phases, "serving-baseline", || {
        let quotes = std::env::var("MBP_SERVE_QUOTES")
            .ok()
            .and_then(|s| s.parse::<usize>().ok())
            .filter(|&q| q >= 64)
            .unwrap_or(20_000);
        let baseline = mbp_bench::servebench::run(quotes);
        print_table(
            &format!(
                "Serving baseline ({} quotes, {}-knot grid, table speedup {:.2}x, factor-cache speedup {:.2}x)",
                quotes,
                baseline.grid_points,
                baseline.table_speedup_vs_scan,
                baseline.factor_cache_speedup
            ),
            &[
                "workload",
                "quotes",
                "quotes/sec",
                "p50_us",
                "p99_us",
                "deterministic",
            ],
            &baseline
                .workloads
                .iter()
                .map(|w| {
                    vec![
                        w.name.to_string(),
                        w.quotes.to_string(),
                        fmt(w.quotes_per_sec),
                        fmt(w.p50_micros),
                        fmt(w.p99_micros),
                        w.deterministic.to_string(),
                    ]
                })
                .collect::<Vec<_>>(),
        );
        let out =
            std::env::var("MBP_SERVING_OUT").unwrap_or_else(|_| "BENCH_serving.json".to_string());
        match std::fs::write(&out, baseline.to_json()) {
            Ok(()) => println!("serving baseline written to {out}"),
            Err(e) => eprintln!("could not write serving baseline {out}: {e}"),
        }
    });

    // Lookup-kernel baseline: partition_point vs the compiled SegmentIndex
    // layouts (grid / Eytzinger) at 16/512/8192 knots. Writes
    // BENCH_kernel.json (overridable with MBP_KERNEL_OUT; lookup count with
    // MBP_KERNEL_LOOKUPS).
    run_phase(&mut phases, "kernel-baseline", || {
        let lookups = std::env::var("MBP_KERNEL_LOOKUPS")
            .ok()
            .and_then(|s| s.parse::<usize>().ok())
            .filter(|&n| n >= 1024)
            .unwrap_or(2_000_000);
        let baseline = mbp_bench::kernelbench::run(lookups);
        print_table(
            &format!(
                "Lookup kernel baseline ({} lookups/workload, consistent: {}, deterministic: {})",
                lookups, baseline.consistent, baseline.deterministic
            ),
            &["workload", "knots", "layout", "lookups/sec"],
            &baseline
                .workloads
                .iter()
                .map(|w| {
                    vec![
                        w.name.clone(),
                        w.knots.to_string(),
                        w.layout.to_string(),
                        fmt(w.lookups_per_sec),
                    ]
                })
                .collect::<Vec<_>>(),
        );
        print_table(
            "Lookup kernel speedups vs partition_point",
            &["ratio", "value"],
            &baseline
                .speedups
                .iter()
                .map(|s| vec![s.name.clone(), fmt(s.value)])
                .collect::<Vec<_>>(),
        );
        let out =
            std::env::var("MBP_KERNEL_OUT").unwrap_or_else(|_| "BENCH_kernel.json".to_string());
        match std::fs::write(&out, baseline.to_json()) {
            Ok(()) => println!("kernel baseline written to {out}"),
            Err(e) => eprintln!("could not write kernel baseline {out}: {e}"),
        }
    });

    // Durability baseline: WAL append throughput, the fsync-interval
    // price curve, and recovery speed (with the recovery-vs-ingest
    // speedup the ratchet hard-floors at 1.0). Writes BENCH_wal.json
    // (overridable with MBP_WAL_OUT; record count with MBP_WAL_RECORDS).
    run_phase(&mut phases, "wal-baseline", || {
        let records = std::env::var("MBP_WAL_RECORDS")
            .ok()
            .and_then(|s| s.parse::<usize>().ok())
            .filter(|&n| n >= 1_000)
            .unwrap_or(200_000);
        let baseline = mbp_bench::walbench::run(records);
        print_table(
            &format!(
                "WAL durability baseline ({} records/workload, deterministic: {})",
                records, baseline.recovery.deterministic
            ),
            &["workload", "fsync_interval", "records/sec", "fsyncs"],
            &baseline
                .workloads
                .iter()
                .map(|w| {
                    vec![
                        w.name.clone(),
                        w.fsync_interval.to_string(),
                        fmt(w.records_per_sec),
                        w.syncs.to_string(),
                    ]
                })
                .collect::<Vec<_>>(),
        );
        print_table(
            "WAL recovery",
            &["records", "seconds", "records/sec", "replay speedup"],
            &[vec![
                baseline.recovery.records.to_string(),
                fmt_secs(baseline.recovery.seconds),
                fmt(baseline.recovery.records_per_sec),
                fmt(baseline.recovery_replay_speedup),
            ]],
        );
        let out = std::env::var("MBP_WAL_OUT").unwrap_or_else(|_| "BENCH_wal.json".to_string());
        match std::fs::write(&out, baseline.to_json()) {
            Ok(()) => println!("wal baseline written to {out}"),
            Err(e) => eprintln!("could not write wal baseline {out}: {e}"),
        }
    });

    // Verification baseline: arbitrage attack, differential oracle, and
    // schedule-exploration throughput from mbp-testkit. Writes
    // BENCH_testkit.json (overridable with MBP_TESTKIT_OUT; trial count
    // with MBP_ATTACK_TRIALS).
    run_phase(&mut phases, "testkit-baseline", || {
        let trials = std::env::var("MBP_ATTACK_TRIALS")
            .ok()
            .and_then(|s| s.parse::<u64>().ok())
            .filter(|&t| t >= 1_000)
            .unwrap_or(20_000);
        let baseline = mbp_bench::attackbench::run(trials);
        print_table(
            &format!(
                "Verification baseline ({} attack trials, clean: {}, deterministic: {})",
                baseline.trials, baseline.clean, baseline.deterministic
            ),
            &["phase", "units", "units/sec", "findings", "deterministic"],
            &baseline
                .phases
                .iter()
                .map(|p| {
                    vec![
                        p.name.to_string(),
                        p.units.to_string(),
                        fmt(p.units_per_sec),
                        p.findings.to_string(),
                        p.deterministic.to_string(),
                    ]
                })
                .collect::<Vec<_>>(),
        );
        let out =
            std::env::var("MBP_TESTKIT_OUT").unwrap_or_else(|_| "BENCH_testkit.json".to_string());
        match std::fs::write(&out, baseline.to_json()) {
            Ok(()) => println!("verification baseline written to {out}"),
            Err(e) => eprintln!("could not write verification baseline {out}: {e}"),
        }
    });

    // Tracing-overhead baseline: what mbp-obs causal tracing costs on the
    // serve path, against its ≤2% (disabled) / ≤10% (enabled) budgets.
    // Writes BENCH_trace.json (overridable with MBP_TRACE_OUT; quote count
    // with MBP_TRACE_QUOTES).
    run_phase(&mut phases, "trace-overhead", || {
        let quotes = std::env::var("MBP_TRACE_QUOTES")
            .ok()
            .and_then(|s| s.parse::<usize>().ok())
            .filter(|&q| q >= 256)
            .unwrap_or(20_000);
        let baseline = mbp_bench::tracebench::run(quotes);
        print_table(
            &format!(
                "Tracing overhead ({} quotes, dim {}, disabled {:+.2}%, enabled {:+.2}%, {} spans, {} exemplars)",
                baseline.quotes,
                baseline.model_dim,
                baseline.overhead_disabled * 100.0,
                baseline.overhead_enabled * 100.0,
                baseline.spans_recorded,
                baseline.exemplars
            ),
            &["workload", "quotes", "quotes/sec", "deterministic"],
            &baseline
                .workloads
                .iter()
                .map(|w| {
                    vec![
                        w.name.to_string(),
                        w.quotes.to_string(),
                        fmt(w.quotes_per_sec),
                        w.deterministic.to_string(),
                    ]
                })
                .collect::<Vec<_>>(),
        );
        let out = std::env::var("MBP_TRACE_OUT").unwrap_or_else(|_| "BENCH_trace.json".to_string());
        match std::fs::write(&out, baseline.to_json()) {
            Ok(()) => println!("tracing baseline written to {out}"),
            Err(e) => eprintln!("could not write tracing baseline {out}: {e}"),
        }
    });

    // Static-analysis timing: the per-file rule pass and the full
    // interprocedural pass (workspace call graph + reach-panic /
    // taint-det / lock-graph) over this workspace, so an analyzer
    // slowdown shows up in the same ratchet as every other phase. Both
    // passes must come back clean against the checked-in baseline.
    run_phase(&mut phases, "lintbench", || {
        let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let baseline = root.join("lint.toml");
        let rows: Vec<(&str, Result<mbp_lint::Report, std::io::Error>, f64)> =
            [("per-file rules", false), ("interprocedural", true)]
                .into_iter()
                .map(|(name, interproc)| {
                    let t0 = std::time::Instant::now();
                    let report = if interproc {
                        mbp_lint::run_interprocedural(&root, Some(&baseline), None)
                    } else {
                        mbp_lint::run(&root, Some(&baseline))
                    };
                    (name, report, t0.elapsed().as_secs_f64())
                })
                .collect();
        print_table(
            "Static analysis (mbp-lint over this workspace)",
            &["pass", "files", "findings", "clean", "runtime"],
            &rows
                .iter()
                .map(|(name, report, secs)| match report {
                    Ok(r) => vec![
                        name.to_string(),
                        r.files_scanned.to_string(),
                        r.findings.len().to_string(),
                        r.is_clean().to_string(),
                        fmt_secs(*secs),
                    ],
                    Err(e) => vec![
                        name.to_string(),
                        "-".to_string(),
                        format!("error: {e}"),
                        "false".to_string(),
                        fmt_secs(*secs),
                    ],
                })
                .collect::<Vec<_>>(),
        );
    });

    // Per-phase wall times and metric volume.
    print_table(
        "Observability: phase timings",
        &["phase", "runtime", "counters", "gauges", "histograms"],
        &phases
            .iter()
            .map(|r| {
                vec![
                    r.name.to_string(),
                    fmt_secs(r.secs),
                    r.snapshot.counters.len().to_string(),
                    r.snapshot.gauges.len().to_string(),
                    r.snapshot.histograms.len().to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    );
    for r in &phases {
        if !r.snapshot.is_empty() {
            print_metrics(&format!("Metrics: {}", r.name), &r.snapshot);
        }
    }

    // Machine-readable artifact next to the report.
    let out_path =
        std::env::var("MBP_METRICS_OUT").unwrap_or_else(|_| "experiments/metrics.json".to_string());
    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        if !dir.as_os_str().is_empty() {
            let _ = std::fs::create_dir_all(dir);
        }
    }
    match std::fs::write(&out_path, phases_to_json(&phases)) {
        Ok(()) => println!("metrics artifact written to {out_path}"),
        Err(e) => eprintln!("could not write metrics artifact {out_path}: {e}"),
    }
}
