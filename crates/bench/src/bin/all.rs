//! Runs the entire experiment suite — every paper table/figure plus the
//! extension experiments — and prints one combined report.
//!
//! `cargo run -p mbp-bench --release --bin all` regenerates everything
//! EXPERIMENTS.md records.

use mbp_bench::experiments::{
    adaptive_experiment, fairness_sweep, fig10, fig5, fig6, fig7, fig8, fig9,
    simulation_experiment, table3,
};
use mbp_bench::report::{fmt, fmt_secs, print_table};
use mbp_bench::Config;

fn main() {
    let cfg = Config::from_env();
    println!(
        "# MBP full experiment suite (scale={}, reps={}, max_n={}, seed={})\n",
        cfg.scale, cfg.reps, cfg.max_n, cfg.seed
    );

    // Table 3.
    print_table(
        "Table 3: dataset statistics",
        &[
            "dataset", "task", "paper_n1", "paper_n2", "our_n1", "our_n2", "d",
        ],
        &table3(&cfg)
            .iter()
            .map(|r| {
                vec![
                    r.name.clone(),
                    r.task.to_string(),
                    r.paper_n1.to_string(),
                    r.paper_n2.to_string(),
                    r.our_n1.to_string(),
                    r.our_n2.to_string(),
                    r.d.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    );

    // Figure 5.
    print_table(
        "Figure 5: pricing approaches on the worked example",
        &[
            "approach",
            "p(1)",
            "p(2)",
            "p(3)",
            "p(4)",
            "revenue",
            "afford",
            "arbitrage?",
        ],
        &fig5()
            .iter()
            .map(|r| {
                let mut row = vec![r.approach.to_string()];
                row.extend(r.prices.iter().map(|&p| fmt(p)));
                row.push(fmt(r.revenue));
                row.push(fmt(r.affordability));
                row.push(if r.has_arbitrage { "YES" } else { "no" }.into());
                row
            })
            .collect::<Vec<_>>(),
    );

    // Figure 6.
    print_table(
        "Figure 6: expected test error vs 1/NCP",
        &["dataset", "error", "1/NCP", "expected_error"],
        &fig6(&cfg)
            .iter()
            .map(|p| {
                vec![
                    p.dataset.clone(),
                    p.error_kind.to_string(),
                    fmt(p.inv_ncp),
                    fmt(p.expected_error),
                ]
            })
            .collect::<Vec<_>>(),
    );

    // Figures 7–8.
    for scenario in fig7(&cfg).into_iter().chain(fig8(&cfg)) {
        print_table(
            &scenario.label,
            &["method", "revenue", "affordability"],
            &scenario
                .outcomes
                .iter()
                .map(|o| vec![o.method.to_string(), fmt(o.revenue), fmt(o.affordability)])
                .collect::<Vec<_>>(),
        );
    }

    // Figures 9–10.
    for scenario in fig9(&cfg).into_iter().chain(fig10(&cfg)) {
        print_table(
            &scenario.label,
            &["n", "method", "runtime", "revenue", "affordability"],
            &scenario
                .rows
                .iter()
                .map(|r| {
                    vec![
                        r.n.to_string(),
                        r.method.to_string(),
                        fmt_secs(r.runtime_s),
                        fmt(r.revenue),
                        fmt(r.affordability),
                    ]
                })
                .collect::<Vec<_>>(),
        );
    }

    // Extensions.
    print_table(
        "Extension: revenue vs affordability (fairness weight sweep)",
        &["lambda", "revenue", "affordability"],
        &fairness_sweep(&cfg)
            .iter()
            .map(|r| vec![fmt(r.lambda), fmt(r.revenue), fmt(r.affordability)])
            .collect::<Vec<_>>(),
    );
    print_table(
        "Extension: simulated selling season",
        &[
            "pricing",
            "predicted_rev",
            "realized_rev",
            "predicted_aff",
            "realized_aff",
            "served",
        ],
        &simulation_experiment(&cfg)
            .iter()
            .map(|r| {
                vec![
                    r.label.clone(),
                    fmt(r.predicted_revenue),
                    fmt(r.realized_revenue),
                    fmt(r.predicted_affordability),
                    fmt(r.realized_affordability),
                    r.served.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    );
    let (rows, oracle) = adaptive_experiment(&cfg);
    print_table(
        &format!(
            "Extension: adaptive pricing (oracle revenue/buyer = {})",
            fmt(oracle)
        ),
        &["epoch", "revenue/buyer", "acceptance", "estimate_rmse"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.epoch.to_string(),
                    fmt(r.revenue_per_buyer),
                    fmt(r.acceptance_rate),
                    fmt(r.estimate_rmse),
                ]
            })
            .collect::<Vec<_>>(),
    );
}
