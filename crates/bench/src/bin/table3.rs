//! Regenerates Table 3: dataset statistics.

use mbp_bench::experiments::table3;
use mbp_bench::report::print_table;
use mbp_bench::Config;

fn main() {
    let cfg = Config::from_env();
    let rows = table3(&cfg);
    print_table(
        &format!("Table 3: dataset statistics (scale = {})", cfg.scale),
        &[
            "dataset", "task", "paper_n1", "paper_n2", "our_n1", "our_n2", "d",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.name.clone(),
                    r.task.to_string(),
                    r.paper_n1.to_string(),
                    r.paper_n2.to_string(),
                    r.our_n1.to_string(),
                    r.our_n2.to_string(),
                    r.d.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    );
}
