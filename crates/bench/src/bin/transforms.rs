//! Ablation: analytic delta-method error transform vs the Monte-Carlo
//! empirical transform, across noise levels (logistic loss).

use mbp_bench::experiments::transform_ablation;
use mbp_bench::report::{fmt, print_table};
use mbp_bench::Config;

fn main() {
    let cfg = Config::from_env();
    let rows = transform_ablation(&cfg);
    print_table(
        "Error-transform accuracy: delta method vs empirical vs Monte-Carlo truth",
        &[
            "ncp/|h*|^2",
            "monte_carlo",
            "delta_method",
            "empirical",
            "delta_rel_err",
        ],
        &rows
            .iter()
            .map(|r| {
                let rel = (r.delta_method - r.monte_carlo).abs() / r.monte_carlo;
                vec![
                    fmt(r.relative_ncp),
                    fmt(r.monte_carlo),
                    fmt(r.delta_method),
                    fmt(r.empirical),
                    fmt(rel),
                ]
            })
            .collect::<Vec<_>>(),
    );
}
