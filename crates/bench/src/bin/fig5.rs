//! Regenerates Figure 5: the worked 4-point revenue-optimization example.

use mbp_bench::experiments::fig5;
use mbp_bench::report::{fmt, print_table};

fn main() {
    let rows = fig5();
    print_table(
        "Figure 5: pricing approaches on a = 1..4, v = (100, 150, 280, 350), b = 0.25",
        &[
            "approach",
            "p(1)",
            "p(2)",
            "p(3)",
            "p(4)",
            "revenue",
            "affordability",
            "arbitrage?",
        ],
        &rows
            .iter()
            .map(|r| {
                let mut row = vec![r.approach.to_string()];
                row.extend(r.prices.iter().map(|&p| fmt(p)));
                row.push(fmt(r.revenue));
                row.push(fmt(r.affordability));
                row.push(if r.has_arbitrage { "YES" } else { "no" }.to_string());
                row
            })
            .collect::<Vec<_>>(),
    );
}
