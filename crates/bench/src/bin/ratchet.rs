//! Bench ratchet entry point for CI: re-measures the serving, testkit,
//! and tracing baselines at smoke scale, diffs them against the committed
//! `BENCH_*.json` artifacts, and exits non-zero when any metric stopped
//! improving beyond its tolerance band.
//!
//! Knobs: `MBP_BASELINE_DIR` (where the committed artifacts live, default
//! `.`), `MBP_RATCHET_TOL` / `MBP_RATCHET_RATIO_TOL` (widen the
//! absolute-latency and ratio bands for slow or shared runners),
//! `MBP_SERVE_QUOTES` / `MBP_NET_REQUESTS` / `MBP_KERNEL_LOOKUPS` /
//! `MBP_WAL_RECORDS` / `MBP_ATTACK_TRIALS` /
//! `MBP_TRACE_QUOTES` (fresh-run sizes), and `MBP_TRACE_BUDGET_DISABLED` /
//! `MBP_TRACE_BUDGET_ENABLED` (fresh-run overhead budgets; the committed
//! artifact is always held to the strict 2% / 10% contract).

use mbp_bench::ratchet::{
    check_trace_overhead, compare_kernel, compare_serve_net, compare_serving, compare_testkit,
    compare_wal, RatchetConfig, RatchetReport,
};

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .unwrap_or(default)
}

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|v| v.is_finite() && *v >= 0.0)
        .unwrap_or(default)
}

fn read_baseline(dir: &str, file: &str) -> Result<String, String> {
    let path = std::path::Path::new(dir).join(file);
    std::fs::read_to_string(&path).map_err(|e| format!("cannot read {}: {e}", path.display()))
}

fn check(label: &str, result: Result<RatchetReport, String>, failed: &mut bool) {
    match result {
        Ok(report) => {
            println!("[{label}] {}", report.render().trim_end());
            if !report.pass() {
                *failed = true;
            }
        }
        Err(e) => {
            println!("[{label}] ERROR: {e}");
            *failed = true;
        }
    }
}

fn main() {
    let dir = std::env::var("MBP_BASELINE_DIR").unwrap_or_else(|_| ".".to_string());
    let cfg = RatchetConfig::from_env();
    let mut failed = false;

    mbp_obs::enable();

    // 1. The committed tracing artifact must meet the strict budgets: the
    // serve path costs ≤2% with tracing compiled in but disabled, ≤10%
    // with tracing on.
    match read_baseline(&dir, "BENCH_trace.json") {
        Ok(committed) => check(
            "trace-budgets(committed)",
            check_trace_overhead(&committed, 0.02, 0.10),
            &mut failed,
        ),
        Err(e) => {
            println!("[trace-budgets(committed)] ERROR: {e}");
            failed = true;
        }
    }

    // 2. Fresh smoke measurements against the committed baselines.
    match read_baseline(&dir, "BENCH_serving.json") {
        Ok(committed) => {
            let quotes = env_usize("MBP_SERVE_QUOTES", 4_000);
            println!("measuring serving baseline ({quotes} quotes)...");
            let fresh = mbp_bench::servebench::run(quotes).to_json();
            check(
                "serving",
                compare_serving(&committed, &fresh, &cfg),
                &mut failed,
            );
        }
        Err(e) => {
            println!("[serving] ERROR: {e}");
            failed = true;
        }
    }

    match read_baseline(&dir, "BENCH_serve_net.json") {
        Ok(committed) => {
            let per_conn = env_usize("MBP_NET_REQUESTS", 512);
            println!("measuring network serving baseline ({per_conn} requests/conn)...");
            let fresh = mbp_bench::netbench::run(per_conn).to_json();
            check(
                "serve-net",
                compare_serve_net(&committed, &fresh, &cfg),
                &mut failed,
            );
        }
        Err(e) => {
            println!("[serve-net] ERROR: {e}");
            failed = true;
        }
    }

    match read_baseline(&dir, "BENCH_kernel.json") {
        Ok(committed) => {
            let lookups = env_usize("MBP_KERNEL_LOOKUPS", 200_000);
            println!("measuring lookup-kernel baseline ({lookups} lookups/workload)...");
            let fresh = mbp_bench::kernelbench::run(lookups).to_json();
            check(
                "kernel",
                compare_kernel(&committed, &fresh, &cfg),
                &mut failed,
            );
        }
        Err(e) => {
            println!("[kernel] ERROR: {e}");
            failed = true;
        }
    }

    match read_baseline(&dir, "BENCH_wal.json") {
        Ok(committed) => {
            let records = env_usize("MBP_WAL_RECORDS", 20_000);
            println!("measuring durability baseline ({records} records/workload)...");
            let fresh = mbp_bench::walbench::run(records).to_json();
            check("wal", compare_wal(&committed, &fresh, &cfg), &mut failed);
        }
        Err(e) => {
            println!("[wal] ERROR: {e}");
            failed = true;
        }
    }

    match read_baseline(&dir, "BENCH_testkit.json") {
        Ok(committed) => {
            let trials = env_usize("MBP_ATTACK_TRIALS", 2_000) as u64;
            println!("measuring testkit baseline ({trials} trials)...");
            let fresh = mbp_bench::attackbench::run(trials).to_json();
            check(
                "testkit",
                compare_testkit(&committed, &fresh, &cfg),
                &mut failed,
            );
        }
        Err(e) => {
            println!("[testkit] ERROR: {e}");
            failed = true;
        }
    }

    // 3. Fresh tracing overhead, with runner-adjustable budgets. Shared or
    // single-core machines time the floor-vs-disabled delta very noisily,
    // so the fresh re-measurement is a gross-regression guard (catching
    // e.g. an accidental syscall or allocation on the disabled path); the
    // committed artifact already carries the strict 2%/10% verdict.
    {
        let quotes = env_usize("MBP_TRACE_QUOTES", 12_000);
        let disabled_budget = env_f64("MBP_TRACE_BUDGET_DISABLED", 0.25);
        let enabled_budget = env_f64("MBP_TRACE_BUDGET_ENABLED", 0.50);
        println!("measuring tracing overhead ({quotes} quotes)...");
        let fresh = mbp_bench::tracebench::run(quotes).to_json();
        check(
            "trace-overhead(fresh)",
            check_trace_overhead(&fresh, disabled_budget, enabled_budget),
            &mut failed,
        );
    }

    if failed {
        println!("ratchet: FAIL");
        std::process::exit(1);
    }
    println!("ratchet: pass");
}
