//! Regenerates Figure 9: runtime/revenue/affordability vs number of price
//! points (MBP vs MILP vs baselines), varying the valuation curve.

use mbp_bench::experiments::fig9;
use mbp_bench::report::{fmt, fmt_secs, print_table};
use mbp_bench::Config;

fn main() {
    let cfg = Config::from_env();
    for scenario in fig9(&cfg) {
        print_table(
            &scenario.label,
            &["n", "method", "runtime", "revenue", "affordability"],
            &scenario
                .rows
                .iter()
                .map(|r| {
                    vec![
                        r.n.to_string(),
                        r.method.to_string(),
                        fmt_secs(r.runtime_s),
                        fmt(r.revenue),
                        fmt(r.affordability),
                    ]
                })
                .collect::<Vec<_>>(),
        );
    }
}
