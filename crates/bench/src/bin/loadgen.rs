//! Network load generator for the `mbp-serve` daemon.
//!
//! Two modes:
//!
//! * **Sweep** (no arguments): boots an in-process daemon and runs the
//!   full concurrent-connections sweep (`netbench::run`), prints the
//!   saturation table, and writes `BENCH_serve_net.json` (overridable
//!   with `MBP_NET_OUT`; per-connection request count with
//!   `MBP_NET_REQUESTS`, default 2000).
//! * **Probe** (`loadgen --probe HOST:PORT [--shutdown]`): connects to an
//!   already-running daemon (e.g. `mbp-market serve` under CI), performs
//!   a `Hello` handshake, a ping, a quote, and a handful of buys, prints
//!   what came back, and — with `--shutdown` — asks the daemon to drain.
//!   Exits non-zero if any step fails, so CI can smoke-test the real
//!   binary end to end.

use mbp_bench::netbench;
use mbp_bench::report::{fmt, print_table};
use mbp_core::market::PurchaseRequest;
use mbp_ml::ModelKind;
use mbp_serve::wire::{Request, Response};
use mbp_serve::Client;

fn probe(addr: &str, shutdown: bool) -> Result<(), String> {
    let mut client = Client::connect(
        addr.parse::<std::net::SocketAddr>()
            .map_err(|e| format!("bad address {addr}: {e}"))?,
    )
    .map_err(|e| format!("connect {addr}: {e}"))?;

    let hello = client.hello(0xBEEF).map_err(|e| format!("hello: {e}"))?;
    if hello != Response::HelloOk {
        return Err(format!("hello rejected: {hello:?}"));
    }
    println!("hello: ok");

    let (_, pong) = client
        .call(&Request::Ping)
        .map_err(|e| format!("ping: {e}"))?;
    if pong != Response::Pong {
        return Err(format!("ping answered {pong:?}"));
    }
    println!("ping: pong");

    let (_, quote) = client
        .call(&Request::Quote {
            kind: ModelKind::LinearRegression,
            request: PurchaseRequest::AtNcp(1.0),
        })
        .map_err(|e| format!("quote: {e}"))?;
    match quote {
        Response::QuoteOk {
            ncp,
            price,
            expected_error,
        } => println!("quote: ncp={ncp:.4} price={price:.4} expected_error={expected_error:.4}"),
        other => return Err(format!("quote answered {other:?}")),
    }

    for i in 0..8u32 {
        let (_, bought) = client
            .call(&Request::Buy {
                kind: ModelKind::LinearRegression,
                request: PurchaseRequest::AtNcp(0.5 + f64::from(i) * 0.2),
            })
            .map_err(|e| format!("buy {i}: {e}"))?;
        match bought {
            Response::BuyOk {
                ncp,
                price,
                weights,
                ..
            } => println!(
                "buy[{i}]: ncp={ncp:.4} price={price:.4} dim={}",
                weights.len()
            ),
            other => return Err(format!("buy {i} answered {other:?}")),
        }
    }
    println!("response digest: {:#018x}", client.digest());

    if shutdown {
        let ack = client
            .shutdown_server()
            .map_err(|e| format!("shutdown: {e}"))?;
        if ack != Response::ShutdownAck {
            return Err(format!("shutdown answered {ack:?}"));
        }
        println!("shutdown: acknowledged, daemon draining");
    }
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(pos) = args.iter().position(|a| a == "--probe") {
        let Some(addr) = args.get(pos + 1) else {
            eprintln!("usage: loadgen --probe HOST:PORT [--shutdown]");
            std::process::exit(2);
        };
        let shutdown = args.iter().any(|a| a == "--shutdown");
        if let Err(e) = probe(addr, shutdown) {
            eprintln!("probe failed: {e}");
            std::process::exit(1);
        }
        return;
    }

    mbp_obs::enable();
    let per_conn = std::env::var("MBP_NET_REQUESTS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&n| n >= 64)
        .unwrap_or(2_000);
    println!(
        "sweeping {:?} connections, {per_conn} requests each (two runs per point)...",
        netbench::SWEEP_CONNS
    );
    let baseline = netbench::run(per_conn);
    print_table(
        &format!(
            "Network serving sweep (saturation {:.0} rps @ {} conns, batch admission {:.2}x vs per-request, deterministic: {})",
            baseline.saturation_rps,
            baseline.saturation_conns,
            baseline.batch_admission_speedup,
            baseline.deterministic
        ),
        &["connections", "requests", "rps", "p50_us", "p99_us", "deterministic"],
        &baseline
            .sweep
            .iter()
            .map(|p| {
                vec![
                    p.connections.to_string(),
                    p.requests.to_string(),
                    fmt(p.rps),
                    fmt(p.p50_micros),
                    fmt(p.p99_micros),
                    p.deterministic.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    );
    let out = std::env::var("MBP_NET_OUT").unwrap_or_else(|_| "BENCH_serve_net.json".to_string());
    match std::fs::write(&out, baseline.to_json()) {
        Ok(()) => println!("network baseline written to {out}"),
        Err(e) => {
            eprintln!("could not write network baseline {out}: {e}");
            std::process::exit(1);
        }
    }
    if !baseline.deterministic || !baseline.per_request_matches_batched {
        eprintln!("loadgen: determinism check failed");
        std::process::exit(1);
    }
}
