//! Regenerates Figure 6: error-transformation curves for all six datasets.

use mbp_bench::experiments::fig6;
use mbp_bench::report::{fmt, print_table};
use mbp_bench::Config;

fn main() {
    let cfg = Config::from_env();
    let points = fig6(&cfg);
    print_table(
        &format!(
            "Figure 6: expected test error vs 1/NCP (reps = {}, scale = {})",
            cfg.reps, cfg.scale
        ),
        &["dataset", "error", "1/NCP", "expected_error"],
        &points
            .iter()
            .map(|p| {
                vec![
                    p.dataset.clone(),
                    p.error_kind.to_string(),
                    fmt(p.inv_ncp),
                    fmt(p.expected_error),
                ]
            })
            .collect::<Vec<_>>(),
    );
}
