//! Extension experiment: dynamic (adaptive) pricing with mis-estimated
//! market research. See `mbp_core::market::epochs`.

use mbp_bench::experiments::adaptive_experiment;
use mbp_bench::report::{fmt, print_table};
use mbp_bench::Config;

fn main() {
    let cfg = Config::from_env();
    let (rows, oracle) = adaptive_experiment(&cfg);
    print_table(
        &format!(
            "Adaptive pricing from a 3x-wrong value estimate (oracle revenue/buyer = {})",
            fmt(oracle)
        ),
        &["epoch", "revenue/buyer", "acceptance", "estimate_rmse"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.epoch.to_string(),
                    fmt(r.revenue_per_buyer),
                    fmt(r.acceptance_rate),
                    fmt(r.estimate_rmse),
                ]
            })
            .collect::<Vec<_>>(),
    );
}
