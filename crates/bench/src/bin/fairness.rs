//! Extension ablation: the revenue–fairness Pareto frontier traced by the
//! λ-weighted DP (the paper's Section 7 future-work direction).

use mbp_bench::experiments::fairness_sweep;
use mbp_bench::report::{fmt, print_table};
use mbp_bench::Config;

fn main() {
    let cfg = Config::from_env();
    let rows = fairness_sweep(&cfg);
    print_table(
        "Revenue vs affordability as the fairness weight grows",
        &["lambda", "revenue", "affordability"],
        &rows
            .iter()
            .map(|r| vec![fmt(r.lambda), fmt(r.revenue), fmt(r.affordability)])
            .collect::<Vec<_>>(),
    );
}
