//! Extension experiment: predicted vs realized revenue over a simulated
//! buyer stream, under MBP pricing and the best constant-price baseline.

use mbp_bench::experiments::simulation_experiment;
use mbp_bench::report::{fmt, print_table};
use mbp_bench::Config;

fn main() {
    let cfg = Config::from_env();
    let rows = simulation_experiment(&cfg);
    print_table(
        "Simulated selling season (3000 buyers)",
        &[
            "pricing",
            "predicted_rev/buyer",
            "realized_rev/buyer",
            "predicted_afford",
            "realized_afford",
            "served",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.label.clone(),
                    fmt(r.predicted_revenue),
                    fmt(r.realized_revenue),
                    fmt(r.predicted_affordability),
                    fmt(r.realized_affordability),
                    r.served.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    );
}
