//! Tracing-overhead baseline for the quote-serving path
//! (`BENCH_trace.json`).
//!
//! Measures what the mbp-obs causal-tracing layer costs on the
//! zero-allocation serve path (`buy_listed_into`) against a
//! high-dimensional listing, where per-quote work is dominated by noise
//! sampling — the regime the overhead budgets are written for:
//!
//! * **serve-floor** — the purchase logic rebuilt from the public pieces
//!   (`PricingTable`, `PhiMemo`, `GaussianMechanism::perturb_into`) with
//!   no observability calls at all: the uninstrumented reference.
//! * **serve-obs-disabled** — the real broker path with observability
//!   fully disabled; every obs call is an inert relaxed load.
//!   `overhead_disabled` compares this against the floor and must stay
//!   within the ≤2% budget.
//! * **serve-obs-metrics** — observability enabled, tracing off: the
//!   pre-tracing production configuration (counters, gauges, span
//!   histograms).
//! * **serve-traced** — tracing on: span contexts, per-phase latency
//!   attribution, and flight-recorder writes on every quote.
//!   `overhead_enabled` compares this against `serve-obs-metrics` — the
//!   marginal cost of turning tracing on — and must stay within ≤10%.
//!
//! Every workload runs its quote stream twice from the same seed;
//! `deterministic` asserts both runs produced identical digests (tracing
//! never touches the pricing or noise streams).

use mbp_core::error::{ErrorTransform, SquareLossTransform};
use mbp_core::market::{Broker, PurchaseRequest, Sale};
use mbp_core::{GaussianMechanism, NoiseMechanism, PhiMemo, PricingFunction, PricingTable};
use mbp_linalg::Vector;
use mbp_ml::ModelKind;
use mbp_randx::{seeded_rng, MbpRng};
use std::time::Instant;

/// Listing dimension for the committed baseline: large enough that noise
/// sampling dominates each quote, small enough to stay on the serial
/// (deterministic) sampling path.
const MODEL_DIM: usize = 1024;

/// One measured serve configuration.
#[derive(Debug, Clone)]
pub struct TraceWorkload {
    /// Workload label.
    pub name: &'static str,
    /// Quotes served in one run.
    pub quotes: usize,
    /// Wall seconds for the faster of the two runs.
    pub seconds: f64,
    /// Throughput derived from `seconds`.
    pub quotes_per_sec: f64,
    /// Scalar output digest of the first run.
    pub digest: f64,
    /// Whether the second run reproduced `digest` exactly.
    pub deterministic: bool,
}

/// The full tracing-overhead baseline.
#[derive(Debug, Clone)]
pub struct TraceBaseline {
    /// Machine + commit + timestamp provenance stamp.
    pub meta: crate::RunMeta,
    /// Listing dimension.
    pub model_dim: usize,
    /// Quotes per workload run.
    pub quotes: usize,
    /// The four serve configurations, floor first.
    pub workloads: Vec<TraceWorkload>,
    /// Relative cost of the instrumented path with observability off,
    /// against the uninstrumented floor (`serve-obs-disabled` vs
    /// `serve-floor`). Budget: ≤ 0.02.
    pub overhead_disabled: f64,
    /// Marginal relative cost of turning tracing on, against the
    /// metrics-enabled path (`serve-traced` vs `serve-obs-metrics`).
    /// Budget: ≤ 0.10.
    pub overhead_enabled: f64,
    /// Spans the flight recorder captured during the traced run.
    pub spans_recorded: u64,
    /// Tail-latency exemplars held after the traced run.
    pub exemplars: usize,
    /// Every workload reproduced its digest on the second run.
    pub deterministic: bool,
}

fn timed(name: &'static str, quotes: usize, mut work: impl FnMut(usize) -> f64) -> TraceWorkload {
    let t0 = Instant::now();
    let digest_a = work(0);
    let first = t0.elapsed().as_secs_f64();
    let t1 = Instant::now();
    let digest_b = work(1);
    let second = t1.elapsed().as_secs_f64();
    let seconds = first.min(second);
    TraceWorkload {
        name,
        quotes,
        seconds,
        quotes_per_sec: if seconds > 0.0 {
            quotes as f64 / seconds
        } else {
            0.0
        },
        digest: digest_a,
        deterministic: digest_a == digest_b,
    }
}

/// Same √-shaped arbitrage-free curve as the serving baseline.
fn dense_pricing() -> PricingFunction {
    let grid: Vec<f64> = (1..=512).map(|i| 1.0 + i as f64 * 0.25).collect();
    let prices: Vec<f64> = grid.iter().map(|x| 10.0 * x.sqrt()).collect();
    PricingFunction::from_points(grid, prices).expect("curve is arbitrage-free")
}

/// Same mixed request stream as the serving baseline (all satisfiable).
fn request_stream(n: usize) -> Vec<PurchaseRequest> {
    (0..n)
        .map(|i| match i % 3 {
            0 => PurchaseRequest::AtNcp(0.1 + (i % 37) as f64 * 0.05),
            1 => PurchaseRequest::ErrorBudget(0.5 + (i % 23) as f64 * 0.1),
            _ => PurchaseRequest::PriceBudget(12.0 + (i % 50) as f64),
        })
        .collect()
}

fn listed_broker(dim: usize, pricing: &PricingFunction) -> Broker {
    let mut rng = seeded_rng(0x7ace);
    // Rows ≪ dim is fine: the ridge term keeps the Gram SPD, and the
    // model's content is irrelevant here — only its dimension matters.
    let rows = (dim / 4).max(64);
    let data = mbp_data::synth::simulated1(rows, dim, 0.5, &mut rng).split(0.75, &mut rng);
    let mut broker = Broker::new(data);
    broker
        .support(ModelKind::LinearRegression, 0.1)
        .expect("training failed");
    broker
        .publish(
            ModelKind::LinearRegression,
            pricing.clone(),
            Box::new(SquareLossTransform),
        )
        .expect("listing accepted");
    broker
}

/// The uninstrumented serve loop: the same resolve → price → perturb →
/// settle work as `buy_listed_into`, rebuilt from public pieces with no
/// observability anywhere.
struct Floor {
    table: PricingTable,
    phi: PhiMemo,
    mech: GaussianMechanism,
    weights: Vector,
    out: Vector,
    ledger: Vec<(f64, f64, f64)>,
}

impl Floor {
    fn new(broker: &Broker, pricing: &PricingFunction, quotes: usize) -> Self {
        let table = pricing.compile();
        let phi = PhiMemo::new(&SquareLossTransform, &table);
        let weights = broker
            .optimal_model(ModelKind::LinearRegression)
            .expect("supported")
            .weights()
            .clone();
        let out = weights.clone();
        Floor {
            table,
            phi,
            mech: GaussianMechanism,
            weights,
            out,
            ledger: Vec::with_capacity(quotes),
        }
    }

    fn quote(&mut self, request: PurchaseRequest, rng: &mut MbpRng) -> f64 {
        let ncp = match request {
            PurchaseRequest::AtNcp(delta) => delta,
            PurchaseRequest::ErrorBudget(err) => self
                .phi
                .ncp_for_error(&SquareLossTransform, err)
                .expect("request is satisfiable"),
            PurchaseRequest::PriceBudget(budget) => {
                let x = self
                    .table
                    .max_precision_for_budget(budget)
                    .expect("request is satisfiable");
                1.0 / x
            }
        };
        let price = self.table.price_for_ncp(ncp);
        let expected_error = SquareLossTransform.expected_error(ncp);
        self.mech
            .perturb_into(&self.weights, ncp, rng, &mut self.out);
        self.ledger.push((ncp, price, expected_error));
        price + ncp
    }
}

/// Runs the tracing-overhead baseline at the committed listing dimension.
pub fn run(quotes: usize) -> TraceBaseline {
    run_with_dim(quotes, MODEL_DIM)
}

/// Runs the baseline at an explicit listing dimension (tests use a small
/// one; the overhead ratios are only meaningful at serving-scale dims).
pub fn run_with_dim(quotes: usize, dim: usize) -> TraceBaseline {
    let quotes = quotes.max(256);
    let pricing = dense_pricing();
    let requests = request_stream(quotes);

    // Save and restore the process-global obs configuration.
    let was_enabled = mbp_obs::is_enabled();
    let prev_threshold_nanos = mbp_obs::slow_threshold_nanos();
    mbp_obs::set_tracing(false);
    mbp_obs::disable();

    // serve-floor: uninstrumented reference.
    let mut floors: Vec<(Floor, MbpRng)> = {
        let broker = listed_broker(dim, &pricing);
        (0..2)
            .map(|_| (Floor::new(&broker, &pricing, quotes), seeded_rng(0x5e1)))
            .collect()
    };
    let floor = timed("serve-floor", quotes, |run| {
        let (state, rng) = &mut floors[run];
        state.ledger.clear();
        let mut digest = 0.0;
        for &request in &requests {
            digest += state.quote(request, rng);
        }
        digest
    });
    drop(floors);

    // The three broker configurations share one serve closure.
    let serve = |name: &'static str| -> TraceWorkload {
        let mut brokers: Vec<(Broker, MbpRng, Sale)> = (0..2)
            .map(|_| {
                let mut broker = listed_broker(dim, &pricing);
                broker.reserve_ledger(quotes);
                let sale = Sale {
                    model: broker
                        .optimal_model(ModelKind::LinearRegression)
                        .expect("supported")
                        .clone(),
                    price: 0.0,
                    ncp: 0.0,
                    expected_error: 0.0,
                };
                (broker, seeded_rng(0x5e1), sale)
            })
            .collect();
        timed(name, quotes, |run| {
            let (broker, rng, sale) = &mut brokers[run];
            let mut digest = 0.0;
            for (i, &request) in requests.iter().enumerate() {
                mbp_obs::set_request_seed(i as u64);
                broker
                    .buy_listed_into(ModelKind::LinearRegression, request, rng, sale)
                    .expect("request is satisfiable");
                digest += sale.price + sale.ncp;
            }
            digest
        })
    };

    // serve-obs-disabled: real path, observability off.
    let obs_disabled = serve("serve-obs-disabled");

    // serve-obs-metrics: counters + span histograms on, tracing off.
    mbp_obs::enable();
    let obs_metrics = serve("serve-obs-metrics");

    // serve-traced: full causal tracing + flight recorder.
    mbp_obs::set_slow_threshold_micros(u64::MAX / 1_000);
    mbp_obs::set_tracing(true);
    let spans_before = mbp_obs::recorded_spans();
    let traced = serve("serve-traced");
    let spans_recorded = mbp_obs::recorded_spans().saturating_sub(spans_before);
    let exemplars = mbp_obs::exemplars().len();

    mbp_obs::set_tracing(false);
    mbp_obs::set_slow_threshold_micros(prev_threshold_nanos / 1_000);
    mbp_obs::set_enabled(was_enabled);

    let rel = |num: &TraceWorkload, den: &TraceWorkload| {
        if den.seconds > 0.0 {
            num.seconds / den.seconds - 1.0
        } else {
            0.0
        }
    };
    let overhead_disabled = rel(&obs_disabled, &floor);
    let overhead_enabled = rel(&traced, &obs_metrics);
    let workloads = vec![floor, obs_disabled, obs_metrics, traced];
    let deterministic = workloads.iter().all(|w| w.deterministic);

    TraceBaseline {
        meta: crate::RunMeta::from_env(),
        model_dim: dim,
        quotes,
        workloads,
        overhead_disabled,
        overhead_enabled,
        spans_recorded,
        exemplars,
        deterministic,
    }
}

impl TraceBaseline {
    /// Serializes the baseline as a standalone JSON document
    /// (`BENCH_trace.json`).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&self.meta.json_fields());
        out.push_str(&format!("  \"model_dim\": {},\n", self.model_dim));
        out.push_str(&format!("  \"quotes\": {},\n", self.quotes));
        out.push_str(&format!(
            "  \"overhead_disabled\": {:.4},\n",
            self.overhead_disabled
        ));
        out.push_str(&format!(
            "  \"overhead_enabled\": {:.4},\n",
            self.overhead_enabled
        ));
        out.push_str(&format!("  \"spans_recorded\": {},\n", self.spans_recorded));
        out.push_str(&format!("  \"exemplars\": {},\n", self.exemplars));
        out.push_str(&format!("  \"deterministic\": {},\n", self.deterministic));
        out.push_str("  \"workloads\": [\n");
        for (i, w) in self.workloads.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"quotes\": {}, \"seconds\": {:.6}, \"quotes_per_sec\": {:.1}, \"digest\": {:.6}, \"deterministic\": {}}}{}\n",
                w.name,
                w.quotes,
                w.seconds,
                w.quotes_per_sec,
                w.digest,
                w.deterministic,
                if i + 1 == self.workloads.len() { "" } else { "," }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Mutex, MutexGuard, OnceLock};

    /// The runs flip process-global obs state; tests serialize on one lock.
    fn serial() -> MutexGuard<'static, ()> {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        LOCK.get_or_init(|| Mutex::new(()))
            .lock()
            .unwrap_or_else(|p| p.into_inner())
    }

    #[test]
    fn smoke_run_is_deterministic_and_traced() {
        let _g = serial();
        let b = run_with_dim(256, 32);
        assert_eq!(b.workloads.len(), 4);
        assert!(b.workloads.iter().all(|w| w.quotes_per_sec > 0.0));
        assert!(b.deterministic, "a workload failed to reproduce its digest");
        // Every traced quote contributes a root span plus phase children.
        assert!(
            b.spans_recorded >= b.quotes as u64,
            "traced run recorded {} spans for {} quotes",
            b.spans_recorded,
            b.quotes
        );
        // The broker workloads serve the same stream: identical digests.
        assert_eq!(b.workloads[1].digest, b.workloads[2].digest);
        assert_eq!(b.workloads[2].digest, b.workloads[3].digest);
    }

    #[test]
    fn json_artifact_has_required_fields() {
        let _g = serial();
        let b = run_with_dim(256, 32);
        let json = b.to_json();
        for key in [
            "\"hardware_threads\"",
            "\"commit\"",
            "\"generated_at\"",
            "\"model_dim\"",
            "\"overhead_disabled\"",
            "\"overhead_enabled\"",
            "\"spans_recorded\"",
            "\"serve-floor\"",
            "\"serve-obs-disabled\"",
            "\"serve-obs-metrics\"",
            "\"serve-traced\"",
        ] {
            assert!(json.contains(key), "missing {key}");
        }
        let parsed = crate::ratchet::parse_json(&json).expect("artifact parses");
        assert!(parsed.get("overhead_enabled").is_some());
    }
}
