//! Speedup baseline for the `mbp-par` parallel hot paths.
//!
//! Times each parallelized phase of the workspace — Gram/matmul kernels,
//! training-loss gradients, revenue/welfare population evaluation, Gaussian
//! noise sampling, and the sharded market simulation — at 1, 2, and 4
//! threads (via [`mbp_par::with_threads`], so one process measures all
//! three), and records per-phase speedups plus a determinism digest. The
//! `all` binary serializes the result to `BENCH_parallel.json`.
//!
//! Speedups are hardware-dependent: on a single-core container every
//! configuration multiplexes onto one CPU and speedups hover around 1.0
//! (the `hardware_threads` field records what the box offered), while on a
//! multi-core machine the chunked phases scale with the thread count.

use mbp_core::market::curves::{grid, DemandCurve, DemandShape, ValueCurve, ValueShape};
use mbp_core::market::simulation::{simulate_market_sharded, SimulationConfig};
use mbp_core::market::{Broker, Seller};
use mbp_core::mechanism::{GaussianMechanism, NoiseMechanism};
use mbp_core::revenue::{solve_bv_dp, welfare, BuyerPoint};
use mbp_linalg::{Matrix, Vector};
use mbp_ml::{LogisticLoss, ModelKind, Objective};
use mbp_randx::seeded_rng;
use std::time::Instant;

/// The thread counts every phase is measured at.
pub const THREAD_COUNTS: [usize; 3] = [1, 2, 4];

/// One measured phase: wall seconds per thread count, plus a determinism
/// check (the phase's output digest compared across thread counts).
#[derive(Debug, Clone)]
pub struct PhaseResult {
    /// Phase label.
    pub name: &'static str,
    /// Min-of-reps wall seconds, aligned with [`THREAD_COUNTS`].
    pub seconds: Vec<f64>,
    /// Output digest per thread count (order-insensitive scalar summary).
    pub digests: Vec<f64>,
    /// Whether the digests agree across thread counts (relative 1e-9).
    pub deterministic: bool,
}

impl PhaseResult {
    /// Speedup of the `threads`-way run over the 1-thread run (1.0 when the
    /// measurement is degenerate).
    pub fn speedup_at(&self, threads: usize) -> f64 {
        let i = THREAD_COUNTS.iter().position(|&t| t == threads);
        match i {
            Some(i) if self.seconds[i] > 0.0 => self.seconds[0] / self.seconds[i],
            _ => 1.0,
        }
    }
}

/// The full baseline: environment description plus per-phase results.
#[derive(Debug, Clone)]
pub struct ParallelBaseline {
    /// Thread counts measured (always [`THREAD_COUNTS`]).
    pub threads: Vec<usize>,
    /// What `std::thread::available_parallelism` reported — speedups above
    /// 1.0 are only physically possible up to this count.
    pub hardware_threads: usize,
    /// The pool size the process would use absent overrides
    /// (`--threads` / `MBP_THREADS` / hardware).
    pub default_threads: usize,
    /// Timing repetitions per (phase, thread count); min is recorded.
    pub reps: usize,
    /// Per-phase measurements.
    pub phases: Vec<PhaseResult>,
}

fn digests_agree(digests: &[f64]) -> bool {
    let d0 = digests[0];
    digests
        .iter()
        .all(|&d| (d - d0).abs() <= 1e-9 * d0.abs().max(1.0))
}

/// Times `work` at every [`THREAD_COUNTS`] entry, `reps` times each,
/// recording the minimum wall time and the first run's digest.
fn measure(name: &'static str, reps: usize, work: &dyn Fn() -> f64) -> PhaseResult {
    let mut seconds = Vec::with_capacity(THREAD_COUNTS.len());
    let mut digests = Vec::with_capacity(THREAD_COUNTS.len());
    for &t in &THREAD_COUNTS {
        mbp_par::with_threads(t, || {
            let mut best = f64::INFINITY;
            let mut digest = 0.0;
            for rep in 0..reps.max(1) {
                let t0 = Instant::now();
                let d = work();
                best = best.min(t0.elapsed().as_secs_f64());
                if rep == 0 {
                    digest = d;
                }
            }
            seconds.push(best);
            digests.push(digest);
        });
    }
    let deterministic = digests_agree(&digests);
    PhaseResult {
        name,
        seconds,
        digests,
        deterministic,
    }
}

/// Deterministic pseudo-data without touching any RNG stream: a dense
/// matrix whose entries cycle through a fixed rational pattern.
fn patterned_matrix(rows: usize, cols: usize) -> Matrix {
    let data: Vec<f64> = (0..rows * cols)
        .map(|i| ((i * 31 + 7) % 101) as f64 / 101.0 - 0.5)
        .collect();
    Matrix::from_vec(rows, cols, data).expect("shape is consistent")
}

/// Runs the full baseline: five phases, each at 1/2/4 threads.
pub fn run(reps: usize) -> ParallelBaseline {
    let _span = mbp_obs::span("mbp.bench.parbench");

    // Phase inputs are built once, outside the timed sections. The gram
    // input (4096×96) sits *below* the parallel work grain on purpose: it
    // is the size class that regressed under the earlier 500k grain
    // (0.70× at 4 threads), so the phase now certifies that mid-size
    // inputs take the serial path at every thread count (speedup ≈ 1.0)
    // instead of paying the fork/join handoff.
    let gram_input = patterned_matrix(4096, 96);
    let matmul_a = patterned_matrix(384, 320);
    let matmul_b = patterned_matrix(320, 384);

    let mut rng = seeded_rng(0x9a11);
    let clf = mbp_data::synth::simulated2(24_000, 24, 0.9, &mut rng);
    let loss = LogisticLoss::ridge(1e-4);
    let w0 = Vector::from_vec(vec![0.05; 24]);

    let g = grid(10.0, 100.0, 12);
    let value = ValueCurve::new(ValueShape::Concave { power: 2.0 }, 5.0, 100.0);
    let demand = DemandCurve::new(DemandShape::Peak {
        center: 0.5,
        width: 0.3,
    });
    let seed_buyers =
        mbp_core::market::curves::buyer_points(&g, &value, &demand).expect("bench grid is valid");
    let pricing = solve_bv_dp(&seed_buyers).pricing;
    // A large synthetic population on the same grid for the welfare phase.
    let population: Vec<BuyerPoint> = (0..150_000)
        .map(|i| {
            let t = (i % 1000) as f64 / 999.0;
            let a = 10.0 + 90.0 * t;
            BuyerPoint::new(a, value.value_at_unit(t), 1.0 / 150_000.0)
        })
        .collect();

    let noise_dim = 1 << 16;
    let noise_model = Vector::from_vec(vec![0.25; noise_dim]);

    let mut rng = seeded_rng(0x51ab);
    let sim_data = mbp_data::synth::simulated1(1200, 4, 0.5, &mut rng).split(0.75, &mut rng);
    let seller = Seller::new(sim_data.clone(), g.clone(), value, demand);
    let sim_pricing = pricing.clone();

    let phases = vec![
        measure("linalg-gram", reps, &|| {
            gram_input.gram().as_slice().iter().sum()
        }),
        measure("linalg-matmul", reps, &|| {
            matmul_a
                .matmul(&matmul_b)
                .expect("shapes agree")
                .as_slice()
                .iter()
                .sum()
        }),
        measure("ml-gradient", reps, &|| {
            let mut acc = 0.0;
            for _ in 0..6 {
                acc += loss.gradient(&w0, &clf).as_slice().iter().sum::<f64>();
            }
            acc
        }),
        measure("revenue-welfare", reps, &|| {
            let w = welfare(&pricing, &population);
            w.revenue + w.buyer_surplus + w.affordability
        }),
        measure("mechanism-noise", reps, &|| {
            let mut rng = seeded_rng(0x4e01);
            let released = GaussianMechanism.perturb(&noise_model, 2.0, &mut rng);
            released.as_slice().iter().sum()
        }),
        measure("market-simulate", reps, &|| {
            let mut broker = Broker::new(sim_data.clone());
            broker
                .support(ModelKind::LinearRegression, 1e-6)
                .expect("training failed");
            let out = simulate_market_sharded(
                &mut broker,
                &seller,
                ModelKind::LinearRegression,
                &sim_pricing,
                &mbp_core::error::SquareLossTransform,
                SimulationConfig {
                    n_buyers: 4000,
                    valuation_jitter: 0.05,
                },
                0x5ea5,
            )
            .expect("simulation failed");
            out.realized_revenue_per_buyer * out.served as f64
        }),
    ];

    ParallelBaseline {
        threads: THREAD_COUNTS.to_vec(),
        hardware_threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
        default_threads: mbp_par::default_threads(),
        reps,
        phases,
    }
}

impl ParallelBaseline {
    /// Serializes the baseline as a standalone JSON document
    /// (`BENCH_parallel.json`).
    pub fn to_json(&self) -> String {
        let list = |v: &[f64]| {
            v.iter()
                .map(|x| format!("{x:.6}"))
                .collect::<Vec<_>>()
                .join(", ")
        };
        let mut out = String::from("{\n");
        out.push_str(&format!(
            "  \"threads\": [{}],\n",
            self.threads
                .iter()
                .map(usize::to_string)
                .collect::<Vec<_>>()
                .join(", ")
        ));
        out.push_str(&format!(
            "  \"hardware_threads\": {},\n",
            self.hardware_threads
        ));
        out.push_str(&format!(
            "  \"default_threads\": {},\n",
            self.default_threads
        ));
        out.push_str(&format!("  \"reps\": {},\n", self.reps));
        out.push_str("  \"phases\": [\n");
        for (i, p) in self.phases.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"seconds\": [{}], \"speedup_2\": {:.4}, \"speedup_4\": {:.4}, \"deterministic\": {}}}{}\n",
                p.name,
                list(&p.seconds),
                p.speedup_at(2),
                p.speedup_at(4),
                p.deterministic,
                if i + 1 == self.phases.len() { "" } else { "," }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_baseline() -> ParallelBaseline {
        ParallelBaseline {
            threads: THREAD_COUNTS.to_vec(),
            hardware_threads: 1,
            default_threads: 1,
            reps: 1,
            phases: vec![PhaseResult {
                name: "unit",
                seconds: vec![0.4, 0.21, 0.1],
                digests: vec![1.0, 1.0, 1.0],
                deterministic: true,
            }],
        }
    }

    #[test]
    fn speedups_derive_from_recorded_seconds() {
        let b = tiny_baseline();
        let p = &b.phases[0];
        assert!((p.speedup_at(2) - 0.4 / 0.21).abs() < 1e-12);
        assert!((p.speedup_at(4) - 4.0).abs() < 1e-12);
        assert_eq!(p.speedup_at(3), 1.0); // unmeasured count
    }

    #[test]
    fn json_artifact_has_required_fields() {
        let json = tiny_baseline().to_json();
        for key in [
            "\"threads\"",
            "\"hardware_threads\"",
            "\"default_threads\"",
            "\"phases\"",
            "\"speedup_2\"",
            "\"speedup_4\"",
            "\"deterministic\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert!(json.trim_start().starts_with('{') && json.trim_end().ends_with('}'));
    }

    #[test]
    fn digest_agreement_uses_relative_tolerance() {
        assert!(digests_agree(&[1e9, 1e9 + 0.5]));
        assert!(!digests_agree(&[1.0, 1.1]));
    }
}
