//! Verification-layer throughput baseline (`BENCH_testkit.json`).
//!
//! Times the three mbp-testkit engines against a realistic dense curve so
//! regressions in verification throughput are visible next to the serving
//! and parallel baselines:
//!
//! * **attack-curve / attack-error-space** — randomized arbitrage trials
//!   per second against the arbitrage-free √-shaped curve (and through the
//!   identity error transform). A *clean* run is part of the contract: a
//!   found violation fails the baseline.
//! * **oracle** — differential pricing comparisons per second (scan vs
//!   compiled table vs Kahan-summed reference).
//! * **schedule** — linearizability cases per second on the concurrent
//!   broker at 2–4 virtual threads.
//!
//! Every phase runs twice from the same seed; `deterministic` asserts the
//! two runs produced identical work digests.

use mbp_core::error::SquareLossTransform;
use mbp_core::PricingFunction;
use mbp_testkit::{
    attack_curve, attack_error_space, check_pricing, explore, AttackConfig, OracleConfig,
    ScheduleConfig,
};
use std::time::Instant;

/// One timed verification phase.
#[derive(Debug, Clone)]
pub struct AttackPhase {
    /// Phase label.
    pub name: &'static str,
    /// Work units completed (trials, comparisons, or cases).
    pub units: u64,
    /// Wall seconds for the faster of the two runs.
    pub seconds: f64,
    /// Work units per second derived from `seconds`.
    pub units_per_sec: f64,
    /// Violations or divergences found (must be 0 on sound inputs).
    pub findings: u64,
    /// Both runs produced identical digests.
    pub deterministic: bool,
}

/// The full verification baseline.
#[derive(Debug, Clone)]
pub struct AttackBaseline {
    /// Machine + commit + timestamp provenance stamp.
    pub meta: crate::RunMeta,
    /// Randomized attack trials per engine run.
    pub trials: u64,
    /// Per-phase measurements.
    pub phases: Vec<AttackPhase>,
    /// No engine found a violation or divergence (the inputs are sound).
    pub clean: bool,
    /// Every phase reproduced its digest on the second run.
    pub deterministic: bool,
}

fn timed(name: &'static str, mut work: impl FnMut() -> (u64, u64, f64)) -> AttackPhase {
    let t0 = Instant::now();
    let (units_a, findings_a, digest_a) = work();
    let first = t0.elapsed().as_secs_f64();
    let t1 = Instant::now();
    let (units_b, findings_b, digest_b) = work();
    let second = t1.elapsed().as_secs_f64();
    let seconds = first.min(second);
    AttackPhase {
        name,
        units: units_a,
        seconds,
        units_per_sec: if seconds > 0.0 {
            units_a as f64 / seconds
        } else {
            0.0
        },
        findings: findings_a,
        deterministic: units_a == units_b && findings_a == findings_b && digest_a == digest_b,
    }
}

/// The benchmark curve: arbitrage-free `p̄(x) = 10·√x` on 128 knots.
fn bench_curve() -> PricingFunction {
    let grid: Vec<f64> = (1..=128).map(|i| 1.0 + i as f64 * 0.25).collect();
    let prices: Vec<f64> = grid.iter().map(|x| 10.0 * x.sqrt()).collect();
    PricingFunction::from_points(grid, prices).expect("curve is arbitrage-free")
}

/// Runs the verification baseline with `trials` attack trials per engine.
pub fn run(trials: u64) -> AttackBaseline {
    let _span = mbp_obs::span("mbp.bench.attackbench");
    let trials = trials.max(1_000);
    let curve = bench_curve();

    let attack = timed("attack-curve", || {
        let report = attack_curve(
            &curve,
            &AttackConfig {
                seed: 0xbe_ac4,
                trials,
                ..AttackConfig::default()
            },
        );
        (
            report.trials,
            report.violations.len() as u64,
            report.checks as f64,
        )
    });

    let eps = timed("attack-error-space", || {
        let report = attack_error_space(
            &curve,
            &SquareLossTransform,
            &AttackConfig {
                seed: 0xbe_ac5,
                trials,
                ..AttackConfig::default()
            },
        );
        (
            report.trials,
            report.violations.len() as u64,
            report.checks as f64,
        )
    });

    let oracle = timed("oracle", || {
        let report = check_pricing(
            &curve,
            &OracleConfig {
                probes: trials as usize,
                ..OracleConfig::default()
            },
        );
        (
            report.comparisons,
            report.divergences.len() as u64,
            report.max_divergence,
        )
    });

    let cases = (trials / 20).clamp(50, 5_000);
    let schedule = timed("schedule", || {
        let report = explore(&ScheduleConfig {
            seed: 0xbe_ac6,
            interleavings: cases,
            threads: 4,
            ops_per_thread: 3,
            faults: false,
        });
        (
            report.explored,
            report.failures.len() as u64,
            report.steps as f64,
        )
    });

    let phases = vec![attack, eps, oracle, schedule];
    let clean = phases.iter().all(|p| p.findings == 0);
    let deterministic = phases.iter().all(|p| p.deterministic);
    AttackBaseline {
        meta: crate::RunMeta::from_env(),
        trials,
        phases,
        clean,
        deterministic,
    }
}

impl AttackBaseline {
    /// Serializes the baseline as a standalone JSON document
    /// (`BENCH_testkit.json`).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&self.meta.json_fields());
        out.push_str(&format!("  \"trials\": {},\n", self.trials));
        out.push_str(&format!("  \"clean\": {},\n", self.clean));
        out.push_str(&format!("  \"deterministic\": {},\n", self.deterministic));
        out.push_str("  \"phases\": [\n");
        for (i, p) in self.phases.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"units\": {}, \"seconds\": {:.6}, \"units_per_sec\": {:.1}, \"findings\": {}, \"deterministic\": {}}}{}\n",
                p.name,
                p.units,
                p.seconds,
                p.units_per_sec,
                p.findings,
                p.deterministic,
                if i + 1 == self.phases.len() { "" } else { "," }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_is_clean_and_deterministic() {
        let b = run(1_000);
        assert_eq!(b.phases.len(), 4);
        assert!(b.clean, "an engine found a violation on sound inputs");
        assert!(b.deterministic, "a phase failed to reproduce its digest");
        assert!(b.phases.iter().all(|p| p.units_per_sec > 0.0));
    }

    #[test]
    fn json_artifact_has_required_fields() {
        let b = run(1_000);
        let json = b.to_json();
        for key in [
            "\"hardware_threads\"",
            "\"commit\"",
            "\"generated_at\"",
            "\"trials\"",
            "\"clean\"",
            "\"deterministic\"",
            "\"attack-curve\"",
            "\"attack-error-space\"",
            "\"oracle\"",
            "\"schedule\"",
            "\"units_per_sec\"",
        ] {
            assert!(json.contains(key), "missing {key}");
        }
        assert!(json.trim_start().starts_with('{') && json.trim_end().ends_with('}'));
    }
}
