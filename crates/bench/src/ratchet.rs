//! Bench ratchet: diffs a fresh `BENCH_*.json` against the committed
//! baseline and fails when the numbers stop improving.
//!
//! The ratchet is one-directional with tolerance bands:
//!
//! * **Ratio metrics** (`table_speedup_vs_scan`, `batch_speedup_vs_single`,
//!   `factor_cache_speedup`) are same-process measurement ratios and
//!   therefore largely machine-independent. They must not fall below
//!   `baseline × (1 − ratio_tolerance)`; the default band is 15% and
//!   `MBP_RATCHET_RATIO_TOL` widens it for noisy runners.
//! * **Absolute latencies** (per-workload `p99_micros`) and throughputs
//!   (per-phase `units_per_sec`) depend on the machine. They must not
//!   regress beyond `baseline × (1 ± p99_tolerance)`; the default band is
//!   100% (a gross-regression guard — absolute timings on shared or
//!   single-core runners are noisy) and `MBP_RATCHET_TOL` adjusts it.
//! * **Invariants** (`deterministic`, `clean`, `table_matches_scan`,
//!   `consistent`) must hold in the fresh run unconditionally — no
//!   tolerance.
//! * **Hard floors** are absolute: the *committed* serving baseline must
//!   show `table_speedup_vs_scan ≥ 1.0` and `batch_speedup_vs_single ≥
//!   3.0`. Binding the committed artifact (smoke re-runs time these
//!   ratios too noisily for an exact cutoff) means a regression cannot be
//!   laundered by regenerating a worse baseline — the regeneration itself
//!   fails CI, while fresh runs stay inside the relative ratio band.
//!
//! Artifacts are parsed with a small self-contained JSON reader (the
//! workspace is dependency-free), so the comparator accepts any
//! conforming document, not just the exact strings our emitters produce.

use std::collections::BTreeMap;

// ---------------------------------------------------------------------------
// Minimal JSON value + parser
// ---------------------------------------------------------------------------

/// A parsed JSON value (number, string, bool, null, array, or object).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// A JSON number (always held as `f64`).
    Num(f64),
    /// A JSON string (escapes decoded).
    Str(String),
    /// `true` / `false`.
    Bool(bool),
    /// `null`.
    Null,
    /// An array.
    Arr(Vec<Json>),
    /// An object with sorted keys.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Field lookup on objects; `None` on other variants.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// Numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// String value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// Boolean value, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v.as_slice()),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, what: &str) -> String {
        format!("json parse error at byte {}: {what}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.bump() == Some(b) {
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected literal '{lit}'")))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self.bump().ok_or_else(|| self.err("short \\u escape"))?;
                            let v = (d as char)
                                .to_digit(16)
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            code = code * 16 + v;
                        }
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    _ => return Err(self.err("bad escape")),
                },
                Some(b) => {
                    // Re-assemble UTF-8 multibyte sequences byte-by-byte.
                    if b < 0x80 {
                        out.push(b as char);
                    } else {
                        let start = self.pos - 1;
                        let mut end = self.pos;
                        while end < self.bytes.len() && self.bytes[end] & 0xC0 == 0x80 {
                            end += 1;
                        }
                        out.push_str(
                            std::str::from_utf8(&self.bytes[start..end])
                                .map_err(|_| self.err("invalid utf-8"))?,
                        );
                        self.pos = end;
                    }
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number bytes"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => {
                self.pos += 1;
                let mut map = BTreeMap::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let val = self.value()?;
                    map.insert(key, val);
                    self.skip_ws();
                    match self.bump() {
                        Some(b',') => continue,
                        Some(b'}') => return Ok(Json::Obj(map)),
                        _ => return Err(self.err("expected ',' or '}'")),
                    }
                }
            }
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.bump() {
                        Some(b',') => continue,
                        Some(b']') => return Ok(Json::Arr(items)),
                        _ => return Err(self.err("expected ',' or ']'")),
                    }
                }
            }
            Some(b'"') => self.string().map(Json::Str),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(_) => self.number(),
            None => Err(self.err("unexpected end of input")),
        }
    }
}

/// Parses a JSON document into a [`Json`] value.
pub fn parse_json(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing garbage after document"));
    }
    Ok(v)
}

// ---------------------------------------------------------------------------
// Comparator
// ---------------------------------------------------------------------------

/// Tolerance bands for the ratchet.
#[derive(Debug, Clone, Copy)]
pub struct RatchetConfig {
    /// Allowed relative drop on machine-independent ratio metrics.
    pub ratio_tolerance: f64,
    /// Allowed relative regression on absolute latencies / throughputs.
    pub p99_tolerance: f64,
}

impl Default for RatchetConfig {
    fn default() -> Self {
        RatchetConfig {
            ratio_tolerance: 0.15,
            p99_tolerance: 1.00,
        }
    }
}

impl RatchetConfig {
    /// Default bands, with `MBP_RATCHET_TOL` (a float, e.g. `1.0` = 100%)
    /// widening the absolute-latency band and `MBP_RATCHET_RATIO_TOL`
    /// widening the ratio band for slow or shared runners (single smoke
    /// runs on a time-sliced core swing same-process ratios by ±25%).
    pub fn from_env() -> Self {
        let mut cfg = RatchetConfig::default();
        if let Ok(s) = std::env::var("MBP_RATCHET_TOL") {
            if let Ok(v) = s.parse::<f64>() {
                if v.is_finite() && v >= 0.0 {
                    cfg.p99_tolerance = v;
                }
            }
        }
        if let Ok(s) = std::env::var("MBP_RATCHET_RATIO_TOL") {
            if let Ok(v) = s.parse::<f64>() {
                if v.is_finite() && v >= 0.0 {
                    cfg.ratio_tolerance = v;
                }
            }
        }
        cfg
    }
}

/// One ratchet comparison: a metric, both values, and the verdict.
#[derive(Debug, Clone)]
pub struct RatchetCheck {
    /// Metric path, e.g. `workloads.serve-into.p99_micros`.
    pub metric: String,
    /// Committed baseline value.
    pub baseline: f64,
    /// Freshly measured value.
    pub fresh: f64,
    /// Whether the fresh value is within the tolerance band.
    pub ok: bool,
}

/// The full ratchet verdict for one artifact pair.
#[derive(Debug, Clone, Default)]
pub struct RatchetReport {
    /// Every comparison performed.
    pub checks: Vec<RatchetCheck>,
    /// Human-readable failure descriptions (empty means pass).
    pub failures: Vec<String>,
}

impl RatchetReport {
    /// True when no check failed.
    pub fn pass(&self) -> bool {
        self.failures.is_empty()
    }

    fn ratio_floor(&mut self, metric: &str, baseline: f64, fresh: f64, tol: f64) {
        let floor = baseline * (1.0 - tol);
        let ok = fresh >= floor;
        self.checks.push(RatchetCheck {
            metric: metric.to_string(),
            baseline,
            fresh,
            ok,
        });
        if !ok {
            self.failures.push(format!(
                "{metric} regressed: fresh {fresh:.4} < floor {floor:.4} (baseline {baseline:.4}, tol {tol:.2})"
            ));
        }
    }

    fn latency_ceiling(&mut self, metric: &str, baseline: f64, fresh: f64, tol: f64) {
        let ceiling = baseline * (1.0 + tol);
        let ok = fresh <= ceiling;
        self.checks.push(RatchetCheck {
            metric: metric.to_string(),
            baseline,
            fresh,
            ok,
        });
        if !ok {
            self.failures.push(format!(
                "{metric} regressed: fresh {fresh:.3} > ceiling {ceiling:.3} (baseline {baseline:.3}, tol {tol:.2})"
            ));
        }
    }

    /// An absolute floor, applied to the committed artifact: a baseline
    /// that does not clear it cannot be committed, so regenerating a worse
    /// baseline fails CI instead of quietly lowering the bar.
    fn hard_floor(&mut self, metric: &str, floor: f64, value: f64) {
        let ok = value >= floor;
        self.checks.push(RatchetCheck {
            metric: metric.to_string(),
            baseline: floor,
            fresh: value,
            ok,
        });
        if !ok {
            self.failures.push(format!(
                "{metric} below hard floor: committed {value:.4} < {floor:.4}"
            ));
        }
    }

    fn invariant(&mut self, metric: &str, holds: bool) {
        self.checks.push(RatchetCheck {
            metric: metric.to_string(),
            baseline: 1.0,
            fresh: if holds { 1.0 } else { 0.0 },
            ok: holds,
        });
        if !holds {
            self.failures
                .push(format!("{metric} must hold in the fresh run"));
        }
    }

    /// One line per failed check, or `ratchet pass (N checks)`.
    pub fn render(&self) -> String {
        if self.pass() {
            format!("ratchet pass ({} checks)", self.checks.len())
        } else {
            let mut out = format!(
                "ratchet FAIL ({} of {} checks):\n",
                self.failures.len(),
                self.checks.len()
            );
            for f in &self.failures {
                out.push_str("  - ");
                out.push_str(f);
                out.push('\n');
            }
            out
        }
    }
}

fn num_field(doc: &Json, key: &str) -> Result<f64, String> {
    doc.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("missing numeric field '{key}'"))
}

fn bool_field(doc: &Json, key: &str) -> Result<bool, String> {
    doc.get(key)
        .and_then(Json::as_bool)
        .ok_or_else(|| format!("missing boolean field '{key}'"))
}

/// Indexes an array of named objects (`workloads` / `phases`) by `name`.
fn by_name<'j>(doc: &'j Json, key: &str) -> Result<BTreeMap<String, &'j Json>, String> {
    let arr = doc
        .get(key)
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("missing array field '{key}'"))?;
    let mut map = BTreeMap::new();
    for item in arr {
        let name = item
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("'{key}' entry without a name"))?;
        map.insert(name.to_string(), item);
    }
    Ok(map)
}

/// Diffs a fresh `BENCH_serving.json` against the committed baseline.
pub fn compare_serving(
    baseline_json: &str,
    fresh_json: &str,
    cfg: &RatchetConfig,
) -> Result<RatchetReport, String> {
    let base = parse_json(baseline_json)?;
    let fresh = parse_json(fresh_json)?;
    let mut report = RatchetReport::default();

    for metric in [
        "table_speedup_vs_scan",
        "batch_speedup_vs_single",
        "factor_cache_speedup",
    ] {
        report.ratio_floor(
            metric,
            num_field(&base, metric)?,
            num_field(&fresh, metric)?,
            cfg.ratio_tolerance,
        );
    }
    // Hard floors on the *committed* artifact: the compiled table must
    // beat the scan outright, and the batch path must hold its lead over
    // single-quote serving. Binding the committed document (not the smoke
    // re-measurement, whose short runs time these ratios noisily) means a
    // regression cannot be laundered by regenerating a worse baseline —
    // the regeneration itself fails CI. Fresh runs are still held within
    // `ratio_tolerance` of the committed values above.
    report.hard_floor(
        "table_speedup_vs_scan.hard_floor",
        1.0,
        num_field(&base, "table_speedup_vs_scan")?,
    );
    report.hard_floor(
        "batch_speedup_vs_single.hard_floor",
        3.0,
        num_field(&base, "batch_speedup_vs_single")?,
    );
    report.invariant(
        "deterministic",
        bool_field(&fresh, "deterministic").unwrap_or(false),
    );
    report.invariant(
        "table_matches_scan",
        bool_field(&fresh, "table_matches_scan").unwrap_or(false),
    );

    let base_workloads = by_name(&base, "workloads")?;
    let fresh_workloads = by_name(&fresh, "workloads")?;
    for (name, base_w) in &base_workloads {
        let Some(fresh_w) = fresh_workloads.get(name) else {
            report
                .failures
                .push(format!("workload '{name}' missing from fresh run"));
            continue;
        };
        report.latency_ceiling(
            &format!("workloads.{name}.p99_micros"),
            num_field(base_w, "p99_micros")?,
            num_field(fresh_w, "p99_micros")?,
            cfg.p99_tolerance,
        );
    }
    Ok(report)
}

/// Indexes the `sweep` array of a `BENCH_serve_net.json` by connection
/// count.
fn by_conns<'j>(doc: &'j Json, key: &str) -> Result<BTreeMap<u64, &'j Json>, String> {
    let arr = doc
        .get(key)
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("missing array field '{key}'"))?;
    let mut map = BTreeMap::new();
    for item in arr {
        let conns = item
            .get("connections")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("'{key}' entry without a connection count"))?;
        map.insert(conns as u64, item);
    }
    Ok(map)
}

/// Diffs a fresh `BENCH_serve_net.json` against the committed baseline.
///
/// `batch_admission_speedup` is a same-process measurement ratio and
/// ratchets under `ratio_tolerance`, with a **hard floor of 2.0 on the
/// committed artifact**: the daemon's coalesced dispatch must beat
/// one-kernel-call-per-request serving at least 2x, and a regeneration
/// that fails to clear that floor fails CI instead of lowering the bar.
/// Saturation RPS and per-sweep-point p99s are machine-dependent and get
/// the wide `p99_tolerance` band. `deterministic` (every sweep point
/// reproduced its response digest) and `per_request_matches_batched`
/// (batch coalescing changed no response bytes) must hold in the fresh
/// run unconditionally.
pub fn compare_serve_net(
    baseline_json: &str,
    fresh_json: &str,
    cfg: &RatchetConfig,
) -> Result<RatchetReport, String> {
    let base = parse_json(baseline_json)?;
    let fresh = parse_json(fresh_json)?;
    let mut report = RatchetReport::default();

    report.ratio_floor(
        "batch_admission_speedup",
        num_field(&base, "batch_admission_speedup")?,
        num_field(&fresh, "batch_admission_speedup")?,
        cfg.ratio_tolerance,
    );
    report.hard_floor(
        "batch_admission_speedup.hard_floor",
        2.0,
        num_field(&base, "batch_admission_speedup")?,
    );
    report.ratio_floor(
        "saturation_rps",
        num_field(&base, "saturation_rps")?,
        num_field(&fresh, "saturation_rps")?,
        cfg.p99_tolerance,
    );
    report.invariant(
        "deterministic",
        bool_field(&fresh, "deterministic").unwrap_or(false),
    );
    report.invariant(
        "per_request_matches_batched",
        bool_field(&fresh, "per_request_matches_batched").unwrap_or(false),
    );

    let base_sweep = by_conns(&base, "sweep")?;
    let fresh_sweep = by_conns(&fresh, "sweep")?;
    for (conns, base_p) in &base_sweep {
        let Some(fresh_p) = fresh_sweep.get(conns) else {
            report
                .failures
                .push(format!("sweep point @{conns} conns missing from fresh run"));
            continue;
        };
        report.latency_ceiling(
            &format!("sweep.{conns}conns.p99_micros"),
            num_field(base_p, "p99_micros")?,
            num_field(fresh_p, "p99_micros")?,
            cfg.p99_tolerance,
        );
    }
    Ok(report)
}

/// Diffs a fresh `BENCH_testkit.json` against the committed baseline.
pub fn compare_testkit(
    baseline_json: &str,
    fresh_json: &str,
    cfg: &RatchetConfig,
) -> Result<RatchetReport, String> {
    let base = parse_json(baseline_json)?;
    let fresh = parse_json(fresh_json)?;
    let mut report = RatchetReport::default();

    report.invariant("clean", bool_field(&fresh, "clean").unwrap_or(false));
    report.invariant(
        "deterministic",
        bool_field(&fresh, "deterministic").unwrap_or(false),
    );

    let base_phases = by_name(&base, "phases")?;
    let fresh_phases = by_name(&fresh, "phases")?;
    for (name, base_p) in &base_phases {
        let Some(fresh_p) = fresh_phases.get(name) else {
            report
                .failures
                .push(format!("phase '{name}' missing from fresh run"));
            continue;
        };
        report.ratio_floor(
            &format!("phases.{name}.units_per_sec"),
            num_field(base_p, "units_per_sec")?,
            num_field(fresh_p, "units_per_sec")?,
            cfg.p99_tolerance,
        );
    }
    Ok(report)
}

/// Diffs a fresh `BENCH_kernel.json` against the committed baseline.
///
/// The grid / Eytzinger speedup ratios over `partition_point` are
/// same-process measurement ratios and ratchet under `ratio_tolerance`;
/// per-workload absolute lookup throughput is machine-dependent and gets
/// the wide `p99_tolerance` band. `consistent` (both index layouts answer
/// exactly like `partition_point`) and `deterministic` must hold in the
/// fresh run unconditionally.
pub fn compare_kernel(
    baseline_json: &str,
    fresh_json: &str,
    cfg: &RatchetConfig,
) -> Result<RatchetReport, String> {
    let base = parse_json(baseline_json)?;
    let fresh = parse_json(fresh_json)?;
    let mut report = RatchetReport::default();

    report.invariant(
        "consistent",
        bool_field(&fresh, "consistent").unwrap_or(false),
    );
    report.invariant(
        "deterministic",
        bool_field(&fresh, "deterministic").unwrap_or(false),
    );

    let base_speedups = by_name(&base, "speedups")?;
    let fresh_speedups = by_name(&fresh, "speedups")?;
    for (name, base_s) in &base_speedups {
        let Some(fresh_s) = fresh_speedups.get(name) else {
            report
                .failures
                .push(format!("speedup '{name}' missing from fresh run"));
            continue;
        };
        report.ratio_floor(
            &format!("speedups.{name}"),
            num_field(base_s, "value")?,
            num_field(fresh_s, "value")?,
            cfg.ratio_tolerance,
        );
    }

    let base_workloads = by_name(&base, "workloads")?;
    let fresh_workloads = by_name(&fresh, "workloads")?;
    for (name, base_w) in &base_workloads {
        let Some(fresh_w) = fresh_workloads.get(name) else {
            report
                .failures
                .push(format!("workload '{name}' missing from fresh run"));
            continue;
        };
        report.ratio_floor(
            &format!("workloads.{name}.lookups_per_sec"),
            num_field(base_w, "lookups_per_sec")?,
            num_field(fresh_w, "lookups_per_sec")?,
            cfg.p99_tolerance,
        );
    }
    Ok(report)
}

/// Diffs a fresh `BENCH_wal.json` against the committed durability
/// baseline. Append and recovery throughput ratchet like every other
/// phase; `recovery_replay_speedup` (live ingest seconds ÷ recovery
/// seconds) is a same-process ratio, so besides the band against the
/// committed baseline it carries an absolute hard floor of 1.0 —
/// recovery replaying a log slower than the market wrote it would mean
/// crash recovery can never catch up, and such a baseline cannot be
/// committed.
pub fn compare_wal(
    baseline_json: &str,
    fresh_json: &str,
    cfg: &RatchetConfig,
) -> Result<RatchetReport, String> {
    let base = parse_json(baseline_json)?;
    let fresh = parse_json(fresh_json)?;
    let mut report = RatchetReport::default();

    report.invariant(
        "deterministic",
        bool_field(&fresh, "deterministic").unwrap_or(false),
    );
    report.ratio_floor(
        "recovery_replay_speedup",
        num_field(&base, "recovery_replay_speedup")?,
        num_field(&fresh, "recovery_replay_speedup")?,
        cfg.ratio_tolerance,
    );
    report.hard_floor(
        "recovery_replay_speedup.hard_floor",
        1.0,
        num_field(&base, "recovery_replay_speedup")?,
    );

    let base_rec = base
        .get("recovery")
        .ok_or_else(|| "baseline missing 'recovery'".to_string())?;
    let fresh_rec = fresh
        .get("recovery")
        .ok_or_else(|| "fresh run missing 'recovery'".to_string())?;
    report.ratio_floor(
        "recovery.records_per_sec",
        num_field(base_rec, "records_per_sec")?,
        num_field(fresh_rec, "records_per_sec")?,
        cfg.p99_tolerance,
    );

    let base_workloads = by_name(&base, "workloads")?;
    let fresh_workloads = by_name(&fresh, "workloads")?;
    for (name, base_w) in &base_workloads {
        let Some(fresh_w) = fresh_workloads.get(name) else {
            report
                .failures
                .push(format!("workload '{name}' missing from fresh run"));
            continue;
        };
        report.ratio_floor(
            &format!("workloads.{name}.records_per_sec"),
            num_field(base_w, "records_per_sec")?,
            num_field(fresh_w, "records_per_sec")?,
            cfg.p99_tolerance,
        );
    }
    Ok(report)
}

/// Diffs a fresh `BENCH_trace.json` against the tracing overhead budgets:
/// the serve path must cost ≤ `disabled_budget` with tracing compiled in
/// but off, and ≤ `enabled_budget` with tracing on.
pub fn check_trace_overhead(
    fresh_json: &str,
    disabled_budget: f64,
    enabled_budget: f64,
) -> Result<RatchetReport, String> {
    let fresh = parse_json(fresh_json)?;
    let mut report = RatchetReport::default();
    report.latency_ceiling(
        "overhead_disabled",
        disabled_budget,
        num_field(&fresh, "overhead_disabled")?.max(0.0),
        0.0,
    );
    report.latency_ceiling(
        "overhead_enabled",
        enabled_budget,
        num_field(&fresh, "overhead_enabled")?.max(0.0),
        0.0,
    );
    report.invariant(
        "deterministic",
        bool_field(&fresh, "deterministic").unwrap_or(false),
    );
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SERVING: &str = include_str!("../../../BENCH_serving.json");
    const TESTKIT: &str = include_str!("../../../BENCH_testkit.json");
    const KERNEL: &str = include_str!("../../../BENCH_kernel.json");
    const SERVE_NET: &str = include_str!("../../../BENCH_serve_net.json");
    const WAL: &str = include_str!("../../../BENCH_wal.json");

    #[test]
    fn parser_round_trips_committed_baselines() {
        let doc = parse_json(SERVING).expect("committed serving baseline parses");
        assert!(doc.get("table_speedup_vs_scan").is_some());
        assert_eq!(
            doc.get("workloads").and_then(Json::as_arr).map(<[_]>::len),
            Some(7)
        );
        let doc = parse_json(TESTKIT).expect("committed testkit baseline parses");
        assert_eq!(
            doc.get("phases").and_then(Json::as_arr).map(<[_]>::len),
            Some(4)
        );
    }

    #[test]
    fn parser_handles_escapes_and_nesting() {
        let doc = parse_json(r#"{"a": [1, -2.5e-1, "x\"\\\n"], "b": {"c": true, "d": null}}"#)
            .expect("parses");
        assert_eq!(
            doc.get("a")
                .and_then(Json::as_arr)
                .and_then(|a| a[2].as_str()),
            Some("x\"\\\n")
        );
        assert_eq!(
            doc.get("b")
                .and_then(|b| b.get("c"))
                .and_then(Json::as_bool),
            Some(true)
        );
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        for bad in ["{", "{\"a\": }", "[1, 2", "{\"a\": 1} trailing", "\"open"] {
            assert!(parse_json(bad).is_err(), "accepted malformed input {bad:?}");
        }
    }

    #[test]
    fn ratchet_passes_on_committed_baselines() {
        let cfg = RatchetConfig::default();
        let report = compare_serving(SERVING, SERVING, &cfg).expect("comparable");
        assert!(report.pass(), "{}", report.render());
        let report = compare_testkit(TESTKIT, TESTKIT, &cfg).expect("comparable");
        assert!(report.pass(), "{}", report.render());
        let report = compare_kernel(KERNEL, KERNEL, &cfg).expect("comparable");
        assert!(report.pass(), "{}", report.render());
        let report = compare_serve_net(SERVE_NET, SERVE_NET, &cfg).expect("comparable");
        assert!(report.pass(), "{}", report.render());
        let report = compare_wal(WAL, WAL, &cfg).expect("comparable");
        assert!(report.pass(), "{}", report.render());
    }

    /// Acceptance: the committed durability baseline must show recovery
    /// replaying at least as fast as live ingest (speedup ≥ 1.0), and a
    /// baseline doctored below that floor fails its own self-compare.
    #[test]
    fn wal_hard_floor_binds_the_committed_artifact() {
        let cfg = RatchetConfig::default();
        let base = parse_json(WAL).expect("parses");
        let speedup = base
            .get("recovery_replay_speedup")
            .and_then(Json::as_f64)
            .expect("ratio present");
        assert!(
            speedup >= 1.0,
            "committed recovery_replay_speedup {speedup} under the 1.0 floor"
        );
        let needle = format!("\"recovery_replay_speedup\": {speedup:.4}");
        let doctored = WAL.replacen(&needle, "\"recovery_replay_speedup\": 0.5000", 1);
        assert_ne!(doctored, WAL, "injection must change the document");
        let report = compare_wal(&doctored, &doctored, &cfg).expect("comparable");
        assert!(!report.pass(), "sub-1.0 replay speedup must fail");
        assert!(
            report
                .failures
                .iter()
                .any(|f| f.contains("recovery_replay_speedup.hard_floor")),
            "{}",
            report.render()
        );
    }

    /// Acceptance: the committed network baseline must show batch
    /// admission beating per-request dispatch at least 2x, and a baseline
    /// doctored below that floor fails its own self-compare.
    #[test]
    fn serve_net_hard_floor_binds_the_committed_artifact() {
        let cfg = RatchetConfig::default();
        let base = parse_json(SERVE_NET).expect("parses");
        let speedup = base
            .get("batch_admission_speedup")
            .and_then(Json::as_f64)
            .expect("ratio present");
        assert!(
            speedup >= 2.0,
            "committed batch_admission_speedup {speedup} under the 2.0 floor"
        );
        let needle = format!("\"batch_admission_speedup\": {speedup:.4}");
        let doctored = SERVE_NET.replacen(&needle, "\"batch_admission_speedup\": 1.5000", 1);
        assert_ne!(doctored, SERVE_NET, "injection must change the document");
        let report = compare_serve_net(&doctored, &doctored, &cfg).expect("comparable");
        assert!(!report.pass(), "sub-2.0 admission speedup must fail");
        assert!(
            report
                .failures
                .iter()
                .any(|f| f.contains("hard floor") && f.contains("batch_admission_speedup")),
            "failure must name the hard floor: {:?}",
            report.failures
        );
    }

    #[test]
    fn serve_net_ratchet_fails_on_broken_determinism_and_missing_point() {
        let cfg = RatchetConfig::default();
        // A digest mismatch in the fresh run is always fatal.
        let broken = SERVE_NET.replacen(
            "\"per_request_matches_batched\": true",
            "\"per_request_matches_batched\": false",
            1,
        );
        assert_ne!(broken, SERVE_NET);
        let report = compare_serve_net(SERVE_NET, &broken, &cfg).expect("comparable");
        assert!(!report.pass(), "digest divergence must fail");
        assert!(report
            .failures
            .iter()
            .any(|f| f.contains("per_request_matches_batched")));
        // A dropped sweep point is fatal too.
        let dropped = SERVE_NET.replacen("\"connections\": 16", "\"connections\": 17", 1);
        assert_ne!(dropped, SERVE_NET);
        let report = compare_serve_net(SERVE_NET, &dropped, &cfg).expect("comparable");
        assert!(!report.pass(), "missing sweep point must fail");
        assert!(report
            .failures
            .iter()
            .any(|f| f.contains("missing from fresh run")));
    }

    /// The committed serving artifact must clear the absolute hard floors —
    /// the compiled table beats the scan and the batch path beats the
    /// single-quote path 3x — not merely avoid regressing against itself.
    #[test]
    fn hard_floors_bind_regardless_of_baseline() {
        let cfg = RatchetConfig::default();
        let base = parse_json(SERVING).expect("parses");
        let table_speedup = base
            .get("table_speedup_vs_scan")
            .and_then(Json::as_f64)
            .expect("ratio present");
        assert!(
            table_speedup >= 1.0,
            "committed table_speedup_vs_scan {table_speedup} under floor"
        );
        // Committing a baseline doctored below the floor fails its own
        // self-compare (which CI runs on every change), even though the
        // relative ratio check alone would pass a self-compare trivially —
        // so a worse baseline can never be laundered in.
        let needle = format!("\"table_speedup_vs_scan\": {table_speedup:.4}");
        let doctored = SERVING.replacen(&needle, "\"table_speedup_vs_scan\": 0.9000", 1);
        assert_ne!(doctored, SERVING, "injection must change the document");
        let report = compare_serving(&doctored, &doctored, &cfg).expect("comparable");
        assert!(!report.pass(), "sub-1.0 table speedup must fail");
        assert!(
            report
                .failures
                .iter()
                .any(|f| f.contains("hard floor") && f.contains("table_speedup_vs_scan")),
            "failure must name the hard floor: {:?}",
            report.failures
        );
    }

    #[test]
    fn kernel_ratchet_fails_on_throughput_and_consistency_regressions() {
        let cfg = RatchetConfig::default();
        // A consistency break is always fatal.
        let broken = KERNEL.replacen("\"consistent\": true", "\"consistent\": false", 1);
        assert_ne!(broken, KERNEL);
        let report = compare_kernel(KERNEL, &broken, &cfg).expect("comparable");
        assert!(!report.pass(), "inconsistent fresh run must fail");
        // A collapsed grid speedup beyond tolerance is fatal.
        let base = parse_json(KERNEL).expect("parses");
        let speedups = by_name(&base, "speedups").expect("speedups");
        let grid = speedups.get("grid_vs_pp@512").expect("grid ratio present");
        let value = num_field(grid, "value").expect("value");
        let needle = format!("\"name\": \"grid_vs_pp@512\", \"value\": {value:.4}");
        let poisoned = format!(
            "\"name\": \"grid_vs_pp@512\", \"value\": {:.4}",
            value * 0.2
        );
        let slowed = KERNEL.replacen(&needle, &poisoned, 1);
        assert_ne!(slowed, KERNEL, "injection must change the document");
        let report = compare_kernel(KERNEL, &slowed, &cfg).expect("comparable");
        assert!(!report.pass(), "5x grid slowdown must fail");
        assert!(report.failures.iter().any(|f| f.contains("grid_vs_pp@512")));
    }

    /// Acceptance: an injected p99 regression beyond tolerance fails the
    /// ratchet, and the failure names the regressed workload.
    #[test]
    fn ratchet_fails_on_injected_p99_regression() {
        let cfg = RatchetConfig::default();
        let base = parse_json(SERVING).expect("parses");
        let serve_into_p99 = base
            .get("workloads")
            .and_then(Json::as_arr)
            .and_then(|ws| {
                ws.iter()
                    .find(|w| w.get("name").and_then(Json::as_str) == Some("serve-into"))
            })
            .and_then(|w| w.get("p99_micros"))
            .and_then(Json::as_f64)
            .expect("serve-into p99 present");
        let needle = format!("\"p99_micros\": {serve_into_p99:.3}");
        let poisoned = format!("\"p99_micros\": {:.3}", serve_into_p99 * 10.0);
        let fresh = SERVING.replacen(&needle, &poisoned, 1);
        assert_ne!(fresh, SERVING, "injection must change the document");
        let report = compare_serving(SERVING, &fresh, &cfg).expect("comparable");
        assert!(!report.pass(), "10x p99 regression must fail the ratchet");
        assert!(
            report.failures.iter().any(|f| f.contains("p99_micros")),
            "failure must name the latency metric: {:?}",
            report.failures
        );
    }

    #[test]
    fn ratchet_fails_on_ratio_regression_and_missing_workload() {
        let cfg = RatchetConfig::default();
        let base = parse_json(SERVING).expect("parses");
        let table_speedup = base
            .get("table_speedup_vs_scan")
            .and_then(Json::as_f64)
            .expect("ratio present");
        let needle = format!("\"table_speedup_vs_scan\": {table_speedup:.4}");
        let fresh = SERVING
            .replacen(&needle, "\"table_speedup_vs_scan\": 0.0001", 1)
            .replacen("pricing-table", "pricing-table-renamed", 1);
        assert_ne!(fresh, SERVING, "injection must change the document");
        let report = compare_serving(SERVING, &fresh, &cfg).expect("comparable");
        assert!(!report.pass());
        assert!(report
            .failures
            .iter()
            .any(|f| f.contains("table_speedup_vs_scan")));
        assert!(report
            .failures
            .iter()
            .any(|f| f.contains("missing from fresh run")));
    }

    #[test]
    fn wider_tolerance_forgives_small_regressions() {
        let cfg = RatchetConfig {
            ratio_tolerance: 0.15,
            p99_tolerance: 0.50,
        };
        // Speedups sit comfortably above the hard floors (1.0 / 3.0) so this
        // test exercises the *relative* tolerance band in isolation.
        let base = r#"{"table_speedup_vs_scan": 2.0, "batch_speedup_vs_single": 4.0,
                       "factor_cache_speedup": 1.0, "deterministic": true,
                       "table_matches_scan": true,
                       "workloads": [{"name": "w", "p99_micros": 100.0}]}"#;
        let fresh = base
            .replacen(
                "\"table_speedup_vs_scan\": 2.0",
                "\"table_speedup_vs_scan\": 1.8",
                1,
            )
            .replacen("\"p99_micros\": 100.0", "\"p99_micros\": 140.0", 1);
        let report = compare_serving(base, &fresh, &cfg).expect("comparable");
        assert!(report.pass(), "{}", report.render());
        let tight = RatchetConfig {
            ratio_tolerance: 0.05,
            p99_tolerance: 0.10,
        };
        let report = compare_serving(base, &fresh, &tight).expect("comparable");
        assert!(
            !report.pass(),
            "tight tolerance must catch both regressions"
        );
    }

    #[test]
    fn trace_overhead_budgets_are_enforced() {
        let good = r#"{"overhead_disabled": 0.01, "overhead_enabled": 0.06,
                       "deterministic": true}"#;
        let report = check_trace_overhead(good, 0.02, 0.10).expect("comparable");
        assert!(report.pass(), "{}", report.render());
        let bad = r#"{"overhead_disabled": 0.01, "overhead_enabled": 0.25,
                      "deterministic": true}"#;
        let report = check_trace_overhead(bad, 0.02, 0.10).expect("comparable");
        assert!(!report.pass(), "blown enabled budget must fail");
    }
}
