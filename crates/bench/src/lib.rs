//! Experiment harness regenerating every table and figure of the MBP paper.
//!
//! Each `fn fig*` / `fn table3` returns structured rows that the
//! corresponding binary (`cargo run -p mbp-bench --bin fig6 --release`, …)
//! prints as TSV, and that the integration tests assert shape properties
//! on (monotone error curves, MBP revenue dominance, exponential-vs-
//! polynomial runtime growth).
//!
//! Knobs (environment variables, read by [`Config::from_env`]):
//!
//! * `MBP_SCALE` — fraction of the paper's dataset sizes to materialize
//!   (default `0.002`; set `1.0` to reproduce Table 3 sizes exactly);
//! * `MBP_REPS` — noisy models per NCP grid point for Figure 6
//!   (default `200`; the paper uses `2000`);
//! * `MBP_MAX_N` — largest number of price points for Figures 9–10
//!   (default `10`, like the paper).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attackbench;
pub mod experiments;
pub mod kernelbench;
pub mod netbench;
pub mod parbench;
pub mod ratchet;
pub mod report;
pub mod servebench;
pub mod tracebench;
pub mod walbench;

/// Provenance stamped into every `BENCH_*.json` artifact: the machine's
/// hardware thread count plus a commit-ish and run timestamp *passed in by
/// the caller* (via `MBP_BENCH_COMMIT` / `MBP_BENCH_TIME`). The baselines
/// never read `SystemTime::now` themselves, so regenerating a baseline is
/// a pure function of its inputs and the stamped environment.
#[derive(Debug, Clone)]
pub struct RunMeta {
    /// `std::thread::available_parallelism()` on the generating machine.
    pub hardware_threads: usize,
    /// Commit-ish the artifact was generated from (`"unknown"` when unset).
    pub commit: String,
    /// Caller-supplied run timestamp (`"unknown"` when unset).
    pub generated_at: String,
}

/// Keeps a stamped string JSON-safe without an escaping pass: only commit
/// hashes, refs, and RFC-3339-style timestamps survive.
fn sanitize_stamp(s: &str) -> String {
    let cleaned: String = s
        .chars()
        .filter(|c| c.is_ascii_alphanumeric() || "-_.:+TZ ".contains(*c))
        .take(64)
        .collect();
    if cleaned.is_empty() {
        "unknown".to_string()
    } else {
        cleaned
    }
}

impl RunMeta {
    /// Reads the stamp from `MBP_BENCH_COMMIT` and `MBP_BENCH_TIME`.
    pub fn from_env() -> Self {
        RunMeta {
            hardware_threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
            commit: sanitize_stamp(&std::env::var("MBP_BENCH_COMMIT").unwrap_or_default()),
            generated_at: sanitize_stamp(&std::env::var("MBP_BENCH_TIME").unwrap_or_default()),
        }
    }

    /// The stamp as JSON object fields (no surrounding braces), indented
    /// two spaces and ending with a trailing comma + newline.
    pub fn json_fields(&self) -> String {
        format!(
            "  \"hardware_threads\": {},\n  \"commit\": \"{}\",\n  \"generated_at\": \"{}\",\n",
            self.hardware_threads, self.commit, self.generated_at
        )
    }
}

/// Experiment-scale configuration.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Dataset scale relative to the paper's Table 3 sizes.
    pub scale: f64,
    /// Monte-Carlo replicas per NCP for the error-transformation curves.
    pub reps: usize,
    /// Largest price-point count for the runtime sweeps.
    pub max_n: usize,
    /// Master seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            scale: 0.002,
            reps: 200,
            max_n: 10,
            seed: 20190630, // SIGMOD '19 opening day
        }
    }
}

impl Config {
    /// Reads the config from `MBP_SCALE` / `MBP_REPS` / `MBP_MAX_N`
    /// environment variables, falling back to defaults.
    pub fn from_env() -> Self {
        let mut cfg = Config::default();
        if let Ok(s) = std::env::var("MBP_SCALE") {
            if let Ok(v) = s.parse::<f64>() {
                assert!(v > 0.0 && v <= 1.0, "MBP_SCALE must be in (0, 1]");
                cfg.scale = v;
            }
        }
        if let Ok(s) = std::env::var("MBP_REPS") {
            if let Ok(v) = s.parse::<usize>() {
                assert!(v > 0, "MBP_REPS must be positive");
                cfg.reps = v;
            }
        }
        if let Ok(s) = std::env::var("MBP_MAX_N") {
            if let Ok(v) = s.parse::<usize>() {
                assert!(v >= 2, "MBP_MAX_N must be at least 2");
                cfg.max_n = v;
            }
        }
        cfg
    }
}
