//! Named regression pin for the network-serving determinism digests
//! (satellite 3): `BENCH_serve_net.json` is a committed artifact, and the
//! response digests inside it are behavior, not performance — they fold
//! every response byte the daemon produced for the canonical request
//! streams. If a code change makes the wire responses drift, this test
//! fails `cargo test -q` directly instead of waiting for a bench ratchet
//! run.

use mbp_bench::netbench::{self, SWEEP_CONNS};
use mbp_bench::ratchet::{parse_json, Json};
use std::path::{Path, PathBuf};

fn baseline_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_serve_net.json")
}

/// Extracts every `"digest": <n>` value from the raw JSON text. The
/// digests are full u64 values (above 2^53), so they must never round
/// through the parser's f64 numbers.
fn committed_digests(text: &str) -> Vec<u64> {
    text.match_indices("\"digest\": ")
        .map(|(i, pat)| {
            let digits: String = text[i + pat.len()..]
                .chars()
                .take_while(char::is_ascii_digit)
                .collect();
            digits.parse().expect("digest is a u64")
        })
        .collect()
}

/// The committed baseline itself must claim full determinism: every sweep
/// point carries a digest, reproduced on its second run, and the
/// per-request path reproduced the batched digest.
#[test]
fn committed_netbench_baseline_claims_determinism() {
    let text = std::fs::read_to_string(baseline_path()).expect("committed BENCH_serve_net.json");
    let json = parse_json(&text).expect("baseline parses");
    assert_eq!(
        json.get("deterministic").and_then(Json::as_bool),
        Some(true),
        "committed baseline must be deterministic"
    );
    assert_eq!(
        json.get("per_request_matches_batched")
            .and_then(Json::as_bool),
        Some(true),
        "batch admission must not change responses"
    );
    let sweep = json
        .get("sweep")
        .and_then(Json::as_arr)
        .expect("sweep array");
    assert_eq!(sweep.len(), SWEEP_CONNS.len());
    for (point, conns) in sweep.iter().zip(SWEEP_CONNS) {
        assert_eq!(
            point.get("connections").and_then(Json::as_f64),
            Some(conns as f64)
        );
        assert_eq!(
            point.get("deterministic").and_then(Json::as_bool),
            Some(true)
        );
    }
    let digests = committed_digests(&text);
    assert_eq!(
        digests.len(),
        SWEEP_CONNS.len(),
        "one digest per sweep point"
    );
    assert!(
        digests.iter().all(|&d| d != 0),
        "digests must be non-trivial"
    );
}

/// Digest drift gate: a live sweep at the committed request count must
/// reproduce the committed response digests bit-for-bit. Throughput may
/// move with the machine; the bytes on the wire may not.
#[test]
fn live_netbench_digests_match_the_committed_baseline() {
    let text = std::fs::read_to_string(baseline_path()).expect("committed BENCH_serve_net.json");
    let json = parse_json(&text).expect("baseline parses");
    let per_conn = json
        .get("requests_per_conn")
        .and_then(Json::as_f64)
        .expect("requests_per_conn") as usize;
    let committed = committed_digests(&text);

    let live = netbench::run(per_conn);
    assert!(
        live.deterministic,
        "live sweep must reproduce its own digests"
    );
    assert!(
        live.per_request_matches_batched,
        "live per-request path must match the batched digest"
    );
    let live_digests: Vec<u64> = live.sweep.iter().map(|p| p.digest).collect();
    assert_eq!(
        live_digests, committed,
        "response digests drifted from the committed BENCH_serve_net.json — \
         if the wire behavior change is intentional, regenerate the baseline"
    );
}
