//! Property-based tests for the optimization substrate.

use mbp_optim::exact::{maximize_revenue_exact, BuyerPoint};
use mbp_optim::isotonic::{is_relaxed_feasible, pava_non_decreasing, project_relaxed_cone};
use mbp_optim::knapsack::{CoverOracle, Item};
use mbp_optim::simplex::{Cmp, LinearProgram, LpStatus};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// PAVA output is isotonic and is a *projection*: it never moves a
    /// point further than the raw violation requires (firmly nonexpansive
    /// in particular means ‖pava(y) − y‖ ≤ ‖z − y‖ for any feasible z; we
    /// check against the sorted input as one such feasible point).
    #[test]
    fn pava_is_isotonic_projection(ys in prop::collection::vec(-10.0..10.0f64, 1..24)) {
        let w = vec![1.0; ys.len()];
        let out = pava_non_decreasing(&ys, &w);
        for pair in out.windows(2) {
            prop_assert!(pair[0] <= pair[1] + 1e-12);
        }
        // Projection optimality: distance to output ≤ distance to any
        // isotonic candidate; use the sorted input as candidate.
        let mut sorted = ys.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let dist = |z: &[f64]| -> f64 {
            z.iter().zip(&ys).map(|(a, b)| (a - b) * (a - b)).sum()
        };
        prop_assert!(dist(&out) <= dist(&sorted) + 1e-9);
        // Mean is preserved (PAVA pools means).
        let mean_in: f64 = ys.iter().sum::<f64>() / ys.len() as f64;
        let mean_out: f64 = out.iter().sum::<f64>() / out.len() as f64;
        prop_assert!((mean_in - mean_out).abs() < 1e-9);
    }

    /// Dykstra's projection always lands in the cone, and projecting twice
    /// is the same as projecting once (idempotence).
    #[test]
    fn dykstra_projection_idempotent(
        ys in prop::collection::vec(0.0..20.0f64, 1..12),
        gaps in prop::collection::vec(0.5..3.0f64, 1..12),
    ) {
        let n = ys.len().min(gaps.len());
        let ys = &ys[..n];
        let mut a = Vec::with_capacity(n);
        let mut acc = 0.0;
        for g in &gaps[..n] {
            acc += g;
            a.push(acc);
        }
        let p1 = project_relaxed_cone(ys, &a, 1e-10);
        prop_assert!(is_relaxed_feasible(&p1.z, &a, 1e-7), "residual {}", p1.residual);
        let p2 = project_relaxed_cone(&p1.z, &a, 1e-10);
        for (x, y) in p1.z.iter().zip(&p2.z) {
            prop_assert!((x - y).abs() < 1e-6, "not idempotent: {x} vs {y}");
        }
    }

    /// The covering oracle is monotone and subadditive for arbitrary item
    /// sets — the properties that make `μ` a valid pricing extension.
    #[test]
    fn cover_oracle_monotone_subadditive(
        items in prop::collection::vec((1u64..12, 0.1..20.0f64), 1..6)
    ) {
        let its: Vec<Item> = items.iter().map(|&(w, c)| Item::new(w, c)).collect();
        let horizon = 30u64;
        let oracle = CoverOracle::build(&its, horizon);
        for x in 0..horizon {
            prop_assert!(oracle.mu(x) <= oracle.mu(x + 1) + 1e-12);
        }
        for x in 0..=15u64 {
            for y in 0..=(horizon - 15) {
                prop_assert!(oracle.mu(x + y) <= oracle.mu(x) + oracle.mu(y) + 1e-9);
            }
        }
    }

    /// The branch-and-bound exact solver agrees with dumb full enumeration
    /// of served subsets on random small instances.
    #[test]
    fn exact_solver_matches_enumeration(
        raw in prop::collection::vec((1u64..5, 0.5..40.0f64, 0.1..2.0f64), 1..6)
    ) {
        // Build strictly increasing integer grid.
        let mut a = 0u64;
        let mut pts = Vec::new();
        for &(da, v, b) in &raw {
            a += da;
            pts.push(BuyerPoint::new(a, v, b));
        }
        let sol = maximize_revenue_exact(&pts);
        // Enumerate every subset by brute force.
        let n = pts.len();
        let horizon = pts.last().unwrap().a;
        let mut best = 0.0f64;
        for mask in 0u32..(1 << n) {
            let items: Vec<Item> = pts
                .iter()
                .enumerate()
                .filter(|&(j, _)| mask & (1 << j) != 0)
                .map(|(_, p)| Item::new(p.a, p.valuation))
                .collect();
            if items.is_empty() {
                continue;
            }
            let oracle = CoverOracle::build(&items, horizon);
            let mut rev = 0.0;
            for p in &pts {
                let w = oracle.mu(p.a);
                if w <= p.valuation {
                    rev += p.demand * w;
                }
            }
            best = best.max(rev);
        }
        prop_assert!((sol.revenue - best).abs() < 1e-9, "{} vs {best}", sol.revenue);
    }

    /// Simplex on random feasible bounded LPs returns a point that is
    /// feasible and no worse than a sampled interior candidate.
    #[test]
    fn simplex_feasible_and_competitive(
        c in prop::collection::vec(-3.0..3.0f64, 2..5),
        rows in prop::collection::vec((prop::collection::vec(0.1..2.0f64, 4), 1.0..10.0f64), 1..5),
    ) {
        let n = c.len();
        let mut lp = LinearProgram::new(n, c.clone());
        // All-positive coefficients with positive rhs: bounded iff c >= 0
        // could still be unbounded for negative c; add a box to bound.
        for (coef, b) in &rows {
            lp.constrain(coef[..n].to_vec(), Cmp::Le, *b);
        }
        for j in 0..n {
            let mut e = vec![0.0; n];
            e[j] = 1.0;
            lp.constrain(e, Cmp::Le, 5.0);
        }
        let sol = lp.minimize();
        prop_assert_eq!(sol.status, LpStatus::Optimal);
        // Feasibility.
        for (coef, b) in &rows {
            let lhs: f64 = coef[..n].iter().zip(&sol.x).map(|(a, x)| a * x).sum();
            prop_assert!(lhs <= b + 1e-7);
        }
        for &x in &sol.x {
            prop_assert!((-1e-9..=5.0 + 1e-7).contains(&x));
        }
        // The origin is feasible, so the optimum is ≤ 0 whenever it
        // beats the origin's objective (0).
        prop_assert!(sol.objective <= 1e-9);
    }
}
