//! Isotonic regression and projection onto the relaxed arbitrage-free set.
//!
//! Problem (4) of the paper constrains the price vector `z` to the cone
//!
//! ```text
//! C = { z ≥ 0 : z₁ ≤ z₂ ≤ … ≤ z_n,  z₁/a₁ ≥ z₂/a₂ ≥ … ≥ z_n/a_n }
//! ```
//!
//! (for `a` sorted ascending). The `T²_pi` price-interpolation objective is
//! the Euclidean projection of the target prices onto `C`, which we compute
//! with Dykstra's alternating projections; each sub-projection is a weighted
//! pool-adjacent-violators (PAVA) pass:
//!
//! * projection onto `{z non-decreasing}` is plain PAVA;
//! * projection onto `{z_j/a_j non-increasing}` is PAVA on `u_j = z_j/a_j`
//!   with weights `a_j²` (substitute and expand the square);
//! * projection onto `{z ≥ 0}` is a clamp.
//!
//! Dykstra (unlike naive alternating projection) converges to the *exact*
//! projection onto the intersection of convex sets.

/// Weighted isotonic regression: minimizes `Σ wᵢ (zᵢ − yᵢ)²` subject to
/// `z` non-decreasing, via pool-adjacent-violators.
///
/// ```
/// use mbp_optim::isotonic::pava_non_decreasing;
///
/// let fitted = pava_non_decreasing(&[1.0, 3.0, 2.0], &[1.0, 1.0, 1.0]);
/// assert_eq!(fitted, vec![1.0, 2.5, 2.5]); // violating pair pooled
/// ```
///
/// # Panics
/// Panics when `y.len() != w.len()` or any weight is non-positive.
pub fn pava_non_decreasing(y: &[f64], w: &[f64]) -> Vec<f64> {
    assert_eq!(y.len(), w.len(), "values and weights must align");
    assert!(w.iter().all(|&x| x > 0.0), "weights must be positive");
    let n = y.len();
    if n == 0 {
        return Vec::new();
    }
    // Blocks of pooled indices: (mean, weight, count).
    let mut means: Vec<f64> = Vec::with_capacity(n);
    let mut weights: Vec<f64> = Vec::with_capacity(n);
    let mut counts: Vec<usize> = Vec::with_capacity(n);
    for i in 0..n {
        means.push(y[i]);
        weights.push(w[i]);
        counts.push(1);
        // Merge backwards while order is violated.
        while means.len() >= 2 {
            let m = means.len();
            if means[m - 2] <= means[m - 1] {
                break;
            }
            let wt = weights[m - 2] + weights[m - 1];
            let mean = (means[m - 2] * weights[m - 2] + means[m - 1] * weights[m - 1]) / wt;
            means[m - 2] = mean;
            weights[m - 2] = wt;
            counts[m - 2] += counts[m - 1];
            means.pop();
            weights.pop();
            counts.pop();
        }
    }
    let mut out = Vec::with_capacity(n);
    for (m, c) in means.iter().zip(&counts) {
        out.extend(std::iter::repeat_n(*m, *c));
    }
    out
}

/// Weighted antitonic regression: minimizes `Σ wᵢ (zᵢ − yᵢ)²` subject to
/// `z` non-increasing.
pub fn pava_non_increasing(y: &[f64], w: &[f64]) -> Vec<f64> {
    let neg: Vec<f64> = y.iter().map(|v| -v).collect();
    pava_non_decreasing(&neg, w)
        .into_iter()
        .map(|v| -v)
        .collect()
}

/// Euclidean projection of `y` onto `{z : z_j/a_j non-increasing}`.
///
/// Substituting `u_j = z_j/a_j` turns `‖z − y‖²` into
/// `Σ a_j² (u_j − y_j/a_j)²`, a weighted antitonic regression.
pub fn project_ratio_non_increasing(y: &[f64], a: &[f64]) -> Vec<f64> {
    assert_eq!(y.len(), a.len());
    assert!(a.iter().all(|&x| x > 0.0), "grid points must be positive");
    let u: Vec<f64> = y.iter().zip(a).map(|(v, ai)| v / ai).collect();
    let w: Vec<f64> = a.iter().map(|ai| ai * ai).collect();
    pava_non_increasing(&u, &w)
        .into_iter()
        .zip(a)
        .map(|(ui, ai)| ui * ai)
        .collect()
}

/// Result of [`project_relaxed_cone`].
#[derive(Debug, Clone)]
pub struct Projection {
    /// The projected point.
    pub z: Vec<f64>,
    /// Number of Dykstra sweeps used.
    pub iterations: usize,
    /// Max constraint violation of the returned point.
    pub residual: f64,
}

/// Projects `y` onto the relaxed arbitrage-free cone `C` (see module docs)
/// with Dykstra's algorithm.
///
/// `a` must be strictly positive and sorted ascending. The returned point is
/// feasible up to `tol` and is the Euclidean projection up to the stopping
/// tolerance; 200 sweeps are ample for the `n ≤ 1000` instances the
/// marketplace generates.
///
/// # Panics
/// Panics when inputs misalign or `a` is not positive ascending.
pub fn project_relaxed_cone(y: &[f64], a: &[f64], tol: f64) -> Projection {
    assert_eq!(y.len(), a.len());
    assert!(
        a.windows(2).all(|w| w[0] <= w[1]) && a.iter().all(|&x| x > 0.0),
        "grid must be positive and ascending"
    );
    let n = y.len();
    if n == 0 {
        return Projection {
            z: Vec::new(),
            iterations: 0,
            residual: 0.0,
        };
    }
    let ones = vec![1.0; n];
    let mut z = y.to_vec();
    // Dykstra correction terms, one per constraint set.
    let mut p = vec![0.0; n]; // for the monotone cone
    let mut q = vec![0.0; n]; // for the ratio cone
    let mut r = vec![0.0; n]; // for the non-negative orthant
    let mut iterations = 0;
    let max_sweeps = 500;
    for sweep in 0..max_sweeps {
        iterations = sweep + 1;
        let prev = z.clone();

        // Set 1: monotone non-decreasing.
        let input: Vec<f64> = z.iter().zip(&p).map(|(zi, pi)| zi + pi).collect();
        let proj = pava_non_decreasing(&input, &ones);
        for i in 0..n {
            p[i] = input[i] - proj[i];
        }
        z = proj;

        // Set 2: ratio non-increasing.
        let input: Vec<f64> = z.iter().zip(&q).map(|(zi, qi)| zi + qi).collect();
        let proj = project_ratio_non_increasing(&input, a);
        for i in 0..n {
            q[i] = input[i] - proj[i];
        }
        z = proj;

        // Set 3: non-negativity.
        let input: Vec<f64> = z.iter().zip(&r).map(|(zi, ri)| zi + ri).collect();
        let proj: Vec<f64> = input.iter().map(|v| v.max(0.0)).collect();
        for i in 0..n {
            r[i] = input[i] - proj[i];
        }
        z = proj;

        let delta: f64 = z
            .iter()
            .zip(&prev)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max);
        if delta < tol * 1e-2 && relaxed_cone_residual(&z, a) <= tol {
            break;
        }
    }
    let residual = relaxed_cone_residual(&z, a);
    mbp_obs::counter_add("mbp.optim.isotonic.sweeps", iterations as u64);
    Projection {
        z,
        iterations,
        residual,
    }
}

/// Maximum violation of the relaxed-cone constraints at `z`
/// (0 means feasible).
pub fn relaxed_cone_residual(z: &[f64], a: &[f64]) -> f64 {
    let mut res: f64 = 0.0;
    for i in 0..z.len() {
        res = res.max(-z[i]); // z ≥ 0
        if i + 1 < z.len() {
            res = res.max(z[i] - z[i + 1]); // monotone
            res = res.max(z[i + 1] / a[i + 1] - z[i] / a[i]); // ratio
        }
    }
    res
}

/// `true` when `z` satisfies the relaxed constraints of problem (4) within
/// `tol`.
pub fn is_relaxed_feasible(z: &[f64], a: &[f64], tol: f64) -> bool {
    relaxed_cone_residual(z, a) <= tol
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pava_identity_on_sorted_input() {
        let y = [1.0, 2.0, 3.0];
        let w = [1.0, 1.0, 1.0];
        assert_eq!(pava_non_decreasing(&y, &w), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn pava_pools_violations() {
        let y = [3.0, 1.0];
        let w = [1.0, 1.0];
        assert_eq!(pava_non_decreasing(&y, &w), vec![2.0, 2.0]);
    }

    #[test]
    fn pava_weighted_pooling() {
        // Heavier first point pulls the pooled mean toward it.
        let y = [3.0, 1.0];
        let w = [3.0, 1.0];
        let out = pava_non_decreasing(&y, &w);
        assert!((out[0] - 2.5).abs() < 1e-12);
        assert_eq!(out[0], out[1]);
    }

    #[test]
    fn pava_cascading_merge() {
        let y = [1.0, 4.0, 3.0, 2.0];
        let w = [1.0; 4];
        let out = pava_non_decreasing(&y, &w);
        assert_eq!(out, vec![1.0, 3.0, 3.0, 3.0]);
    }

    #[test]
    fn antitonic_is_mirrored() {
        let y = [1.0, 3.0];
        let w = [1.0, 1.0];
        assert_eq!(pava_non_increasing(&y, &w), vec![2.0, 2.0]);
    }

    #[test]
    fn ratio_projection_feasible_and_optimal_on_feasible_input() {
        let a = [1.0, 2.0, 4.0];
        let y = [2.0, 3.0, 5.0]; // ratios 2, 1.5, 1.25 already non-increasing
        let z = project_ratio_non_increasing(&y, &a);
        for (zi, yi) in z.iter().zip(&y) {
            assert!((zi - yi).abs() < 1e-12);
        }
    }

    #[test]
    fn projection_returns_feasible_point() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let y = [5.0, 1.0, 9.0, 2.0];
        let proj = project_relaxed_cone(&y, &a, 1e-9);
        assert!(
            is_relaxed_feasible(&proj.z, &a, 1e-8),
            "residual {}",
            proj.residual
        );
    }

    #[test]
    fn projection_is_identity_on_feasible_input() {
        let a = [1.0, 2.0, 4.0];
        let y = [2.0, 3.0, 5.0]; // monotone and ratio-decreasing
        let proj = project_relaxed_cone(&y, &a, 1e-10);
        for (zi, yi) in proj.z.iter().zip(&y) {
            assert!((zi - yi).abs() < 1e-8);
        }
    }

    /// Verify Dykstra against a brute-force grid search on a 2-point case.
    #[test]
    fn projection_matches_grid_search() {
        let a = [1.0, 2.0];
        let y = [0.2, 3.0]; // violates ratio? ratios 0.2 vs 1.5 → yes
        let proj = project_relaxed_cone(&y, &a, 1e-10);
        // Grid search the feasible set.
        let mut best = (f64::INFINITY, 0.0, 0.0);
        let step = 0.002;
        let mut z1 = 0.0;
        while z1 <= 4.0 {
            let mut z2 = z1;
            let hi = 2.0 * z1; // ratio constraint: z2/2 ≤ z1
            let mut zz2 = z2;
            while zz2 <= hi + 1e-12 {
                let dist = (z1 - y[0]).powi(2) + (zz2 - y[1]).powi(2);
                if dist < best.0 {
                    best = (dist, z1, zz2);
                }
                zz2 += step;
            }
            z2 = zz2;
            let _ = z2;
            z1 += step;
        }
        assert!(
            (proj.z[0] - best.1).abs() < 0.01,
            "{} vs {}",
            proj.z[0],
            best.1
        );
        assert!(
            (proj.z[1] - best.2).abs() < 0.01,
            "{} vs {}",
            proj.z[1],
            best.2
        );
    }

    #[test]
    fn residual_detects_each_violation() {
        let a = [1.0, 2.0];
        assert!(relaxed_cone_residual(&[0.0, 0.0], &a) == 0.0);
        assert!(relaxed_cone_residual(&[-1.0, 0.0], &a) >= 1.0); // negativity
        assert!(relaxed_cone_residual(&[2.0, 1.0], &a) >= 1.0); // monotone
        assert!(relaxed_cone_residual(&[1.0, 3.0], &a) >= 0.49); // ratio
    }

    #[test]
    fn empty_input_is_ok() {
        let proj = project_relaxed_cone(&[], &[], 1e-9);
        assert!(proj.z.is_empty());
        assert!(pava_non_decreasing(&[], &[]).is_empty());
    }
}
