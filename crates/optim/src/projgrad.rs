//! Projected gradient ascent over the relaxed arbitrage-free cone.
//!
//! Problem (4) of the paper is stated for a general objective
//! `T(z₁, …, z_n)`; the dynamic program handles `T_bv` and the dedicated
//! QP/LP solvers handle the two interpolation objectives. This module adds
//! the general case for **separable concave** objectives `T = Σ Tᵢ(zᵢ)`
//! (the setting of Proposition 2): projected gradient ascent, with the
//! projection computed exactly by the Dykstra/PAVA machinery in
//! [`isotonic`](crate::isotonic).
//!
//! Since the feasible set is a closed convex cone and the objective is
//! concave, projected gradient with a diminishing-or-fixed step converges
//! to the global optimum; we use a fixed step with Armijo-style halving and
//! stop on projected-gradient stationarity.

use crate::isotonic::{project_relaxed_cone, relaxed_cone_residual};

/// A separable concave objective: per-coordinate value and derivative.
pub trait SeparableConcave {
    /// `Tᵢ(z)` — must be concave in `z` for the convergence guarantee.
    fn value(&self, i: usize, z: f64) -> f64;
    /// `dTᵢ/dz`.
    fn gradient(&self, i: usize, z: f64) -> f64;
}

/// Squared-error interpolation objective `−Σ (zᵢ − Pᵢ)²` (the paper's
/// `T²_pi`), as a [`SeparableConcave`] instance.
#[derive(Debug, Clone)]
pub struct SquaredInterpolation {
    /// Target prices.
    pub targets: Vec<f64>,
}

impl SeparableConcave for SquaredInterpolation {
    fn value(&self, i: usize, z: f64) -> f64 {
        let d = z - self.targets[i];
        -d * d
    }
    fn gradient(&self, i: usize, z: f64) -> f64 {
        -2.0 * (z - self.targets[i])
    }
}

/// Smooth concave revenue surrogate `Σ bᵢ·vᵢ·(1 − exp(−zᵢ/vᵢ))·1[zᵢ ≤ vᵢ]`-
/// style objectives can be plugged in through this trait; see the tests
/// for a logarithmic example.
///
/// Result of [`maximize_separable_concave`].
#[derive(Debug, Clone)]
pub struct ProjGradSolution {
    /// The optimal (up to tolerance) feasible point.
    pub z: Vec<f64>,
    /// Objective value at `z`.
    pub objective: f64,
    /// Outer iterations used.
    pub iterations: usize,
    /// Final step-to-step movement (convergence diagnostic).
    pub movement: f64,
}

/// Maximizes `Σ Tᵢ(zᵢ)` over the relaxed cone
/// `{z ≥ 0, z non-decreasing, z/a non-increasing}` by projected gradient
/// ascent from `start` (clipped into the cone first).
///
/// # Panics
/// Panics when shapes disagree or `a` is not positive ascending.
pub fn maximize_separable_concave(
    obj: &impl SeparableConcave,
    a: &[f64],
    start: &[f64],
    max_iters: usize,
    tol: f64,
) -> ProjGradSolution {
    assert_eq!(a.len(), start.len(), "grid and start must align");
    assert!(
        a.windows(2).all(|w| w[0] < w[1]) && a.iter().all(|&x| x > 0.0),
        "grid must be positive ascending"
    );
    let n = a.len();
    let total = |z: &[f64]| -> f64 { (0..n).map(|i| obj.value(i, z[i])).sum() };
    let mut z = project_relaxed_cone(start, a, 1e-10).z;
    let mut value = total(&z);
    let mut step = 1.0;
    let mut movement = f64::INFINITY;
    let mut iterations = 0;
    for it in 0..max_iters {
        iterations = it + 1;
        let grad: Vec<f64> = (0..n).map(|i| obj.gradient(i, z[i])).collect();
        // Try increasing steps first (cheap adaptive scheme), halve on
        // failure to improve.
        step *= 2.0;
        let mut improved = false;
        for _ in 0..40 {
            let trial_raw: Vec<f64> = z.iter().zip(&grad).map(|(zi, gi)| zi + step * gi).collect();
            let trial = project_relaxed_cone(&trial_raw, a, 1e-10).z;
            let tv = total(&trial);
            if tv > value + 1e-15 {
                movement = z
                    .iter()
                    .zip(&trial)
                    .map(|(x, y)| (x - y).abs())
                    .fold(0.0, f64::max);
                z = trial;
                value = tv;
                improved = true;
                break;
            }
            step *= 0.5;
        }
        if !improved || movement < tol {
            break;
        }
    }
    debug_assert!(relaxed_cone_residual(&z, a) <= 1e-6);
    mbp_obs::counter_add("mbp.optim.projgrad.iterations", iterations as u64);
    ProjGradSolution {
        objective: value,
        z,
        iterations,
        movement,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isotonic::is_relaxed_feasible;

    #[test]
    fn squared_interpolation_matches_dykstra_projection() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let targets = vec![5.0, 1.0, 9.0, 2.0];
        let obj = SquaredInterpolation {
            targets: targets.clone(),
        };
        let pg = maximize_separable_concave(&obj, &a, &targets, 2000, 1e-12);
        let proj = project_relaxed_cone(&targets, &a, 1e-12);
        for (x, y) in pg.z.iter().zip(&proj.z) {
            assert!((x - y).abs() < 1e-4, "projgrad {x} vs dykstra {y}");
        }
        assert!(is_relaxed_feasible(&pg.z, &a, 1e-6));
    }

    #[test]
    fn feasible_targets_are_fixed_points() {
        let a = [1.0, 2.0, 4.0];
        let targets = vec![2.0, 3.0, 5.0];
        let obj = SquaredInterpolation {
            targets: targets.clone(),
        };
        let pg = maximize_separable_concave(&obj, &a, &targets, 500, 1e-12);
        for (x, t) in pg.z.iter().zip(&targets) {
            assert!((x - t).abs() < 1e-6);
        }
        assert!(pg.objective > -1e-10);
    }

    /// A saturating-log revenue surrogate: concave, increasing, bounded by
    /// caps — the optimizer should push prices toward the caps while
    /// respecting the cone.
    struct LogRevenue {
        caps: Vec<f64>,
    }

    impl SeparableConcave for LogRevenue {
        fn value(&self, i: usize, z: f64) -> f64 {
            // ln(1 + z) with a smooth quadratic penalty beyond the cap:
            // concave and differentiable, maximized just above the cap.
            let c = self.caps[i];
            let over = (z - c).max(0.0);
            (1.0 + z).ln() - over * over
        }
        fn gradient(&self, i: usize, z: f64) -> f64 {
            let c = self.caps[i];
            1.0 / (1.0 + z) - 2.0 * (z - c).max(0.0)
        }
    }

    #[test]
    fn log_revenue_pushes_to_caps_within_cone() {
        let a = [1.0, 2.0, 4.0];
        let caps = vec![10.0, 12.0, 13.0];
        let obj = LogRevenue { caps: caps.clone() };
        let pg = maximize_separable_concave(&obj, &a, &[0.1, 0.2, 0.4], 5000, 1e-12);
        assert!(is_relaxed_feasible(&pg.z, &a, 1e-6));
        // Each coordinate lands just above its cap (where the gradient of
        // ln(1+z) balances the quadratic over-cap penalty); the cone never
        // binds for this cap pattern.
        for (zi, &c) in pg.z.iter().zip(&caps) {
            assert!((zi - c).abs() < 0.1, "{:?} vs caps {caps:?}", pg.z);
        }
    }

    #[test]
    fn respects_binding_ratio_constraints() {
        // Cap pattern where the ratio constraint must bind: big target at
        // high a, tiny at low a.
        let a = [1.0, 10.0];
        let obj = SquaredInterpolation {
            targets: vec![0.0, 100.0],
        };
        let pg = maximize_separable_concave(&obj, &a, &[0.0, 0.0], 4000, 1e-12);
        // Optimum of min (z1)² + (z2−100)² s.t. z2 ≤ 10 z1, z2 ≥ z1:
        // along z2 = 10 z1: f = z1² + (10 z1 − 100)² → z1 = 1000/101 ≈ 9.90.
        assert!((pg.z[0] - 1000.0 / 101.0).abs() < 1e-2, "{:?}", pg.z);
        assert!((pg.z[1] - 10.0 * pg.z[0]).abs() < 1e-4);
    }

    #[test]
    #[should_panic(expected = "align")]
    fn shape_mismatch_panics() {
        let obj = SquaredInterpolation { targets: vec![1.0] };
        maximize_separable_concave(&obj, &[1.0, 2.0], &[1.0], 10, 1e-6);
    }
}
