//! The unbounded min-cost covering knapsack — the paper's subadditive
//! interpolation oracle.
//!
//! The proof of Theorem 7 constructs, for points `(a_j, z_j)` with integer
//! `a_j`, the function `μ(x) = min{Σ kᵢ zᵢ : kᵢ ∈ Z≥0, Σ kᵢ aᵢ ≥ x}`: the
//! cheapest unbounded multiset of items whose weights *cover* `x`. Two facts
//! make `μ` central to arbitrage-free pricing:
//!
//! 1. `μ` is non-decreasing and subadditive by construction (concatenate
//!    covers), so `min(μ, cap)` interpolates whenever interpolation is
//!    possible at all;
//! 2. a monotone subadditive function through the points exists **iff**
//!    `μ(a_j) = z_j` for every `j` — a strictly cheaper cover of `a_j` is
//!    precisely an arbitrage opportunity against price `z_j`.
//!
//! The [`exact`](crate::exact) revenue maximizer uses `μ` with costs set to
//! buyer valuations to compute the component-wise greatest arbitrage-free
//! price vector under caps.

/// One knapsack item: integer weight `a` and non-negative cost `z`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Item {
    /// Weight (the paper's grid point `a_j`, a positive integer).
    pub weight: u64,
    /// Cost (the price `z_j ≥ 0`).
    pub cost: f64,
}

impl Item {
    /// Creates an item.
    ///
    /// # Panics
    /// Panics for zero weight or negative/non-finite cost.
    pub fn new(weight: u64, cost: f64) -> Self {
        assert!(weight > 0, "item weight must be positive");
        assert!(
            cost >= 0.0 && cost.is_finite(),
            "item cost must be finite and >= 0, got {cost}"
        );
        Item { weight, cost }
    }
}

/// The covering-cost function `μ` for a fixed item set, with all values up
/// to a target horizon precomputed by dynamic programming.
///
/// ```
/// use mbp_optim::knapsack::{CoverOracle, Item};
///
/// let oracle = CoverOracle::build(&[Item::new(5, 4.0), Item::new(3, 2.0)], 10);
/// assert_eq!(oracle.mu(6), 4.0); // two weight-3 items at cost 2 + 2
/// assert_eq!(oracle.mu(8), 6.0); // 5 + 3
/// ```
#[derive(Debug, Clone)]
pub struct CoverOracle {
    items: Vec<Item>,
    /// `table[x] = μ(x)` for `x = 0..=horizon`.
    table: Vec<f64>,
}

impl CoverOracle {
    /// Builds the oracle for `items` with `μ` tabulated up to `horizon`.
    ///
    /// Runs in `O(horizon × items)`. With an empty item set every positive
    /// target is uncoverable and `μ = +∞`.
    pub fn build(items: &[Item], horizon: u64) -> Self {
        let h = horizon as usize;
        let mut table = vec![f64::INFINITY; h + 1];
        table[0] = 0.0;
        for x in 1..=h {
            let mut best = f64::INFINITY;
            for it in items {
                let rest = x.saturating_sub(it.weight as usize);
                let prev = table[rest];
                if prev.is_finite() {
                    best = best.min(prev + it.cost);
                }
            }
            table[x] = best;
        }
        CoverOracle {
            items: items.to_vec(),
            table,
        }
    }

    /// `μ(x)`: the cheapest multiset cost covering weight `x`.
    ///
    /// # Panics
    /// Panics when `x` exceeds the tabulated horizon.
    pub fn mu(&self, x: u64) -> f64 {
        self.table[x as usize]
    }

    /// Largest tabulated target.
    pub fn horizon(&self) -> u64 {
        (self.table.len() - 1) as u64
    }

    /// The item set the oracle was built over.
    pub fn items(&self) -> &[Item] {
        &self.items
    }

    /// Reconstructs one optimal covering multiset for target `x` as
    /// `(item index, multiplicity)` pairs; `None` when `x` is uncoverable.
    pub fn witness(&self, x: u64) -> Option<Vec<(usize, u64)>> {
        if !self.mu(x).is_finite() {
            return None;
        }
        let mut counts = vec![0u64; self.items.len()];
        let mut remaining = x as usize;
        // Greedily re-trace the DP decisions.
        while remaining > 0 {
            let target = self.table[remaining];
            let mut advanced = false;
            for (idx, it) in self.items.iter().enumerate() {
                let rest = remaining.saturating_sub(it.weight as usize);
                if self.table[rest].is_finite()
                    && (self.table[rest] + it.cost - target).abs() <= 1e-9 * (1.0 + target.abs())
                {
                    counts[idx] += 1;
                    remaining = rest;
                    advanced = true;
                    break;
                }
            }
            if !advanced {
                return None; // numerical dead end; should not happen
            }
        }
        Some(
            counts
                .into_iter()
                .enumerate()
                .filter(|&(_, k)| k > 0)
                .collect(),
        )
    }
}

/// The *cardinality-bounded* covering-cost function
/// `μ_k(x) = min{Σ kᵢ·cᵢ : Σ kᵢ·aᵢ ≥ x, Σ kᵢ ≤ k}` — Definition 3's
/// `k`-arbitrage uses at most `k` purchased instances, so this oracle
/// answers "is there a profitable attack with a bundle of at most `k`
/// models?" exactly, not just in the unbounded limit.
#[derive(Debug, Clone)]
pub struct BoundedCoverOracle {
    items: Vec<Item>,
    max_items: usize,
    /// `table[c][x] = μ_c(x)` for `c = 0..=max_items`, `x = 0..=horizon`.
    table: Vec<Vec<f64>>,
}

impl BoundedCoverOracle {
    /// Builds the oracle for bundles of at most `max_items` purchases.
    ///
    /// Runs in `O(max_items × horizon × items)`.
    ///
    /// # Panics
    /// Panics when `max_items == 0`.
    pub fn build(items: &[Item], horizon: u64, max_items: usize) -> Self {
        assert!(max_items > 0, "a bundle needs at least one item");
        let h = horizon as usize;
        let mut table = vec![vec![f64::INFINITY; h + 1]; max_items + 1];
        for row in table.iter_mut() {
            row[0] = 0.0;
        }
        for c in 1..=max_items {
            for x in 1..=h {
                let mut best = table[c - 1][x]; // using fewer items is allowed
                for it in items {
                    let rest = x.saturating_sub(it.weight as usize);
                    let prev = table[c - 1][rest];
                    if prev.is_finite() {
                        best = best.min(prev + it.cost);
                    }
                }
                table[c][x] = best;
            }
        }
        BoundedCoverOracle {
            items: items.to_vec(),
            max_items,
            table,
        }
    }

    /// `μ_k(x)`: cheapest bundle of at most `max_items` items covering `x`
    /// (`+∞` when no such bundle exists).
    ///
    /// # Panics
    /// Panics when `x` exceeds the tabulated horizon.
    pub fn mu(&self, x: u64) -> f64 {
        self.table[self.max_items][x as usize]
    }

    /// Bundle-size bound this oracle was built for.
    pub fn max_items(&self) -> usize {
        self.max_items
    }

    /// Reconstructs one optimal bounded cover for `x` as
    /// `(item index, multiplicity)` pairs; `None` when uncoverable within
    /// the bound.
    pub fn witness(&self, x: u64) -> Option<Vec<(usize, u64)>> {
        if !self.mu(x).is_finite() {
            return None;
        }
        let mut counts = vec![0u64; self.items.len()];
        let mut remaining = x as usize;
        let mut budget = self.max_items;
        while remaining > 0 && budget > 0 {
            let target = self.table[budget][remaining];
            if (self.table[budget - 1][remaining] - target).abs() <= 1e-9 * (1.0 + target.abs()) {
                budget -= 1; // this level used fewer items
                continue;
            }
            let mut advanced = false;
            for (idx, it) in self.items.iter().enumerate() {
                let rest = remaining.saturating_sub(it.weight as usize);
                let prev = self.table[budget - 1][rest];
                if prev.is_finite()
                    && (prev + it.cost - target).abs() <= 1e-9 * (1.0 + target.abs())
                {
                    counts[idx] += 1;
                    remaining = rest;
                    budget -= 1;
                    advanced = true;
                    break;
                }
            }
            if !advanced {
                return None; // numerical dead end; should not happen
            }
        }
        (remaining == 0).then(|| {
            counts
                .into_iter()
                .enumerate()
                .filter(|&(_, k)| k > 0)
                .collect()
        })
    }
}

/// Checks whether a positive, monotone, subadditive function through the
/// integer-grid points exists (the paper's *subadditive interpolation*
/// decision problem, Definition 6).
///
/// By the Theorem 7 construction this holds iff no strictly cheaper cover of
/// any `a_j` exists, i.e. `μ(a_j) = z_j` for all `j` (tolerance `tol`
/// absorbs float error).
pub fn subadditive_interpolation_feasible(points: &[(u64, f64)], tol: f64) -> bool {
    if points.is_empty() {
        return true;
    }
    let items: Vec<Item> = points.iter().map(|&(a, z)| Item::new(a, z)).collect();
    let horizon = points.iter().map(|&(a, _)| a).max().unwrap_or(0);
    let oracle = CoverOracle::build(&items, horizon);
    points.iter().all(|&(a, z)| oracle.mu(a) >= z - tol)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mu_of_zero_is_zero() {
        let oracle = CoverOracle::build(&[Item::new(2, 3.0)], 10);
        assert_eq!(oracle.mu(0), 0.0);
    }

    #[test]
    fn single_item_covering() {
        let oracle = CoverOracle::build(&[Item::new(3, 2.0)], 10);
        assert_eq!(oracle.mu(1), 2.0); // one copy covers 1
        assert_eq!(oracle.mu(3), 2.0);
        assert_eq!(oracle.mu(4), 4.0); // two copies
        assert_eq!(oracle.mu(9), 6.0);
        assert_eq!(oracle.mu(10), 8.0);
    }

    #[test]
    fn picks_cheapest_combination() {
        let items = [Item::new(5, 4.0), Item::new(3, 2.0)];
        let oracle = CoverOracle::build(&items, 15);
        assert_eq!(oracle.mu(6), 4.0); // 3+3 at 2+2, or 5+3 at 6, or 5+5 at 8
        assert_eq!(oracle.mu(5), 4.0); // one 5 at 4 vs 3+3 at 4 — tie
        assert_eq!(oracle.mu(8), 6.0); // 5+3
    }

    #[test]
    fn empty_item_set_is_uncoverable() {
        let oracle = CoverOracle::build(&[], 5);
        assert_eq!(oracle.mu(0), 0.0);
        assert!(oracle.mu(1).is_infinite());
    }

    #[test]
    fn witness_reconstructs_cover() {
        let items = [Item::new(5, 4.0), Item::new(3, 2.0)];
        let oracle = CoverOracle::build(&items, 15);
        let w = oracle.witness(8).unwrap();
        let weight: u64 = w.iter().map(|&(i, k)| items[i].weight * k).sum();
        let cost: f64 = w.iter().map(|&(i, k)| items[i].cost * k as f64).sum();
        assert!(weight >= 8);
        assert!((cost - oracle.mu(8)).abs() < 1e-9);
    }

    #[test]
    fn witness_of_uncoverable_is_none() {
        let oracle = CoverOracle::build(&[], 5);
        assert!(oracle.witness(3).is_none());
    }

    #[test]
    fn mu_is_monotone_and_subadditive() {
        let items = [Item::new(2, 1.5), Item::new(5, 3.0), Item::new(7, 3.5)];
        let oracle = CoverOracle::build(&items, 40);
        for x in 0..40 {
            assert!(oracle.mu(x) <= oracle.mu(x + 1) + 1e-12, "monotone at {x}");
        }
        for x in 0..=20u64 {
            for y in 0..=20u64 {
                assert!(
                    oracle.mu(x + y) <= oracle.mu(x) + oracle.mu(y) + 1e-9,
                    "subadditive at {x},{y}"
                );
            }
        }
    }

    #[test]
    fn interpolation_feasible_for_linear_prices() {
        // z = a is trivially interpolable by the identity function.
        let pts = [(1u64, 1.0), (2, 2.0), (5, 5.0)];
        assert!(subadditive_interpolation_feasible(&pts, 1e-9));
    }

    #[test]
    fn interpolation_infeasible_when_combination_undercuts() {
        // Two items of weight 1 at price 1 cover weight 2, so pricing
        // a=2 at 3 > 1+1 is not interpolable.
        let pts = [(1u64, 1.0), (2, 3.0)];
        assert!(!subadditive_interpolation_feasible(&pts, 1e-9));
        // Price 2 is exactly additive — feasible.
        let pts_ok = [(1u64, 1.0), (2, 2.0)];
        assert!(subadditive_interpolation_feasible(&pts_ok, 1e-9));
    }

    #[test]
    fn interpolation_detects_monotonicity_violation() {
        // Bigger weight, smaller price: the cheaper big item covers the
        // small target, undercutting it.
        let pts = [(2u64, 5.0), (4, 1.0)];
        assert!(!subadditive_interpolation_feasible(&pts, 1e-9));
    }

    #[test]
    #[should_panic(expected = "weight must be positive")]
    fn zero_weight_item_panics() {
        Item::new(0, 1.0);
    }

    #[test]
    fn bounded_oracle_respects_cardinality() {
        // One item: weight 1, cost 1. Covering 5 needs 5 copies.
        let items = [Item::new(1, 1.0)];
        let unbounded = CoverOracle::build(&items, 5);
        assert_eq!(unbounded.mu(5), 5.0);
        let k3 = BoundedCoverOracle::build(&items, 5, 3);
        assert!(k3.mu(5).is_infinite(), "3 items cannot cover 5");
        assert_eq!(k3.mu(3), 3.0);
        let k5 = BoundedCoverOracle::build(&items, 5, 5);
        assert_eq!(k5.mu(5), 5.0);
    }

    #[test]
    fn bounded_converges_to_unbounded() {
        let items = [Item::new(2, 1.5), Item::new(5, 3.0), Item::new(7, 3.5)];
        let horizon = 25u64;
        let unbounded = CoverOracle::build(&items, horizon);
        // With enough items allowed, every bounded value matches.
        let k = BoundedCoverOracle::build(&items, horizon, 15);
        for x in 0..=horizon {
            let (a, b) = (k.mu(x), unbounded.mu(x));
            assert!((a - b).abs() < 1e-9, "x={x}: bounded {a} vs unbounded {b}");
        }
        // Bounded values are monotone non-increasing in the budget.
        for budget in 1..6usize {
            let small = BoundedCoverOracle::build(&items, horizon, budget);
            let big = BoundedCoverOracle::build(&items, horizon, budget + 1);
            for x in 0..=horizon {
                assert!(big.mu(x) <= small.mu(x) + 1e-12);
            }
        }
    }

    #[test]
    fn bounded_witness_respects_budget() {
        let items = [Item::new(5, 4.0), Item::new(3, 2.0)];
        let oracle = BoundedCoverOracle::build(&items, 15, 2);
        let w = oracle.witness(8).unwrap();
        let total: u64 = w.iter().map(|&(_, k)| k).sum();
        assert!(total <= 2);
        let weight: u64 = w.iter().map(|&(i, k)| items[i].weight * k).sum();
        assert!(weight >= 8);
        let cost: f64 = w.iter().map(|&(i, k)| items[i].cost * k as f64).sum();
        assert!((cost - oracle.mu(8)).abs() < 1e-9);
        // Covering 15 needs 3 big items — impossible with budget 2.
        assert!(oracle.witness(15).is_none());
    }

    #[test]
    #[should_panic(expected = "at least one item")]
    fn bounded_rejects_zero_budget() {
        BoundedCoverOracle::build(&[Item::new(1, 1.0)], 3, 0);
    }
}
