//! Unbounded subset-sum and the executable Theorem 7 reduction.
//!
//! Theorem 7 of the paper proves that *subadditive interpolation* is
//! coNP-hard by reduction from unbounded subset-sum: given positive integers
//! `w₁ < … < w_n < K`, there is a monotone subadditive function through the
//! points `{(w_j, w_j)} ∪ {(K, K + ½)}` **iff** no non-negative integer
//! combination `Σ k_j w_j` equals `K` exactly.
//!
//! This module makes both sides of the reduction executable so tests can
//! verify the equivalence — a nice end-to-end check that the
//! [`knapsack`](crate::knapsack) feasibility oracle implements the same
//! notion of subadditivity the theorem reasons about.

use crate::knapsack::subadditive_interpolation_feasible;

/// Decides unbounded subset-sum: do non-negative integers `k_j` exist with
/// `Σ k_j · w_j = target`? Classic DP in `O(target · n)`.
///
/// # Panics
/// Panics when any weight is zero (an item of weight zero makes the
/// "unbounded" problem degenerate).
pub fn unbounded_subset_sum(weights: &[u64], target: u64) -> bool {
    assert!(weights.iter().all(|&w| w > 0), "weights must be positive");
    let t = target as usize;
    let mut reach = vec![false; t + 1];
    reach[0] = true;
    for x in 1..=t {
        for &w in weights {
            let w = w as usize;
            if w <= x && reach[x - w] {
                reach[x] = true;
                break;
            }
        }
    }
    reach[t]
}

/// Builds the Theorem 7 interpolation instance for weights `w` and target
/// `K`: points `(w_j, w_j)` for each weight plus `(K, K + ½)`.
pub fn theorem7_instance(weights: &[u64], target: u64) -> Vec<(u64, f64)> {
    assert!(
        weights.iter().all(|&w| w < target),
        "reduction requires all weights below the target"
    );
    let mut pts: Vec<(u64, f64)> = weights.iter().map(|&w| (w, w as f64)).collect();
    pts.push((target, target as f64 + 0.5));
    pts
}

/// Runs the full reduction: returns `(subset_sum_exists, interpolation_feasible)`.
///
/// Theorem 7 asserts these are always logical negations of each other.
pub fn check_reduction(weights: &[u64], target: u64) -> (bool, bool) {
    let sum_exists = unbounded_subset_sum(weights, target);
    let feasible = subadditive_interpolation_feasible(&theorem7_instance(weights, target), 1e-9);
    (sum_exists, feasible)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subset_sum_basics() {
        assert!(unbounded_subset_sum(&[3, 5], 8)); // 3 + 5
        assert!(unbounded_subset_sum(&[3, 5], 9)); // 3·3
        assert!(!unbounded_subset_sum(&[3, 5], 7));
        assert!(!unbounded_subset_sum(&[3, 5], 4));
        assert!(unbounded_subset_sum(&[3, 5], 0)); // empty combination
        assert!(!unbounded_subset_sum(&[2, 4], 9)); // parity obstruction
    }

    #[test]
    fn reduction_negative_case() {
        // 7 is not an unbounded sum of {3, 5} → interpolation feasible.
        let (sum, feas) = check_reduction(&[3, 5], 7);
        assert!(!sum);
        assert!(feas);
    }

    #[test]
    fn reduction_positive_case() {
        // 8 = 3 + 5 → pricing (8, 8.5) is undercut by 3 + 5 = 8 → infeasible.
        let (sum, feas) = check_reduction(&[3, 5], 8);
        assert!(sum);
        assert!(!feas);
    }

    #[test]
    fn reduction_equivalence_sweep() {
        // Theorem 7's iff, exhaustively for a family of instances.
        let weight_sets: &[&[u64]] = &[&[2], &[2, 3], &[4, 6], &[3, 5, 7], &[5, 9]];
        for &ws in weight_sets {
            let max_w = *ws.iter().max().unwrap();
            for target in (max_w + 1)..=(max_w * 4) {
                let (sum, feas) = check_reduction(ws, target);
                assert_eq!(
                    sum, !feas,
                    "reduction mismatch for weights {ws:?}, target {target}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "below the target")]
    fn instance_rejects_oversized_weights() {
        theorem7_instance(&[5], 5);
    }
}
