//! A dense two-phase primal simplex solver.
//!
//! Small, exact-ish (floating point) linear programming for the
//! marketplace's needs: the `T∞_pi` interpolation objective is an LP, and
//! the tests use LP feasibility as an independent cross-check of the
//! specialized cone projections. Variables are non-negative; constraints may
//! be `≤`, `≥`, or `=`. Bland's anti-cycling rule keeps termination
//! guaranteed at a (harmless for these sizes) performance cost.

/// Direction of one linear constraint `aᵀx {≤,≥,=} b`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cmp {
    /// `aᵀx ≤ b`
    Le,
    /// `aᵀx ≥ b`
    Ge,
    /// `aᵀx = b`
    Eq,
}

/// Termination status of the solver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LpStatus {
    /// An optimal basic feasible solution was found.
    Optimal,
    /// The constraints admit no feasible point.
    Infeasible,
    /// The objective is unbounded below on the feasible set.
    Unbounded,
}

/// Result of [`LinearProgram::minimize`].
#[derive(Debug, Clone)]
pub struct LpSolution {
    /// Termination status; `x`/`objective` are meaningful only for
    /// [`LpStatus::Optimal`].
    pub status: LpStatus,
    /// Optimal primal point (original variables only).
    pub x: Vec<f64>,
    /// Optimal objective value `cᵀx`.
    pub objective: f64,
}

/// A linear program `min cᵀx  s.t.  constraints, x ≥ 0`.
#[derive(Debug, Clone)]
pub struct LinearProgram {
    n: usize,
    c: Vec<f64>,
    rows: Vec<(Vec<f64>, Cmp, f64)>,
}

impl LinearProgram {
    /// Creates a program over `n` non-negative variables with objective `c`.
    ///
    /// # Panics
    /// Panics when `c.len() != n`.
    pub fn new(n: usize, c: Vec<f64>) -> Self {
        assert_eq!(c.len(), n, "objective has wrong arity");
        LinearProgram {
            n,
            c,
            rows: Vec::new(),
        }
    }

    /// Adds the constraint `coeffs·x cmp rhs`.
    ///
    /// # Panics
    /// Panics when `coeffs.len() != n` or `rhs` is non-finite.
    pub fn constrain(&mut self, coeffs: Vec<f64>, cmp: Cmp, rhs: f64) -> &mut Self {
        assert_eq!(coeffs.len(), self.n, "constraint has wrong arity");
        assert!(rhs.is_finite(), "rhs must be finite");
        self.rows.push((coeffs, cmp, rhs));
        self
    }

    /// Solves the program with two-phase simplex.
    pub fn minimize(&self) -> LpSolution {
        const EPS: f64 = 1e-9;
        let m = self.rows.len();
        // Normalize rows to b >= 0.
        let mut rows: Vec<(Vec<f64>, Cmp, f64)> = self.rows.clone();
        for (coef, cmp, b) in &mut rows {
            if *b < 0.0 {
                for v in coef.iter_mut() {
                    *v = -*v;
                }
                *b = -*b;
                *cmp = match *cmp {
                    Cmp::Le => Cmp::Ge,
                    Cmp::Ge => Cmp::Le,
                    Cmp::Eq => Cmp::Eq,
                };
            }
        }
        // Column layout: [original n | slacks | artificials].
        let n_slack = rows
            .iter()
            .filter(|(_, cmp, _)| !matches!(cmp, Cmp::Eq))
            .count();
        let n_art = rows
            .iter()
            .filter(|(_, cmp, _)| matches!(cmp, Cmp::Ge | Cmp::Eq))
            .count();
        let total = self.n + n_slack + n_art;
        // Tableau: m rows of [coeffs | rhs].
        let mut t = vec![vec![0.0; total + 1]; m];
        let mut basis = vec![0usize; m];
        let mut s_idx = self.n;
        let mut a_idx = self.n + n_slack;
        for (i, (coef, cmp, b)) in rows.iter().enumerate() {
            t[i][..self.n].copy_from_slice(coef);
            t[i][total] = *b;
            match cmp {
                Cmp::Le => {
                    t[i][s_idx] = 1.0;
                    basis[i] = s_idx;
                    s_idx += 1;
                }
                Cmp::Ge => {
                    t[i][s_idx] = -1.0;
                    s_idx += 1;
                    t[i][a_idx] = 1.0;
                    basis[i] = a_idx;
                    a_idx += 1;
                }
                Cmp::Eq => {
                    t[i][a_idx] = 1.0;
                    basis[i] = a_idx;
                    a_idx += 1;
                }
            }
        }

        // Phase 1: minimize the sum of artificial variables.
        if n_art > 0 {
            let mut c1 = vec![0.0; total];
            for cj in c1.iter_mut().skip(self.n + n_slack) {
                *cj = 1.0;
            }
            match run_simplex(&mut t, &mut basis, &c1, total) {
                SimplexOutcome::Optimal(obj) => {
                    if obj > EPS {
                        return LpSolution {
                            status: LpStatus::Infeasible,
                            x: Vec::new(),
                            objective: f64::NAN,
                        };
                    }
                }
                SimplexOutcome::Unbounded => {
                    // Phase-1 objective is bounded below by 0; unbounded
                    // here means numerical trouble — treat as infeasible.
                    return LpSolution {
                        status: LpStatus::Infeasible,
                        x: Vec::new(),
                        objective: f64::NAN,
                    };
                }
            }
            // Drive any artificial variables out of the basis.
            for i in 0..m {
                if basis[i] >= self.n + n_slack {
                    // Find a non-artificial column with nonzero coefficient.
                    let mut pivoted = false;
                    for j in 0..(self.n + n_slack) {
                        if t[i][j].abs() > EPS {
                            pivot(&mut t, &mut basis, i, j, total);
                            pivoted = true;
                            break;
                        }
                    }
                    if !pivoted {
                        // Row is redundant (all-zero over real columns);
                        // its rhs must be ~0 after phase 1. Leave it — the
                        // artificial stays basic at value 0 and is barred
                        // from re-entering in phase 2 below.
                    }
                }
            }
        }

        // Phase 2: original objective; artificial columns barred.
        let mut c2 = vec![0.0; total];
        c2[..self.n].copy_from_slice(&self.c);
        let barred = self.n + n_slack;
        match run_simplex_barred(&mut t, &mut basis, &c2, total, barred) {
            SimplexOutcome::Optimal(obj) => {
                let mut x = vec![0.0; self.n];
                for (i, &b) in basis.iter().enumerate() {
                    if b < self.n {
                        x[b] = t[i][total];
                    }
                }
                LpSolution {
                    status: LpStatus::Optimal,
                    x,
                    objective: obj,
                }
            }
            SimplexOutcome::Unbounded => LpSolution {
                status: LpStatus::Unbounded,
                x: Vec::new(),
                objective: f64::NEG_INFINITY,
            },
        }
    }
}

enum SimplexOutcome {
    Optimal(f64),
    Unbounded,
}

fn run_simplex(t: &mut [Vec<f64>], basis: &mut [usize], c: &[f64], total: usize) -> SimplexOutcome {
    run_simplex_barred(t, basis, c, total, total)
}

/// Simplex iterations with Bland's rule; columns `>= barred` may not enter.
fn run_simplex_barred(
    t: &mut [Vec<f64>],
    basis: &mut [usize],
    c: &[f64],
    total: usize,
    barred: usize,
) -> SimplexOutcome {
    const EPS: f64 = 1e-9;
    let m = t.len();
    loop {
        // Reduced costs: r_j = c_j − c_Bᵀ B⁻¹ A_j, computed from the tableau.
        let mut entering = None;
        for j in 0..barred.min(total) {
            if basis.contains(&j) {
                continue;
            }
            let mut rj = c[j];
            for i in 0..m {
                rj -= c[basis[i]] * t[i][j];
            }
            if rj < -EPS {
                entering = Some(j); // Bland: first improving index
                break;
            }
        }
        let Some(j) = entering else {
            let mut obj = 0.0;
            for i in 0..m {
                obj += c[basis[i]] * t[i][total];
            }
            return SimplexOutcome::Optimal(obj);
        };
        // Ratio test (Bland: smallest basis index among ties).
        let mut leave: Option<usize> = None;
        let mut best = f64::INFINITY;
        for i in 0..m {
            if t[i][j] > EPS {
                let ratio = t[i][total] / t[i][j];
                if ratio < best - EPS
                    || (ratio < best + EPS && leave.is_none_or(|l| basis[i] < basis[l]))
                {
                    best = ratio;
                    leave = Some(i);
                }
            }
        }
        let Some(i) = leave else {
            return SimplexOutcome::Unbounded;
        };
        mbp_obs::inc("mbp.optim.simplex.pivots");
        pivot(t, basis, i, j, total);
    }
}

fn pivot(t: &mut [Vec<f64>], basis: &mut [usize], row: usize, col: usize, total: usize) {
    let piv = t[row][col];
    for v in t[row].iter_mut() {
        *v /= piv;
    }
    for i in 0..t.len() {
        if i == row {
            continue;
        }
        let f = t[i][col];
        // Near-zero rows are handled by the EPS ratio test below.
        // LINT-ALLOW(float): exact-zero pivot skip.
        if f == 0.0 {
            continue;
        }
        // Rows `i` and `row` alias inside `t`; clone the pivot row once per
        // call site is wasteful, so index explicitly.
        #[allow(clippy::needless_range_loop)]
        for j in 0..=total {
            t[i][j] -= f * t[row][j];
        }
    }
    basis[row] = col;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-7, "{a} vs {b}");
    }

    #[test]
    fn textbook_maximization() {
        // max 3x + 5y s.t. x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18 → (2, 6), obj 36.
        let mut lp = LinearProgram::new(2, vec![-3.0, -5.0]);
        lp.constrain(vec![1.0, 0.0], Cmp::Le, 4.0)
            .constrain(vec![0.0, 2.0], Cmp::Le, 12.0)
            .constrain(vec![3.0, 2.0], Cmp::Le, 18.0);
        let sol = lp.minimize();
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_close(sol.objective, -36.0);
        assert_close(sol.x[0], 2.0);
        assert_close(sol.x[1], 6.0);
    }

    #[test]
    fn equality_and_ge_constraints() {
        // min x + y s.t. x + y = 2, x ≥ 0.5 → obj 2.
        let mut lp = LinearProgram::new(2, vec![1.0, 1.0]);
        lp.constrain(vec![1.0, 1.0], Cmp::Eq, 2.0)
            .constrain(vec![1.0, 0.0], Cmp::Ge, 0.5);
        let sol = lp.minimize();
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_close(sol.objective, 2.0);
        assert!(sol.x[0] >= 0.5 - 1e-9);
    }

    #[test]
    fn detects_infeasible() {
        let mut lp = LinearProgram::new(1, vec![1.0]);
        lp.constrain(vec![1.0], Cmp::Le, 1.0)
            .constrain(vec![1.0], Cmp::Ge, 2.0);
        assert_eq!(lp.minimize().status, LpStatus::Infeasible);
    }

    #[test]
    fn detects_unbounded() {
        // min −x s.t. x ≥ 1 → unbounded below.
        let mut lp = LinearProgram::new(1, vec![-1.0]);
        lp.constrain(vec![1.0], Cmp::Ge, 1.0);
        assert_eq!(lp.minimize().status, LpStatus::Unbounded);
    }

    #[test]
    fn negative_rhs_is_normalized() {
        // x ≥ 0, −x ≤ −1  ⇔  x ≥ 1; min x → 1.
        let mut lp = LinearProgram::new(1, vec![1.0]);
        lp.constrain(vec![-1.0], Cmp::Le, -1.0);
        let sol = lp.minimize();
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_close(sol.objective, 1.0);
    }

    #[test]
    fn degenerate_lp_terminates() {
        // Degenerate vertex at the origin with redundant constraints.
        let mut lp = LinearProgram::new(2, vec![-1.0, -1.0]);
        lp.constrain(vec![1.0, 0.0], Cmp::Le, 0.0)
            .constrain(vec![1.0, 1.0], Cmp::Le, 0.0)
            .constrain(vec![0.0, 1.0], Cmp::Le, 0.0)
            .constrain(vec![1.0, 2.0], Cmp::Le, 0.0);
        let sol = lp.minimize();
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_close(sol.objective, 0.0);
    }

    #[test]
    fn l1_interpolation_shape() {
        // min |z1 − 1| + |z2 − 5| s.t. z1 ≤ z2 ≤ 2 z1 (chain with a = [1, 2]).
        // Encoded with split variables t⁺/t⁻.
        // Vars: z1 z2 t1 t2; min t1 + t2
        // t1 ≥ z1 − 1, t1 ≥ 1 − z1, t2 ≥ z2 − 5, t2 ≥ 5 − z2,
        // z1 − z2 ≤ 0, z2 − 2 z1 ≤ 0.
        let mut lp = LinearProgram::new(4, vec![0.0, 0.0, 1.0, 1.0]);
        lp.constrain(vec![1.0, 0.0, -1.0, 0.0], Cmp::Le, 1.0)
            .constrain(vec![-1.0, 0.0, -1.0, 0.0], Cmp::Le, -1.0)
            .constrain(vec![0.0, 1.0, 0.0, -1.0], Cmp::Le, 5.0)
            .constrain(vec![0.0, -1.0, 0.0, -1.0], Cmp::Le, -5.0)
            .constrain(vec![1.0, -1.0, 0.0, 0.0], Cmp::Le, 0.0)
            .constrain(vec![-2.0, 1.0, 0.0, 0.0], Cmp::Le, 0.0);
        let sol = lp.minimize();
        assert_eq!(sol.status, LpStatus::Optimal);
        // Optimum: z2 = 2 z1; minimize |z1−1| + |2z1−5| → z1 ∈ [1, 2.5] ⇒
        // pick z1 = 2.5? value |1.5| + 0 = 1.5; z1 = 1 → 0 + 3 = 3. Best 1.5.
        assert_close(sol.objective, 1.5);
    }

    #[test]
    fn redundant_equality_rows_ok() {
        let mut lp = LinearProgram::new(2, vec![1.0, 2.0]);
        lp.constrain(vec![1.0, 1.0], Cmp::Eq, 2.0)
            .constrain(vec![2.0, 2.0], Cmp::Eq, 4.0); // redundant duplicate
        let sol = lp.minimize();
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_close(sol.objective, 2.0); // all weight on x1
    }
}
