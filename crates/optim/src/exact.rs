//! Exact revenue maximization over the *original* arbitrage-free set —
//! the stand-in for the paper's MILP baseline (Figures 9 and 10).
//!
//! The paper compares its polynomial-time approximation against an exact
//! "multiple-integer-linear-programming" solver that takes exponential time.
//! We implement an equivalent exact maximizer with a cleaner structure:
//!
//! 1. Enumerate (with branch-and-bound) the subset `S` of buyers that end
//!    up purchasing.
//! 2. For a fixed `S`, the component-wise **greatest** price vector that is
//!    monotone + subadditive and honors the caps `z_j ≤ v_j (j ∈ S)` is
//!    exactly the covering function `w_j = μ_S(a_j)` computed by the
//!    [`CoverOracle`] with item costs set to
//!    the valuations of `S` — any feasible pricing satisfies
//!    `p̂(a_j) ≤ Σ kᵢ vᵢ` for every cover, and `μ_S` itself is monotone and
//!    subadditive, hence feasible and revenue-optimal for `S`.
//! 3. The revenue of `S` is `Σ_{j∈S} b_j μ_S(a_j)`; the best subset wins.
//!
//! This is exact for the same reason the MILP is: both optimize over all
//! served-set/vertex combinations; only the enumeration strategy differs.
//! Runtime is `O(2ⁿ · n · max a)` — the exponential growth that Figures
//! 9–10 plot against the `O(n²)` dynamic program.

use crate::knapsack::{CoverOracle, Item};

/// One buyer point of the revenue-maximization instance: grid point `a`
/// (inverse NCP on an integer grid), valuation `v`, and demand mass `b`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BuyerPoint {
    /// Grid point `a_j` (positive integer; quantize floats via
    /// [`quantize_grid`]).
    pub a: u64,
    /// The valuation `v_j ≥ 0`: the buyer purchases iff `price ≤ v_j`.
    pub valuation: f64,
    /// The demand weight `b_j ≥ 0` ("how many" buyers sit at this point).
    pub demand: f64,
}

impl BuyerPoint {
    /// Creates a buyer point, validating ranges.
    ///
    /// # Panics
    /// Panics for `a == 0`, negative valuation/demand, or non-finite input.
    pub fn new(a: u64, valuation: f64, demand: f64) -> Self {
        assert!(a > 0, "grid point must be positive");
        assert!(
            valuation >= 0.0 && valuation.is_finite(),
            "valuation must be finite and >= 0, got {valuation}"
        );
        assert!(
            demand >= 0.0 && demand.is_finite(),
            "demand must be finite and >= 0, got {demand}"
        );
        BuyerPoint {
            a,
            valuation,
            demand,
        }
    }
}

/// Result of [`maximize_revenue_exact`].
#[derive(Debug, Clone)]
pub struct ExactSolution {
    /// The optimal revenue.
    pub revenue: f64,
    /// The optimal price at each input point (the covering function of the
    /// winning served set, which is monotone and subadditive).
    pub prices: Vec<f64>,
    /// `served[j]` is `true` when buyer `j` purchases under the optimum.
    pub served: Vec<bool>,
    /// Number of branch-and-bound nodes expanded (diagnostic; grows
    /// exponentially with `n`).
    pub nodes_explored: u64,
}

/// Exactly maximizes `Σ b_j z_j · 1[z_j ≤ v_j]` over monotone, subadditive,
/// non-negative pricing functions through integer grid points (problem (2)
/// with the `T_bv` objective).
///
/// # Panics
/// Panics when grid points are not strictly increasing.
pub fn maximize_revenue_exact(points: &[BuyerPoint]) -> ExactSolution {
    let n = points.len();
    assert!(
        points.windows(2).all(|w| w[0].a < w[1].a),
        "grid points must be strictly increasing"
    );
    if n == 0 {
        return ExactSolution {
            revenue: 0.0,
            prices: Vec::new(),
            served: Vec::new(),
            nodes_explored: 0,
        };
    }
    let horizon = points.last().map(|p| p.a).unwrap_or(0);
    // Branch and bound over served subsets, deciding buyers in input order.
    // `potential[j]` = Σ_{i ≥ j} b_i v_i bounds any suffix's contribution.
    let mut potential = vec![0.0; n + 1];
    for j in (0..n).rev() {
        potential[j] = potential[j + 1] + points[j].demand * points[j].valuation;
    }
    let mut best = Best {
        revenue: -1.0,
        served: vec![false; n],
        prices: vec![0.0; n],
    };
    let mut nodes = 0u64;
    let mut served = vec![false; n];
    branch(
        points,
        horizon,
        0,
        &mut served,
        &potential,
        &mut best,
        &mut nodes,
    );
    // An empty served set is always feasible with revenue 0 (price above
    // every valuation); `best` starts below it so it is always replaced.
    if best.revenue < 0.0 {
        best.revenue = 0.0;
    }
    mbp_obs::counter_add("mbp.optim.branchbound.nodes", nodes);
    ExactSolution {
        revenue: best.revenue,
        prices: best.prices,
        served: best.served,
        nodes_explored: nodes,
    }
}

struct Best {
    revenue: f64,
    served: Vec<bool>,
    prices: Vec<f64>,
}

fn branch(
    points: &[BuyerPoint],
    horizon: u64,
    idx: usize,
    served: &mut Vec<bool>,
    potential: &[f64],
    best: &mut Best,
    nodes: &mut u64,
) {
    *nodes += 1;
    let n = points.len();
    if idx == n {
        let (revenue, prices) = evaluate_subset(points, horizon, served);
        if revenue > best.revenue {
            best.revenue = revenue;
            best.served.clone_from(served);
            best.prices = prices;
        }
        return;
    }
    // Upper bound: served prefix at full valuation + entire suffix at full
    // valuation. (Prefix contributions are also ≤ b·v.)
    let prefix_bound: f64 = (0..idx)
        .filter(|&j| served[j])
        .map(|j| points[j].demand * points[j].valuation)
        .sum();
    if prefix_bound + potential[idx] <= best.revenue {
        return; // cannot beat the incumbent
    }
    // Serve first (higher revenue potential), then skip.
    served[idx] = true;
    branch(points, horizon, idx + 1, served, potential, best, nodes);
    served[idx] = false;
    branch(points, horizon, idx + 1, served, potential, best, nodes);
}

/// Computes the optimal revenue for a fixed served set: prices are the
/// covering function `μ_S`, evaluated at every point (served points pay,
/// unserved are priced at their covering value too — the cheapest monotone
/// subadditive extension).
fn evaluate_subset(points: &[BuyerPoint], horizon: u64, served: &[bool]) -> (f64, Vec<f64>) {
    let items: Vec<Item> = points
        .iter()
        .zip(served)
        .filter(|&(_, &s)| s)
        .map(|(p, _)| Item::new(p.a, p.valuation))
        .collect();
    if items.is_empty() {
        // Nobody served: any price above max valuation works; report a
        // constant price just above the top valuation for transparency.
        let top = points.iter().map(|p| p.valuation).fold(0.0_f64, f64::max) + 1.0;
        return (0.0, vec![top; points.len()]);
    }
    let oracle = CoverOracle::build(&items, horizon);
    let mut revenue = 0.0;
    let mut prices = Vec::with_capacity(points.len());
    for (p, &s) in points.iter().zip(served) {
        let w = oracle.mu(p.a);
        debug_assert!(w.is_finite());
        prices.push(w);
        if s {
            debug_assert!(w <= p.valuation + 1e-9);
            revenue += p.demand * w;
        } else if w <= p.valuation {
            // The extension undercuts this buyer's valuation, so they buy
            // too — count the revenue (the served-set enumeration that
            // includes them may still beat this, but the revenue is real).
            revenue += p.demand * w;
        }
    }
    (revenue, prices)
}

/// Quantizes float grid points onto an integer grid by scaling and
/// rounding: returns `(scaled points, scale)`. The relative quantization
/// error is at most `0.5 / scale / min(a)`.
pub fn quantize_grid(a: &[f64], scale: f64) -> Vec<u64> {
    assert!(scale > 0.0 && scale.is_finite());
    a.iter()
        .map(|&x| {
            assert!(x > 0.0 && x.is_finite(), "grid points must be positive");
            ((x * scale).round() as u64).max(1)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(data: &[(u64, f64, f64)]) -> Vec<BuyerPoint> {
        data.iter()
            .map(|&(a, v, b)| BuyerPoint::new(a, v, b))
            .collect()
    }

    /// The paper's Figure 5 worked example: a = 1..4, b = 0.25 each,
    /// v = (100, 150, 280, 350). The revenue-optimal arbitrage-free pricing
    /// earns 300·0.25... — concretely, panel (d) reports optimal revenue.
    #[test]
    fn figure5_example_optimal() {
        let points = pts(&[
            (1, 100.0, 0.25),
            (2, 150.0, 0.25),
            (3, 280.0, 0.25),
            (4, 350.0, 0.25),
        ]);
        let sol = maximize_revenue_exact(&points);
        // Check feasibility of the reported prices: monotone + no cover
        // undercuts (μ fixpoint property) and revenue consistency.
        for w in sol.prices.windows(2) {
            assert!(w[0] <= w[1] + 1e-9);
        }
        // Serving everyone at valuations (100,150,280,350) is NOT feasible
        // (150+150 = 300 < 280+... check: cover of a=3 by 1+2 costs 250 <
        // 280; so z3 ≤ 250). Exact optimum: serve all with
        // z = (100, 150, 250, 300): revenue 0.25·800 = 200.
        assert!(
            (sol.revenue - 200.0).abs() < 1e-9,
            "revenue {}",
            sol.revenue
        );
        assert_eq!(sol.prices, vec![100.0, 150.0, 250.0, 300.0]);
        assert!(sol.served.iter().all(|&s| s));
    }

    #[test]
    fn empty_instance() {
        let sol = maximize_revenue_exact(&[]);
        assert_eq!(sol.revenue, 0.0);
    }

    #[test]
    fn single_buyer_pays_valuation() {
        let sol = maximize_revenue_exact(&pts(&[(5, 40.0, 2.0)]));
        assert!((sol.revenue - 80.0).abs() < 1e-12);
        assert_eq!(sol.prices, vec![40.0]);
    }

    #[test]
    fn skipping_a_low_valuation_buyer_can_win() {
        // A cheap buyer at a=1 caps every later price via covers:
        // serving them at v=1 forces z_2 ≤ 2·1 = 2, killing the big buyer's
        // 100-valuation. Optimal: serve only the big buyer.
        let points = pts(&[(1, 1.0, 0.01), (2, 100.0, 1.0)]);
        let sol = maximize_revenue_exact(&points);
        assert!(
            (sol.revenue - 100.0).abs() < 1e-9,
            "revenue {}",
            sol.revenue
        );
        assert!(!sol.served[0] && sol.served[1]);
    }

    #[test]
    fn serving_both_wins_when_demands_balance() {
        let points = pts(&[(1, 60.0, 1.0), (2, 100.0, 1.0)]);
        // Serve both: z = (60, 100) feasible? cover of 2 by two 1s costs
        // 120 > 100, fine. Revenue 160.
        let sol = maximize_revenue_exact(&points);
        assert!((sol.revenue - 160.0).abs() < 1e-9);
        assert_eq!(sol.prices, vec![60.0, 100.0]);
    }

    #[test]
    fn prices_never_exceed_cheapest_cover() {
        let points = pts(&[(2, 10.0, 1.0), (3, 12.0, 1.0), (5, 30.0, 1.0)]);
        let sol = maximize_revenue_exact(&points);
        // If 2 and 3 are served at ~10 and ~12, then a=5 is covered by
        // {2,3} at 22 — its price cannot exceed 22.
        if sol.served[0] && sol.served[1] {
            assert!(sol.prices[2] <= 22.0 + 1e-9);
        }
        // Revenue must be at least the best constant-price baseline:
        // price 10 for everyone → 30.
        assert!(sol.revenue >= 30.0 - 1e-9);
    }

    #[test]
    fn nodes_grow_with_n() {
        let small = maximize_revenue_exact(&pts(&[(1, 5.0, 1.0), (2, 9.0, 1.0)]));
        let large = maximize_revenue_exact(&pts(&[
            (1, 5.0, 1.0),
            (2, 9.0, 1.0),
            (3, 12.0, 1.0),
            (4, 14.0, 1.0),
            (5, 15.0, 1.0),
        ]));
        assert!(large.nodes_explored > small.nodes_explored);
    }

    #[test]
    fn quantize_rounds_and_clamps() {
        assert_eq!(quantize_grid(&[0.24, 1.0, 2.51], 10.0), vec![2, 10, 25]);
        assert_eq!(quantize_grid(&[0.01], 10.0), vec![1]); // clamped to 1
    }

    /// Exhaustive cross-check on random-ish small instances: enumerate all
    /// candidate price assignments on a fine lattice of valuation-derived
    /// values and verify none beats the solver (the optimum of (2) always
    /// occurs at prices in the covering lattice of served valuations).
    #[test]
    fn exact_beats_lattice_enumeration() {
        let points = pts(&[(1, 30.0, 0.5), (2, 50.0, 1.0), (4, 120.0, 0.8)]);
        let sol = maximize_revenue_exact(&points);
        // Enumerate all subsets by hand and recompute.
        let mut best = 0.0_f64;
        for mask in 0u32..8 {
            let served: Vec<bool> = (0..3).map(|j| mask & (1 << j) != 0).collect();
            let items: Vec<Item> = points
                .iter()
                .zip(&served)
                .filter(|&(_, &s)| s)
                .map(|(p, _)| Item::new(p.a, p.valuation))
                .collect();
            if items.is_empty() {
                continue;
            }
            let oracle = CoverOracle::build(&items, 4);
            let mut rev = 0.0;
            for p in &points {
                let w = oracle.mu(p.a);
                if w <= p.valuation {
                    rev += p.demand * w;
                }
            }
            best = best.max(rev);
        }
        assert!(
            (sol.revenue - best).abs() < 1e-9,
            "{} vs {best}",
            sol.revenue
        );
    }
}
