//! Optimization substrate for MBP revenue maximization.
//!
//! The paper's price-setting machinery (Section 5) needs four solvers that
//! MATLAB provided out of the box; this crate builds them from scratch:
//!
//! * [`simplex`] — a dense two-phase primal simplex for linear programs,
//!   used by the `T∞_pi` price-interpolation objective and as an
//!   independent feasibility cross-check;
//! * [`isotonic`] — weighted pool-adjacent-violators (PAVA) and a Dykstra
//!   alternating-projection solver for the `T²_pi` quadratic program over
//!   the relaxed constraint set of problem (4): `z` non-decreasing and
//!   `z_j/a_j` non-increasing;
//! * [`knapsack`] — the unbounded min-cost *covering* knapsack
//!   `μ(x) = min{Σ kᵢ·cᵢ : Σ kᵢ·aᵢ ≥ x}`, which is exactly the
//!   subadditive-interpolation feasibility oracle from the proof of
//!   Theorem 7;
//! * [`exact`] — an exact (exponential-time) revenue maximizer over the
//!   *original* arbitrage-free constraint set (2), standing in for the
//!   paper's MILP baseline in Figures 9–10;
//! * [`subset_sum`] — the unbounded subset-sum problem and the executable
//!   Theorem 7 reduction showing subadditive interpolation is coNP-hard;
//! * [`projgrad`] — projected gradient ascent for *general* separable
//!   concave objectives over the relaxed cone (the setting of the paper's
//!   Proposition 2), reusing the Dykstra projection.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod exact;
pub mod isotonic;
pub mod knapsack;
pub mod projgrad;
pub mod simplex;
pub mod subset_sum;
