//! `mbp-par`: a zero-dependency scoped thread pool with chunked
//! data-parallel primitives for the MBP workspace.
//!
//! # Design
//!
//! * **Spawn-once workers.** A global pool of worker threads is created
//!   lazily on first use and lives for the process. Parallel regions never
//!   spawn threads; they enqueue short "helper loop" jobs.
//! * **Scoped execution.** [`scope`] lets tasks borrow stack data without
//!   `'static` bounds: the scope joins every spawned task before it returns
//!   (including during unwinding), which is what makes the single
//!   lifetime-erasing `unsafe` block in [`Scope::spawn`] sound.
//! * **Caller participation.** The thread that opens a parallel region works
//!   through chunks alongside the pool, so a region always makes progress
//!   even if every worker is busy, and a pool with zero workers degrades to
//!   plain sequential execution.
//! * **Deterministic chunking.** [`par_for_chunks`] and [`par_map_chunks`]
//!   split `0..n` into fixed chunks of `grain` items. The chunk boundaries
//!   depend only on `(n, grain)` — never on the thread count — and mapped
//!   results are merged in chunk-index order. Reductions that combine
//!   per-chunk partials in that order therefore produce *bit-identical*
//!   results at 2, 4, or 64 threads, and the sequential path visits the same
//!   chunks in the same order.
//! * **Sequential fallback.** Regions with a single chunk, an effective
//!   thread count of one, or a caller that is itself a pool worker (nested
//!   parallelism) run inline on the calling thread.
//!
//! Thread count resolution order: [`with_threads`] override on this thread,
//! then [`set_threads`] (the `--threads` CLI flag), then the `MBP_THREADS`
//! environment variable, then `std::thread::available_parallelism`.

#![warn(missing_docs)]
// NOTE: unlike the rest of the workspace this crate cannot
// `forbid(unsafe_code)` — the scoped API requires two tightly-audited
// `unsafe` blocks (lifetime erasure in `Scope::spawn`, disjoint slice
// splitting in `par_chunks_mut`). Everything else is safe code.

mod pool;

pub use pool::ThreadPool;

use std::cell::Cell;
use std::marker::PhantomData;
use std::ops::Range;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Upper bound on configurable thread counts (sanity clamp).
pub const MAX_THREADS: usize = 256;

/// Task-context propagation hook.
///
/// An observability layer may register one process-wide hook to carry a
/// per-thread context token across [`Scope::spawn`]: `capture` runs on the
/// submitting thread when the task is enqueued, `enter` runs on the
/// executing thread immediately before the task body (receiving the
/// captured token and returning the thread's previous token), and `exit`
/// runs after the body with that previous token so the executing thread is
/// restored even when the body panics.
///
/// The hook is three plain `fn` pointers so this crate stays free of any
/// dependency on the layer that installs it.
#[derive(Clone, Copy)]
pub struct TaskHook {
    /// Captures the submitting thread's context token.
    pub capture: fn() -> u64,
    /// Installs a captured token on the executing thread; returns the
    /// token previously installed there.
    pub enter: fn(u64) -> u64,
    /// Restores the executing thread's previous token.
    pub exit: fn(u64),
}

static TASK_HOOK: OnceLock<TaskHook> = OnceLock::new();

/// Registers the process-wide [`TaskHook`]. The first registration wins;
/// later calls are ignored (returns whether this call installed the hook).
pub fn set_task_hook(hook: TaskHook) -> bool {
    TASK_HOOK.set(hook).is_ok()
}

fn task_hook() -> Option<&'static TaskHook> {
    TASK_HOOK.get()
}

thread_local! {
    static IS_WORKER: Cell<bool> = const { Cell::new(false) };
    static OVERRIDE_THREADS: Cell<usize> = const { Cell::new(0) };
}

/// Marks the current thread as a pool worker so nested parallel regions
/// fall back to sequential execution instead of deadlocking the pool.
pub(crate) fn mark_worker_thread() {
    IS_WORKER.with(|w| w.set(true));
}

/// `true` when called from inside a pool worker thread.
pub fn in_worker() -> bool {
    IS_WORKER.with(|w| w.get())
}

/// Process-wide requested thread count (0 = unset). Set by the `--threads`
/// CLI flag via [`set_threads`].
static REQUESTED: AtomicUsize = AtomicUsize::new(0);

/// Parses a raw `MBP_THREADS`-style value. `None` for absent, empty,
/// non-numeric, or zero values (zero means "auto").
pub fn parse_threads(raw: Option<&str>) -> Option<usize> {
    raw.and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .map(|n| n.min(MAX_THREADS))
}

fn env_threads() -> Option<usize> {
    static PARSED: OnceLock<Option<usize>> = OnceLock::new();
    *PARSED.get_or_init(|| parse_threads(std::env::var("MBP_THREADS").ok().as_deref()))
}

fn hardware_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Sets the process-wide thread count (the `--threads N` CLI flag).
/// Passing 0 clears the override back to `MBP_THREADS` / hardware detection.
pub fn set_threads(n: usize) {
    REQUESTED.store(n.min(MAX_THREADS), Ordering::SeqCst);
}

/// The thread count parallel regions use absent a [`with_threads`] override:
/// [`set_threads`] if set, else `MBP_THREADS`, else the hardware parallelism.
pub fn default_threads() -> usize {
    let requested = REQUESTED.load(Ordering::SeqCst);
    let n = if requested >= 1 {
        requested
    } else {
        env_threads().unwrap_or_else(hardware_threads)
    };
    n.clamp(1, MAX_THREADS)
}

/// Effective thread count for a parallel region opened on this thread.
/// Always 1 inside pool workers (nested regions run sequentially).
pub fn max_threads() -> usize {
    if in_worker() {
        return 1;
    }
    let o = OVERRIDE_THREADS.with(|c| c.get());
    if o >= 1 {
        o
    } else {
        default_threads()
    }
}

/// Runs `f` with the effective thread count for this thread forced to `n`.
/// Used by benchmarks and determinism tests to compare 1/2/4-thread runs in
/// one process without touching global state.
pub fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            OVERRIDE_THREADS.with(|c| c.set(self.0));
        }
    }
    let prev = OVERRIDE_THREADS.with(|c| c.replace(n.clamp(1, MAX_THREADS)));
    let _restore = Restore(prev);
    f()
}

/// The global lazily-built pool. Capacity covers the default thread count
/// and the 1/2/4-thread sweeps benchmarks run via [`with_threads`], even on
/// narrow machines or under `MBP_THREADS=1` (a region that wants fewer
/// threads simply enqueues fewer helpers).
fn global_pool() -> &'static ThreadPool {
    static POOL: OnceLock<ThreadPool> = OnceLock::new();
    POOL.get_or_init(|| ThreadPool::new(default_threads().max(4) - 1))
}

struct ScopeShared {
    pending: Mutex<usize>,
    done: Condvar,
    panicked: AtomicBool,
    /// First captured task panic payload, re-raised by [`scope`] on the
    /// caller thread so the original message survives.
    payload: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

/// Handle passed to the closure of [`scope`]; lets it spawn tasks that may
/// borrow anything outliving the scope (`'env`).
pub struct Scope<'env> {
    shared: Arc<ScopeShared>,
    pool: &'static ThreadPool,
    // Invariant over 'env, as for std's scoped threads.
    _marker: PhantomData<&'env mut &'env ()>,
}

impl<'env> Scope<'env> {
    /// Spawns `f` on the pool. The task is guaranteed to finish before the
    /// enclosing [`scope`] call returns.
    pub fn spawn<F: FnOnce() + Send + 'env>(&self, f: F) {
        {
            let mut p = self
                .shared
                .pending
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            *p += 1;
        }
        let shared = Arc::clone(&self.shared);
        // Capture the submitting thread's context token now so the worker
        // can re-enter it before running `f` (and restore its own after).
        let hook = task_hook();
        let token = hook.map(|h| (h.capture)());
        let task: Box<dyn FnOnce() + Send + 'env> = Box::new(move || {
            let prev = hook.zip(token).map(|(h, t)| (h.enter)(t));
            if let Err(p) = panic::catch_unwind(AssertUnwindSafe(f)) {
                shared.panicked.store(true, Ordering::SeqCst);
                let mut slot = shared.payload.lock().unwrap_or_else(|e| e.into_inner());
                if slot.is_none() {
                    *slot = Some(p);
                }
            }
            if let Some((h, p)) = hook.zip(prev) {
                (h.exit)(p);
            }
            let mut p = shared.pending.lock().unwrap_or_else(|e| e.into_inner());
            *p -= 1;
            if *p == 0 {
                shared.done.notify_all();
            }
        });
        let task: pool::Job =
            // SAFETY: the one lifetime-erasing transmute in the workspace.
            // `scope` blocks until `pending` reaches zero before returning —
            // on the success path and during unwinding (see `WaitGuard`) —
            // and `pending` is only decremented after `f` has run and been
            // dropped. The closure and all its `'env` borrows therefore
            // strictly outlive the task's execution.
            unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, pool::Job>(task) };
        self.pool.submit(task);
    }
}

/// Runs `f` with a [`Scope`] on the global pool; joins every spawned task
/// before returning. Panics from spawned tasks are surfaced as a panic here
/// after all tasks have settled.
pub fn scope<'env, R>(f: impl FnOnce(&Scope<'env>) -> R) -> R {
    struct WaitGuard(Arc<ScopeShared>);
    impl Drop for WaitGuard {
        fn drop(&mut self) {
            let mut p = self.0.pending.lock().unwrap_or_else(|e| e.into_inner());
            while *p > 0 {
                p = self.0.done.wait(p).unwrap_or_else(|e| e.into_inner());
            }
        }
    }

    let shared = Arc::new(ScopeShared {
        pending: Mutex::new(0),
        done: Condvar::new(),
        panicked: AtomicBool::new(false),
        payload: Mutex::new(None),
    });
    let scope = Scope {
        shared: Arc::clone(&shared),
        pool: global_pool(),
        _marker: PhantomData,
    };
    let result = {
        // Joins all tasks even if `f` unwinds, keeping borrowed data alive
        // for as long as any task can touch it.
        let _guard = WaitGuard(Arc::clone(&shared));
        f(&scope)
    };
    if shared.panicked.load(Ordering::SeqCst) {
        // Re-raise the task's own payload on the caller thread. This
        // *propagates* an existing unwind (the origin site carries the
        // proof obligation); `scope` itself never originates a panic.
        let p = shared
            .payload
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take()
            .unwrap_or_else(|| Box::new("mbp-par: a task spawned in this scope panicked"));
        panic::resume_unwind(p);
    }
    result
}

/// Number of `grain`-sized chunks covering `0..n`.
pub fn chunk_count(n: usize, grain: usize) -> usize {
    n.div_ceil(grain.max(1))
}

fn chunk_range(n: usize, grain: usize, ci: usize) -> Range<usize> {
    let start = ci * grain;
    start..(start + grain).min(n)
}

/// Applies `f` to each chunk of `0..n`, in parallel when worthwhile.
///
/// Chunk boundaries depend only on `(n, grain)`, so the set of chunks — and
/// any chunk-indexed merge built on top — is identical at every thread
/// count. Falls back to an in-order sequential walk for single-chunk
/// regions, an effective thread count of 1, or nested calls from pool
/// workers.
pub fn par_for_chunks<F>(n: usize, grain: usize, f: F)
where
    F: Fn(Range<usize>) + Sync,
{
    let grain = grain.max(1);
    let nchunks = chunk_count(n, grain);
    if nchunks == 0 {
        return;
    }
    let threads = max_threads().min(nchunks);
    if nchunks == 1 || threads <= 1 {
        for ci in 0..nchunks {
            f(chunk_range(n, grain, ci));
        }
        return;
    }
    let next = AtomicUsize::new(0);
    let drain = || loop {
        let ci = next.fetch_add(1, Ordering::Relaxed);
        if ci >= nchunks {
            break;
        }
        f(chunk_range(n, grain, ci));
    };
    scope(|s| {
        for _ in 0..threads - 1 {
            s.spawn(drain);
        }
        drain(); // the caller participates, so progress is guaranteed
    });
}

/// Maps each chunk of `0..n` through `f` and returns the per-chunk results
/// **in chunk-index order**, regardless of which thread produced them or
/// when. This is the deterministic-reduction primitive: summing the returned
/// partials left-to-right gives the same floating-point result at every
/// thread count ≥ 1 (the sequential fallback visits chunks in the same
/// order).
pub fn par_map_chunks<R, F>(n: usize, grain: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(Range<usize>) -> R + Sync,
{
    let grain = grain.max(1);
    let nchunks = chunk_count(n, grain);
    if nchunks == 0 {
        return Vec::new();
    }
    let threads = max_threads().min(nchunks);
    if nchunks == 1 || threads <= 1 {
        return (0..nchunks)
            .map(|ci| f(chunk_range(n, grain, ci)))
            .collect();
    }
    let slots: Vec<Mutex<Option<R>>> = (0..nchunks).map(|_| Mutex::new(None)).collect();
    par_for_chunks(n, grain, |range| {
        let ci = range.start / grain;
        let value = f(range);
        *slots[ci].lock().unwrap_or_else(|e| e.into_inner()) = Some(value);
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap_or_else(|e| e.into_inner())
                .expect("mbp-par: chunk executed exactly once")
        })
        .collect()
}

/// Element-wise parallel for: `f(i)` for every `i` in `0..n`.
pub fn par_for<F>(n: usize, grain: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    par_for_chunks(n, grain, |range| {
        for i in range {
            f(i);
        }
    });
}

/// Element-wise parallel map preserving index order.
pub fn par_map<T, F>(n: usize, grain: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let chunks = par_map_chunks(n, grain, |range| range.map(&f).collect::<Vec<T>>());
    let mut out = Vec::with_capacity(n);
    for chunk in chunks {
        out.extend(chunk);
    }
    out
}

struct SendPtr<T>(*mut T);
// SAFETY: the pointer is only used to form non-overlapping sub-slices, one
// per chunk, inside a scoped region (see `par_chunks_mut`).
unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}

/// Splits `data` into `grain`-sized chunks and applies `f(chunk_index,
/// chunk)` to each, in parallel when worthwhile. Chunks are disjoint
/// sub-slices, so no locking is needed — this is the zero-copy primitive for
/// filling pre-allocated outputs (matmul row bands, noise vectors).
pub fn par_chunks_mut<T, F>(data: &mut [T], grain: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let n = data.len();
    let grain = grain.max(1);
    if chunk_count(n, grain) <= 1 || max_threads() <= 1 {
        for (ci, chunk) in data.chunks_mut(grain).enumerate() {
            f(ci, chunk);
        }
        return;
    }
    let base = SendPtr(data.as_mut_ptr());
    let base = &base;
    par_for_chunks(n, grain, |range| {
        let ci = range.start / grain;
        // SAFETY: `par_for_chunks` hands every chunk index to exactly one
        // executor and the ranges `chunk_range` produces are pairwise
        // disjoint, so each sub-slice is exclusively borrowed for the
        // duration of `f`. The scope joins before `data`'s `&mut` borrow
        // ends.
        let chunk = unsafe { std::slice::from_raw_parts_mut(base.0.add(range.start), range.len()) };
        f(ci, chunk);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn parse_threads_accepts_positive_integers_only() {
        assert_eq!(parse_threads(None), None);
        assert_eq!(parse_threads(Some("")), None);
        assert_eq!(parse_threads(Some("zero")), None);
        assert_eq!(parse_threads(Some("0")), None);
        assert_eq!(parse_threads(Some("1")), Some(1));
        assert_eq!(parse_threads(Some(" 8 ")), Some(8));
        assert_eq!(parse_threads(Some("100000")), Some(MAX_THREADS));
    }

    #[test]
    fn with_threads_overrides_and_restores() {
        let before = max_threads();
        let inside = with_threads(3, max_threads);
        assert_eq!(inside, 3);
        assert_eq!(max_threads(), before);
        // Nested overrides unwind in order.
        with_threads(2, || {
            assert_eq!(max_threads(), 2);
            with_threads(5, || assert_eq!(max_threads(), 5));
            assert_eq!(max_threads(), 2);
        });
    }

    #[test]
    fn scope_tasks_borrow_stack_data() {
        let inputs = [1u64, 2, 3, 4, 5, 6, 7, 8];
        let total = AtomicU64::new(0);
        scope(|s| {
            for chunk in inputs.chunks(2) {
                let total = &total;
                s.spawn(move || {
                    total.fetch_add(chunk.iter().sum::<u64>(), Ordering::Relaxed);
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 36);
    }

    #[test]
    fn par_for_visits_every_index_once() {
        let n = 10_000;
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        with_threads(4, || {
            par_for(n, 64, |i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn par_map_preserves_index_order() {
        let expected: Vec<usize> = (0..2500).map(|i| i * 3).collect();
        for threads in [1, 2, 4] {
            let got = with_threads(threads, || par_map(2500, 128, |i| i * 3));
            assert_eq!(got, expected, "threads={threads}");
        }
    }

    #[test]
    fn chunked_float_reductions_are_bit_identical_across_thread_counts() {
        // Awkward magnitudes so any re-association would change the bits.
        let xs: Vec<f64> = (0..50_000)
            .map(|i| ((i as f64) * 0.7305).sin() * 1e6 + 1e-7 * i as f64)
            .collect();
        let reduce = || {
            par_map_chunks(xs.len(), 1024, |r| xs[r].iter().sum::<f64>())
                .into_iter()
                .fold(0.0f64, |a, b| a + b)
        };
        let serial = with_threads(1, reduce);
        let two = with_threads(2, reduce);
        let four = with_threads(4, reduce);
        assert_eq!(serial.to_bits(), two.to_bits());
        assert_eq!(two.to_bits(), four.to_bits());
    }

    #[test]
    fn nested_regions_fall_back_to_sequential() {
        let saw_nested_parallelism = AtomicUsize::new(0);
        with_threads(4, || {
            par_for(64, 1, |_| {
                // Inside a region (possibly on a worker) nested regions
                // must report a single thread when on a worker thread.
                if in_worker() {
                    saw_nested_parallelism.fetch_max(max_threads(), Ordering::Relaxed);
                }
            });
        });
        assert!(saw_nested_parallelism.load(Ordering::Relaxed) <= 1);
    }

    #[test]
    fn par_chunks_mut_fills_disjoint_chunks() {
        let mut data = vec![0usize; 4099];
        with_threads(4, || {
            par_chunks_mut(&mut data, 512, |ci, chunk| {
                for (k, v) in chunk.iter_mut().enumerate() {
                    *v = ci * 512 + k;
                }
            });
        });
        assert!(data.iter().enumerate().all(|(i, &v)| v == i));
    }

    #[test]
    fn task_panics_propagate_to_the_scope_caller() {
        let result = panic::catch_unwind(|| {
            with_threads(4, || {
                par_for(256, 1, |i| {
                    if i == 97 {
                        panic!("boom");
                    }
                });
            });
        });
        assert!(result.is_err());
    }

    #[test]
    fn zero_sized_regions_are_noops() {
        par_for(0, 16, |_| panic!("must not run"));
        assert!(par_map_chunks(0, 16, |_| 1).is_empty());
        let empty: Vec<u8> = par_map(0, 16, |_| 0u8);
        assert!(empty.is_empty());
        par_chunks_mut::<u8, _>(&mut [], 16, |_, _| panic!("must not run"));
    }

    #[test]
    fn dedicated_pool_runs_and_shuts_down() {
        let pool = ThreadPool::new(2);
        assert_eq!(pool.worker_count(), 2);
        drop(pool); // joins cleanly
    }

    #[test]
    fn task_hook_propagates_context_across_spawn() {
        thread_local! {
            static TOKEN: Cell<u64> = const { Cell::new(0) };
        }
        fn capture() -> u64 {
            TOKEN.with(|t| t.get())
        }
        fn enter(t: u64) -> u64 {
            TOKEN.with(|c| c.replace(t))
        }
        fn exit(p: u64) {
            TOKEN.with(|c| c.set(p));
        }
        set_task_hook(TaskHook {
            capture,
            enter,
            exit,
        });
        TOKEN.with(|t| t.set(41));
        let seen = Mutex::new(Vec::new());
        with_threads(4, || {
            par_for(64, 1, |_| {
                seen.lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .push(TOKEN.with(|t| t.get()));
            });
        });
        let seen = seen.into_inner().unwrap_or_else(|e| e.into_inner());
        assert_eq!(seen.len(), 64);
        assert!(seen.iter().all(|&v| v == 41), "{seen:?}");
        // The test thread's own token is untouched.
        assert_eq!(TOKEN.with(|t| t.get()), 41);
    }
}
