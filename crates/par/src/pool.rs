//! The worker pool: spawn-once threads draining a shared job queue.
//!
//! Workers are created when the pool is built and live until it is dropped;
//! parallel regions never spawn threads of their own. Jobs are type-erased
//! `FnOnce` boxes; the scoped layer in `lib.rs` is responsible for making
//! borrowed closures safe to enqueue here.

use std::collections::VecDeque;
use std::panic::{self, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;

/// A type-erased unit of work.
pub(crate) type Job = Box<dyn FnOnce() + Send + 'static>;

struct Queue {
    jobs: VecDeque<Job>,
    shutdown: bool,
}

struct PoolState {
    queue: Mutex<Queue>,
    available: Condvar,
}

/// A fixed-size pool of worker threads fed from one shared queue.
///
/// The pool is deliberately minimal: no work stealing, no per-worker deques.
/// Parallel regions submit a handful of long-lived "helper loop" jobs (one
/// per extra thread) that pull chunks off an atomic counter, so the queue
/// itself is never hot.
pub struct ThreadPool {
    state: Arc<PoolState>,
    workers: Vec<thread::JoinHandle<()>>,
}

impl ThreadPool {
    /// Spawns `workers` threads. Zero workers is valid: every region then
    /// runs entirely on the calling thread.
    pub fn new(workers: usize) -> Self {
        let state = Arc::new(PoolState {
            queue: Mutex::new(Queue {
                jobs: VecDeque::new(),
                shutdown: false,
            }),
            available: Condvar::new(),
        });
        // A failed spawn (thread exhaustion) degrades to fewer workers
        // instead of aborting: callers always participate in regions, so
        // even zero workers keeps every region correct, just serial.
        let workers = (0..workers)
            .filter_map(|i| {
                let state = Arc::clone(&state);
                thread::Builder::new()
                    .name(format!("mbp-par-{i}"))
                    .spawn(move || worker_loop(&state))
                    .ok()
            })
            .collect();
        ThreadPool { state, workers }
    }

    /// Number of worker threads (excluding callers, which also participate
    /// in parallel regions).
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// Enqueues a job for any idle worker.
    pub(crate) fn submit(&self, job: Job) {
        let mut q = self.state.queue.lock().unwrap_or_else(|e| e.into_inner());
        q.jobs.push_back(job);
        drop(q);
        self.state.available.notify_one();
    }

    /// Enqueues a free-standing `'static` job on this pool's workers.
    ///
    /// This is the escape hatch for subsystems that need *dedicated*
    /// long-lived loops (the `mbp-serve` accept/IO threads) rather than
    /// fork-join regions: build a private `ThreadPool` and feed it loops
    /// with `run`. Do **not** call this on the shared compute pool with a
    /// job that blocks indefinitely — a parked job pins a worker, and
    /// fork-join regions on other threads would wait forever for helper
    /// jobs queued behind it. Workers spawned by any pool are marked as
    /// pool threads, so nested parallel regions inside `f` degrade to
    /// sequential instead of deadlocking.
    ///
    /// A panic inside `f` is caught by the worker loop and does not take
    /// the pool down. Jobs still queued when the pool is dropped run to
    /// completion before the workers exit.
    pub fn run(&self, f: impl FnOnce() + Send + 'static) {
        self.submit(Box::new(f));
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        {
            let mut q = self.state.queue.lock().unwrap_or_else(|e| e.into_inner());
            q.shutdown = true;
        }
        self.state.available.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(state: &PoolState) {
    crate::mark_worker_thread();
    loop {
        let job = {
            let mut q = state.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(job) = q.jobs.pop_front() {
                    break Some(job);
                }
                if q.shutdown {
                    break None;
                }
                q = state.available.wait(q).unwrap_or_else(|e| e.into_inner());
            }
        };
        match job {
            // Scoped tasks catch their own panics and record them on the
            // scope; this outer catch only shields the worker from panics in
            // jobs submitted outside the scope machinery.
            Some(job) => {
                let _ = panic::catch_unwind(AssertUnwindSafe(job));
            }
            None => return,
        }
    }
}
