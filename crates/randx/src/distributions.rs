use rand::Rng;

/// A sampleable scalar or vector distribution.
///
/// Mirrors `rand_distr::Distribution` but is implemented locally: the
/// approved dependency list carries only the `rand` core, so the actual
/// distributions (normal, Laplace, …) are hand-rolled here.
pub trait Distribution<T> {
    /// Draws one sample using `rng` as the bit source.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

/// The standard normal distribution `N(0, 1)` via Marsaglia's polar method.
///
/// Polar (a rejection variant of Box–Muller) avoids trigonometric calls and
/// caches the second variate of each accepted pair is *not* done here — each
/// call draws a fresh pair and discards the spare, trading a constant factor
/// for statelessness (the sampler can then be shared freely across threads).
#[derive(Debug, Clone, Copy, Default)]
pub struct StandardNormal;

impl Distribution<f64> for StandardNormal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // The rejection loop is pure bookkeeping — two uniform draws and a
        // fused multiply-add-free radius test. The transcendental tail
        // (`ln`, `sqrt`) sits *after* the loop so the hot rejection path
        // carries no long-latency FP calls and the accept path is a
        // straight-line dependency chain the compiler can schedule freely.
        // The accepted `(u, s)` pair and the tail expression are the same
        // operands in the same order as the fused form, so every stream is
        // bit-identical to the pre-split sampler (pinned by
        // `polar_tail_split_is_bit_identical`).
        let (u, s) = loop {
            let u: f64 = rng.gen_range(-1.0..1.0);
            let v: f64 = rng.gen_range(-1.0..1.0);
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                break (u, s);
            }
        };
        u * (-2.0 * s.ln() / s).sqrt()
    }
}

/// The normal distribution `N(mean, sd²)`.
#[derive(Debug, Clone, Copy)]
pub struct Normal {
    mean: f64,
    sd: f64,
}

impl Normal {
    /// Creates `N(mean, sd²)`.
    ///
    /// # Panics
    /// Panics when `sd` is negative or non-finite — a negative standard
    /// deviation is a programming error, not a recoverable condition.
    pub fn new(mean: f64, sd: f64) -> Self {
        assert!(
            sd >= 0.0 && sd.is_finite() && mean.is_finite(),
            "Normal requires finite mean and sd >= 0, got mean={mean}, sd={sd}"
        );
        Normal { mean, sd }
    }

    /// The mean parameter.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The standard-deviation parameter.
    pub fn sd(&self) -> f64 {
        self.sd
    }
}

impl Distribution<f64> for Normal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.mean + self.sd * StandardNormal.sample(rng)
    }
}

/// The zero-mean Laplace distribution with scale `b` (variance `2b²`).
///
/// Example 2 of the paper notes Laplace noise as an alternative unbiased
/// mechanism; sampling is by inverse CDF.
#[derive(Debug, Clone, Copy)]
pub struct Laplace {
    scale: f64,
}

impl Laplace {
    /// Creates a Laplace distribution with the given scale.
    ///
    /// # Panics
    /// Panics when `scale` is not strictly positive and finite.
    pub fn new(scale: f64) -> Self {
        assert!(
            scale > 0.0 && scale.is_finite(),
            "Laplace requires scale > 0, got {scale}"
        );
        Laplace { scale }
    }

    /// The scale parameter `b`.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// The variance `2b²`.
    pub fn variance(&self) -> f64 {
        2.0 * self.scale * self.scale
    }
}

impl Distribution<f64> for Laplace {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Inverse CDF: u ~ U(-1/2, 1/2); x = -b·sgn(u)·ln(1 - 2|u|).
        let u: f64 = rng.gen_range(-0.5..0.5);
        -self.scale * u.signum() * (1.0 - 2.0 * u.abs()).ln()
    }
}

/// The continuous uniform distribution on `[lo, hi)`.
#[derive(Debug, Clone, Copy)]
pub struct UniformRange {
    lo: f64,
    hi: f64,
}

impl UniformRange {
    /// Creates `U[lo, hi)`.
    ///
    /// # Panics
    /// Panics when `lo >= hi` or either bound is non-finite.
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(
            lo < hi && lo.is_finite() && hi.is_finite(),
            "UniformRange requires finite lo < hi, got [{lo}, {hi})"
        );
        UniformRange { lo, hi }
    }

    /// The mean `(lo + hi) / 2`.
    pub fn mean(&self) -> f64 {
        0.5 * (self.lo + self.hi)
    }

    /// The variance `(hi − lo)² / 12`.
    pub fn variance(&self) -> f64 {
        let w = self.hi - self.lo;
        w * w / 12.0
    }
}

impl Distribution<f64> for UniformRange {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        rng.gen_range(self.lo..self.hi)
    }
}

/// The paper's noise law `W_δ = N(0, (δ/d)·I_d)` (Section 4.1, Figure 4):
/// a `d`-dimensional isotropic Gaussian whose *total* expected squared norm
/// is `E[‖w‖²] = d · (δ/d) = δ`.
#[derive(Debug, Clone, Copy)]
pub struct IsotropicGaussian {
    dim: usize,
    per_coord_variance: f64,
}

impl IsotropicGaussian {
    /// Creates the paper's `W_δ` for a `d`-dimensional hypothesis space:
    /// each coordinate is `N(0, δ/d)`.
    ///
    /// # Panics
    /// Panics when `dim == 0` or `ncp` (the noise control parameter δ) is
    /// negative or non-finite. `ncp == 0` is allowed and yields the
    /// degenerate point mass at the origin (the noiseless optimal model).
    pub fn from_ncp(dim: usize, ncp: f64) -> Self {
        assert!(dim > 0, "IsotropicGaussian requires dim > 0");
        assert!(
            ncp >= 0.0 && ncp.is_finite(),
            "IsotropicGaussian requires ncp >= 0, got {ncp}"
        );
        IsotropicGaussian {
            dim,
            per_coord_variance: ncp / dim as f64,
        }
    }

    /// Creates an isotropic Gaussian with a given per-coordinate variance.
    pub fn per_coordinate(dim: usize, variance: f64) -> Self {
        assert!(dim > 0, "IsotropicGaussian requires dim > 0");
        assert!(
            variance >= 0.0 && variance.is_finite(),
            "variance must be >= 0, got {variance}"
        );
        IsotropicGaussian {
            dim,
            per_coord_variance: variance,
        }
    }

    /// The dimension `d`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The per-coordinate variance `δ/d`.
    pub fn per_coord_variance(&self) -> f64 {
        self.per_coord_variance
    }

    /// The total expected squared norm `E[‖w‖²] = δ`.
    pub fn expected_squared_norm(&self) -> f64 {
        self.per_coord_variance * self.dim as f64
    }
}

impl Distribution<Vec<f64>> for IsotropicGaussian {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<f64> {
        let sd = self.per_coord_variance.sqrt();
        (0..self.dim)
            .map(|_| sd * StandardNormal.sample(rng))
            .collect()
    }
}

/// A categorical distribution over `0..k` with arbitrary non-negative
/// weights — buyer-arrival sampling in the market simulators.
///
/// Sampling is by inverse CDF with a precomputed **guide table**: the
/// `[0, total)` axis is cut into `k` equal buckets and each bucket stores
/// the first cumulative-weight index its draws can land in, so a draw costs
/// one table load plus a short forward scan (O(1) expected for non-adversarial
/// weights) instead of a branchy `partition_point` over the whole CDF.
///
/// A Walker alias table would also be O(1) but maps the uniform draw to a
/// *different* category than the CDF walk does, changing every sampled
/// sequence; the guide table keeps the draw (`gen_range(0.0..total)`) and
/// the acceptance predicate (`cumulative[i] <= u`) identical, so streams
/// are bit-for-bit what the `partition_point` sampler produced (pinned by
/// `categorical_guide_table_matches_partition_point_sequence`).
#[derive(Debug, Clone)]
pub struct Categorical {
    cumulative: Vec<f64>,
    /// `guide[b]` = `partition_point(|c| c <= total·b/k)`: the first index a
    /// draw in bucket `b` can resolve to. `guide[k]` = `len - 1` caps the
    /// clamp bucket.
    guide: Vec<u32>,
    total: f64,
}

impl Categorical {
    /// Creates a categorical distribution from unnormalized weights.
    ///
    /// # Panics
    /// Panics when `weights` is empty, contains a negative/non-finite
    /// entry, or sums to zero.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "need at least one category");
        assert!(
            weights.iter().all(|&w| w >= 0.0 && w.is_finite()),
            "weights must be finite and >= 0"
        );
        assert!(
            weights.len() < u32::MAX as usize,
            "too many categories for the guide table"
        );
        let mut cumulative = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for &w in weights {
            acc += w;
            cumulative.push(acc);
        }
        assert!(acc > 0.0, "total weight must be positive");
        let k = cumulative.len();
        let mut guide = Vec::with_capacity(k + 1);
        for b in 0..k {
            let edge = acc * (b as f64 / k as f64);
            guide.push(cumulative.partition_point(|&c| c <= edge) as u32);
        }
        guide.push((k - 1) as u32);
        Categorical {
            cumulative,
            guide,
            total: acc,
        }
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// `true` when there are no categories (never: the constructor forbids
    /// it, kept for clippy's `len`-without-`is_empty` convention).
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }
}

impl Distribution<usize> for Categorical {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen_range(0.0..self.total);
        // Bucket of u: since u ∈ [0, total), u/total·k ∈ [0, k) and the
        // float→usize cast floors (saturating at 0 for any pathological
        // negative), so b indexes a real bucket; min is belt-and-braces.
        let k = self.cumulative.len();
        let b = (((u / self.total) * k as f64) as usize).min(k - 1);
        // Start at the bucket's precomputed first index and scan forward
        // with the same predicate partition_point used: the result is the
        // count of cumulative entries <= u, exactly.
        let mut i = self.guide.get(b).map_or(0, |&g| g as usize);
        while self.cumulative.get(i).is_some_and(|&c| c <= u) {
            i += 1;
        }
        i.min(k - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seeded_rng;

    fn moments(samples: &[f64]) -> (f64, f64) {
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
        (mean, var)
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = seeded_rng(11);
        let xs: Vec<f64> = (0..200_000)
            .map(|_| StandardNormal.sample(&mut rng))
            .collect();
        let (m, v) = moments(&xs);
        assert!(m.abs() < 0.02, "mean {m}");
        assert!((v - 1.0).abs() < 0.03, "var {v}");
    }

    #[test]
    fn normal_shifts_and_scales() {
        let mut rng = seeded_rng(12);
        let d = Normal::new(3.0, 2.0);
        let xs: Vec<f64> = (0..200_000).map(|_| d.sample(&mut rng)).collect();
        let (m, v) = moments(&xs);
        assert!((m - 3.0).abs() < 0.03);
        assert!((v - 4.0).abs() < 0.1);
    }

    #[test]
    fn laplace_moments() {
        let mut rng = seeded_rng(13);
        let d = Laplace::new(1.5);
        let xs: Vec<f64> = (0..300_000).map(|_| d.sample(&mut rng)).collect();
        let (m, v) = moments(&xs);
        assert!(m.abs() < 0.03, "mean {m}");
        assert!(
            (v - d.variance()).abs() < 0.15,
            "var {v} expected {}",
            d.variance()
        );
    }

    #[test]
    fn uniform_range_moments() {
        let mut rng = seeded_rng(14);
        let d = UniformRange::new(-2.0, 4.0);
        let xs: Vec<f64> = (0..200_000).map(|_| d.sample(&mut rng)).collect();
        let (m, v) = moments(&xs);
        assert!((m - d.mean()).abs() < 0.02);
        assert!((v - d.variance()).abs() < 0.05);
        assert!(xs.iter().all(|&x| (-2.0..4.0).contains(&x)));
    }

    /// Lemma 3 at the distribution level: `E[‖w‖²] = δ` for `w ~ W_δ`.
    #[test]
    fn isotropic_gaussian_expected_norm_is_ncp() {
        let mut rng = seeded_rng(15);
        let ncp = 2.5;
        let d = IsotropicGaussian::from_ncp(8, ncp);
        assert!((d.expected_squared_norm() - ncp).abs() < 1e-12);
        let mean_sq: f64 = (0..50_000)
            .map(|_| {
                let w = d.sample(&mut rng);
                w.iter().map(|x| x * x).sum::<f64>()
            })
            .sum::<f64>()
            / 50_000.0;
        assert!(
            (mean_sq - ncp).abs() < 0.05,
            "measured {mean_sq}, want {ncp}"
        );
    }

    #[test]
    fn zero_ncp_is_noiseless() {
        let mut rng = seeded_rng(16);
        let d = IsotropicGaussian::from_ncp(4, 0.0);
        let w = d.sample(&mut rng);
        assert!(w.iter().all(|&x| x == 0.0));
    }

    #[test]
    #[should_panic(expected = "ncp >= 0")]
    fn negative_ncp_panics() {
        let _ = IsotropicGaussian::from_ncp(4, -1.0);
    }

    #[test]
    #[should_panic(expected = "scale > 0")]
    fn laplace_rejects_zero_scale() {
        let _ = Laplace::new(0.0);
    }

    #[test]
    fn categorical_frequencies_match_weights() {
        let mut rng = seeded_rng(17);
        let cat = Categorical::new(&[1.0, 3.0, 0.0, 6.0]);
        let mut counts = [0usize; 4];
        let reps = 100_000;
        for _ in 0..reps {
            counts[cat.sample(&mut rng)] += 1;
        }
        assert_eq!(counts[2], 0, "zero-weight category was sampled");
        let f1 = counts[1] as f64 / reps as f64;
        let f3 = counts[3] as f64 / reps as f64;
        assert!((f1 - 0.3).abs() < 0.01, "{f1}");
        assert!((f3 - 0.6).abs() < 0.01, "{f3}");
    }

    #[test]
    fn categorical_single_category() {
        let mut rng = seeded_rng(18);
        let cat = Categorical::new(&[5.0]);
        assert_eq!(cat.len(), 1);
        assert!(!cat.is_empty());
        for _ in 0..10 {
            assert_eq!(cat.sample(&mut rng), 0);
        }
    }

    #[test]
    #[should_panic(expected = "total weight")]
    fn categorical_rejects_all_zero() {
        Categorical::new(&[0.0, 0.0]);
    }

    /// The guide-table sampler must reproduce the `partition_point`
    /// sampler's output stream bit for bit: same draws, same categories,
    /// across skewed, uniform, and zero-weight-containing CDFs.
    #[test]
    fn categorical_guide_table_matches_partition_point_sequence() {
        // Reference: the pre-guide-table sampler, verbatim.
        fn reference<R: Rng + ?Sized>(cumulative: &[f64], rng: &mut R) -> usize {
            let total = *cumulative.last().expect("non-empty");
            let u: f64 = rng.gen_range(0.0..total);
            cumulative
                .partition_point(|&c| c <= u)
                .min(cumulative.len() - 1)
        }
        let weight_sets: &[&[f64]] = &[
            &[1.0, 3.0, 0.0, 6.0],
            &[5.0],
            &[1.0; 17],
            &[1e-9, 1.0, 1e-9, 1e9, 2.0],
            &[0.0, 0.0, 1.0, 0.0],
            &[0.3, 0.3, 0.3, 0.1],
        ];
        for (si, &weights) in weight_sets.iter().enumerate() {
            let cat = Categorical::new(weights);
            let mut cumulative = Vec::new();
            let mut acc = 0.0;
            for &w in weights {
                acc += w;
                cumulative.push(acc);
            }
            let mut rng_new = seeded_rng(17 + si as u64);
            let mut rng_ref = seeded_rng(17 + si as u64);
            for draw in 0..2000 {
                let got = cat.sample(&mut rng_new);
                let want = reference(&cumulative, &mut rng_ref);
                assert_eq!(got, want, "weights #{si}, draw {draw}");
            }
        }
    }

    /// Splitting the transcendental tail out of the polar rejection loop
    /// must not change a single bit of any stream.
    #[test]
    fn polar_tail_split_is_bit_identical() {
        // Reference: the fused-loop sampler, verbatim.
        fn reference<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            loop {
                let u: f64 = rng.gen_range(-1.0..1.0);
                let v: f64 = rng.gen_range(-1.0..1.0);
                let s = u * u + v * v;
                if s > 0.0 && s < 1.0 {
                    return u * (-2.0 * s.ln() / s).sqrt();
                }
            }
        }
        let mut rng_new = seeded_rng(0x90_1A8);
        let mut rng_ref = seeded_rng(0x90_1A8);
        for draw in 0..5000 {
            let got = StandardNormal.sample(&mut rng_new);
            let want = reference(&mut rng_ref);
            assert_eq!(got.to_bits(), want.to_bits(), "draw {draw}");
        }
    }
}
