//! Goodness-of-fit checks for the hand-rolled samplers.
//!
//! The whole market rests on the noise having exactly the advertised law
//! (unbiasedness and Lemma 3 calibration), so the test suite validates the
//! samplers with a one-sample Kolmogorov–Smirnov test against the target
//! CDF — moment checks alone would miss shape errors like a Box–Muller
//! implementation bug that preserves variance.

/// One-sample Kolmogorov–Smirnov statistic `D_n = sup |F_n(x) − F(x)|`
/// of `samples` against the CDF `cdf`.
///
/// # Panics
/// Panics on an empty sample or a non-finite value.
pub fn ks_statistic(samples: &mut [f64], cdf: impl Fn(f64) -> f64) -> f64 {
    assert!(!samples.is_empty(), "need at least one sample");
    assert!(
        samples.iter().all(|x| x.is_finite()),
        "samples must be finite"
    );
    samples.sort_by(f64::total_cmp);
    let n = samples.len() as f64;
    let mut d: f64 = 0.0;
    for (i, &x) in samples.iter().enumerate() {
        let f = cdf(x);
        let lo = i as f64 / n;
        let hi = (i + 1) as f64 / n;
        d = d.max((f - lo).abs()).max((hi - f).abs());
    }
    d
}

/// Asymptotic KS critical value at significance `alpha ∈ {0.01, 0.05}`:
/// `c(α)/√n` with `c(0.05) ≈ 1.358`, `c(0.01) ≈ 1.628`.
///
/// # Panics
/// Panics for unsupported significance levels.
pub fn ks_critical(n: usize, alpha: f64) -> f64 {
    let c = if (alpha - 0.05).abs() < 1e-12 {
        1.358
    } else if (alpha - 0.01).abs() < 1e-12 {
        1.628
    } else {
        panic!("unsupported alpha {alpha}; use 0.05 or 0.01")
    };
    c / (n as f64).sqrt()
}

/// Standard normal CDF via the complementary error function
/// (Abramowitz–Stegun 7.1.26 polynomial, |error| < 1.5e-7).
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * erfc(-x / std::f64::consts::SQRT_2)
}

/// Zero-mean Laplace CDF with scale `b`.
pub fn laplace_cdf(x: f64, b: f64) -> f64 {
    if x < 0.0 {
        0.5 * (x / b).exp()
    } else {
        1.0 - 0.5 * (-x / b).exp()
    }
}

/// Complementary error function (polynomial approximation; |ε| < 1.5e-7).
pub fn erfc(x: f64) -> f64 {
    let z = x.abs();
    let t = 1.0 / (1.0 + 0.5 * z);
    let tau = t
        * (-z * z - 1.26551223
            + t * (1.00002368
                + t * (0.37409196
                    + t * (0.09678418
                        + t * (-0.18628806
                            + t * (0.27886807
                                + t * (-1.13520398
                                    + t * (1.48851587 + t * (-0.82215223 + t * 0.17087277)))))))))
            .exp();
    if x >= 0.0 {
        tau
    } else {
        2.0 - tau
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{seeded_rng, Distribution, Laplace, Normal, StandardNormal, UniformRange};

    const N: usize = 20_000;

    #[test]
    fn erfc_reference_values() {
        // erfc(0) = 1; erfc(1) ≈ 0.157299; erfc(−1) ≈ 1.842701.
        assert!((erfc(0.0) - 1.0).abs() < 1e-7);
        assert!((erfc(1.0) - 0.157_299_2).abs() < 1e-6);
        assert!((erfc(-1.0) - 1.842_700_8).abs() < 1e-6);
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-6);
        assert!((normal_cdf(1.96) - 0.975).abs() < 1e-3);
    }

    #[test]
    fn standard_normal_passes_ks() {
        let mut rng = seeded_rng(201);
        let mut xs: Vec<f64> = (0..N).map(|_| StandardNormal.sample(&mut rng)).collect();
        let d = ks_statistic(&mut xs, normal_cdf);
        assert!(d < ks_critical(N, 0.01), "KS statistic {d}");
    }

    #[test]
    fn shifted_normal_passes_ks() {
        let mut rng = seeded_rng(202);
        let dist = Normal::new(2.0, 3.0);
        let mut xs: Vec<f64> = (0..N).map(|_| dist.sample(&mut rng)).collect();
        let d = ks_statistic(&mut xs, |x| normal_cdf((x - 2.0) / 3.0));
        assert!(d < ks_critical(N, 0.01), "KS statistic {d}");
    }

    #[test]
    fn laplace_passes_ks() {
        let mut rng = seeded_rng(203);
        let dist = Laplace::new(1.5);
        let mut xs: Vec<f64> = (0..N).map(|_| dist.sample(&mut rng)).collect();
        let d = ks_statistic(&mut xs, |x| laplace_cdf(x, 1.5));
        assert!(d < ks_critical(N, 0.01), "KS statistic {d}");
    }

    #[test]
    fn uniform_passes_ks() {
        let mut rng = seeded_rng(204);
        let dist = UniformRange::new(-2.0, 5.0);
        let mut xs: Vec<f64> = (0..N).map(|_| dist.sample(&mut rng)).collect();
        let d = ks_statistic(&mut xs, |x| ((x + 2.0) / 7.0).clamp(0.0, 1.0));
        assert!(d < ks_critical(N, 0.01), "KS statistic {d}");
    }

    /// The test has power: a wrong distribution fails decisively.
    #[test]
    fn ks_rejects_wrong_distribution() {
        let mut rng = seeded_rng(205);
        // Uniform samples tested against a normal CDF.
        let dist = UniformRange::new(-1.0, 1.0);
        let mut xs: Vec<f64> = (0..N).map(|_| dist.sample(&mut rng)).collect();
        let d = ks_statistic(&mut xs, normal_cdf);
        assert!(d > 10.0 * ks_critical(N, 0.01), "KS should reject, got {d}");
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn empty_sample_panics() {
        ks_statistic(&mut [], normal_cdf);
    }
}
