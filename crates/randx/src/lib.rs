//! Seeded random sampling substrate for the MBP stack.
//!
//! The paper's mechanism releases `h* + w` with `w ~ N(0, (δ/d)·I_d)`
//! (Figure 4); MATLAB supplied `randn`. Here the only external dependency is
//! the `rand` crate's uniform bit source — every distribution is implemented
//! from scratch on top of it:
//!
//! * [`StandardNormal`] — Marsaglia's polar method;
//! * [`Normal`], [`Laplace`], [`UniformRange`] — the scalar distributions
//!   used by the mechanisms of Examples 1–2;
//! * [`IsotropicGaussian`] — the paper's `W_δ = N(0, (δ/d)·I_d)` vector law.
//!
//! All experiment entry points take explicit seeds so that every figure and
//! table in `mbp-bench` is reproducible bit-for-bit. The [`gof`] module
//! validates every sampler against its target CDF with a Kolmogorov–
//! Smirnov test — the market's Lemma 3 calibration depends on the noise
//! having exactly the advertised law.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod distributions;
pub mod gof;
mod seed;

pub use distributions::{
    Categorical, Distribution, IsotropicGaussian, Laplace, Normal, StandardNormal, UniformRange,
};
pub use seed::{seeded_rng, MbpRng, SeedStream};
