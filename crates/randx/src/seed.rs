use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// The RNG type used throughout the workspace.
///
/// `StdRng` (ChaCha-based) is deterministic given a seed and portable across
/// platforms, which is what reproducible experiments need. Speed is not a
/// concern at the sampling rates of this workload.
pub type MbpRng = StdRng;

/// Creates a deterministically seeded RNG from a 64-bit seed.
pub fn seeded_rng(seed: u64) -> MbpRng {
    StdRng::seed_from_u64(seed)
}

/// A stream of independent, reproducible RNGs derived from one master seed.
///
/// Experiments fan out over datasets × NCP grid × replicas; giving each cell
/// its own derived RNG keeps results independent of iteration order and of
/// how many samples earlier cells consumed.
#[derive(Debug)]
pub struct SeedStream {
    master: MbpRng,
}

impl SeedStream {
    /// Creates a stream rooted at `seed`.
    pub fn new(seed: u64) -> Self {
        SeedStream {
            master: seeded_rng(seed),
        }
    }

    /// Returns the next independent RNG in the stream.
    pub fn next_rng(&mut self) -> MbpRng {
        seeded_rng(self.next_seed())
    }

    /// Returns the next raw 64-bit seed in the stream.
    pub fn next_seed(&mut self) -> u64 {
        mbp_obs::inc("mbp.randx.seedstream.derived");
        self.master.next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_draws() {
        let mut a = seeded_rng(42);
        let mut b = seeded_rng(42);
        for _ in 0..16 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = seeded_rng(1);
        let mut b = seeded_rng(2);
        let va: Vec<u64> = (0..4).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..4).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn seed_stream_is_reproducible_and_independent() {
        let mut s1 = SeedStream::new(7);
        let mut s2 = SeedStream::new(7);
        let seeds1: Vec<u64> = (0..5).map(|_| s1.next_seed()).collect();
        let seeds2: Vec<u64> = (0..5).map(|_| s2.next_seed()).collect();
        assert_eq!(seeds1, seeds2);
        // Derived RNGs are distinct streams.
        let mut s = SeedStream::new(7);
        let mut r1 = s.next_rng();
        let mut r2 = s.next_rng();
        assert_ne!(r1.gen::<u64>(), r2.gen::<u64>());
    }
}
