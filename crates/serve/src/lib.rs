//! `mbp-serve`: the marketplace's zero-dependency TCP front-end.
//!
//! PR 7 gave the broker a cache-resident batch kernel
//! (`quote_batch`/`buy_batch_into`); this crate puts a network in front
//! of it. A thread-per-core accept/IO loop (a dedicated
//! [`mbp_par::ThreadPool`]) serves a compact length-prefixed binary
//! protocol ([`wire`]) over [`SharedBroker`]: each connection drains all
//! pending requests from its socket and dispatches runs of same-listing
//! buys/quotes as *one* batch-kernel call (**batch admission**), with
//! bounded per-connection queues, explicit backpressure frames, idle
//! timeouts, and a graceful drain-then-shutdown on SIGTERM or a control
//! frame. A `GET /metrics` Prometheus side port exposes the live
//! `mbp-obs` registry (`mbp.serve.*` spans, counters, and gauges cover
//! every phase: read/decode/batch/dispatch/encode/write).
//!
//! Determinism contract: each connection's noise RNG is seeded by its
//! client's `Hello` frame, every connection is pinned to one IO worker,
//! and the PR 7 kernel consumes RNG purely in request order — so the
//! responses (and the settled ledger, up to transaction order across
//! connections) are bit-identical to an in-process `Broker` run, no
//! matter how frames coalesced into batches. The loopback tests and the
//! `loadgen` digest checks in `mbp-bench` pin exactly that.
//!
//! [`SharedBroker`]: mbp_core::market::concurrent::SharedBroker

pub mod client;
mod conn;
mod server;
pub mod wire;

pub use client::Client;
pub use server::{start, ServerConfig, ServerHandle, ServerStats};
