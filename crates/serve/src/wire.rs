//! The `mbp-serve` wire protocol: compact length-prefixed binary frames.
//!
//! Every frame is a fixed 12-byte header followed by a payload:
//!
//! | offset | size | field        | value                                  |
//! |--------|------|--------------|----------------------------------------|
//! | 0      | 2    | magic        | `b"MB"`                                |
//! | 2      | 1    | version      | [`VERSION`]                            |
//! | 3      | 1    | frame type   | request `0x01..`, response `0x81..`    |
//! | 4      | 4    | request id   | u32 LE, echoed on the response         |
//! | 8      | 4    | payload len  | u32 LE, at most [`MAX_PAYLOAD`]        |
//!
//! Request id `0` is reserved for unsolicited server frames
//! ([`Response::Backpressure`]). All integers and floats are
//! little-endian; floats travel as raw IEEE-754 bits, so a response
//! stream digests bit-identically across runs.
//!
//! This module is in the `mbp-lint` panic-freedom and determinism scopes:
//! decoding a hostile byte stream must never panic (no indexing, no
//! unwraps) and never consult ambient state (no clocks, no entropy).
//! Malformed input maps to a typed [`WireError`]; [`WireError::is_fatal`]
//! distinguishes framing corruption (close the connection) from
//! recoverable per-frame garbage (answer with an error frame and keep
//! going).

use mbp_core::market::{MarketError, PurchaseRequest};
use mbp_ml::ModelKind;

/// Protocol version carried in every header.
pub const VERSION: u8 = 1;
/// First magic byte (`b'M'`).
pub const MAGIC0: u8 = b'M';
/// Second magic byte (`b'B'`).
pub const MAGIC1: u8 = b'B';
/// Fixed header size in bytes.
pub const HEADER_LEN: usize = 12;
/// Hard cap on a frame payload; anything larger is framing corruption.
pub const MAX_PAYLOAD: usize = 64 * 1024;
/// Hard cap on the number of `(knot, price)` points in a publish frame.
pub const MAX_PUBLISH_POINTS: usize = 2048;

/// Frame type tags. Requests set the high bit clear, responses set it.
pub mod frame_type {
    /// Client handshake: carries the connection's noise-RNG seed.
    pub const HELLO: u8 = 0x01;
    /// Price a request without purchasing (consumes no RNG).
    pub const QUOTE: u8 = 0x02;
    /// Purchase: releases a noised model instance.
    pub const BUY: u8 = 0x03;
    /// Replace the listing for a model kind.
    pub const PUBLISH: u8 = 0x04;
    /// Liveness probe.
    pub const PING: u8 = 0x05;
    /// Control frame: ask the server to drain and shut down.
    pub const SHUTDOWN: u8 = 0x06;

    /// Handshake accepted.
    pub const HELLO_OK: u8 = 0x81;
    /// Quote result: `(ncp, price, expected_error)`.
    pub const QUOTE_OK: u8 = 0x82;
    /// Purchase result: quote fields plus the released weights.
    pub const BUY_OK: u8 = 0x83;
    /// Listing replaced.
    pub const PUBLISH_OK: u8 = 0x84;
    /// Liveness answer.
    pub const PONG: u8 = 0x85;
    /// Typed error for one request (or the connection, id `0`).
    pub const ERROR: u8 = 0x86;
    /// Unsolicited: per-connection queue is full, stop sending.
    pub const BACKPRESSURE: u8 = 0x87;
    /// Drain acknowledged; connection closes after the flush.
    pub const SHUTDOWN_ACK: u8 = 0x88;
}

/// Typed error codes carried by [`Response::Error`] frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// Malformed or unexpected bytes on the wire.
    Protocol = 1,
    /// [`MarketError::UnsupportedModel`].
    UnsupportedModel = 2,
    /// [`MarketError::TrainingFailed`].
    TrainingFailed = 3,
    /// [`MarketError::UnachievableError`].
    UnachievableError = 4,
    /// [`MarketError::InsufficientBudget`].
    InsufficientBudget = 5,
    /// [`MarketError::BadRequest`].
    BadRequest = 6,
    /// A buy arrived before the `Hello` handshake seeded the RNG.
    NotReady = 7,
    /// The server is draining and accepts no new work.
    ShuttingDown = 8,
}

impl ErrorCode {
    /// Wire byte for this code.
    pub fn as_u8(self) -> u8 {
        // LINT-ALLOW(cast): discriminants are 1..=8, all representable in u8
        self as u8
    }

    /// Parses a wire byte back into a code.
    pub fn from_u8(b: u8) -> Option<ErrorCode> {
        match b {
            1 => Some(ErrorCode::Protocol),
            2 => Some(ErrorCode::UnsupportedModel),
            3 => Some(ErrorCode::TrainingFailed),
            4 => Some(ErrorCode::UnachievableError),
            5 => Some(ErrorCode::InsufficientBudget),
            6 => Some(ErrorCode::BadRequest),
            7 => Some(ErrorCode::NotReady),
            8 => Some(ErrorCode::ShuttingDown),
            _ => None,
        }
    }
}

/// Maps a broker-side rejection onto its wire code.
pub fn market_error_code(e: &MarketError) -> ErrorCode {
    match e {
        MarketError::UnsupportedModel(_) => ErrorCode::UnsupportedModel,
        MarketError::TrainingFailed(_) => ErrorCode::TrainingFailed,
        MarketError::UnachievableError(_) => ErrorCode::UnachievableError,
        MarketError::InsufficientBudget(_) => ErrorCode::InsufficientBudget,
        MarketError::BadRequest(_) => ErrorCode::BadRequest,
    }
}

/// A decoding failure. Fatal errors mean the byte stream itself can no
/// longer be trusted (bad magic, impossible length): the server answers
/// once with a protocol error and closes. Non-fatal errors are scoped to
/// one well-framed request and leave the connection usable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Header magic bytes are wrong.
    BadMagic,
    /// Unsupported protocol version.
    BadVersion(u8),
    /// Payload length field exceeds [`MAX_PAYLOAD`].
    Oversized(u32),
    /// Frame type byte is not a known request.
    UnknownFrameType(u8),
    /// Payload too short (or trailing bytes) for its frame type.
    BadPayload(u8),
    /// Model-kind byte not in the catalog.
    UnknownModelKind(u8),
    /// Purchase-request mode byte not in the catalog.
    UnknownRequestMode(u8),
    /// Publish point count exceeds [`MAX_PUBLISH_POINTS`].
    TooManyPoints(u32),
}

impl WireError {
    /// `true` when framing is corrupt and the connection must close.
    pub fn is_fatal(&self) -> bool {
        matches!(
            self,
            WireError::BadMagic | WireError::BadVersion(_) | WireError::Oversized(_)
        )
    }

    /// Human-readable message carried on the error frame.
    pub fn message(&self) -> String {
        match self {
            WireError::BadMagic => "bad frame magic".to_string(),
            WireError::BadVersion(v) => format!("unsupported protocol version {v}"),
            WireError::Oversized(n) => {
                format!("payload of {n} bytes exceeds MAX_PAYLOAD ({MAX_PAYLOAD})")
            }
            WireError::UnknownFrameType(t) => format!("unknown frame type 0x{t:02x}"),
            WireError::BadPayload(t) => format!("malformed payload for frame type 0x{t:02x}"),
            WireError::UnknownModelKind(k) => format!("unknown model kind {k}"),
            WireError::UnknownRequestMode(m) => format!("unknown purchase-request mode {m}"),
            WireError::TooManyPoints(n) => {
                format!("publish with {n} points exceeds MAX_PUBLISH_POINTS ({MAX_PUBLISH_POINTS})")
            }
        }
    }
}

/// A validated frame header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Header {
    /// Frame type byte.
    pub frame_type: u8,
    /// Request id echoed on responses.
    pub request_id: u32,
    /// Payload length in bytes.
    pub payload_len: u32,
}

/// A decoded client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Handshake: seeds the connection's noise RNG.
    Hello {
        /// Seed for the per-connection noise stream.
        seed: u64,
    },
    /// Price one request without purchasing.
    Quote {
        /// Listing to quote against.
        kind: ModelKind,
        /// The point/budget being quoted.
        request: PurchaseRequest,
    },
    /// Purchase one noised instance.
    Buy {
        /// Listing to buy from.
        kind: ModelKind,
        /// The point/budget being bought.
        request: PurchaseRequest,
    },
    /// Replace the listing for `kind` with a new price curve (the error
    /// transform is fixed to square loss on the wire).
    Publish {
        /// Listing to replace.
        kind: ModelKind,
        /// `(knot, price)` pairs in ascending-knot order.
        points: Vec<(f64, f64)>,
    },
    /// Liveness probe.
    Ping,
    /// Ask the server to drain and shut down.
    Shutdown,
}

/// A decoded server response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Handshake accepted.
    HelloOk,
    /// Quote result.
    QuoteOk {
        /// Resolved noise control parameter.
        ncp: f64,
        /// Price at that NCP.
        price: f64,
        /// Expected error at that NCP.
        expected_error: f64,
    },
    /// Purchase result with the released model weights.
    BuyOk {
        /// Resolved noise control parameter.
        ncp: f64,
        /// Price paid.
        price: f64,
        /// Expected error at that NCP.
        expected_error: f64,
        /// Noised weight vector of the released instance.
        weights: Vec<f64>,
    },
    /// Listing replaced.
    PublishOk,
    /// Liveness answer.
    Pong,
    /// Typed rejection of one request.
    Error {
        /// Machine-readable code.
        code: ErrorCode,
        /// Human-readable detail.
        msg: String,
    },
    /// Unsolicited: stop sending until responses drain.
    Backpressure,
    /// Drain acknowledged.
    ShutdownAck,
}

/// Wire byte for a model kind.
pub fn kind_to_u8(kind: ModelKind) -> u8 {
    match kind {
        ModelKind::LinearRegression => 0,
        ModelKind::LogisticRegression => 1,
        ModelKind::LinearSvm => 2,
    }
}

/// Model kind for a wire byte.
pub fn kind_from_u8(b: u8) -> Option<ModelKind> {
    match b {
        0 => Some(ModelKind::LinearRegression),
        1 => Some(ModelKind::LogisticRegression),
        2 => Some(ModelKind::LinearSvm),
        _ => None,
    }
}

fn request_mode(request: PurchaseRequest) -> (u8, f64) {
    match request {
        PurchaseRequest::AtNcp(v) => (0, v),
        PurchaseRequest::ErrorBudget(v) => (1, v),
        PurchaseRequest::PriceBudget(v) => (2, v),
    }
}

fn request_from_mode(mode: u8, value: f64) -> Option<PurchaseRequest> {
    match mode {
        0 => Some(PurchaseRequest::AtNcp(value)),
        1 => Some(PurchaseRequest::ErrorBudget(value)),
        2 => Some(PurchaseRequest::PriceBudget(value)),
        _ => None,
    }
}

/// Bounds-checked little-endian cursor over a payload slice.
struct Reader<'a> {
    buf: &'a [u8],
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let head = self.buf.get(..n)?;
        self.buf = self.buf.get(n..)?;
        Some(head)
    }

    fn u8(&mut self) -> Option<u8> {
        self.take(1)?.first().copied()
    }

    fn u32(&mut self) -> Option<u32> {
        let raw = <[u8; 4]>::try_from(self.take(4)?).ok()?;
        Some(u32::from_le_bytes(raw))
    }

    fn u64(&mut self) -> Option<u64> {
        let raw = <[u8; 8]>::try_from(self.take(8)?).ok()?;
        Some(u64::from_le_bytes(raw))
    }

    fn f64(&mut self) -> Option<f64> {
        Some(f64::from_bits(self.u64()?))
    }

    fn done(&self) -> bool {
        self.buf.is_empty()
    }
}

/// Writes the 12-byte header for a frame.
fn put_header(out: &mut Vec<u8>, frame_type: u8, request_id: u32, payload_len: usize) {
    debug_assert!(
        payload_len <= MAX_PAYLOAD,
        "encoder framed an oversized payload"
    );
    out.push(MAGIC0);
    out.push(MAGIC1);
    out.push(VERSION);
    out.push(frame_type);
    out.extend_from_slice(&request_id.to_le_bytes());
    // LINT-ALLOW(cast): every encoder frames at most MAX_PAYLOAD (64 KiB) bytes
    out.extend_from_slice(&(payload_len as u32).to_le_bytes());
}

/// Parses (and validates) a header from the front of `buf`.
///
/// Returns `Ok(None)` when fewer than [`HEADER_LEN`] bytes are buffered.
pub fn decode_header(buf: &[u8]) -> Result<Option<Header>, WireError> {
    let Some(raw) = buf.get(..HEADER_LEN) else {
        return Ok(None);
    };
    let mut r = Reader { buf: raw };
    let (m0, m1) = (r.u8().unwrap_or(0), r.u8().unwrap_or(0));
    if m0 != MAGIC0 || m1 != MAGIC1 {
        return Err(WireError::BadMagic);
    }
    let version = r.u8().unwrap_or(0);
    if version != VERSION {
        return Err(WireError::BadVersion(version));
    }
    let frame_type = r.u8().unwrap_or(0);
    let request_id = r.u32().unwrap_or(0);
    let payload_len = r.u32().unwrap_or(0);
    if payload_len as usize > MAX_PAYLOAD {
        return Err(WireError::Oversized(payload_len));
    }
    Ok(Some(Header {
        frame_type,
        request_id,
        payload_len,
    }))
}

/// Decodes a request payload under an already-validated header.
pub fn decode_request(header: &Header, payload: &[u8]) -> Result<Request, WireError> {
    let mut r = Reader { buf: payload };
    let t = header.frame_type;
    let parsed = match t {
        frame_type::HELLO => {
            let seed = r.u64().ok_or(WireError::BadPayload(t))?;
            Request::Hello { seed }
        }
        frame_type::QUOTE | frame_type::BUY => {
            let kind_byte = r.u8().ok_or(WireError::BadPayload(t))?;
            let kind = kind_from_u8(kind_byte).ok_or(WireError::UnknownModelKind(kind_byte))?;
            let mode = r.u8().ok_or(WireError::BadPayload(t))?;
            let value = r.f64().ok_or(WireError::BadPayload(t))?;
            let request =
                request_from_mode(mode, value).ok_or(WireError::UnknownRequestMode(mode))?;
            if t == frame_type::QUOTE {
                Request::Quote { kind, request }
            } else {
                Request::Buy { kind, request }
            }
        }
        frame_type::PUBLISH => {
            let kind_byte = r.u8().ok_or(WireError::BadPayload(t))?;
            let kind = kind_from_u8(kind_byte).ok_or(WireError::UnknownModelKind(kind_byte))?;
            let n = r.u32().ok_or(WireError::BadPayload(t))?;
            if n as usize > MAX_PUBLISH_POINTS {
                return Err(WireError::TooManyPoints(n));
            }
            let mut points = Vec::with_capacity(n as usize);
            for _ in 0..n {
                let knot = r.f64().ok_or(WireError::BadPayload(t))?;
                let price = r.f64().ok_or(WireError::BadPayload(t))?;
                points.push((knot, price));
            }
            Request::Publish { kind, points }
        }
        frame_type::PING => Request::Ping,
        frame_type::SHUTDOWN => Request::Shutdown,
        other => return Err(WireError::UnknownFrameType(other)),
    };
    if !r.done() {
        return Err(WireError::BadPayload(t));
    }
    Ok(parsed)
}

/// Encodes the shared quote/buy payload: `kind u8, mode u8, value f64`.
fn encode_purchase(
    out: &mut Vec<u8>,
    frame: u8,
    request_id: u32,
    kind: ModelKind,
    request: PurchaseRequest,
) {
    let (mode, value) = request_mode(request);
    put_header(out, frame, request_id, 10);
    out.push(kind_to_u8(kind));
    out.push(mode);
    out.extend_from_slice(&value.to_bits().to_le_bytes());
}

/// Encodes one request frame onto `out`.
pub fn encode_request(out: &mut Vec<u8>, request_id: u32, request: &Request) {
    match request {
        Request::Hello { seed } => {
            put_header(out, frame_type::HELLO, request_id, 8);
            out.extend_from_slice(&seed.to_le_bytes());
        }
        Request::Quote { kind, request } => {
            encode_purchase(out, frame_type::QUOTE, request_id, *kind, *request);
        }
        Request::Buy { kind, request } => {
            encode_purchase(out, frame_type::BUY, request_id, *kind, *request);
        }
        Request::Publish { kind, points } => {
            // Mirror the decoder's bound: a count past MAX_PUBLISH_POINTS
            // would be rejected anyway, and an unbounded count would wrap
            // the u32 length field in the header and desync every frame
            // encoded after this one.
            let n = points.len().min(MAX_PUBLISH_POINTS);
            put_header(out, frame_type::PUBLISH, request_id, 5 + 16 * n);
            out.push(kind_to_u8(*kind));
            // LINT-ALLOW(cast): n <= MAX_PUBLISH_POINTS (2048) by the cap above
            out.extend_from_slice(&(n as u32).to_le_bytes());
            for (knot, price) in points.iter().take(n) {
                out.extend_from_slice(&knot.to_bits().to_le_bytes());
                out.extend_from_slice(&price.to_bits().to_le_bytes());
            }
        }
        Request::Ping => put_header(out, frame_type::PING, request_id, 0),
        Request::Shutdown => put_header(out, frame_type::SHUTDOWN, request_id, 0),
    }
}

/// Encodes one response frame onto `out`.
pub fn encode_response(out: &mut Vec<u8>, request_id: u32, response: &Response) {
    match response {
        Response::HelloOk => put_header(out, frame_type::HELLO_OK, request_id, 0),
        Response::QuoteOk {
            ncp,
            price,
            expected_error,
        } => encode_quote_ok(out, request_id, *ncp, *price, *expected_error),
        Response::BuyOk {
            ncp,
            price,
            expected_error,
            weights,
        } => encode_buy_ok(out, request_id, *ncp, *price, *expected_error, weights),
        Response::PublishOk => put_header(out, frame_type::PUBLISH_OK, request_id, 0),
        Response::Pong => put_header(out, frame_type::PONG, request_id, 0),
        Response::Error { code, msg } => encode_error(out, request_id, *code, msg),
        Response::Backpressure => put_header(out, frame_type::BACKPRESSURE, request_id, 0),
        Response::ShutdownAck => put_header(out, frame_type::SHUTDOWN_ACK, request_id, 0),
    }
}

/// Encodes a quote result without building a [`Response`].
pub fn encode_quote_ok(out: &mut Vec<u8>, request_id: u32, ncp: f64, price: f64, expected: f64) {
    put_header(out, frame_type::QUOTE_OK, request_id, 24);
    out.extend_from_slice(&ncp.to_bits().to_le_bytes());
    out.extend_from_slice(&price.to_bits().to_le_bytes());
    out.extend_from_slice(&expected.to_bits().to_le_bytes());
}

/// Encodes a purchase result straight from borrowed weights — the serving
/// hot path writes arena-resident sales without intermediate allocation.
pub fn encode_buy_ok(
    out: &mut Vec<u8>,
    request_id: u32,
    ncp: f64,
    price: f64,
    expected: f64,
    weights: &[f64],
) {
    put_header(out, frame_type::BUY_OK, request_id, 28 + 8 * weights.len());
    out.extend_from_slice(&ncp.to_bits().to_le_bytes());
    out.extend_from_slice(&price.to_bits().to_le_bytes());
    out.extend_from_slice(&expected.to_bits().to_le_bytes());
    // LINT-ALLOW(cast): weights is a model coefficient vector, orders of magnitude below u32::MAX entries; a wrap needs a 4 GiB vector
    out.extend_from_slice(&(weights.len() as u32).to_le_bytes());
    for w in weights {
        out.extend_from_slice(&w.to_bits().to_le_bytes());
    }
}

/// Encodes a typed error frame. Messages are truncated to keep the frame
/// within [`MAX_PAYLOAD`] (on a char boundary, so the payload stays valid
/// UTF-8).
pub fn encode_error(out: &mut Vec<u8>, request_id: u32, code: ErrorCode, msg: &str) {
    let mut cut = msg.len().min(u16::MAX as usize).min(MAX_PAYLOAD - 3);
    while cut > 0 && !msg.is_char_boundary(cut) {
        cut -= 1;
    }
    let body = msg.get(..cut).unwrap_or("");
    put_header(out, frame_type::ERROR, request_id, 3 + body.len());
    out.push(code.as_u8());
    // LINT-ALLOW(cast): body.len() <= cut <= u16::MAX by the min() above
    out.extend_from_slice(&(body.len() as u16).to_le_bytes());
    out.extend_from_slice(body.as_bytes());
}

/// Decodes a response payload under an already-validated header (the
/// client half of the protocol; servers never call this).
pub fn decode_response(header: &Header, payload: &[u8]) -> Result<Response, WireError> {
    let mut r = Reader { buf: payload };
    let t = header.frame_type;
    let parsed = match t {
        frame_type::HELLO_OK => Response::HelloOk,
        frame_type::QUOTE_OK => Response::QuoteOk {
            ncp: r.f64().ok_or(WireError::BadPayload(t))?,
            price: r.f64().ok_or(WireError::BadPayload(t))?,
            expected_error: r.f64().ok_or(WireError::BadPayload(t))?,
        },
        frame_type::BUY_OK => {
            let ncp = r.f64().ok_or(WireError::BadPayload(t))?;
            let price = r.f64().ok_or(WireError::BadPayload(t))?;
            let expected_error = r.f64().ok_or(WireError::BadPayload(t))?;
            let n = r.u32().ok_or(WireError::BadPayload(t))?;
            let mut weights = Vec::with_capacity((n as usize).min(MAX_PAYLOAD / 8));
            for _ in 0..n {
                weights.push(r.f64().ok_or(WireError::BadPayload(t))?);
            }
            Response::BuyOk {
                ncp,
                price,
                expected_error,
                weights,
            }
        }
        frame_type::PUBLISH_OK => Response::PublishOk,
        frame_type::PONG => Response::Pong,
        frame_type::ERROR => {
            let code_byte = r.u8().ok_or(WireError::BadPayload(t))?;
            let code = ErrorCode::from_u8(code_byte).ok_or(WireError::BadPayload(t))?;
            let raw = <[u8; 2]>::try_from(r.take(2).ok_or(WireError::BadPayload(t))?)
                .map_err(|_| WireError::BadPayload(t))?;
            let len = u16::from_le_bytes(raw) as usize;
            let bytes = r.take(len).ok_or(WireError::BadPayload(t))?;
            let msg = std::str::from_utf8(bytes)
                .map_err(|_| WireError::BadPayload(t))?
                .to_string();
            Response::Error { code, msg }
        }
        frame_type::BACKPRESSURE => Response::Backpressure,
        frame_type::SHUTDOWN_ACK => Response::ShutdownAck,
        other => return Err(WireError::UnknownFrameType(other)),
    };
    if !r.done() {
        return Err(WireError::BadPayload(t));
    }
    Ok(parsed)
}

/// FNV-1a over raw frame bytes: the rolling response digest used by the
/// determinism checks in `loadgen` and the loopback tests.
pub const DIGEST_SEED: u64 = 0xcbf2_9ce4_8422_2325;

/// Folds `bytes` into a rolling FNV-1a digest state.
pub fn digest_bytes(state: u64, bytes: &[u8]) -> u64 {
    let mut h = state;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}
