//! Per-connection state machine: read → decode → batch → dispatch →
//! encode → write, one cycle per scheduler turn.
//!
//! Each connection owns its buffers, its noise RNG (seeded by the client's
//! `Hello` frame), and a [`SaleArena`], so a cycle allocates nothing in
//! steady state. Batch admission happens in the dispatch phase: a run of
//! consecutive buy (or quote) requests for the same listing is dispatched
//! as *one* [`SharedBroker::buy_batch_into`] / `price_batch` call, turning
//! network fan-in into the PR 7 batch kernel's cache-resident shape.
//! Because the kernel's RNG consumption depends only on request order —
//! never on how the stream was chunked into batches — the responses a
//! client sees are bit-identical no matter how its frames happened to
//! coalesce, which is what makes the loadgen digest check meaningful.
//!
//! Admission control: at most `queue_limit` decoded requests may be
//! pending; when the limit is hit with more complete frames buffered, the
//! connection emits one unsolicited [`Response::Backpressure`] frame per
//! episode and stops decoding (TCP flow control then pushes back on the
//! sender). This module is in the `mbp-lint` panic-freedom and
//! determinism scopes: no indexing/unwraps on the request path and no
//! wall-clock reads (idle timeouts are the server loop's job).

use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};

use mbp_core::error::SquareLossTransform;
use mbp_core::market::concurrent::SharedBroker;
use mbp_core::market::{PurchaseRequest, SaleArena, MAX_BATCH};
use mbp_core::pricing::PricingFunction;
use mbp_ml::ModelKind;
use mbp_randx::{seeded_rng, MbpRng};

use crate::wire::{
    decode_header, decode_request, encode_buy_ok, encode_error, encode_quote_ok, encode_response,
    market_error_code, ErrorCode, Request, Response, HEADER_LEN,
};

/// Tuning knobs shared by every connection of one server.
#[derive(Debug, Clone)]
pub(crate) struct ConnConfig {
    /// Max decoded-but-undispatched requests before backpressure.
    pub queue_limit: usize,
    /// Max buffered unparsed bytes before the read phase yields.
    pub read_buf_limit: usize,
    /// `true` disables batch admission: every request dispatches (and
    /// flushes) individually — the naive-server baseline loadgen measures
    /// the batch speedup against.
    pub per_request: bool,
}

/// Outcome of one scheduler turn over a connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum CycleResult {
    /// Bytes moved or requests dispatched this turn.
    Progress,
    /// Nothing to do; the caller may park briefly.
    Idle,
    /// The connection is gone; drop it.
    Closed,
}

/// A decoded frame awaiting dispatch, or a decode rejection that must be
/// answered *in request order* with the responses around it.
enum Pending {
    Req(Request),
    Fail(ErrorCode, String),
}

pub(crate) struct Conn {
    stream: TcpStream,
    read_buf: Vec<u8>,
    write_buf: Vec<u8>,
    write_pos: usize,
    pending: VecDeque<(u32, Pending)>,
    /// Noise RNG, seeded by the client's `Hello`; buys before the
    /// handshake are rejected with [`ErrorCode::NotReady`].
    rng: Option<MbpRng>,
    arena: SaleArena,
    batch_ids: Vec<u32>,
    batch_reqs: Vec<PurchaseRequest>,
    /// Flush what is buffered, then close (fatal frame, EOF, or drain).
    closing: bool,
    closed: bool,
    backpressured: bool,
}

impl Conn {
    /// Wraps an accepted (already non-blocking) stream.
    pub(crate) fn new(stream: TcpStream) -> Conn {
        Conn {
            stream,
            read_buf: Vec::new(),
            write_buf: Vec::new(),
            write_pos: 0,
            pending: VecDeque::new(),
            rng: None,
            arena: SaleArena::new(),
            batch_ids: Vec::new(),
            batch_reqs: Vec::new(),
            closing: false,
            closed: false,
            backpressured: false,
        }
    }

    /// Runs one full read→decode→dispatch→write cycle. `draining` is the
    /// server-wide drain flag: when set (or when a client sends the
    /// shutdown control frame, which sets it), the connection stops
    /// reading, serves what it already buffered, flushes, and closes.
    pub(crate) fn cycle(
        &mut self,
        broker: &SharedBroker,
        cfg: &ConnConfig,
        draining: &AtomicBool,
    ) -> CycleResult {
        if self.closed {
            return CycleResult::Closed;
        }
        let mut progress = false;
        let drain_mode = draining.load(Ordering::Relaxed);
        if !self.closing && !drain_mode {
            progress |= self.fill_read_buf(cfg);
        }
        progress |= self.decode_frames(cfg);
        progress |= self.dispatch(broker, cfg, draining);
        progress |= self.flush_writes();
        let flushed = self.write_pos >= self.write_buf.len();
        let idle_drain = drain_mode && self.pending.is_empty() && !self.has_complete_frame();
        if flushed && (self.closing || idle_drain) {
            let _ = self.stream.shutdown(std::net::Shutdown::Both);
            self.closed = true;
            return CycleResult::Closed;
        }
        if progress {
            CycleResult::Progress
        } else {
            CycleResult::Idle
        }
    }

    /// `true` when at least one complete frame sits unparsed in the
    /// read buffer (used to decide whether a drain can finish).
    fn has_complete_frame(&self) -> bool {
        match decode_header(&self.read_buf) {
            Ok(Some(h)) => self.read_buf.len() >= HEADER_LEN + h.payload_len as usize,
            Ok(None) => false,
            // A poisoned header still needs a dispatch turn to answer.
            Err(_) => true,
        }
    }

    /// Read phase: drain the socket into `read_buf` until it would block,
    /// the buffer hits its cap, or the peer closes.
    fn fill_read_buf(&mut self, cfg: &ConnConfig) -> bool {
        let _span = mbp_obs::span("mbp.serve.read");
        let mut chunk = [0u8; 16 * 1024];
        let mut progress = false;
        while self.read_buf.len() < cfg.read_buf_limit {
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    // Orderly EOF: serve what was buffered, then close.
                    self.closing = true;
                    break;
                }
                Ok(n) => {
                    let Some(got) = chunk.get(..n) else { break };
                    self.read_buf.extend_from_slice(got);
                    mbp_obs::counter_add("mbp.serve.bytes.read", n as u64);
                    progress = true;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.closed = true;
                    break;
                }
            }
        }
        progress
    }

    /// Decode phase: parse complete frames into the pending queue, up to
    /// the admission limit; signal backpressure once per full episode.
    fn decode_frames(&mut self, cfg: &ConnConfig) -> bool {
        let _span = mbp_obs::span("mbp.serve.decode");
        let mut consumed = 0usize;
        let mut progress = false;
        loop {
            if self.pending.len() >= cfg.queue_limit {
                let more = match self.read_buf.get(consumed..) {
                    Some(rest) => !rest.is_empty(),
                    None => false,
                };
                if more && !self.backpressured {
                    encode_response(&mut self.write_buf, 0, &Response::Backpressure);
                    self.backpressured = true;
                    mbp_obs::inc("mbp.serve.backpressure");
                    progress = true;
                }
                break;
            }
            let Some(rest) = self.read_buf.get(consumed..) else {
                break;
            };
            let header = match decode_header(rest) {
                Ok(Some(h)) => h,
                Ok(None) => break,
                Err(e) => {
                    // Corrupt framing: answer once, then close.
                    mbp_obs::inc("mbp.serve.frames.bad");
                    encode_error(&mut self.write_buf, 0, ErrorCode::Protocol, &e.message());
                    self.closing = true;
                    consumed = self.read_buf.len();
                    progress = true;
                    break;
                }
            };
            let total = HEADER_LEN + header.payload_len as usize;
            let Some(frame) = rest.get(..total) else {
                break; // payload not fully buffered yet
            };
            let payload = frame.get(HEADER_LEN..).unwrap_or(&[]);
            consumed += total;
            progress = true;
            mbp_obs::inc("mbp.serve.requests");
            match decode_request(&header, payload) {
                Ok(req) => {
                    self.pending
                        .push_back((header.request_id, Pending::Req(req)));
                }
                Err(e) if e.is_fatal() => {
                    mbp_obs::inc("mbp.serve.frames.bad");
                    self.pending.push_back((
                        header.request_id,
                        Pending::Fail(ErrorCode::Protocol, e.message()),
                    ));
                    self.closing = true;
                    consumed = self.read_buf.len();
                    break;
                }
                Err(e) => {
                    // Well-framed garbage: reject this request, keep going.
                    mbp_obs::inc("mbp.serve.frames.bad");
                    self.pending.push_back((
                        header.request_id,
                        Pending::Fail(ErrorCode::Protocol, e.message()),
                    ));
                }
            }
        }
        if consumed > 0 {
            self.read_buf.drain(..consumed.min(self.read_buf.len()));
        }
        if self.pending.is_empty() {
            self.backpressured = false;
        }
        progress
    }

    /// Dispatch phase: pop pending requests in order, coalescing runs of
    /// same-kind buys/quotes into single batch-kernel calls.
    fn dispatch(&mut self, broker: &SharedBroker, cfg: &ConnConfig, draining: &AtomicBool) -> bool {
        if self.pending.is_empty() {
            return false;
        }
        let _span = mbp_obs::span("mbp.serve.dispatch");
        let dispatched = self.pending.len() as u64;
        while let Some((id, item)) = self.pending.pop_front() {
            match item {
                Pending::Fail(code, msg) => {
                    let _enc = mbp_obs::span("mbp.serve.encode");
                    encode_error(&mut self.write_buf, id, code, &msg);
                }
                Pending::Req(Request::Hello { seed }) => {
                    self.rng = Some(seeded_rng(seed));
                    let _enc = mbp_obs::span("mbp.serve.encode");
                    encode_response(&mut self.write_buf, id, &Response::HelloOk);
                }
                Pending::Req(Request::Ping) => {
                    let _enc = mbp_obs::span("mbp.serve.encode");
                    encode_response(&mut self.write_buf, id, &Response::Pong);
                }
                Pending::Req(Request::Shutdown) => {
                    draining.store(true, Ordering::Relaxed);
                    mbp_obs::inc("mbp.serve.shutdown_frames");
                    let _enc = mbp_obs::span("mbp.serve.encode");
                    encode_response(&mut self.write_buf, id, &Response::ShutdownAck);
                }
                Pending::Req(Request::Publish { kind, points }) => {
                    self.dispatch_publish(broker, id, kind, &points);
                }
                Pending::Req(Request::Quote { kind, request }) => {
                    self.gather_run(cfg, id, request, kind, false);
                    self.dispatch_quotes(broker, kind);
                }
                Pending::Req(Request::Buy { kind, request }) => {
                    self.gather_run(cfg, id, request, kind, true);
                    self.dispatch_buys(broker, kind);
                }
            }
        }
        mbp_obs::counter_add("mbp.serve.dispatched", dispatched);
        self.backpressured = false;
        true
    }

    /// Batch admission: seed the batch buffers with the popped request,
    /// then keep popping while the queue front is the same verb for the
    /// same listing (bounded by the kernel's `MAX_BATCH` cap). With
    /// `per_request` set the run is always length 1.
    fn gather_run(
        &mut self,
        cfg: &ConnConfig,
        id: u32,
        first: PurchaseRequest,
        kind: ModelKind,
        buys: bool,
    ) {
        let _span = mbp_obs::span("mbp.serve.batch");
        self.batch_ids.clear();
        self.batch_reqs.clear();
        self.batch_ids.push(id);
        self.batch_reqs.push(first);
        if cfg.per_request {
            return;
        }
        while self.batch_reqs.len() < MAX_BATCH {
            let same = match self.pending.front() {
                Some((_, Pending::Req(Request::Buy { kind: k, .. }))) => buys && *k == kind,
                Some((_, Pending::Req(Request::Quote { kind: k, .. }))) => !buys && *k == kind,
                _ => false,
            };
            if !same {
                break;
            }
            let Some((next_id, item)) = self.pending.pop_front() else {
                break;
            };
            if let Pending::Req(Request::Buy { request, .. } | Request::Quote { request, .. }) =
                item
            {
                self.batch_ids.push(next_id);
                self.batch_reqs.push(request);
            }
        }
        mbp_obs::observe("mbp.serve.batch_size", self.batch_reqs.len() as f64);
    }

    fn dispatch_buys(&mut self, broker: &SharedBroker, kind: ModelKind) {
        let Some(rng) = self.rng.as_mut() else {
            let _enc = mbp_obs::span("mbp.serve.encode");
            for &id in &self.batch_ids {
                encode_error(
                    &mut self.write_buf,
                    id,
                    ErrorCode::NotReady,
                    "buy before Hello: the connection RNG is unseeded",
                );
            }
            return;
        };
        match broker.buy_batch_into(kind, &self.batch_reqs, rng, &mut self.arena) {
            Ok(()) => {
                let _enc = mbp_obs::span("mbp.serve.encode");
                for (&id, result) in self.batch_ids.iter().zip(self.arena.results()) {
                    match result {
                        Ok(sale) => encode_buy_ok(
                            &mut self.write_buf,
                            id,
                            sale.ncp,
                            sale.price,
                            sale.expected_error,
                            sale.model.weights().as_slice(),
                        ),
                        Err(e) => encode_error(
                            &mut self.write_buf,
                            id,
                            market_error_code(e),
                            &e.to_string(),
                        ),
                    }
                }
            }
            Err(e) => {
                let _enc = mbp_obs::span("mbp.serve.encode");
                let (code, msg) = (market_error_code(&e), e.to_string());
                for &id in &self.batch_ids {
                    encode_error(&mut self.write_buf, id, code, &msg);
                }
            }
        }
    }

    fn dispatch_quotes(&mut self, broker: &SharedBroker, kind: ModelKind) {
        match broker.price_batch(kind, &self.batch_reqs) {
            Ok(quotes) => {
                let _enc = mbp_obs::span("mbp.serve.encode");
                for (&id, result) in self.batch_ids.iter().zip(quotes.iter()) {
                    match result {
                        Ok(q) => encode_quote_ok(
                            &mut self.write_buf,
                            id,
                            q.ncp,
                            q.price,
                            q.expected_error,
                        ),
                        Err(e) => encode_error(
                            &mut self.write_buf,
                            id,
                            market_error_code(e),
                            &e.to_string(),
                        ),
                    }
                }
            }
            Err(e) => {
                let _enc = mbp_obs::span("mbp.serve.encode");
                let (code, msg) = (market_error_code(&e), e.to_string());
                for &id in &self.batch_ids {
                    encode_error(&mut self.write_buf, id, code, &msg);
                }
            }
        }
    }

    fn dispatch_publish(
        &mut self,
        broker: &SharedBroker,
        id: u32,
        kind: ModelKind,
        points: &[(f64, f64)],
    ) {
        let knots: Vec<f64> = points.iter().map(|p| p.0).collect();
        let prices: Vec<f64> = points.iter().map(|p| p.1).collect();
        let outcome = match PricingFunction::from_points(knots, prices) {
            Ok(pricing) => broker
                .publish(kind, pricing, Box::new(SquareLossTransform))
                .map_err(|e| (market_error_code(&e), e.to_string())),
            Err(e) => Err((ErrorCode::BadRequest, e.to_string())),
        };
        let _enc = mbp_obs::span("mbp.serve.encode");
        match outcome {
            Ok(()) => encode_response(&mut self.write_buf, id, &Response::PublishOk),
            Err((code, msg)) => encode_error(&mut self.write_buf, id, code, &msg),
        }
    }

    /// Write phase: push buffered responses until the socket would block.
    fn flush_writes(&mut self) -> bool {
        if self.write_pos >= self.write_buf.len() {
            self.write_buf.clear();
            self.write_pos = 0;
            return false;
        }
        let _span = mbp_obs::span("mbp.serve.write");
        let mut progress = false;
        while self.write_pos < self.write_buf.len() {
            let Some(tail) = self.write_buf.get(self.write_pos..) else {
                break;
            };
            match self.stream.write(tail) {
                Ok(0) => {
                    self.closed = true;
                    break;
                }
                Ok(n) => {
                    self.write_pos += n;
                    mbp_obs::counter_add("mbp.serve.bytes.written", n as u64);
                    progress = true;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.closed = true;
                    break;
                }
            }
        }
        if self.write_pos >= self.write_buf.len() {
            self.write_buf.clear();
            self.write_pos = 0;
        }
        progress
    }
}
