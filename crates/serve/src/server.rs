//! The daemon: accept loop, thread-per-core IO workers, graceful drain,
//! and the Prometheus scrape side port.
//!
//! Threading model: the server builds a *dedicated* [`mbp_par::ThreadPool`]
//! (sized from [`mbp_par::max_threads`], so `MBP_THREADS` / `--threads`
//! govern it) and feeds each worker one long-lived IO loop via
//! [`mbp_par::ThreadPool::run`]. The shared compute pool is deliberately
//! *not* used: a parked IO loop would pin its workers and starve fork-join
//! regions elsewhere in the process. Pool workers are marked, so any
//! parallel region reached from a dispatch (e.g. a publish retraining)
//! degrades to sequential instead of oversubscribing.
//!
//! Connections are assigned to IO workers round-robin at accept time and
//! never migrate, which keeps every connection's cycle single-threaded —
//! the property the per-connection RNG determinism rests on.
//!
//! Shutdown: SIGTERM (when [`ServerConfig::handle_sigterm`] is set), a
//! client shutdown control frame, or [`ServerHandle::shutdown`] all flip
//! one drain flag. The accept loop closes, every connection stops
//! reading, serves what it already buffered, flushes, closes — then the
//! IO loops exit and [`ServerHandle::wait`] returns the run's stats.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use mbp_core::market::concurrent::SharedBroker;

use crate::conn::{Conn, ConnConfig, CycleResult};

/// Tuning for one [`start`]ed daemon instance.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port `0` picks an ephemeral port.
    pub addr: String,
    /// Bind address for the `GET /metrics` side port; `None` disables it.
    pub metrics_addr: Option<String>,
    /// IO worker threads; `0` means [`mbp_par::max_threads`].
    pub io_threads: usize,
    /// `false` disables batch admission (the loadgen baseline mode).
    pub batch_admission: bool,
    /// Max decoded-but-undispatched requests per connection before an
    /// unsolicited backpressure frame is sent and decoding pauses.
    pub queue_limit: usize,
    /// Close a connection after this long without any progress.
    pub idle_timeout: Duration,
    /// Install a SIGTERM handler that triggers the graceful drain.
    pub handle_sigterm: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            metrics_addr: None,
            io_threads: 0,
            batch_admission: true,
            queue_limit: 1024,
            idle_timeout: Duration::from_secs(30),
            handle_sigterm: false,
        }
    }
}

/// Counters accumulated over one server run.
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Connections accepted over the run.
    pub connections: u64,
    /// Requests decoded off the wire.
    pub requests: u64,
}

struct Control {
    draining: AtomicBool,
    accepted: AtomicU64,
    live_conns: AtomicU64,
}

/// A running server; dropping it (or calling [`ServerHandle::wait`])
/// drains and joins everything.
pub struct ServerHandle {
    addr: SocketAddr,
    metrics_addr: Option<SocketAddr>,
    control: Arc<Control>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
    metrics_thread: Option<std::thread::JoinHandle<()>>,
    pool: Option<mbp_par::ThreadPool>,
}

impl ServerHandle {
    /// The bound serving address (with the resolved ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The bound metrics address, when the side port is enabled.
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.metrics_addr
    }

    /// Flips the drain flag: stop accepting, serve buffered requests,
    /// flush, close. Returns immediately; pair with [`ServerHandle::wait`].
    pub fn shutdown(&self) {
        self.control.draining.store(true, Ordering::Relaxed);
    }

    /// Blocks until the drain completes and every thread has exited,
    /// returning the run's stats.
    pub fn wait(mut self) -> ServerStats {
        self.join_all();
        ServerStats {
            connections: self.control.accepted.load(Ordering::Relaxed),
            // Counters are recorded only while `mbp_obs` is enabled; the
            // CLI and loadgen both enable it before starting the server.
            requests: mbp_obs::snapshot()
                .counters
                .iter()
                .find(|(name, _)| name == "mbp.serve.requests")
                .map_or(0, |(_, value)| *value),
        }
    }

    /// `true` once the drain flag is set (by SIGTERM, a control frame, or
    /// [`ServerHandle::shutdown`]).
    pub fn is_draining(&self) -> bool {
        self.control.draining.load(Ordering::Relaxed)
    }

    fn join_all(&mut self) {
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        // Dropping the pool joins the IO loops (they exit once draining
        // completes and their connection lists empty).
        self.pool.take();
        if let Some(t) = self.metrics_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.control.draining.store(true, Ordering::Relaxed);
        self.join_all();
    }
}

/// SIGTERM flag shared by every server in the process (signal handlers
/// are process-global anyway).
static SIGTERM_SEEN: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
fn install_sigterm_handler() {
    use std::os::raw::{c_int, c_void};
    const SIGTERM: c_int = 15;
    extern "C" fn on_sigterm(_sig: c_int) {
        SIGTERM_SEEN.store(true, Ordering::Relaxed);
    }
    extern "C" {
        // libc::signal, which std already links; declared here to keep the
        // crate dependency-free.
        fn signal(signum: c_int, handler: *const c_void) -> *const c_void;
    }
    // SAFETY: `on_sigterm` is async-signal-safe (one relaxed atomic store,
    // no allocation, no locks), and `signal` only swaps the process's
    // SIGTERM disposition to it.
    unsafe {
        signal(SIGTERM, on_sigterm as *const c_void);
    }
}

#[cfg(not(unix))]
fn install_sigterm_handler() {}

/// Starts the daemon over `broker` and returns its handle.
pub fn start(broker: SharedBroker, cfg: ServerConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&cfg.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    if cfg.handle_sigterm {
        install_sigterm_handler();
    }

    let control = Arc::new(Control {
        draining: AtomicBool::new(false),
        accepted: AtomicU64::new(0),
        live_conns: AtomicU64::new(0),
    });
    let conn_cfg = ConnConfig {
        queue_limit: cfg.queue_limit.max(1),
        read_buf_limit: 256 * 1024,
        per_request: !cfg.batch_admission,
    };
    let io_threads = if cfg.io_threads == 0 {
        mbp_par::max_threads()
    } else {
        cfg.io_threads
    }
    .max(1);

    // One inbox of freshly accepted sockets per IO worker.
    let inboxes: Vec<Arc<Mutex<Vec<TcpStream>>>> = (0..io_threads)
        .map(|_| Arc::new(Mutex::new(Vec::new())))
        .collect();

    let pool = mbp_par::ThreadPool::new(io_threads);
    for inbox in &inboxes {
        let inbox = Arc::clone(inbox);
        let broker = broker.clone();
        let control = Arc::clone(&control);
        let conn_cfg = conn_cfg.clone();
        let idle_timeout = cfg.idle_timeout;
        pool.run(move || io_loop(&inbox, &broker, &control, &conn_cfg, idle_timeout));
    }

    let accept_control = Arc::clone(&control);
    let handle_sigterm = cfg.handle_sigterm;
    let accept_thread = std::thread::Builder::new()
        .name("mbp-serve-accept".to_string())
        .spawn(move || accept_loop(listener, &inboxes, &accept_control, handle_sigterm))?;

    let (metrics_addr, metrics_thread) = match &cfg.metrics_addr {
        Some(maddr) => {
            let mlistener = TcpListener::bind(maddr)?;
            mlistener.set_nonblocking(true)?;
            let bound = mlistener.local_addr()?;
            let mcontrol = Arc::clone(&control);
            let t = std::thread::Builder::new()
                .name("mbp-serve-metrics".to_string())
                .spawn(move || metrics_loop(mlistener, &mcontrol))?;
            (Some(bound), Some(t))
        }
        None => (None, None),
    };

    Ok(ServerHandle {
        addr,
        metrics_addr,
        control,
        accept_thread: Some(accept_thread),
        metrics_thread,
        pool: Some(pool),
    })
}

fn accept_loop(
    listener: TcpListener,
    inboxes: &[Arc<Mutex<Vec<TcpStream>>>],
    control: &Control,
    handle_sigterm: bool,
) {
    let mut next = 0usize;
    loop {
        if handle_sigterm && SIGTERM_SEEN.load(Ordering::Relaxed) {
            control.draining.store(true, Ordering::Relaxed);
        }
        if control.draining.load(Ordering::Relaxed) {
            return; // closing the listener refuses new connections
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                let _ = stream.set_nodelay(true);
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                control.accepted.fetch_add(1, Ordering::Relaxed);
                control.live_conns.fetch_add(1, Ordering::Relaxed);
                mbp_obs::inc("mbp.serve.accepted");
                mbp_obs::gauge_add("mbp.serve.connections", 1.0);
                if let Some(inbox) = inboxes.get(next % inboxes.len()) {
                    if let Ok(mut q) = inbox.lock() {
                        q.push(stream);
                    }
                }
                next = next.wrapping_add(1);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(1)),
        }
    }
}

struct Tracked {
    conn: Conn,
    last_progress: Instant,
}

fn io_loop(
    inbox: &Mutex<Vec<TcpStream>>,
    broker: &SharedBroker,
    control: &Control,
    cfg: &ConnConfig,
    idle_timeout: Duration,
) {
    let mut conns: Vec<Tracked> = Vec::new();
    loop {
        // Adopt newly accepted sockets.
        if let Ok(mut q) = inbox.lock() {
            for stream in q.drain(..) {
                conns.push(Tracked {
                    conn: Conn::new(stream),
                    last_progress: Instant::now(),
                });
            }
        }
        let draining = control.draining.load(Ordering::Relaxed);
        if draining && conns.is_empty() {
            return;
        }
        let mut any_progress = false;
        let now = Instant::now();
        conns.retain_mut(|t| {
            let result = t.conn.cycle(broker, cfg, &control.draining);
            match result {
                CycleResult::Progress => {
                    t.last_progress = now;
                    any_progress = true;
                    true
                }
                CycleResult::Idle => {
                    if now.duration_since(t.last_progress) > idle_timeout {
                        mbp_obs::inc("mbp.serve.idle_closed");
                        close_conn(control);
                        false
                    } else {
                        true
                    }
                }
                CycleResult::Closed => {
                    close_conn(control);
                    false
                }
            }
        });
        if !any_progress {
            if !draining && conns.is_empty() {
                std::thread::sleep(Duration::from_millis(1));
            } else {
                std::thread::sleep(Duration::from_micros(100));
            }
        }
    }
}

fn close_conn(control: &Control) {
    control.live_conns.fetch_sub(1, Ordering::Relaxed);
    mbp_obs::gauge_add("mbp.serve.connections", -1.0);
}

/// Minimal HTTP responder for `GET /metrics`: one request per connection,
/// Prometheus text exposition of the live `mbp-obs` snapshot.
fn metrics_loop(listener: TcpListener, control: &Control) {
    loop {
        if control.draining.load(Ordering::Relaxed) {
            return;
        }
        match listener.accept() {
            Ok((mut stream, _peer)) => {
                let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
                let _ = stream.set_nonblocking(false);
                let mut buf = [0u8; 2048];
                let mut head = Vec::new();
                while !head.windows(4).any(|w| w == b"\r\n\r\n") && head.len() < 8192 {
                    match stream.read(&mut buf) {
                        Ok(0) => break,
                        Ok(n) => head.extend_from_slice(buf.get(..n).unwrap_or(&[])),
                        Err(_) => break,
                    }
                }
                let request_line = head.split(|&b| b == b'\r').next().unwrap_or(&[]);
                let body = if request_line.starts_with(b"GET /metrics") {
                    mbp_obs::to_prometheus(&mbp_obs::snapshot())
                } else {
                    String::new()
                };
                let response = if body.is_empty() {
                    "HTTP/1.0 404 Not Found\r\nContent-Length: 0\r\n\r\n".to_string()
                } else {
                    format!(
                        "HTTP/1.0 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\nContent-Length: {}\r\n\r\n{}",
                        body.len(),
                        body
                    )
                };
                let _ = stream.write_all(response.as_bytes());
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}
