//! A small blocking client for the wire protocol.
//!
//! Used by the loopback tests, the `loadgen` bench driver, and the CLI
//! probe. Requests can be pipelined: [`Client::enqueue`] buffers frames
//! locally, [`Client::flush`] writes them in one syscall, and
//! [`Client::recv`] reads responses back in request order. The client
//! keeps a rolling FNV-1a digest of every raw response frame it receives
//! ([`Client::digest`]), which is the bit-exactness witness the
//! determinism checks compare across runs.

use std::io::{self, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};

use crate::wire::{
    decode_header, decode_response, digest_bytes, encode_request, Request, Response, DIGEST_SEED,
    HEADER_LEN,
};

/// Blocking protocol client.
pub struct Client {
    stream: TcpStream,
    next_id: u32,
    out: Vec<u8>,
    in_buf: Vec<u8>,
    digest: u64,
}

impl Client {
    /// Connects (TCP, nodelay) without sending anything.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client {
            stream,
            next_id: 0,
            out: Vec::new(),
            in_buf: Vec::new(),
            digest: DIGEST_SEED,
        })
    }

    /// Rolling FNV-1a digest over every raw response frame received.
    pub fn digest(&self) -> u64 {
        self.digest
    }

    /// Buffers one request frame locally and returns its request id
    /// (ids are assigned sequentially from 1).
    pub fn enqueue(&mut self, request: &Request) -> u32 {
        self.next_id = self.next_id.wrapping_add(1);
        encode_request(&mut self.out, self.next_id, request);
        self.next_id
    }

    /// Writes all buffered frames.
    pub fn flush(&mut self) -> io::Result<()> {
        self.stream.write_all(&self.out)?;
        self.out.clear();
        Ok(())
    }

    /// Blocks until one complete response frame arrives and decodes it.
    /// Unsolicited frames (backpressure, id 0) are returned like any
    /// other; callers that pipeline within the server's queue limit will
    /// only ever see their own ids, in order.
    pub fn recv(&mut self) -> io::Result<(u32, Response)> {
        let mut chunk = [0u8; 16 * 1024];
        loop {
            if let Some((header, total)) = self.peek_frame()? {
                let frame: Vec<u8> = self.in_buf.drain(..total).collect();
                self.digest = digest_bytes(self.digest, &frame);
                let payload = frame.get(HEADER_LEN..).unwrap_or(&[]);
                let response = decode_response(&header, payload)
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.message()))?;
                return Ok((header.request_id, response));
            }
            let n = self.stream.read(&mut chunk)?;
            if n == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed mid-response",
                ));
            }
            self.in_buf.extend_from_slice(chunk.get(..n).unwrap_or(&[]));
        }
    }

    fn peek_frame(&self) -> io::Result<Option<(crate::wire::Header, usize)>> {
        match decode_header(&self.in_buf) {
            Ok(Some(h)) => {
                let total = HEADER_LEN + h.payload_len as usize;
                if self.in_buf.len() >= total {
                    Ok(Some((h, total)))
                } else {
                    Ok(None)
                }
            }
            Ok(None) => Ok(None),
            Err(e) => Err(io::Error::new(io::ErrorKind::InvalidData, e.message())),
        }
    }

    /// Sends one request and blocks for its response.
    pub fn call(&mut self, request: &Request) -> io::Result<(u32, Response)> {
        self.enqueue(request);
        self.flush()?;
        self.recv()
    }

    /// Handshake: seeds the connection's noise RNG on the server.
    pub fn hello(&mut self, seed: u64) -> io::Result<Response> {
        let (_, resp) = self.call(&Request::Hello { seed })?;
        Ok(resp)
    }

    /// Asks the server to drain and shut down; returns the ack.
    pub fn shutdown_server(&mut self) -> io::Result<Response> {
        let (_, resp) = self.call(&Request::Shutdown)?;
        Ok(resp)
    }
}
