//! Wire-protocol correctness: encode/decode round trips under random
//! well-formed frames, and clean typed errors (never a panic) on
//! truncated, garbage, and oversized byte streams.

use mbp_core::market::PurchaseRequest;
use mbp_serve::wire::{
    self, decode_header, decode_request, decode_response, digest_bytes, encode_error,
    encode_request, encode_response, frame_type, ErrorCode, Request, Response, DIGEST_SEED,
    HEADER_LEN, MAX_PAYLOAD, MAX_PUBLISH_POINTS,
};
use proptest::prelude::*;

fn request_from(selector: u32, mode: u32, kind: u32, value: f64, seed: u64, n: usize) -> Request {
    let kind = wire::kind_from_u8((kind % 3) as u8).expect("kind in range");
    let request = match mode % 3 {
        0 => PurchaseRequest::AtNcp(value),
        1 => PurchaseRequest::ErrorBudget(value),
        _ => PurchaseRequest::PriceBudget(value),
    };
    match selector % 6 {
        0 => Request::Hello { seed },
        1 => Request::Quote { kind, request },
        2 => Request::Buy { kind, request },
        3 => Request::Publish {
            kind,
            points: (0..n)
                .map(|i| (1.0 + i as f64 + value, 10.0 * (1.0 + i as f64)))
                .collect(),
        },
        4 => Request::Ping,
        _ => Request::Shutdown,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every well-formed request round-trips bit-for-bit through
    /// encode → header validation → payload decode.
    #[test]
    fn request_roundtrip(
        (selector, mode, kind) in (0u32..6, 0u32..3, 0u32..3),
        value in 0.01..50.0f64,
        seed in 0u64..u64::MAX,
        n in 0usize..24,
        id in 0u32..u32::MAX,
    ) {
        let request = request_from(selector, mode, kind, value, seed, n);
        let mut bytes = Vec::new();
        encode_request(&mut bytes, id, &request);
        let header = decode_header(&bytes)
            .expect("well-formed header")
            .expect("complete header");
        prop_assert_eq!(header.request_id, id);
        prop_assert_eq!(HEADER_LEN + header.payload_len as usize, bytes.len());
        let decoded = decode_request(&header, &bytes[HEADER_LEN..]).expect("payload decodes");
        prop_assert_eq!(decoded, request);
    }

    /// Every response round-trips, including error frames with messages.
    #[test]
    fn response_roundtrip(
        selector in 0u32..8,
        value in 0.01..50.0f64,
        n in 0usize..12,
        id in 0u32..u32::MAX,
        code in 0u32..8,
    ) {
        let code = ErrorCode::from_u8(1 + (code % 8) as u8).expect("code in range");
        let response = match selector {
            0 => Response::HelloOk,
            1 => Response::QuoteOk { ncp: value, price: value * 2.0, expected_error: value / 2.0 },
            2 => Response::BuyOk {
                ncp: value,
                price: value * 2.0,
                expected_error: value / 2.0,
                weights: (0..n).map(|i| value + i as f64).collect(),
            },
            3 => Response::PublishOk,
            4 => Response::Pong,
            5 => Response::Error { code, msg: format!("failure at {value}") },
            6 => Response::Backpressure,
            _ => Response::ShutdownAck,
        };
        let mut bytes = Vec::new();
        encode_response(&mut bytes, id, &response);
        let header = decode_header(&bytes)
            .expect("well-formed header")
            .expect("complete header");
        prop_assert_eq!(header.request_id, id);
        let decoded = decode_response(&header, &bytes[HEADER_LEN..]).expect("payload decodes");
        prop_assert_eq!(decoded, response);
    }

    /// Truncating an encoded frame anywhere never panics: the header
    /// either asks for more bytes or the payload decode reports a clean
    /// `BadPayload` — and re-decoding with garbage appended reports a
    /// trailing-bytes error rather than silently ignoring it.
    #[test]
    fn truncation_and_trailing_garbage_are_clean_errors(
        (selector, mode, kind) in (0u32..6, 0u32..3, 0u32..3),
        value in 0.01..50.0f64,
        seed in 0u64..u64::MAX,
        n in 1usize..24,
        cut_frac in 0.0..1.0f64,
    ) {
        let request = request_from(selector, mode, kind, value, seed, n);
        let mut bytes = Vec::new();
        encode_request(&mut bytes, 7, &request);

        // Truncation: every prefix is either "need more bytes" or decodes.
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        match decode_header(&bytes[..cut]) {
            Ok(None) => prop_assert!(cut < HEADER_LEN),
            Ok(Some(h)) => {
                let total = HEADER_LEN + h.payload_len as usize;
                if cut < total {
                    // Payload incomplete: a server would keep buffering.
                    prop_assert!(cut < bytes.len());
                } else {
                    decode_request(&h, &bytes[HEADER_LEN..cut]).expect("complete frame decodes");
                }
            }
            Err(e) => prop_assert!(!e.is_fatal(), "truncated well-formed frame misread as corrupt: {e:?}"),
        }

        // Trailing garbage inside the declared payload is rejected.
        if let Request::Ping | Request::Shutdown = request {
            // Zero-payload frames: grow the declared length instead.
            let mut grown = bytes.clone();
            grown[8] = 1; // payload_len = 1
            grown.push(0xAA);
            let h = decode_header(&grown).expect("header ok").expect("complete");
            let err = decode_request(&h, &grown[HEADER_LEN..]).unwrap_err();
            prop_assert!(!err.is_fatal());
        } else {
            bytes.push(0xAA);
            let mut h = decode_header(&bytes).expect("header ok").expect("complete");
            h.payload_len += 1;
            let err = decode_request(&h, &bytes[HEADER_LEN..]).unwrap_err();
            prop_assert!(!err.is_fatal());
        }
    }
}

#[test]
fn short_buffers_ask_for_more_bytes() {
    for n in 0..HEADER_LEN {
        let buf = vec![b'M'; n];
        assert_eq!(decode_header(&buf), Ok(None), "len {n}");
    }
}

#[test]
fn bad_magic_and_version_are_fatal() {
    let mut bytes = Vec::new();
    encode_request(&mut bytes, 1, &Request::Ping);
    let mut bad = bytes.clone();
    bad[0] = b'X';
    let err = decode_header(&bad).unwrap_err();
    assert!(err.is_fatal(), "{err:?}");

    let mut bad = bytes.clone();
    bad[2] = 99;
    let err = decode_header(&bad).unwrap_err();
    assert!(err.is_fatal(), "{err:?}");
    assert!(err.message().contains("version 99"));
}

#[test]
fn oversized_payload_length_is_fatal() {
    let mut bytes = Vec::new();
    encode_request(&mut bytes, 1, &Request::Ping);
    bytes[8..12].copy_from_slice(&((MAX_PAYLOAD as u32) + 1).to_le_bytes());
    let err = decode_header(&bytes).unwrap_err();
    assert!(err.is_fatal(), "{err:?}");
}

#[test]
fn unknown_frame_type_is_recoverable() {
    let mut bytes = Vec::new();
    encode_request(&mut bytes, 1, &Request::Ping);
    bytes[3] = 0x7F;
    let header = decode_header(&bytes).unwrap().unwrap();
    let err = decode_request(&header, &bytes[HEADER_LEN..]).unwrap_err();
    assert!(!err.is_fatal(), "{err:?}");
}

#[test]
fn unknown_model_kind_and_mode_are_recoverable() {
    let mut bytes = Vec::new();
    encode_request(
        &mut bytes,
        1,
        &Request::Buy {
            kind: mbp_ml::ModelKind::LinearRegression,
            request: PurchaseRequest::AtNcp(1.0),
        },
    );
    let mut bad_kind = bytes.clone();
    bad_kind[HEADER_LEN] = 9;
    let header = decode_header(&bad_kind).unwrap().unwrap();
    let err = decode_request(&header, &bad_kind[HEADER_LEN..]).unwrap_err();
    assert!(!err.is_fatal(), "{err:?}");

    let mut bad_mode = bytes.clone();
    bad_mode[HEADER_LEN + 1] = 9;
    let header = decode_header(&bad_mode).unwrap().unwrap();
    let err = decode_request(&header, &bad_mode[HEADER_LEN..]).unwrap_err();
    assert!(!err.is_fatal(), "{err:?}");
}

#[test]
fn publish_point_count_is_capped() {
    let mut bytes = Vec::new();
    // Hand-build a publish header claiming too many points.
    bytes.extend_from_slice(&[b'M', b'B', 1, frame_type::PUBLISH]);
    bytes.extend_from_slice(&1u32.to_le_bytes());
    bytes.extend_from_slice(&5u32.to_le_bytes()); // payload: kind + count
    bytes.push(0);
    bytes.extend_from_slice(&((MAX_PUBLISH_POINTS as u32) + 1).to_le_bytes());
    let header = decode_header(&bytes).unwrap().unwrap();
    let err = decode_request(&header, &bytes[HEADER_LEN..]).unwrap_err();
    assert!(!err.is_fatal(), "{err:?}");
    assert!(err.message().contains("MAX_PUBLISH_POINTS"));
}

#[test]
fn error_messages_truncate_on_char_boundaries() {
    let long = "é".repeat(40_000); // 2 bytes per char, > u16::MAX bytes
    let mut bytes = Vec::new();
    encode_error(&mut bytes, 3, ErrorCode::BadRequest, &long);
    let header = decode_header(&bytes).unwrap().unwrap();
    let decoded = decode_response(&header, &bytes[HEADER_LEN..]).unwrap();
    match decoded {
        Response::Error { code, msg } => {
            assert_eq!(code, ErrorCode::BadRequest);
            assert!(msg.len() <= u16::MAX as usize);
            assert!(msg.chars().all(|c| c == 'é'));
        }
        other => panic!("expected error frame, got {other:?}"),
    }
}

#[test]
fn digest_is_a_pure_function_of_the_byte_stream() {
    let mut a = DIGEST_SEED;
    a = digest_bytes(a, b"hello");
    a = digest_bytes(a, b" world");
    let b = digest_bytes(DIGEST_SEED, b"hello world");
    assert_eq!(a, b);
    assert_ne!(digest_bytes(DIGEST_SEED, b"hello worle"), b);
}

/// Regression: `encode_request` used to write `points.len() as u32` and
/// every point uncapped. A list longer than `MAX_PUBLISH_POINTS` then
/// produced a header whose `payload_len` no longer matched the bytes that
/// followed (and past `u32::MAX / 16` points would wrap the length field
/// outright), desyncing every frame encoded after it on the same stream.
/// The encoder now mirrors the decoder's cap.
#[test]
fn oversized_publish_encode_is_capped_and_does_not_desync_the_stream() {
    let kind = wire::kind_from_u8(0).expect("kind in range");
    let points: Vec<(f64, f64)> = (0..MAX_PUBLISH_POINTS + 37)
        .map(|i| (1.0 + i as f64, 2.0 + i as f64))
        .collect();
    let mut bytes = Vec::new();
    encode_request(&mut bytes, 9, &Request::Publish { kind, points });
    encode_request(&mut bytes, 10, &Request::Ping);

    let header = decode_header(&bytes).unwrap().unwrap();
    assert_eq!(
        HEADER_LEN + header.payload_len as usize + HEADER_LEN,
        bytes.len()
    );
    let decoded = decode_request(
        &header,
        &bytes[HEADER_LEN..HEADER_LEN + header.payload_len as usize],
    )
    .expect("capped publish decodes");
    match decoded {
        Request::Publish { points, .. } => assert_eq!(points.len(), MAX_PUBLISH_POINTS),
        other => panic!("expected publish frame, got {other:?}"),
    }

    // The next frame on the stream still parses: no desync.
    let rest = &bytes[HEADER_LEN + header.payload_len as usize..];
    let next = decode_header(rest).unwrap().unwrap();
    assert_eq!(next.request_id, 10);
    assert_eq!(decode_request(&next, &[]).unwrap(), Request::Ping);
}
