//! Loopback integration: a real daemon on an ephemeral port, driven by
//! real client connections, checked bit-for-bit against an in-process
//! [`Broker`] reference.
//!
//! The determinism contract under test: each connection's noise RNG is
//! seeded by its `Hello` frame and the batch kernel consumes RNG purely
//! in request order, so however the server happens to coalesce a
//! connection's frames into batches, the responses — and the settled
//! ledger, as a multiset across connections — are bit-identical to
//! running the same per-client request streams through `Broker::buy_batch`
//! sequentially in-process.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use mbp_core::error::SquareLossTransform;
use mbp_core::market::concurrent::SharedBroker;
use mbp_core::market::{Broker, PurchaseRequest};
use mbp_core::pricing::PricingFunction;
use mbp_ml::ModelKind;
use mbp_randx::seeded_rng;
use mbp_serve::wire::{ErrorCode, Request, Response};
use mbp_serve::{Client, ServerConfig};

const KIND: ModelKind = ModelKind::LinearRegression;
const N_CLIENTS: usize = 4;
const BURSTS: usize = 3;
const BURST_LEN: usize = 48;

fn pricing() -> PricingFunction {
    let grid: Vec<f64> = (1..=64).map(|i| 1.0 + i as f64 * 0.25).collect();
    let prices: Vec<f64> = grid.iter().map(|x| 10.0 * x.sqrt()).collect();
    PricingFunction::from_points(grid, prices).expect("curve is arbitrage-free")
}

fn listed_broker(data_seed: u64) -> Broker {
    let mut rng = seeded_rng(data_seed);
    let data = mbp_data::synth::simulated1(400, 5, 0.5, &mut rng).split(0.75, &mut rng);
    let mut broker = Broker::new(data);
    broker.support(KIND, 1e-6).expect("training failed");
    broker
        .publish(KIND, pricing(), Box::new(SquareLossTransform))
        .expect("listing accepted");
    broker
}

/// The per-client request stream: NCP picks, satisfiable and
/// unsatisfiable error budgets, generous and hopeless price budgets —
/// so both the sale path and the typed-rejection path cross the wire.
fn client_stream(client: usize) -> Vec<PurchaseRequest> {
    (0..BURSTS * BURST_LEN)
        .map(|i| match (client + i) % 4 {
            0 => PurchaseRequest::AtNcp(0.5 + (i % 29) as f64 * 0.11),
            1 => PurchaseRequest::ErrorBudget(0.4 + (i % 23) as f64 * 0.2),
            2 => PurchaseRequest::PriceBudget(8.0 + (i % 50) as f64),
            _ => PurchaseRequest::PriceBudget(0.001), // unaffordable
        })
        .collect()
}

fn client_seed(client: usize) -> u64 {
    9_000 + client as u64
}

/// Drives `N_CLIENTS` concurrent connections through a fresh server and
/// returns, per client, the (id, response) list and the response digest.
fn drive_server(cfg: ServerConfig) -> (Vec<Vec<(u32, Response)>>, Vec<u64>) {
    let shared = SharedBroker::new(listed_broker(7));
    let handle = mbp_serve::start(shared.clone(), cfg).expect("server starts");
    let addr = handle.addr();

    let workers: Vec<_> = (0..N_CLIENTS)
        .map(|c| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let hello = client.hello(client_seed(c)).expect("hello");
                assert_eq!(hello, Response::HelloOk);
                let stream = client_stream(c);
                let mut responses = Vec::with_capacity(stream.len());
                for burst in stream.chunks(BURST_LEN) {
                    let ids: Vec<u32> = burst
                        .iter()
                        .map(|&request| {
                            client.enqueue(&Request::Buy {
                                kind: KIND,
                                request,
                            })
                        })
                        .collect();
                    client.flush().expect("flush");
                    for &expected_id in &ids {
                        let (id, resp) = client.recv().expect("recv");
                        assert_eq!(id, expected_id, "responses arrive in request order");
                        responses.push((id, resp));
                    }
                }
                (responses, client.digest())
            })
        })
        .collect();

    let mut all_responses = Vec::new();
    let mut digests = Vec::new();
    for w in workers {
        let (responses, digest) = w.join().expect("client thread");
        all_responses.push(responses);
        digests.push(digest);
    }

    handle.shutdown();
    let _stats = handle.wait();

    // The network-settled ledger, reconciled, as a sorted multiset.
    let mut served_ledger: Vec<(u64, u64)> = shared.with_broker(|b| {
        b.ledger()
            .iter()
            .map(|t| (t.ncp.to_bits(), t.price.to_bits()))
            .collect()
    });
    served_ledger.sort_unstable();

    // In-process reference: same data seed, same per-client streams and
    // seeds, served sequentially through the plain batch kernel.
    let mut reference = listed_broker(7);
    for c in 0..N_CLIENTS {
        let mut rng = seeded_rng(client_seed(c));
        let stream = client_stream(c);
        let results = reference
            .buy_batch(KIND, &stream, &mut rng)
            .expect("listing exists");
        for ((_, resp), result) in all_responses
            .get(c)
            .expect("client responses")
            .iter()
            .zip(results.iter())
        {
            match (resp, result) {
                (
                    Response::BuyOk {
                        ncp,
                        price,
                        expected_error,
                        weights,
                    },
                    Ok(sale),
                ) => {
                    assert_eq!(ncp.to_bits(), sale.ncp.to_bits());
                    assert_eq!(price.to_bits(), sale.price.to_bits());
                    assert_eq!(expected_error.to_bits(), sale.expected_error.to_bits());
                    let expected: Vec<u64> = sale
                        .model
                        .weights()
                        .as_slice()
                        .iter()
                        .map(|w| w.to_bits())
                        .collect();
                    let got: Vec<u64> = weights.iter().map(|w| w.to_bits()).collect();
                    assert_eq!(got, expected, "released weights must be bit-identical");
                }
                (Response::Error { code, .. }, Err(e)) => {
                    assert_eq!(*code, mbp_serve::wire::market_error_code(e));
                }
                (resp, result) => {
                    panic!("client {c}: response {resp:?} disagrees with reference {result:?}")
                }
            }
        }
    }
    let mut reference_ledger: Vec<(u64, u64)> = reference
        .ledger()
        .iter()
        .map(|t| (t.ncp.to_bits(), t.price.to_bits()))
        .collect();
    reference_ledger.sort_unstable();
    assert_eq!(
        served_ledger, reference_ledger,
        "network-served ledger must be bit-identical to the in-process reference"
    );

    (all_responses, digests)
}

/// The acceptance-criterion test: network-served responses and ledger are
/// bit-identical to the in-process reference, and the whole exchange is
/// reproducible (same digests) across two independent server instances.
#[test]
fn network_served_ledger_is_bit_identical_to_in_process_reference() {
    let (_, digests_a) = drive_server(ServerConfig::default());
    let (_, digests_b) = drive_server(ServerConfig::default());
    assert_eq!(
        digests_a, digests_b,
        "response byte streams must be deterministic across runs"
    );
}

/// Batch admission must not change what clients see: per-request dispatch
/// (the loadgen baseline mode) produces bit-identical response streams.
#[test]
fn per_request_dispatch_is_bit_identical_to_batch_admission() {
    let (_, batched) = drive_server(ServerConfig::default());
    let per_request = ServerConfig {
        batch_admission: false,
        ..ServerConfig::default()
    };
    let (_, unbatched) = drive_server(per_request);
    assert_eq!(batched, unbatched);
}

#[test]
fn quote_frames_price_without_consuming_rng() {
    let shared = SharedBroker::new(listed_broker(7));
    let handle = mbp_serve::start(shared, ServerConfig::default()).expect("server starts");
    let mut client = Client::connect(handle.addr()).expect("connect");
    assert_eq!(client.hello(11).expect("hello"), Response::HelloOk);

    // Interleave quotes between buys; the buy stream must be bit-identical
    // to a reference that never quoted at all.
    let buys: Vec<PurchaseRequest> = (0..24)
        .map(|i| PurchaseRequest::AtNcp(0.6 + i as f64 * 0.1))
        .collect();
    let mut buy_responses = Vec::new();
    for &request in &buys {
        let (_, quote) = client
            .call(&Request::Quote {
                kind: KIND,
                request,
            })
            .expect("quote");
        let (_, buy) = client
            .call(&Request::Buy {
                kind: KIND,
                request,
            })
            .expect("buy");
        match (&quote, &buy) {
            (
                Response::QuoteOk {
                    ncp,
                    price,
                    expected_error,
                },
                Response::BuyOk {
                    ncp: bncp,
                    price: bprice,
                    expected_error: berr,
                    ..
                },
            ) => {
                assert_eq!(ncp.to_bits(), bncp.to_bits());
                assert_eq!(price.to_bits(), bprice.to_bits());
                assert_eq!(expected_error.to_bits(), berr.to_bits());
            }
            other => panic!("unexpected pair {other:?}"),
        }
        buy_responses.push(buy);
    }

    let mut reference = listed_broker(7);
    let mut rng = seeded_rng(11);
    let results = reference.buy_batch(KIND, &buys, &mut rng).expect("listed");
    for (resp, result) in buy_responses.iter().zip(results.iter()) {
        let (Response::BuyOk { ncp, .. }, Ok(sale)) = (resp, result) else {
            panic!("unexpected {resp:?} vs {result:?}");
        };
        assert_eq!(
            ncp.to_bits(),
            sale.ncp.to_bits(),
            "quotes must not perturb the noise stream"
        );
    }
    handle.shutdown();
    handle.wait();
}

#[test]
fn buy_before_hello_is_rejected_not_ready() {
    let shared = SharedBroker::new(listed_broker(3));
    let handle = mbp_serve::start(shared, ServerConfig::default()).expect("server starts");
    let mut client = Client::connect(handle.addr()).expect("connect");
    let (_, resp) = client
        .call(&Request::Buy {
            kind: KIND,
            request: PurchaseRequest::AtNcp(1.0),
        })
        .expect("call");
    match resp {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::NotReady),
        other => panic!("expected NotReady, got {other:?}"),
    }
    assert_eq!(client.hello(5).expect("hello"), Response::HelloOk);
    let (_, resp) = client
        .call(&Request::Buy {
            kind: KIND,
            request: PurchaseRequest::AtNcp(1.0),
        })
        .expect("call");
    assert!(matches!(resp, Response::BuyOk { .. }), "{resp:?}");
    handle.shutdown();
    handle.wait();
}

#[test]
fn garbage_bytes_get_a_protocol_error_then_close() {
    let shared = SharedBroker::new(listed_broker(3));
    let handle = mbp_serve::start(shared, ServerConfig::default()).expect("server starts");
    let mut raw = TcpStream::connect(handle.addr()).expect("connect");
    raw.set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    raw.write_all(b"GET / HTTP/1.1\r\n\r\n").expect("write");
    // Expect one error frame, then EOF.
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        match raw.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) => panic!("read failed before close: {e}"),
        }
    }
    let header = mbp_serve::wire::decode_header(&buf)
        .expect("well-formed response header")
        .expect("complete header");
    let resp = mbp_serve::wire::decode_response(&header, &buf[mbp_serve::wire::HEADER_LEN..])
        .expect("decodes");
    match resp {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::Protocol),
        other => panic!("expected protocol error, got {other:?}"),
    }
    handle.shutdown();
    handle.wait();
}

#[test]
fn tiny_queue_limit_emits_backpressure_frames() {
    let shared = SharedBroker::new(listed_broker(3));
    let cfg = ServerConfig {
        queue_limit: 4,
        ..ServerConfig::default()
    };
    let handle = mbp_serve::start(shared, cfg).expect("server starts");
    let mut client = Client::connect(handle.addr()).expect("connect");
    assert_eq!(client.hello(21).expect("hello"), Response::HelloOk);

    const PIPELINED: usize = 64;
    let ids: Vec<u32> = (0..PIPELINED)
        .map(|i| {
            client.enqueue(&Request::Buy {
                kind: KIND,
                request: PurchaseRequest::AtNcp(0.5 + (i % 7) as f64 * 0.3),
            })
        })
        .collect();
    client.flush().expect("flush");

    let mut ok = 0usize;
    let mut backpressure = 0usize;
    let mut seen = Vec::new();
    while ok < PIPELINED {
        let (id, resp) = client.recv().expect("recv");
        match resp {
            Response::Backpressure => {
                assert_eq!(id, 0, "backpressure is unsolicited");
                backpressure += 1;
            }
            Response::BuyOk { .. } => {
                seen.push(id);
                ok += 1;
            }
            other => panic!("unexpected {other:?}"),
        }
    }
    assert_eq!(seen, ids, "every request answered, in order");
    assert!(
        backpressure >= 1,
        "64 pipelined frames against a queue of 4 must trigger backpressure"
    );
    handle.shutdown();
    handle.wait();
}

#[test]
fn publish_over_the_wire_replaces_the_listing() {
    let shared = SharedBroker::new(listed_broker(3));
    let handle = mbp_serve::start(shared, ServerConfig::default()).expect("server starts");
    let mut client = Client::connect(handle.addr()).expect("connect");
    assert_eq!(client.hello(31).expect("hello"), Response::HelloOk);

    let probe = Request::Quote {
        kind: KIND,
        request: PurchaseRequest::AtNcp(0.5),
    };
    let (_, before) = client.call(&probe).expect("quote");
    let Response::QuoteOk {
        price: old_price, ..
    } = before
    else {
        panic!("expected quote, got {before:?}");
    };

    // Double every price on the published curve.
    let points: Vec<(f64, f64)> = (1..=64)
        .map(|i| {
            let x = 1.0 + i as f64 * 0.25;
            (x, 20.0 * x.sqrt())
        })
        .collect();
    let (_, published) = client
        .call(&Request::Publish { kind: KIND, points })
        .expect("publish");
    assert_eq!(published, Response::PublishOk);

    let (_, after) = client.call(&probe).expect("quote");
    let Response::QuoteOk {
        price: new_price, ..
    } = after
    else {
        panic!("expected quote, got {after:?}");
    };
    assert!(
        (new_price - 2.0 * old_price).abs() < 1e-9,
        "republished curve must serve: {old_price} -> {new_price}"
    );

    // A malformed curve is rejected with a typed error, listing intact.
    let (_, rejected) = client
        .call(&Request::Publish {
            kind: KIND,
            points: Vec::new(),
        })
        .expect("publish");
    match rejected {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::BadRequest),
        other => panic!("expected BadRequest, got {other:?}"),
    }
    let (_, still) = client.call(&probe).expect("quote");
    assert!(matches!(still, Response::QuoteOk { .. }));
    handle.shutdown();
    handle.wait();
}

#[test]
fn shutdown_control_frame_drains_the_server() {
    let shared = SharedBroker::new(listed_broker(3));
    let handle = mbp_serve::start(shared, ServerConfig::default()).expect("server starts");
    let mut client = Client::connect(handle.addr()).expect("connect");
    assert_eq!(client.hello(41).expect("hello"), Response::HelloOk);
    let ack = client.shutdown_server().expect("shutdown");
    assert_eq!(ack, Response::ShutdownAck);
    assert!(handle.is_draining());
    let stats = handle.wait(); // must terminate
    assert!(stats.connections >= 1);
}

#[test]
fn idle_connections_are_closed_after_the_timeout() {
    let shared = SharedBroker::new(listed_broker(3));
    let cfg = ServerConfig {
        idle_timeout: Duration::from_millis(100),
        ..ServerConfig::default()
    };
    let handle = mbp_serve::start(shared, cfg).expect("server starts");
    let mut raw = TcpStream::connect(handle.addr()).expect("connect");
    raw.set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    let mut buf = [0u8; 64];
    // The server must hang up on its own; EOF manifests as Ok(0).
    let n = raw.read(&mut buf).expect("read");
    assert_eq!(n, 0, "idle connection must be closed by the server");
    handle.shutdown();
    handle.wait();
}

#[test]
fn metrics_side_port_serves_prometheus_text() {
    mbp_obs::enable();
    let shared = SharedBroker::new(listed_broker(3));
    let cfg = ServerConfig {
        metrics_addr: Some("127.0.0.1:0".to_string()),
        ..ServerConfig::default()
    };
    let handle = mbp_serve::start(shared, cfg).expect("server starts");
    let maddr = handle.metrics_addr().expect("metrics port bound");

    // Generate some traffic so serve counters exist.
    let mut client = Client::connect(handle.addr()).expect("connect");
    assert_eq!(client.hello(51).expect("hello"), Response::HelloOk);
    let (_, resp) = client
        .call(&Request::Buy {
            kind: KIND,
            request: PurchaseRequest::AtNcp(1.0),
        })
        .expect("buy");
    assert!(matches!(resp, Response::BuyOk { .. }));

    let mut http = TcpStream::connect(maddr).expect("connect metrics");
    http.set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    http.write_all(b"GET /metrics HTTP/1.0\r\n\r\n")
        .expect("write");
    let mut body = String::new();
    http.read_to_string(&mut body).expect("read");
    assert!(body.starts_with("HTTP/1.0 200 OK"), "{body}");
    assert!(
        body.contains("mbp_serve_requests"),
        "scrape must expose serve counters: {body}"
    );

    let mut http = TcpStream::connect(maddr).expect("connect metrics");
    http.set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    http.write_all(b"GET /other HTTP/1.0\r\n\r\n")
        .expect("write");
    let mut other = String::new();
    http.read_to_string(&mut other).expect("read");
    assert!(other.starts_with("HTTP/1.0 404"), "{other}");

    handle.shutdown();
    handle.wait();
}
