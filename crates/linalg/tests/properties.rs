//! Property-based tests for the linear-algebra substrate.

use mbp_linalg::{solve_spd, Cholesky, Matrix, Vector};
use proptest::prelude::*;

/// Strategy for small well-conditioned matrices: entries in [-3, 3].
fn matrix_entries(n: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-3.0..3.0f64, n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `A = BᵀB + I` is SPD, so Cholesky must succeed and reconstruct `A`.
    #[test]
    fn cholesky_roundtrip(dim in 1usize..8, entries in matrix_entries(64)) {
        let b = Matrix::from_vec(dim, dim, entries[..dim * dim].to_vec()).unwrap();
        let mut a = b.gram();
        a.add_diagonal(1.0).unwrap();
        let ch = Cholesky::factor(&a).unwrap();
        let r = ch.reconstruct();
        for (x, y) in a.as_slice().iter().zip(r.as_slice()) {
            prop_assert!((x - y).abs() < 1e-8, "reconstruction mismatch: {} vs {}", x, y);
        }
    }

    /// Solving `A x = A x0` must recover `x0` for SPD `A`.
    #[test]
    fn spd_solve_recovers_solution(
        dim in 1usize..8,
        entries in matrix_entries(64),
        xs in matrix_entries(8),
    ) {
        let b = Matrix::from_vec(dim, dim, entries[..dim * dim].to_vec()).unwrap();
        let mut a = b.gram();
        a.add_diagonal(1.0).unwrap();
        let x0 = Vector::from_vec(xs[..dim].to_vec());
        let rhs = a.matvec(&x0).unwrap();
        let x = solve_spd(&a, &rhs).unwrap();
        for (xi, ti) in x.as_slice().iter().zip(x0.as_slice()) {
            prop_assert!((xi - ti).abs() < 1e-7);
        }
    }

    /// The Gram matrix agrees with the explicit transpose product and the
    /// quadratic form `xᵀ(AᵀA)x = ‖Ax‖²` is non-negative.
    #[test]
    fn gram_is_psd_quadratic_form(
        rows in 1usize..8,
        cols in 1usize..6,
        entries in matrix_entries(64),
        xs in matrix_entries(8),
    ) {
        let a = Matrix::from_vec(rows, cols, entries[..rows * cols].to_vec()).unwrap();
        let g = a.gram();
        prop_assert_eq!(&g, &a.transpose().matmul(&a).unwrap());
        let x = Vector::from_vec(xs[..cols].to_vec());
        let gx = g.matvec(&x).unwrap();
        let quad = x.dot(&gx).unwrap();
        let ax = a.matvec(&x).unwrap();
        prop_assert!((quad - ax.norm2_squared()).abs() < 1e-8 * (1.0 + quad.abs()));
        prop_assert!(quad >= -1e-9);
    }

    /// `matvec_t` always agrees with materializing the transpose.
    #[test]
    fn matvec_t_agrees_with_transpose(
        rows in 1usize..8,
        cols in 1usize..8,
        entries in matrix_entries(64),
        xs in matrix_entries(8),
    ) {
        let a = Matrix::from_vec(rows, cols, entries[..rows * cols].to_vec()).unwrap();
        let x = Vector::from_vec(xs[..rows].to_vec());
        let lhs = a.matvec_t(&x).unwrap();
        let rhs = a.transpose().matvec(&x).unwrap();
        for (l, r) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            prop_assert!((l - r).abs() < 1e-10);
        }
    }

    /// Matrix multiplication is associative on conforming triples.
    #[test]
    fn matmul_associative(
        n in 1usize..5,
        e1 in matrix_entries(25),
        e2 in matrix_entries(25),
        e3 in matrix_entries(25),
    ) {
        let a = Matrix::from_vec(n, n, e1[..n * n].to_vec()).unwrap();
        let b = Matrix::from_vec(n, n, e2[..n * n].to_vec()).unwrap();
        let c = Matrix::from_vec(n, n, e3[..n * n].to_vec()).unwrap();
        let left = a.matmul(&b).unwrap().matmul(&c).unwrap();
        let right = a.matmul(&b.matmul(&c).unwrap()).unwrap();
        for (l, r) in left.as_slice().iter().zip(right.as_slice()) {
            prop_assert!((l - r).abs() < 1e-8);
        }
    }

    /// Triangle inequality and scaling homogeneity of the vector norms.
    #[test]
    fn vector_norm_axioms(xs in matrix_entries(8), ys in matrix_entries(8), c in -5.0..5.0f64) {
        let x = Vector::from_vec(xs.clone());
        let y = Vector::from_vec(ys);
        let sum = x.add(&y).unwrap();
        prop_assert!(sum.norm2() <= x.norm2() + y.norm2() + 1e-10);
        prop_assert!((x.scale(c).norm2() - c.abs() * x.norm2()).abs() < 1e-9);
        prop_assert!(x.norm_inf() <= x.norm2() + 1e-12);
        prop_assert!(x.norm2() <= x.norm1() + 1e-12);
    }
}
