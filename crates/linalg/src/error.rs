use std::fmt;

/// Errors produced by linear-algebra routines.
///
/// All routines validate shapes eagerly and fail with a descriptive variant
/// instead of panicking, so callers higher in the stack (trainers, the
/// broker) can surface broken inputs as market-level errors.
#[derive(Debug, Clone, PartialEq)]
pub enum LinalgError {
    /// Two operands had incompatible dimensions.
    ShapeMismatch {
        /// Name of the operation that failed.
        op: &'static str,
        /// Shape of the left operand as `(rows, cols)`; vectors use `(len, 1)`.
        left: (usize, usize),
        /// Shape of the right operand.
        right: (usize, usize),
    },
    /// A factorization required a symmetric positive definite input and the
    /// pivot at the reported index was not strictly positive.
    NotPositiveDefinite {
        /// Index of the failing pivot.
        pivot: usize,
        /// Value of the failing pivot.
        value: f64,
    },
    /// A routine that requires a square matrix received a rectangular one.
    NotSquare {
        /// Observed shape.
        shape: (usize, usize),
    },
    /// An index was out of bounds for the container.
    IndexOutOfBounds {
        /// The offending index.
        index: usize,
        /// Length (or dimension size) of the container.
        len: usize,
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::ShapeMismatch { op, left, right } => write!(
                f,
                "shape mismatch in {op}: left is {}x{}, right is {}x{}",
                left.0, left.1, right.0, right.1
            ),
            LinalgError::NotPositiveDefinite { pivot, value } => write!(
                f,
                "matrix is not positive definite: pivot {pivot} has value {value:e}"
            ),
            LinalgError::NotSquare { shape } => {
                write!(f, "expected a square matrix, got {}x{}", shape.0, shape.1)
            }
            LinalgError::IndexOutOfBounds { index, len } => {
                write!(f, "index {index} out of bounds for length {len}")
            }
        }
    }
}

impl std::error::Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_descriptive() {
        let e = LinalgError::ShapeMismatch {
            op: "matvec",
            left: (3, 4),
            right: (5, 1),
        };
        let s = e.to_string();
        assert!(s.contains("matvec"));
        assert!(s.contains("3x4"));
        assert!(s.contains("5x1"));
    }

    #[test]
    fn not_positive_definite_mentions_pivot() {
        let e = LinalgError::NotPositiveDefinite {
            pivot: 2,
            value: -1.0,
        };
        assert!(e.to_string().contains("pivot 2"));
    }
}
