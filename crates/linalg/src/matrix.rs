use crate::{LinalgError, Result, Vector};

/// A dense row-major `f64` matrix.
///
/// Rows are the natural unit in this workspace (a row of the design matrix is
/// one labeled example), so storage is row-major and [`Matrix::row`] is a
/// cheap slice borrow. Shapes are validated on every binary operation.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a matrix from row-major `data`.
    ///
    /// Returns [`LinalgError::ShapeMismatch`] when `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(LinalgError::ShapeMismatch {
                op: "from_vec",
                left: (rows, cols),
                right: (data.len(), 1),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Creates a `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Builds a matrix from a row-producing closure.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Stacks `rows` (each of equal length) into a matrix.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self> {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for (i, row) in rows.iter().enumerate() {
            if row.len() != c {
                return Err(LinalgError::ShapeMismatch {
                    op: "from_rows",
                    left: (i, c),
                    right: (i, row.len()),
                });
            }
            data.extend_from_slice(row);
        }
        Ok(Matrix {
            rows: r,
            cols: c,
            data,
        })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Immutable view of row `i`.
    ///
    /// # Panics
    /// Panics when `i >= rows` (callers iterate `0..rows`).
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable view of row `i`.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Entry `(i, j)`.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.cols + j]
    }

    /// Sets entry `(i, j)` to `v`.
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        self.data[i * self.cols + j] = v;
    }

    /// Column `j` copied into a new [`Vector`].
    pub fn col(&self, j: usize) -> Result<Vector> {
        if j >= self.cols {
            return Err(LinalgError::IndexOutOfBounds {
                index: j,
                len: self.cols,
            });
        }
        Ok((0..self.rows).map(|i| self.get(i, j)).collect())
    }

    /// Matrix–vector product `A x`.
    ///
    /// Each row's dot product runs on the four fixed accumulator lanes of
    /// `dot4`; the reduction order is part of the numeric contract (see
    /// `dot4`'s docs), fixed and input-independent, so results are
    /// bit-identical across runs, thread counts, and chunkings.
    pub fn matvec(&self, x: &Vector) -> Result<Vector> {
        if x.len() != self.cols {
            return Err(LinalgError::ShapeMismatch {
                op: "matvec",
                left: (self.rows, self.cols),
                right: (x.len(), 1),
            });
        }
        let xs = x.as_slice();
        Ok((0..self.rows).map(|i| dot4(self.row(i), xs)).collect())
    }

    /// Transposed matrix–vector product `Aᵀ x`.
    pub fn matvec_t(&self, x: &Vector) -> Result<Vector> {
        if x.len() != self.rows {
            return Err(LinalgError::ShapeMismatch {
                op: "matvec_t",
                left: (self.cols, self.rows),
                right: (x.len(), 1),
            });
        }
        let mut out = vec![0.0; self.cols];
        for i in 0..self.rows {
            let xi = x[i];
            // LINT-ALLOW(float): exact-zero skip exploits input sparsity.
            if xi == 0.0 {
                continue;
            }
            for (o, a) in out.iter_mut().zip(self.row(i)) {
                *o += xi * a;
            }
        }
        Ok(Vector::from_vec(out))
    }

    /// Rows per parallel band in [`Matrix::matmul`].
    const MATMUL_ROW_BAND: usize = 64;
    /// Cache block over the shared dimension in [`Matrix::matmul`]: a block
    /// of `B` rows stays hot while every row of the band reuses it.
    const MATMUL_K_BLOCK: usize = 128;

    /// Matrix product `A B`.
    ///
    /// Output rows are partitioned into fixed bands computed in parallel on
    /// the `mbp-par` pool. Each row's accumulation walks `k` in ascending
    /// order regardless of banding or blocking, so the result is
    /// bit-identical at every thread count (including the sequential
    /// fallback).
    pub fn matmul(&self, other: &Matrix) -> Result<Matrix> {
        if self.cols != other.rows {
            return Err(LinalgError::ShapeMismatch {
                op: "matmul",
                left: self.shape(),
                right: other.shape(),
            });
        }
        let ocols = other.cols;
        let mut out = Matrix::zeros(self.rows, ocols);
        let parallel = self.rows > Self::MATMUL_ROW_BAND && mbp_par::max_threads() > 1;
        let _span = parallel.then(|| mbp_obs::span("mbp.linalg.matmul.par"));
        mbp_par::par_chunks_mut(
            &mut out.data,
            Self::MATMUL_ROW_BAND * ocols.max(1),
            |ci, band| {
                let band_start = ci * Self::MATMUL_ROW_BAND;
                for kb in (0..self.cols).step_by(Self::MATMUL_K_BLOCK) {
                    let kend = (kb + Self::MATMUL_K_BLOCK).min(self.cols);
                    // i-k-j order within the block keeps the inner accesses
                    // sequential for row-major storage on both operands.
                    for (bi, orow) in band.chunks_mut(ocols).enumerate() {
                        let arow = self.row(band_start + bi);
                        for (k, &aik) in arow[..kend].iter().enumerate().skip(kb) {
                            // LINT-ALLOW(float): exact-zero skip exploits input sparsity.
                            if aik == 0.0 {
                                continue;
                            }
                            let brow = other.row(k);
                            for (o, b) in orow.iter_mut().zip(brow) {
                                *o += aik * b;
                            }
                        }
                    }
                }
            },
        );
        Ok(out)
    }

    /// Transposed copy `Aᵀ`.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |i, j| self.get(j, i))
    }

    /// Rows per parallel band in [`Matrix::gram`]. Matrices with fewer than
    /// two bands take the original sequential path, so small problems (and
    /// every problem at one effective thread) are bit-identical to the
    /// serial implementation.
    const GRAM_ROW_BAND: usize = 256;

    /// Minimum per-band work (upper-triangle multiply-adds,
    /// `GRAM_ROW_BAND · d·(d+1)/2`) for the parallel Gram path to pay for
    /// its fork/join handoff. Tall-but-narrow matrices below this grain ran
    /// *slower* in parallel (BENCH_parallel measured a 0.77× "speedup" at 2
    /// threads on a `4096×48` input, and still 0.70× at 4 threads on
    /// `4096×96` under the earlier 500k grain), so they take the serial
    /// path unconditionally: with the current band height this requires
    /// `d ≥ 139`.
    const GRAM_PAR_GRAIN: usize = 2_500_000;

    /// The Gram matrix `AᵀA` (symmetric positive semidefinite), computed
    /// without materializing `Aᵀ`.
    ///
    /// Large inputs accumulate one upper-triangle partial per fixed row band
    /// in parallel; partials are merged in band-index order, so the parallel
    /// result is bit-identical at every thread count ≥ 2 and differs from
    /// the serial sum only by the documented band-wise reassociation
    /// (bounded by normal f64 summation error). Inputs with fewer than two
    /// bands, or too narrow to meet the per-band work grain
    /// (`GRAM_PAR_GRAIN`), take the serial path.
    ///
    /// The upper-triangle update is a slice-zip axpy
    /// (`acc[j·d+j..j·d+d] += rj · row[j..]`): ascending `k`, the same
    /// additions in the same order as the indexed loop it replaces (so
    /// bit-identical), but bounds-check-free and autovectorizable.
    pub fn gram(&self) -> Matrix {
        let d = self.cols;
        let mut out = Matrix::zeros(d, d);
        let band_work = Self::GRAM_ROW_BAND * (d * (d + 1)) / 2;
        if self.rows > Self::GRAM_ROW_BAND
            && band_work >= Self::GRAM_PAR_GRAIN
            && mbp_par::max_threads() > 1
        {
            let _span = mbp_obs::span("mbp.linalg.gram.par");
            let partials = mbp_par::par_map_chunks(self.rows, Self::GRAM_ROW_BAND, |band| {
                let mut acc = vec![0.0f64; d * d];
                for i in band {
                    let row = self.row(i);
                    for (j, &rj) in row.iter().enumerate() {
                        // LINT-ALLOW(float): exact-zero skip exploits input sparsity.
                        if rj == 0.0 {
                            continue;
                        }
                        let base = j * d;
                        for (o, &a) in acc[base + j..base + d].iter_mut().zip(&row[j..]) {
                            *o += rj * a;
                        }
                    }
                }
                acc
            });
            // Band partials arrive in band-index order: a fixed reduction
            // order, deterministic for any thread count.
            for acc in partials {
                for (o, a) in out.data.iter_mut().zip(&acc) {
                    *o += a;
                }
            }
        } else {
            for i in 0..self.rows {
                let row = self.row(i);
                for (j, &rj) in row.iter().enumerate() {
                    // LINT-ALLOW(float): exact-zero skip exploits input sparsity.
                    if rj == 0.0 {
                        continue;
                    }
                    // Only the upper triangle; mirrored below.
                    let base = j * d;
                    for (o, &a) in out.data[base + j..base + d].iter_mut().zip(&row[j..]) {
                        *o += rj * a;
                    }
                }
            }
        }
        for j in 0..d {
            for k in (j + 1)..d {
                out.data[k * d + j] = out.data[j * d + k];
            }
        }
        out
    }

    /// Adds `c` to every diagonal entry in place (ridge term `A + c·I`).
    ///
    /// Returns [`LinalgError::NotSquare`] for rectangular matrices.
    pub fn add_diagonal(&mut self, c: f64) -> Result<()> {
        if self.rows != self.cols {
            return Err(LinalgError::NotSquare {
                shape: self.shape(),
            });
        }
        for i in 0..self.rows {
            self.data[i * self.cols + i] += c;
        }
        Ok(())
    }

    /// Sum of the diagonal entries.
    ///
    /// Returns [`LinalgError::NotSquare`] for rectangular matrices.
    pub fn trace(&self) -> Result<f64> {
        if self.rows != self.cols {
            return Err(LinalgError::NotSquare {
                shape: self.shape(),
            });
        }
        Ok((0..self.rows).map(|i| self.get(i, i)).sum())
    }

    /// Frobenius norm `√Σ aᵢⱼ²`.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// `true` when `|aᵢⱼ − aⱼᵢ| ≤ tol` for all entries.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.rows != self.cols {
            return false;
        }
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                if (self.get(i, j) - self.get(j, i)).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Immutable view of the row-major backing storage.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }
}

/// Dot product on four fixed accumulator lanes.
///
/// **Reduction-order contract** (part of the numeric API: pinned by
/// `dot4_reduction_order_is_the_documented_tree`): element `t` accumulates
/// into lane `t mod 4` in ascending `t`, the `len % 4` tail elements fold
/// into lanes `0..` in the same rule, and the lanes reduce as
/// `(l0 + l1) + (l2 + l3)`. The order never depends on the data, only on
/// `len`, so every stream is bit-identical across runs, thread counts, and
/// call sites — while the four independent chains let the compiler keep
/// the loop in SIMD lanes instead of one serial add chain.
#[inline]
fn dot4(a: &[f64], b: &[f64]) -> f64 {
    let mut lanes = [0.0f64; 4];
    let mut ac = a.chunks_exact(4);
    let mut bc = b.chunks_exact(4);
    for (ca, cb) in (&mut ac).zip(&mut bc) {
        for ((l, &x), &y) in lanes.iter_mut().zip(ca).zip(cb) {
            *l += x * y;
        }
    }
    for ((l, &x), &y) in lanes.iter_mut().zip(ac.remainder()).zip(bc.remainder()) {
        *l += x * y;
    }
    (lanes[0] + lanes[1]) + (lanes[2] + lanes[3])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Matrix {
        Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap()
    }

    #[test]
    fn from_vec_validates_len() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 3]).is_err());
    }

    #[test]
    fn matvec_matches_hand_computation() {
        let a = sample();
        let x = Vector::from_vec(vec![1.0, 0.0, -1.0]);
        assert_eq!(a.matvec(&x).unwrap().as_slice(), &[-2.0, -2.0]);
    }

    /// The documented lane tree of [`dot4`], computed by hand with
    /// non-associative probe values: any future reassociation (which would
    /// silently change every matvec stream) flips bits here.
    #[test]
    fn dot4_reduction_order_is_the_documented_tree() {
        let a: Vec<f64> = (0..11)
            .map(|i| 1e16 / (i as f64 + 1.0) * if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let b: Vec<f64> = (0..11).map(|i| 1.0 + (i as f64) * 1e-3).collect();
        for len in 0..=a.len() {
            let mut lanes = [0.0f64; 4];
            for (t, (&x, &y)) in a[..len].iter().zip(&b[..len]).enumerate() {
                lanes[t % 4] += x * y;
            }
            let want = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
            assert_eq!(
                dot4(&a[..len], &b[..len]).to_bits(),
                want.to_bits(),
                "len {len}"
            );
        }
    }

    #[test]
    fn matvec_t_matches_transpose_matvec() {
        let a = sample();
        let x = Vector::from_vec(vec![1.0, 2.0]);
        let direct = a.matvec_t(&x).unwrap();
        let via_transpose = a.transpose().matvec(&x).unwrap();
        assert_eq!(direct, via_transpose);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = sample();
        let i3 = Matrix::identity(3);
        assert_eq!(a.matmul(&i3).unwrap(), a);
    }

    #[test]
    fn matmul_hand_checked() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let b = Matrix::from_vec(2, 2, vec![0.0, 1.0, 1.0, 0.0]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.as_slice(), &[2.0, 1.0, 4.0, 3.0]);
    }

    #[test]
    fn gram_equals_explicit_transpose_product() {
        let a = sample();
        let g = a.gram();
        let explicit = a.transpose().matmul(&a).unwrap();
        assert_eq!(g, explicit);
        assert!(g.is_symmetric(0.0));
    }

    #[test]
    fn add_diagonal_ridge() {
        let mut g = Matrix::identity(2);
        g.add_diagonal(0.5).unwrap();
        assert_eq!(g.as_slice(), &[1.5, 0.0, 0.0, 1.5]);
        let mut rect = Matrix::zeros(2, 3);
        assert!(matches!(
            rect.add_diagonal(1.0),
            Err(LinalgError::NotSquare { .. })
        ));
    }

    #[test]
    fn trace_and_frobenius() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(a.trace().unwrap(), 5.0);
        assert!((a.frobenius_norm() - 30.0_f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn col_extraction() {
        let a = sample();
        assert_eq!(a.col(1).unwrap().as_slice(), &[2.0, 5.0]);
        assert!(a.col(3).is_err());
    }

    #[test]
    fn from_rows_checks_ragged_input() {
        assert!(Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0]]).is_err());
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(m.shape(), (2, 2));
    }

    /// A tall matrix with enough rows to trigger the banded parallel paths.
    fn tall(rows: usize, cols: usize) -> Matrix {
        Matrix::from_fn(rows, cols, |i, j| {
            ((i * cols + j) as f64 * 0.37).sin() * 3.0 + 0.1 * j as f64
        })
    }

    #[test]
    fn parallel_gram_is_bit_identical_across_thread_counts() {
        // 160 columns clears the work-grain threshold (`d ≥ 139`), so this
        // exercises the banded parallel path.
        let a = tall(700, 160);
        let g2 = mbp_par::with_threads(2, || a.gram());
        let g4 = mbp_par::with_threads(4, || a.gram());
        assert_eq!(g2.as_slice(), g4.as_slice());
        assert!(g2.is_symmetric(0.0));
    }

    #[test]
    fn parallel_gram_matches_serial_within_reduction_tolerance() {
        let a = tall(700, 160);
        let serial = mbp_par::with_threads(1, || a.gram());
        let par = mbp_par::with_threads(4, || a.gram());
        for (s, p) in serial.as_slice().iter().zip(par.as_slice()) {
            assert!((s - p).abs() <= 1e-9 * s.abs().max(1.0), "{s} vs {p}");
        }
    }

    /// Tall-but-narrow inputs fall below the parallel work grain: the
    /// per-band handoff cost dominates at small `d`, so they must take the
    /// serial path at every thread count — bit-identical, not merely close.
    #[test]
    fn narrow_gram_stays_serial_below_work_grain() {
        let a = tall(700, 12);
        let serial = mbp_par::with_threads(1, || a.gram());
        let two = mbp_par::with_threads(2, || a.gram());
        let four = mbp_par::with_threads(4, || a.gram());
        assert_eq!(serial.as_slice(), two.as_slice());
        assert_eq!(serial.as_slice(), four.as_slice());
    }

    #[test]
    fn parallel_matmul_is_bit_identical_to_serial() {
        let a = tall(300, 40);
        let b = tall(40, 25);
        let serial = mbp_par::with_threads(1, || a.matmul(&b).unwrap());
        let two = mbp_par::with_threads(2, || a.matmul(&b).unwrap());
        let four = mbp_par::with_threads(4, || a.matmul(&b).unwrap());
        assert_eq!(serial.as_slice(), two.as_slice());
        assert_eq!(serial.as_slice(), four.as_slice());
    }
}
