use crate::{LinalgError, Result, Vector};

/// A sparse vector: sorted `(index, value)` pairs over a fixed dimension.
///
/// The paper's Example 3 embeds Twitter messages as sparse vectors in a
/// high-dimensional space; hypotheses stay dense (`h ∈ R^d`), but example
/// rows are sparse, so the kernels that matter are sparse·dense dot
/// products and sparse-scaled accumulation into a dense gradient.
#[derive(Debug, Clone, PartialEq)]
pub struct SparseVector {
    dim: usize,
    entries: Vec<(u32, f64)>,
}

impl SparseVector {
    /// Creates a sparse vector from `(index, value)` pairs.
    ///
    /// Entries are sorted and validated; duplicate indices are rejected,
    /// explicit zeros are dropped.
    pub fn new(dim: usize, mut entries: Vec<(u32, f64)>) -> Result<Self> {
        // LINT-ALLOW(float): dropping explicit zeros is an exact-bit test.
        entries.retain(|&(_, v)| v != 0.0);
        entries.sort_by_key(|&(i, _)| i);
        for pair in entries.windows(2) {
            if pair[0].0 == pair[1].0 {
                return Err(LinalgError::IndexOutOfBounds {
                    index: pair[0].0 as usize,
                    len: dim,
                });
            }
        }
        if let Some(&(last, _)) = entries.last() {
            if last as usize >= dim {
                return Err(LinalgError::IndexOutOfBounds {
                    index: last as usize,
                    len: dim,
                });
            }
        }
        for &(_, v) in &entries {
            if !v.is_finite() {
                return Err(LinalgError::ShapeMismatch {
                    op: "sparse_new",
                    left: (dim, 1),
                    right: (dim, 1),
                });
            }
        }
        Ok(SparseVector { dim, entries })
    }

    /// The ambient dimension `d`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// The stored `(index, value)` pairs, sorted by index.
    pub fn entries(&self) -> &[(u32, f64)] {
        &self.entries
    }

    /// Dot product with a dense vector.
    pub fn dot_dense(&self, dense: &Vector) -> Result<f64> {
        if dense.len() != self.dim {
            return Err(LinalgError::ShapeMismatch {
                op: "sparse_dot",
                left: (self.dim, 1),
                right: (dense.len(), 1),
            });
        }
        let d = dense.as_slice();
        Ok(self.entries.iter().map(|&(i, v)| v * d[i as usize]).sum())
    }

    /// Accumulates `alpha * self` into a dense vector (`axpy`).
    pub fn axpy_into(&self, alpha: f64, dense: &mut Vector) -> Result<()> {
        if dense.len() != self.dim {
            return Err(LinalgError::ShapeMismatch {
                op: "sparse_axpy",
                left: (self.dim, 1),
                right: (dense.len(), 1),
            });
        }
        let d = dense.as_mut_slice();
        for &(i, v) in &self.entries {
            d[i as usize] += alpha * v;
        }
        Ok(())
    }

    /// Squared Euclidean norm of the stored entries.
    pub fn norm2_squared(&self) -> f64 {
        self.entries.iter().map(|&(_, v)| v * v).sum()
    }

    /// Densifies into a full [`Vector`].
    pub fn to_dense(&self) -> Vector {
        let mut out = Vector::zeros(self.dim);
        let s = out.as_mut_slice();
        for &(i, v) in &self.entries {
            s[i as usize] = v;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_sorts_and_drops_zeros() {
        let v = SparseVector::new(5, vec![(3, 2.0), (1, -1.0), (4, 0.0)]).unwrap();
        assert_eq!(v.nnz(), 2);
        assert_eq!(v.entries(), &[(1, -1.0), (3, 2.0)]);
    }

    #[test]
    fn rejects_duplicates_and_out_of_range() {
        assert!(SparseVector::new(5, vec![(1, 1.0), (1, 2.0)]).is_err());
        assert!(SparseVector::new(5, vec![(5, 1.0)]).is_err());
    }

    #[test]
    fn dot_and_axpy_match_dense() {
        let s = SparseVector::new(4, vec![(0, 2.0), (3, -1.0)]).unwrap();
        let d = Vector::from_vec(vec![1.0, 5.0, 7.0, 2.0]);
        assert_eq!(s.dot_dense(&d).unwrap(), 0.0); // 2·1 + (−1)·2 = 0
        let mut acc = Vector::zeros(4);
        s.axpy_into(0.5, &mut acc).unwrap();
        assert_eq!(acc.as_slice(), &[1.0, 0.0, 0.0, -0.5]);
        // Cross-check against densified arithmetic.
        let dd = s.to_dense();
        assert_eq!(s.dot_dense(&d).unwrap(), dd.dot(&d).unwrap());
        assert_eq!(s.norm2_squared(), dd.norm2_squared());
    }

    #[test]
    fn dimension_checks() {
        let s = SparseVector::new(4, vec![(0, 1.0)]).unwrap();
        assert!(s.dot_dense(&Vector::zeros(3)).is_err());
        let mut wrong = Vector::zeros(5);
        assert!(s.axpy_into(1.0, &mut wrong).is_err());
    }

    #[test]
    fn empty_sparse_vector() {
        let s = SparseVector::new(3, vec![]).unwrap();
        assert_eq!(s.nnz(), 0);
        assert_eq!(s.dot_dense(&Vector::filled(3, 9.0)).unwrap(), 0.0);
        assert_eq!(s.to_dense(), Vector::zeros(3));
    }
}
