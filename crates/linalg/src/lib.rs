//! Dense linear algebra substrate for the model-based pricing (MBP) stack.
//!
//! The MBP paper's prototype leaned on MATLAB's matrix core; this crate
//! rebuilds the pieces the rest of the workspace needs from scratch:
//!
//! * [`Vector`] — an owned dense `f64` vector with the BLAS-1 style kernels
//!   used by the trainers (dot, axpy, norms, elementwise maps);
//! * [`Matrix`] — a row-major dense matrix with matrix–vector and
//!   matrix–matrix products, Gram matrices (`XᵀX`), and transpose products;
//! * [`Cholesky`] — an `LLᵀ` factorization of symmetric positive definite
//!   matrices with forward/backward substitution, used for closed-form ridge
//!   regression and Newton steps;
//! * [`SparseVector`] — sorted-pairs sparse rows for the high-dimensional
//!   embedding workloads of the paper's Example 3.
//!
//! Everything is `f64`, row-major, and allocation-explicit. There is no
//! `unsafe` anywhere in the crate; the matrices in this workload are small
//! (`d ≤ ~100` features), so clarity wins over micro-optimized kernels.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cholesky;
mod error;
mod matrix;
mod sparse;
mod vector;

pub use cholesky::{solve_spd, Cholesky};
pub use error::LinalgError;
pub use matrix::Matrix;
pub use sparse::SparseVector;
pub use vector::Vector;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, LinalgError>;
