use crate::{LinalgError, Result};
use std::ops::{Index, IndexMut};

/// An owned dense `f64` vector.
///
/// `Vector` is the common currency between the data, ML, and pricing layers:
/// feature rows, model instances (hypotheses `h ∈ R^d`), gradients, and noise
/// draws are all `Vector`s. Operations that combine two vectors check
/// dimensions and return [`LinalgError::ShapeMismatch`] on disagreement.
#[derive(Debug, Clone, PartialEq)]
pub struct Vector {
    data: Vec<f64>,
}

impl Vector {
    /// Creates a vector taking ownership of `data`.
    pub fn from_vec(data: Vec<f64>) -> Self {
        Vector { data }
    }

    /// Creates a vector of `len` zeros.
    pub fn zeros(len: usize) -> Self {
        Vector {
            data: vec![0.0; len],
        }
    }

    /// Creates a vector of `len` copies of `value`.
    pub fn filled(len: usize, value: f64) -> Self {
        Vector {
            data: vec![value; len],
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when the vector has no entries.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying slice.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable view of the underlying slice.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the vector and returns the underlying storage.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Checked element access.
    pub fn get(&self, i: usize) -> Result<f64> {
        self.data
            .get(i)
            .copied()
            .ok_or(LinalgError::IndexOutOfBounds {
                index: i,
                len: self.data.len(),
            })
    }

    /// Dot product `self · other`.
    pub fn dot(&self, other: &Vector) -> Result<f64> {
        self.check_same_len("dot", other)?;
        Ok(self.data.iter().zip(&other.data).map(|(a, b)| a * b).sum())
    }

    /// Euclidean (L2) norm.
    pub fn norm2(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Squared Euclidean norm, `‖self‖²` — the paper's model-space square
    /// loss is `ε_s(h) = ‖h − h*‖²`, computed through this kernel.
    pub fn norm2_squared(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>()
    }

    /// L1 norm.
    pub fn norm1(&self) -> f64 {
        self.data.iter().map(|x| x.abs()).sum::<f64>()
    }

    /// Maximum absolute entry (L∞ norm); `0.0` for the empty vector.
    pub fn norm_inf(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, x| m.max(x.abs()))
    }

    /// Elementwise sum, returning a new vector.
    pub fn add(&self, other: &Vector) -> Result<Vector> {
        self.check_same_len("add", other)?;
        Ok(Vector::from_vec(
            self.data
                .iter()
                .zip(&other.data)
                .map(|(a, b)| a + b)
                .collect(),
        ))
    }

    /// Elementwise difference `self − other`, returning a new vector.
    pub fn sub(&self, other: &Vector) -> Result<Vector> {
        self.check_same_len("sub", other)?;
        Ok(Vector::from_vec(
            self.data
                .iter()
                .zip(&other.data)
                .map(|(a, b)| a - b)
                .collect(),
        ))
    }

    /// Scales every entry by `c`, returning a new vector.
    pub fn scale(&self, c: f64) -> Vector {
        Vector::from_vec(self.data.iter().map(|x| c * x).collect())
    }

    /// In-place `self += alpha * x` (BLAS `axpy`).
    pub fn axpy(&mut self, alpha: f64, x: &Vector) -> Result<()> {
        self.check_same_len("axpy", x)?;
        for (a, b) in self.data.iter_mut().zip(&x.data) {
            *a += alpha * b;
        }
        Ok(())
    }

    /// In-place scaling `self *= c`.
    pub fn scale_in_place(&mut self, c: f64) {
        for a in &mut self.data {
            *a *= c;
        }
    }

    /// Applies `f` to every entry, returning a new vector.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Vector {
        Vector::from_vec(self.data.iter().map(|&x| f(x)).collect())
    }

    /// Sum of all entries.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Arithmetic mean; `0.0` for the empty vector.
    pub fn mean(&self) -> f64 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f64
        }
    }

    /// `true` when every entry is finite (no NaN / ±inf).
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    fn check_same_len(&self, op: &'static str, other: &Vector) -> Result<()> {
        if self.len() != other.len() {
            return Err(LinalgError::ShapeMismatch {
                op,
                left: (self.len(), 1),
                right: (other.len(), 1),
            });
        }
        Ok(())
    }
}

impl Index<usize> for Vector {
    type Output = f64;
    fn index(&self, i: usize) -> &f64 {
        &self.data[i]
    }
}

impl IndexMut<usize> for Vector {
    fn index_mut(&mut self, i: usize) -> &mut f64 {
        &mut self.data[i]
    }
}

impl From<Vec<f64>> for Vector {
    fn from(v: Vec<f64>) -> Self {
        Vector::from_vec(v)
    }
}

impl FromIterator<f64> for Vector {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        Vector::from_vec(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_product() {
        let a = Vector::from_vec(vec![1.0, 2.0, 3.0]);
        let b = Vector::from_vec(vec![4.0, 5.0, 6.0]);
        assert_eq!(a.dot(&b).unwrap(), 32.0);
    }

    #[test]
    fn dot_shape_mismatch() {
        let a = Vector::zeros(2);
        let b = Vector::zeros(3);
        assert!(matches!(
            a.dot(&b),
            Err(LinalgError::ShapeMismatch { op: "dot", .. })
        ));
    }

    #[test]
    fn norms() {
        let v = Vector::from_vec(vec![3.0, -4.0]);
        assert_eq!(v.norm2(), 5.0);
        assert_eq!(v.norm2_squared(), 25.0);
        assert_eq!(v.norm1(), 7.0);
        assert_eq!(v.norm_inf(), 4.0);
    }

    #[test]
    fn axpy_updates_in_place() {
        let mut y = Vector::from_vec(vec![1.0, 1.0]);
        let x = Vector::from_vec(vec![2.0, 3.0]);
        y.axpy(0.5, &x).unwrap();
        assert_eq!(y.as_slice(), &[2.0, 2.5]);
    }

    #[test]
    fn add_sub_scale() {
        let a = Vector::from_vec(vec![1.0, 2.0]);
        let b = Vector::from_vec(vec![3.0, 5.0]);
        assert_eq!(a.add(&b).unwrap().as_slice(), &[4.0, 7.0]);
        assert_eq!(b.sub(&a).unwrap().as_slice(), &[2.0, 3.0]);
        assert_eq!(a.scale(2.0).as_slice(), &[2.0, 4.0]);
    }

    #[test]
    fn mean_of_empty_is_zero() {
        assert_eq!(Vector::zeros(0).mean(), 0.0);
        assert_eq!(Vector::zeros(0).norm_inf(), 0.0);
    }

    #[test]
    fn map_and_sum() {
        let v = Vector::from_vec(vec![1.0, 2.0, 3.0]);
        assert_eq!(v.map(|x| x * x).sum(), 14.0);
    }

    #[test]
    fn get_checked() {
        let v = Vector::from_vec(vec![7.0]);
        assert_eq!(v.get(0).unwrap(), 7.0);
        assert!(matches!(
            v.get(1),
            Err(LinalgError::IndexOutOfBounds { index: 1, len: 1 })
        ));
    }

    #[test]
    fn is_finite_detects_nan() {
        let v = Vector::from_vec(vec![1.0, f64::NAN]);
        assert!(!v.is_finite());
        assert!(Vector::zeros(3).is_finite());
    }
}
