use crate::{LinalgError, Matrix, Result, Vector};

/// Cholesky factorization `A = L Lᵀ` of a symmetric positive definite matrix.
///
/// This is the workhorse behind closed-form ridge regression
/// (`(XᵀX + μI) w = Xᵀy`) and the Newton steps of the logistic trainer. The
/// factorization fails fast with [`LinalgError::NotPositiveDefinite`] when a
/// pivot drops below a small positive floor, which in practice signals a
/// singular Gram matrix (duplicate features) or a missing ridge term.
#[derive(Debug, Clone)]
pub struct Cholesky {
    /// Lower-triangular factor, stored densely (upper triangle is zero).
    l: Matrix,
}

impl Cholesky {
    /// Minimum admissible pivot; below this the matrix is treated as
    /// numerically indefinite.
    const PIVOT_FLOOR: f64 = 1e-12;

    /// Factorizes `a`, which must be square and symmetric positive definite.
    pub fn factor(a: &Matrix) -> Result<Self> {
        let (r, c) = a.shape();
        if r != c {
            return Err(LinalgError::NotSquare { shape: (r, c) });
        }
        let n = r;
        mbp_obs::inc("mbp.linalg.cholesky.count");
        let mut l = Matrix::zeros(n, n);
        for j in 0..n {
            // Diagonal entry.
            let mut sum = a.get(j, j);
            for k in 0..j {
                let ljk = l.get(j, k);
                sum -= ljk * ljk;
            }
            if sum <= Self::PIVOT_FLOOR {
                return Err(LinalgError::NotPositiveDefinite {
                    pivot: j,
                    value: sum,
                });
            }
            let ljj = sum.sqrt();
            l.set(j, j, ljj);
            // Column below the diagonal.
            for i in (j + 1)..n {
                let mut s = a.get(i, j);
                for k in 0..j {
                    s -= l.get(i, k) * l.get(j, k);
                }
                l.set(i, j, s / ljj);
            }
        }
        Ok(Cholesky { l })
    }

    /// The lower-triangular factor `L`.
    pub fn l(&self) -> &Matrix {
        &self.l
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.l.rows()
    }

    /// Solves `A x = b` via `L y = b` then `Lᵀ x = y`.
    // Indexed loops: each statement reads one matrix and one vector at
    // mixed offsets; iterators obscure the triangular access pattern.
    #[allow(clippy::needless_range_loop)]
    pub fn solve(&self, b: &Vector) -> Result<Vector> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::ShapeMismatch {
                op: "cholesky_solve",
                left: (n, n),
                right: (b.len(), 1),
            });
        }
        // Forward substitution: L y = b.
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut s = b[i];
            for k in 0..i {
                s -= self.l.get(i, k) * y[k];
            }
            y[i] = s / self.l.get(i, i);
        }
        // Backward substitution: Lᵀ x = y.
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut s = y[i];
            for k in (i + 1)..n {
                s -= self.l.get(k, i) * x[k];
            }
            x[i] = s / self.l.get(i, i);
        }
        Ok(Vector::from_vec(x))
    }

    /// Log-determinant of `A`: `2 Σ log Lᵢᵢ`.
    pub fn log_det(&self) -> f64 {
        (0..self.dim()).map(|i| self.l.get(i, i).ln()).sum::<f64>() * 2.0
    }

    /// Reconstructs `L Lᵀ` (mainly for tests and diagnostics).
    pub fn reconstruct(&self) -> Matrix {
        let lt = self.l.transpose();
        self.l.matmul(&lt).expect("square factors always multiply")
    }
}

/// Solves the SPD system `A x = b` in one call.
///
/// Convenience wrapper over [`Cholesky::factor`] + [`Cholesky::solve`].
pub fn solve_spd(a: &Matrix, b: &Vector) -> Result<Vector> {
    Cholesky::factor(a)?.solve(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd3() -> Matrix {
        // A = Bᵀ B + I for B = [[1,2,0],[0,1,1],[1,0,1]] — guaranteed SPD.
        let b = Matrix::from_vec(3, 3, vec![1.0, 2.0, 0.0, 0.0, 1.0, 1.0, 1.0, 0.0, 1.0]).unwrap();
        let mut a = b.gram();
        a.add_diagonal(1.0).unwrap();
        a
    }

    #[test]
    fn factor_roundtrip() {
        let a = spd3();
        let ch = Cholesky::factor(&a).unwrap();
        let r = ch.reconstruct();
        for (x, y) in a.as_slice().iter().zip(r.as_slice()) {
            assert!((x - y).abs() < 1e-10, "{x} vs {y}");
        }
    }

    #[test]
    fn solve_recovers_known_solution() {
        let a = spd3();
        let x_true = Vector::from_vec(vec![1.0, -2.0, 0.5]);
        let b = a.matvec(&x_true).unwrap();
        let x = solve_spd(&a, &b).unwrap();
        for (xi, ti) in x.as_slice().iter().zip(x_true.as_slice()) {
            assert!((xi - ti).abs() < 1e-10);
        }
    }

    #[test]
    fn rejects_indefinite() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 2.0, 1.0]).unwrap(); // eigenvalues 3, -1
        assert!(matches!(
            Cholesky::factor(&a),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn rejects_rectangular() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            Cholesky::factor(&a),
            Err(LinalgError::NotSquare { .. })
        ));
    }

    #[test]
    fn solve_checks_rhs_len() {
        let ch = Cholesky::factor(&spd3()).unwrap();
        assert!(ch.solve(&Vector::zeros(2)).is_err());
    }

    #[test]
    fn log_det_of_identity_is_zero() {
        let ch = Cholesky::factor(&Matrix::identity(4)).unwrap();
        assert!(ch.log_det().abs() < 1e-12);
    }

    #[test]
    fn log_det_of_scaled_identity() {
        let mut a = Matrix::identity(3);
        a.add_diagonal(1.0).unwrap(); // A = 2I, det = 8
        let ch = Cholesky::factor(&a).unwrap();
        assert!((ch.log_det() - 8.0_f64.ln()).abs() < 1e-12);
    }
}
