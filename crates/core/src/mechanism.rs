//! Randomized noise mechanisms `K(h*, w)`.
//!
//! Section 3.2 restricts the broker to mechanisms that are (i) **unbiased**
//! (`E[K(h*, w)] = h*`) and (ii) **monotone**: the expected error strictly
//! increases with the noise control parameter δ. The Gaussian mechanism of
//! Section 4.1 is the canonical instance; Examples 1–2 also mention uniform
//! (additive and multiplicative) and Laplace noise, implemented here too.
//!
//! All mechanisms in this module are *calibrated to the NCP*: the injected
//! noise `w` satisfies `E[‖w‖²] = δ`, so Lemma 3 (`E[ε_s(ĥ_δ)] = δ` for the
//! model-space square loss) holds for every one of them, and a pricing
//! function tuned for one mechanism prices the others identically.

use mbp_linalg::Vector;
use mbp_randx::{seeded_rng, Distribution, Laplace, MbpRng, Normal, StandardNormal, UniformRange};
use rand::RngCore;

/// SplitMix64 finalizer: decorrelates per-chunk seeds derived from one root
/// draw in the parallel Gaussian path.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A randomized release mechanism satisfying the paper's two restrictions
/// (unbiasedness and error-monotonicity in δ).
///
/// Mechanisms are required to be `Send + Sync`: they are stateless samplers
/// (the RNG is supplied per call), and the concurrent broker shares one
/// instance across seller threads.
pub trait NoiseMechanism: Send + Sync {
    /// Returns the noisy instance `ĥ_δ = K(h*, w)` for noise control
    /// parameter `ncp = δ ≥ 0`. `ncp = 0` must return `h*` exactly.
    fn perturb(&self, h_star: &Vector, ncp: f64, rng: &mut MbpRng) -> Vector;

    /// Writes the noisy instance into `out`, reusing its buffer when the
    /// dimension already matches — the zero-allocation serving path.
    ///
    /// Implementations must consume the same RNG stream and produce the
    /// same value as [`NoiseMechanism::perturb`], so the two entry points
    /// are interchangeable for determinism purposes. The default simply
    /// delegates (and therefore allocates).
    fn perturb_into(&self, h_star: &Vector, ncp: f64, rng: &mut MbpRng, out: &mut Vector) {
        *out = self.perturb(h_star, ncp, rng);
    }

    /// Mechanism name for reports.
    fn name(&self) -> &'static str;
}

fn check_ncp(ncp: f64) {
    assert!(
        ncp >= 0.0 && ncp.is_finite(),
        "noise control parameter must be finite and >= 0, got {ncp}"
    );
}

/// Copies `h*` into `out` without allocating when the dimensions match.
fn copy_into(h_star: &Vector, out: &mut Vector) {
    if out.len() == h_star.len() {
        // Element-wise instead of `copy_from_slice`: total on any length
        // (zip truncates), so the serve path cannot abort on a mismatch.
        for (o, h) in out.as_mut_slice().iter_mut().zip(h_star.as_slice()) {
            *o = *h;
        }
    } else {
        *out = h_star.clone();
    }
}

/// The paper's Gaussian mechanism `K_G` (Section 4.1, Figure 4):
/// `ĥ = h* + w`, `w ~ N(0, (δ/d)·I_d)`.
///
/// This is the mechanism for which Theorem 5 characterizes arbitrage-free
/// pricing: the Cramér–Rao bound caps what any unbiased combination of
/// independent Gaussian releases can recover, making "price monotone and
/// subadditive in 1/δ" both necessary and sufficient.
///
/// ```
/// use mbp_core::mechanism::{GaussianMechanism, NoiseMechanism};
/// use mbp_linalg::Vector;
/// use mbp_randx::seeded_rng;
///
/// let h_star = Vector::from_vec(vec![1.0, -2.0, 0.5]);
/// let mut rng = seeded_rng(7);
/// let release = GaussianMechanism.perturb(&h_star, 0.25, &mut rng);
/// assert_ne!(release, h_star);                 // noise was injected
/// assert_eq!(GaussianMechanism.perturb(&h_star, 0.0, &mut rng), h_star);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct GaussianMechanism;

impl GaussianMechanism {
    /// Dimension at or above which noise is sampled in parallel chunks.
    /// Below this the original single-stream sampler runs, so existing
    /// low-dimensional releases are bit-identical to the serial code.
    pub const PAR_DIM: usize = 4096;
    /// Coordinates per chunk in the parallel path.
    const NOISE_CHUNK: usize = 2048;
}

impl NoiseMechanism for GaussianMechanism {
    fn perturb(&self, h_star: &Vector, ncp: f64, rng: &mut MbpRng) -> Vector {
        let mut out = Vector::zeros(h_star.len());
        self.perturb_into(h_star, ncp, rng, &mut out);
        out
    }

    fn perturb_into(&self, h_star: &Vector, ncp: f64, rng: &mut MbpRng, out: &mut Vector) {
        check_ncp(ncp);
        mbp_obs::inc("mbp.core.mechanism.gaussian.count");
        copy_into(h_star, out);
        // LINT-ALLOW(float): exact-zero NCP is the documented no-noise sentinel.
        if ncp == 0.0 {
            return;
        }
        let d = h_star.len();
        if d >= Self::PAR_DIM {
            // High-dimensional releases sample fixed coordinate chunks, each
            // from its own RNG seeded off a single root draw from the
            // caller's stream. The output therefore depends only on the
            // caller's RNG state, `d`, and `ncp` — never on the thread
            // count (the chunk layout is thread-count independent too).
            let _span = mbp_obs::span("mbp.core.mechanism.gaussian.par");
            let root = rng.next_u64();
            let dist = Normal::new(0.0, (ncp / d as f64).sqrt());
            mbp_par::par_chunks_mut(out.as_mut_slice(), Self::NOISE_CHUNK, |ci, chunk| {
                let mut chunk_rng = seeded_rng(splitmix64(root ^ ci as u64));
                for v in chunk {
                    *v += dist.sample(&mut chunk_rng);
                }
            });
            return;
        }
        // Per-coordinate `sd·N(0,1)` draws in index order — the exact stream
        // `IsotropicGaussian::from_ncp(d, ncp)` consumes, so releases stay
        // bit-identical to the allocating path this replaced.
        let sd = (ncp / d as f64).sqrt();
        for v in out.as_mut_slice() {
            *v += sd * StandardNormal.sample(rng);
        }
    }

    fn name(&self) -> &'static str {
        "gaussian"
    }
}

/// Additive zero-mean Laplace noise per coordinate (Example 2's
/// alternative), with scale `b = √(δ / (2d))` so each coordinate has
/// variance `δ/d` and `E[‖w‖²] = δ`.
#[derive(Debug, Clone, Copy, Default)]
pub struct LaplaceMechanism;

impl NoiseMechanism for LaplaceMechanism {
    fn perturb(&self, h_star: &Vector, ncp: f64, rng: &mut MbpRng) -> Vector {
        let mut out = Vector::zeros(h_star.len());
        self.perturb_into(h_star, ncp, rng, &mut out);
        out
    }

    fn perturb_into(&self, h_star: &Vector, ncp: f64, rng: &mut MbpRng, out: &mut Vector) {
        check_ncp(ncp);
        copy_into(h_star, out);
        // LINT-ALLOW(float): exact-zero NCP is the documented no-noise sentinel.
        if ncp == 0.0 {
            return;
        }
        let d = h_star.len().max(1) as f64;
        let dist = Laplace::new((ncp / (2.0 * d)).sqrt());
        for v in out.as_mut_slice() {
            *v += dist.sample(rng);
        }
    }

    fn name(&self) -> &'static str {
        "laplace"
    }
}

/// Additive uniform noise per coordinate (Example 1's `K₁`): each
/// coordinate gets `U[−s, s]` with `s = √(3δ/d)` so its variance is `δ/d`.
#[derive(Debug, Clone, Copy, Default)]
pub struct UniformAdditiveMechanism;

impl NoiseMechanism for UniformAdditiveMechanism {
    fn perturb(&self, h_star: &Vector, ncp: f64, rng: &mut MbpRng) -> Vector {
        let mut out = Vector::zeros(h_star.len());
        self.perturb_into(h_star, ncp, rng, &mut out);
        out
    }

    fn perturb_into(&self, h_star: &Vector, ncp: f64, rng: &mut MbpRng, out: &mut Vector) {
        check_ncp(ncp);
        copy_into(h_star, out);
        // LINT-ALLOW(float): exact-zero NCP is the documented no-noise sentinel.
        if ncp == 0.0 {
            return;
        }
        let d = h_star.len().max(1) as f64;
        let s = (3.0 * ncp / d).sqrt();
        let dist = UniformRange::new(-s, s);
        for v in out.as_mut_slice() {
            *v += dist.sample(rng);
        }
    }

    fn name(&self) -> &'static str {
        "uniform-additive"
    }
}

/// Multiplicative uniform noise (Example 1's `K₂`): coordinate `i` becomes
/// `hᵢ·uᵢ` with `uᵢ ~ U[1−s, 1+s]`. Unbiased since `E[uᵢ] = 1`.
///
/// Calibration: `E[‖ĥ − h*‖²] = Σ hᵢ²·s²/3`, so `s = √(3δ) / ‖h*‖`.
/// Degenerate when `h* = 0` (multiplying zero produces zero noise) — the
/// mechanism falls back to additive uniform noise in that case so that the
/// NCP semantics (`E[‖w‖²] = δ`) are preserved.
#[derive(Debug, Clone, Copy, Default)]
pub struct UniformMultiplicativeMechanism;

impl NoiseMechanism for UniformMultiplicativeMechanism {
    fn perturb(&self, h_star: &Vector, ncp: f64, rng: &mut MbpRng) -> Vector {
        let mut out = Vector::zeros(h_star.len());
        self.perturb_into(h_star, ncp, rng, &mut out);
        out
    }

    fn perturb_into(&self, h_star: &Vector, ncp: f64, rng: &mut MbpRng, out: &mut Vector) {
        check_ncp(ncp);
        copy_into(h_star, out);
        // LINT-ALLOW(float): exact-zero NCP is the documented no-noise sentinel.
        if ncp == 0.0 {
            return;
        }
        let norm = h_star.norm2();
        if norm <= 1e-12 {
            return UniformAdditiveMechanism.perturb_into(h_star, ncp, rng, out);
        }
        let s = (3.0 * ncp).sqrt() / norm;
        let dist = UniformRange::new(1.0 - s, 1.0 + s);
        for v in out.as_mut_slice() {
            *v *= dist.sample(rng);
        }
    }

    fn name(&self) -> &'static str {
        "uniform-multiplicative"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbp_randx::seeded_rng;

    fn h_star() -> Vector {
        Vector::from_vec(vec![1.2, -3.1, 0.5, 0.1, -2.3, 7.2, -0.9, 5.5])
    }

    fn mean_error_and_bias(mech: &dyn NoiseMechanism, ncp: f64, reps: usize) -> (f64, f64) {
        let h = h_star();
        let mut rng = seeded_rng(77);
        let mut sq = 0.0;
        let mut mean = Vector::zeros(h.len());
        for _ in 0..reps {
            let out = mech.perturb(&h, ncp, &mut rng);
            let diff = out.sub(&h).unwrap();
            sq += diff.norm2_squared();
            mean.axpy(1.0 / reps as f64, &out).unwrap();
        }
        let bias = mean.sub(&h).unwrap().norm2();
        (sq / reps as f64, bias)
    }

    fn all_mechanisms() -> Vec<Box<dyn NoiseMechanism>> {
        vec![
            Box::new(GaussianMechanism),
            Box::new(LaplaceMechanism),
            Box::new(UniformAdditiveMechanism),
            Box::new(UniformMultiplicativeMechanism),
        ]
    }

    /// Lemma 3 for every mechanism: `E[‖ĥ − h*‖²] = δ`, and unbiasedness.
    #[test]
    fn calibration_and_unbiasedness() {
        for mech in all_mechanisms() {
            for &ncp in &[0.5, 2.0, 8.0] {
                let (err, bias) = mean_error_and_bias(mech.as_ref(), ncp, 20_000);
                assert!(
                    (err - ncp).abs() < 0.1 * ncp,
                    "{}: E[eps_s] = {err}, want {ncp}",
                    mech.name()
                );
                assert!(
                    bias < 0.1 * ncp.sqrt(),
                    "{}: bias {bias} too large at ncp {ncp}",
                    mech.name()
                );
            }
        }
    }

    /// Restriction 2: expected error is monotone in δ.
    #[test]
    fn error_monotone_in_ncp() {
        for mech in all_mechanisms() {
            let errs: Vec<f64> = [0.5, 1.0, 2.0, 4.0, 8.0]
                .iter()
                .map(|&d| mean_error_and_bias(mech.as_ref(), d, 4_000).0)
                .collect();
            for w in errs.windows(2) {
                assert!(w[0] < w[1], "{}: {errs:?} not increasing", mech.name());
            }
        }
    }

    #[test]
    fn zero_ncp_returns_exact_model() {
        let h = h_star();
        let mut rng = seeded_rng(5);
        for mech in all_mechanisms() {
            assert_eq!(mech.perturb(&h, 0.0, &mut rng), h, "{}", mech.name());
        }
    }

    #[test]
    fn multiplicative_handles_zero_model() {
        let h = Vector::zeros(4);
        let mut rng = seeded_rng(6);
        let out = UniformMultiplicativeMechanism.perturb(&h, 1.0, &mut rng);
        // Falls back to additive noise: output differs from zero.
        assert!(out.norm2() > 0.0);
    }

    /// `perturb_into` consumes the same stream and produces the same release
    /// as `perturb`, for every mechanism, whether the buffer is reused or
    /// grown — the contract the zero-allocation serving path depends on.
    #[test]
    fn perturb_into_is_bit_identical_to_perturb() {
        let h = h_star();
        for mech in all_mechanisms() {
            for &ncp in &[0.0, 0.5, 2.0] {
                let mut rng_a = seeded_rng(321);
                let mut rng_b = seeded_rng(321);
                let fresh = mech.perturb(&h, ncp, &mut rng_a);
                // Reused buffer of the right size, pre-filled with junk.
                let mut out = Vector::filled(h.len(), f64::NAN);
                mech.perturb_into(&h, ncp, &mut rng_b, &mut out);
                assert_eq!(fresh, out, "{} ncp={ncp}", mech.name());
                // Wrong-size buffer is grown, value unchanged.
                let mut rng_c = seeded_rng(321);
                let mut small = Vector::zeros(1);
                mech.perturb_into(&h, ncp, &mut rng_c, &mut small);
                assert_eq!(fresh, small, "{} ncp={ncp} (grown)", mech.name());
            }
        }
        // The zero-norm multiplicative fallback also matches.
        let zero = Vector::zeros(4);
        let mut rng_a = seeded_rng(9);
        let mut rng_b = seeded_rng(9);
        let fresh = UniformMultiplicativeMechanism.perturb(&zero, 1.0, &mut rng_a);
        let mut out = Vector::zeros(4);
        UniformMultiplicativeMechanism.perturb_into(&zero, 1.0, &mut rng_b, &mut out);
        assert_eq!(fresh, out);
    }

    #[test]
    #[should_panic(expected = "noise control parameter")]
    fn negative_ncp_panics() {
        let mut rng = seeded_rng(7);
        GaussianMechanism.perturb(&h_star(), -1.0, &mut rng);
    }

    /// The chunked high-dimensional path keeps Lemma 3 calibration and is
    /// invariant to the thread count (chunk seeds derive from one root draw).
    #[test]
    fn high_dimensional_gaussian_is_calibrated_and_thread_count_invariant() {
        let d = GaussianMechanism::PAR_DIM;
        let h = Vector::zeros(d);
        let ncp = 2.0;
        let sample_at = |threads: usize| {
            mbp_par::with_threads(threads, || {
                let mut rng = seeded_rng(99);
                GaussianMechanism.perturb(&h, ncp, &mut rng)
            })
        };
        let one = sample_at(1);
        let two = sample_at(2);
        let four = sample_at(4);
        assert_eq!(one, two);
        assert_eq!(two, four);
        // ‖w‖² concentrates tightly around δ at this dimension.
        assert!(
            (one.norm2_squared() - ncp).abs() < 0.2,
            "E[|w|^2] = {} want ~{ncp}",
            one.norm2_squared()
        );
        // Distinct chunks draw from decorrelated streams: consecutive chunk
        // boundaries must not repeat values.
        assert_ne!(one[0], one[GaussianMechanism::PAR_DIM / 2]);
    }
}
