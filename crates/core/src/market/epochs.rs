//! Adaptive repricing over selling seasons.
//!
//! The paper assumes the seller's market research (value/demand curves) is
//! given. In practice the value curve is an *estimate*; this module closes
//! the loop: each epoch the broker posts DP-optimal prices for its current
//! estimate, observes which buyers accept or walk away, and updates the
//! estimate multiplicatively with a damped learning rate — a simple
//! dynamic-pricing scheme. Estimates are re-projected to be non-decreasing
//! after every update (valuations are monotone in accuracy by the paper's
//! standing assumption), reusing the PAVA machinery.
//!
//! Every posted curve is still the output of the Theorem 10 DP, so the
//! market remains arbitrage-free at every epoch while it learns.

use crate::revenue::{solve_bv_dp, BuyerPoint};
use mbp_optim::isotonic::pava_non_decreasing;
use mbp_randx::{Categorical, Distribution, MbpRng, Normal};

/// Configuration of the adaptive run.
#[derive(Debug, Clone, Copy)]
pub struct EpochConfig {
    /// Number of selling seasons.
    pub epochs: usize,
    /// Simulated buyer arrivals per season.
    pub buyers_per_epoch: usize,
    /// Base learning rate; epoch `t` uses `rate / t` (damped).
    pub learning_rate: f64,
    /// Relative jitter on the true valuations of arriving buyers.
    pub valuation_jitter: f64,
}

impl Default for EpochConfig {
    fn default() -> Self {
        EpochConfig {
            epochs: 25,
            buyers_per_epoch: 2000,
            learning_rate: 0.4,
            valuation_jitter: 0.05,
        }
    }
}

/// Per-epoch outcome of the adaptive market.
#[derive(Debug, Clone)]
pub struct EpochReport {
    /// Season index (1-based).
    pub epoch: usize,
    /// Average realized revenue per arriving buyer this season.
    pub revenue_per_buyer: f64,
    /// Fraction of arrivals that purchased.
    pub acceptance_rate: f64,
    /// Root-mean-square error of the valuation estimate vs truth.
    pub estimate_rmse: f64,
}

/// Runs the adaptive market.
///
/// `truth` is the real buyer population (grid, true valuations, demand);
/// `initial_estimate` seeds the broker's per-point valuation guesses (same
/// grid). Returns one report per epoch. The caller can compare the last
/// epochs' revenue to the oracle revenue `solve_bv_dp(truth)`.
///
/// # Panics
/// Panics on empty inputs, grid mismatch, or invalid config.
pub fn run_adaptive_market(
    truth: &[BuyerPoint],
    initial_estimate: &[f64],
    cfg: EpochConfig,
    rng: &mut MbpRng,
) -> Vec<EpochReport> {
    assert!(!truth.is_empty(), "need a buyer population");
    assert_eq!(
        truth.len(),
        initial_estimate.len(),
        "estimate must cover the grid"
    );
    assert!(cfg.epochs > 0 && cfg.buyers_per_epoch > 0, "empty run");
    assert!(
        cfg.learning_rate > 0.0 && cfg.learning_rate < 1.0,
        "learning rate must be in (0, 1)"
    );
    assert!(
        initial_estimate.iter().all(|&v| v > 0.0 && v.is_finite()),
        "estimates must be positive"
    );
    let n = truth.len();
    let ones = vec![1.0; n];
    // Monotone starting estimate.
    let mut estimate = pava_non_decreasing(initial_estimate, &ones);
    let demands: Vec<f64> = truth.iter().map(|p| p.demand).collect();
    let arrivals = Categorical::new(&demands);
    let jitter = Normal::new(0.0, 1.0);

    let _span = mbp_obs::span("mbp.core.adaptive");
    let mut reports = Vec::with_capacity(cfg.epochs);
    for epoch in 1..=cfg.epochs {
        mbp_obs::inc("mbp.core.adaptive.epochs");
        // Post DP-optimal prices for the current estimate.
        let believed: Vec<BuyerPoint> = truth
            .iter()
            .zip(&estimate)
            .map(|(p, &v)| BuyerPoint::new(p.a, v, p.demand))
            .collect();
        let pricing = solve_bv_dp(&believed).pricing;

        // Simulate a season.
        let mut revenue = 0.0;
        let mut accepted = vec![0usize; n];
        let mut arrived = vec![0usize; n];
        let mut total_accepted = 0usize;
        for _ in 0..cfg.buyers_per_epoch {
            let idx = arrivals.sample(rng);
            arrived[idx] += 1;
            let true_v = if cfg.valuation_jitter > 0.0 {
                (truth[idx].valuation * (1.0 + cfg.valuation_jitter * jitter.sample(rng))).max(0.0)
            } else {
                truth[idx].valuation
            };
            let price = pricing.price_at(truth[idx].a);
            if price <= true_v {
                revenue += price;
                accepted[idx] += 1;
                total_accepted += 1;
            }
        }

        // Damped update tethered to the *posted price*: very high
        // acceptance means the price (hence the valuation estimate) can
        // rise; mediocre acceptance means the price sits at-or-above the
        // jittered boundary and is shedding marginal buyers — pull it down.
        // The equilibrium targets ~80–95% acceptance, i.e. a price slightly
        // below the valuation, which beats boundary pricing under jitter.
        // Tethering to the price (not the raw estimate) prevents runaway
        // growth at points where the DP pins the price below the believed
        // valuation via the ratio constraints.
        let rate = cfg.learning_rate / epoch as f64;
        for j in 0..n {
            if arrived[j] == 0 {
                continue;
            }
            let price = pricing.price_at(truth[j].a);
            let acc_rate = accepted[j] as f64 / arrived[j] as f64;
            if acc_rate > 0.95 {
                estimate[j] = estimate[j].max(price * (1.0 + rate));
            } else if acc_rate < 0.80 {
                estimate[j] = estimate[j].min((price * (1.0 - rate)).max(1e-9));
            }
        }
        estimate = pava_non_decreasing(&estimate, &ones);

        let rmse = (truth
            .iter()
            .zip(&estimate)
            .map(|(p, &e)| (p.valuation - e) * (p.valuation - e))
            .sum::<f64>()
            / n as f64)
            .sqrt();
        let report = EpochReport {
            epoch,
            revenue_per_buyer: revenue / cfg.buyers_per_epoch as f64,
            acceptance_rate: total_accepted as f64 / cfg.buyers_per_epoch as f64,
            estimate_rmse: rmse,
        };
        mbp_obs::gauge_set("mbp.core.adaptive.estimate_rmse", report.estimate_rmse);
        mbp_obs::event(
            mbp_obs::Verbosity::Debug,
            "mbp.core.adaptive",
            "epoch complete",
            &[
                ("epoch", epoch.to_string()),
                (
                    "revenue_per_buyer",
                    format!("{:.6}", report.revenue_per_buyer),
                ),
                ("acceptance", format!("{:.4}", report.acceptance_rate)),
                ("rmse", format!("{:.6}", report.estimate_rmse)),
            ],
        );
        reports.push(report);
    }
    reports
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::market::curves::{
        buyer_points, grid, DemandCurve, DemandShape, ValueCurve, ValueShape,
    };
    use crate::revenue::revenue as eval_revenue;
    use mbp_randx::seeded_rng;

    fn true_population() -> Vec<BuyerPoint> {
        let g = grid(10.0, 100.0, 10);
        buyer_points(
            &g,
            &ValueCurve::new(ValueShape::Concave { power: 2.0 }, 10.0, 100.0),
            &DemandCurve::new(DemandShape::Uniform),
        )
        .expect("test grid is valid")
    }

    #[test]
    fn adaptive_market_approaches_the_informed_market() {
        let truth = true_population();
        let cfg = EpochConfig {
            epochs: 40,
            buyers_per_epoch: 1500,
            learning_rate: 0.4,
            valuation_jitter: 0.05,
        };
        // The broker starts believing valuations are 3x lower than reality.
        let bad_guess: Vec<f64> = truth.iter().map(|p| p.valuation / 3.0).collect();
        let mut rng = seeded_rng(101);
        let adaptive = run_adaptive_market(&truth, &bad_guess, cfg, &mut rng);
        // Benchmark: the same market dynamics with a perfect initial
        // estimate (what a fully informed seller realizes under jitter).
        let exact_guess: Vec<f64> = truth.iter().map(|p| p.valuation).collect();
        let mut rng2 = seeded_rng(102);
        let informed = run_adaptive_market(&truth, &exact_guess, cfg, &mut rng2);
        let late = |r: &[EpochReport]| -> f64 {
            r[r.len() - 5..]
                .iter()
                .map(|e| e.revenue_per_buyer)
                .sum::<f64>()
                / 5.0
        };
        let first = adaptive.first().unwrap().revenue_per_buyer;
        let adaptive_late = late(&adaptive);
        let informed_late = late(&informed);
        assert!(
            adaptive_late > first,
            "no learning: first {first}, late {adaptive_late}"
        );
        assert!(
            adaptive_late > 0.8 * informed_late,
            "adaptive ({adaptive_late}) should approach the informed market ({informed_late})"
        );
        // The valuation estimate improved substantially.
        let rmse_first = adaptive.first().unwrap().estimate_rmse;
        let rmse_last = adaptive.last().unwrap().estimate_rmse;
        assert!(rmse_last < 0.5 * rmse_first, "{rmse_first} -> {rmse_last}");
        // Sanity: the informed market extracts a solid share of the oracle
        // (it only loses the jitter-marginal buyers).
        let oracle = solve_bv_dp(&truth);
        let oracle_per_buyer = eval_revenue(&oracle.pricing, &truth);
        assert!(
            informed_late > 0.5 * oracle_per_buyer,
            "informed {informed_late} vs oracle {oracle_per_buyer}"
        );
    }

    #[test]
    fn reports_roll_over_in_order_and_replay_from_the_seed() {
        let truth = true_population();
        let guess: Vec<f64> = truth.iter().map(|p| p.valuation * 0.6).collect();
        let cfg = EpochConfig {
            epochs: 6,
            buyers_per_epoch: 300,
            learning_rate: 0.3,
            valuation_jitter: 0.05,
        };
        let run = |seed: u64| run_adaptive_market(&truth, &guess, cfg, &mut seeded_rng(seed));
        let a = run(7);
        assert_eq!(a.len(), cfg.epochs);
        for (i, r) in a.iter().enumerate() {
            assert_eq!(r.epoch, i + 1, "seasons are 1-based and roll over in order");
            assert!((0.0..=1.0).contains(&r.acceptance_rate));
            assert!(r.revenue_per_buyer.is_finite() && r.revenue_per_buyer >= 0.0);
            assert!(r.estimate_rmse.is_finite() && r.estimate_rmse >= 0.0);
        }
        // Same seed, same run: the entire report stream is bit-identical.
        let b = run(7);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.epoch, y.epoch);
            assert_eq!(x.revenue_per_buyer.to_bits(), y.revenue_per_buyer.to_bits());
            assert_eq!(x.acceptance_rate.to_bits(), y.acceptance_rate.to_bits());
            assert_eq!(x.estimate_rmse.to_bits(), y.estimate_rmse.to_bits());
        }
    }

    #[test]
    fn zero_jitter_season_is_exactly_predicted_by_the_dp_curve() {
        // With `valuation_jitter: 0.0` the season consumes randomness only
        // through the arrival sampler, so a hand-replay of the arrival
        // stream against the DP curve must reproduce the report bitwise.
        let truth = true_population();
        let exact: Vec<f64> = truth.iter().map(|p| p.valuation).collect();
        let cfg = EpochConfig {
            epochs: 1,
            buyers_per_epoch: 400,
            learning_rate: 0.2,
            valuation_jitter: 0.0,
        };
        let reports = run_adaptive_market(&truth, &exact, cfg, &mut seeded_rng(11));
        assert_eq!(reports.len(), 1);

        let pricing = solve_bv_dp(&truth).pricing;
        let demands: Vec<f64> = truth.iter().map(|p| p.demand).collect();
        let arrivals = Categorical::new(&demands);
        let mut rng = seeded_rng(11);
        let mut revenue = 0.0;
        let mut accepted = 0usize;
        for _ in 0..cfg.buyers_per_epoch {
            let idx = arrivals.sample(&mut rng);
            let price = pricing.price_at(truth[idx].a);
            if price <= truth[idx].valuation {
                revenue += price;
                accepted += 1;
            }
        }
        let predicted_acc = accepted as f64 / cfg.buyers_per_epoch as f64;
        let predicted_rev = revenue / cfg.buyers_per_epoch as f64;
        assert_eq!(
            reports[0].acceptance_rate.to_bits(),
            predicted_acc.to_bits()
        );
        assert_eq!(
            reports[0].revenue_per_buyer.to_bits(),
            predicted_rev.to_bits()
        );
        // The DP abandons some low-valuation buyers but never all of them.
        assert!(reports[0].acceptance_rate > 0.0 && reports[0].acceptance_rate < 1.0);
    }

    #[test]
    #[should_panic(expected = "estimate must cover")]
    fn grid_mismatch_panics() {
        let truth = true_population();
        run_adaptive_market(&truth, &[1.0], EpochConfig::default(), &mut seeded_rng(0));
    }
}
